"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table/figure of the paper and both prints
the rows (visible with ``pytest -s``) and writes them under
``benchmarks/output/`` so EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

import pathlib

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def report(name: str, text: str) -> None:
    """Print a result table and persist it to benchmarks/output/."""
    print()
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
