"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table/figure of the paper and both prints
the rows (visible with ``pytest -s``) and writes them under
``benchmarks/output/`` so EXPERIMENTS.md can reference stable artifacts.

Micro-benchmarks additionally record machine-readable numbers into
``BENCH_<n>.json`` at the repo root via :func:`record_bench`, so the perf
trajectory across PRs stays comparable.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"
REPO_ROOT = pathlib.Path(__file__).parent.parent

#: Perf-trajectory file for this PR (bumped each perf-focused PR).
BENCH_JSON = REPO_ROOT / "BENCH_1.json"


def report(name: str, text: str) -> None:
    """Print a result table and persist it to benchmarks/output/."""
    print()
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


def record_bench(
    name: str, payload: Dict[str, Any], path: pathlib.Path = None
) -> None:
    """Merge one benchmark's numbers into a repo-root BENCH json.

    The file accumulates entries across the whole benchmark run (each
    entry keyed by benchmark name), so a single ``pytest benchmarks``
    invocation produces one complete, machine-readable perf snapshot.
    ``path`` overrides the default trajectory file for benchmarks that
    belong to a later PR's snapshot (e.g. ``BENCH_6.json``).
    """
    target = path or BENCH_JSON
    data: Dict[str, Any] = {}
    if target.exists():
        try:
            data = json.loads(target.read_text())
        except json.JSONDecodeError:
            data = {}
    data[name] = payload
    target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
