"""Benchmark: Figure 12 — RU sharing chained with DAS for two MNOs."""

import numpy as np
from _harness import report

from repro.eval.fig12 import run_fig12


def test_fig12_chaining(benchmark):
    result = benchmark.pedantic(
        run_fig12, kwargs=dict(step_m=3.0), rounds=1, iterations=1
    )
    report("fig12", result.format())
    for series in (result.mno1_walk_mbps, result.mno2_walk_mbps):
        arr = np.array(series)
        assert arr.min() > 300  # ~350 Mbps across the floor per MNO
        assert abs(arr.mean() - 350) < 40
