"""Benchmark: Table 2 — dMIMO vs single-RU MIMO throughput and ranks."""

from _harness import report

from repro.eval.table2 import run_table2


def test_table2_dmimo(benchmark):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    report("table2", result.format())
    two = result.row("Single RU - 2 antennas")
    two_d = result.row("Two RUs - 1 antenna each (RANBooster)")
    four = result.row("Single RU - 4 antennas")
    four_d = result.row("Two RUs - 2 antennas each (RANBooster)")
    assert abs(two_d.dl_mbps - two.dl_mbps) < 0.05 * two.dl_mbps
    assert abs(four_d.dl_mbps - four.dl_mbps) < 0.05 * four.dl_mbps
    assert (two.rank, two_d.rank, four.rank, four_d.rank) == (2, 2, 4, 4)
