"""Benchmark: Figure 10b — RU sharing throughput parity."""

from _harness import report

from repro.eval.fig10 import run_fig10b


def test_fig10b_sharing(benchmark):
    result = benchmark.pedantic(run_fig10b, rounds=1, iterations=1)
    report("fig10b", result.format())
    for name in ("A", "B"):
        assert abs(
            result.shared_dl_mbps[name] - result.dedicated_dl_mbps
        ) < 0.05 * result.dedicated_dl_mbps
