"""Benchmark: Appendix A.2 — CapEx comparison."""

from _harness import report

from repro.eval.appendix import run_cost_analysis


def test_appendix_cost(benchmark):
    result = benchmark.pedantic(run_cost_analysis, rounds=1, iterations=1)
    report("appendix_a2", result.format())
    assert 0.38 < result.savings_fraction < 0.44  # "41% cheaper"
