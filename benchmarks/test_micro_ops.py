"""Micro-benchmarks: real Python cost of the heavyweight A4 operations.

The latency *model* (Figure 15b) represents the paper's C/DPDK
implementation; these benches measure what the same operations cost in
this Python implementation — the reason a Python middlebox cannot hold
line rate (the repro constraint documented in DESIGN.md) — and verify the
model's *relative* ordering (exponent read << decompress < merge).
"""

import numpy as np
import pytest

from repro.core.actions import ActionContext, PacketCache
from repro.fronthaul.compression import BfpCompressor, CompressionConfig
from repro.fronthaul.uplane import UPlaneSection

N_PRB = 273  # one full-band 100 MHz symbol


@pytest.fixture(scope="module")
def samples():
    rng = np.random.default_rng(0)
    return rng.integers(-20000, 20000, size=(N_PRB, 24)).astype(np.int16)


@pytest.fixture(scope="module")
def wire(samples):
    return BfpCompressor().compress(samples)


def test_bfp_compress_full_band(benchmark, samples):
    compressor = BfpCompressor()
    benchmark(compressor.compress, samples)


def test_bfp_decompress_full_band(benchmark, wire):
    compressor = BfpCompressor()
    benchmark(compressor.decompress, wire, N_PRB)


def test_exponent_read_full_band(benchmark, wire):
    """Algorithm 1's fast path: exponents without decompression."""
    compressor = BfpCompressor()
    benchmark(compressor.read_exponents, wire, N_PRB)


def test_exponent_read_much_cheaper_than_decompress(samples, wire):
    import time

    compressor = BfpCompressor()

    def timed(fn, *args, repeats=20):
        start = time.perf_counter()
        for _ in range(repeats):
            fn(*args)
        return (time.perf_counter() - start) / repeats

    read = timed(compressor.read_exponents, wire, N_PRB)
    decompress = timed(compressor.decompress, wire, N_PRB)
    assert read * 5 < decompress


def test_iq_merge_4_operands(benchmark, samples):
    """The DAS uplink merge of four RUs (decompress x4, sum, recompress)."""
    sections = [
        UPlaneSection.from_samples(0, 0, samples) for _ in range(4)
    ]

    def merge():
        ctx = ActionContext(PacketCache())
        return ctx.merge_iq(sections)

    benchmark(merge)


def test_aligned_prb_copy(benchmark, samples):
    """RU sharing's aligned path: a byte-range copy, no codec."""
    source = UPlaneSection.from_samples(0, 0, samples[:106])
    dest = UPlaneSection.from_samples(
        0, 0, np.zeros((273, 24), dtype=np.int16)
    )

    def copy():
        ctx = ActionContext(PacketCache())
        return ctx.copy_prbs(source, dest, 0, 100, 106, aligned=True)

    benchmark(copy)


def test_misaligned_prb_copy(benchmark, samples):
    """RU sharing's misaligned path: decompress + move + recompress."""
    source = UPlaneSection.from_samples(0, 0, samples[:106])
    dest = UPlaneSection.from_samples(
        0, 0, np.zeros((273, 24), dtype=np.int16)
    )

    def copy():
        ctx = ActionContext(PacketCache())
        return ctx.copy_prbs(source, dest, 0, 100, 106, aligned=False)

    benchmark(copy)


def test_full_packet_roundtrip(benchmark, samples, du_mac=None):
    """Serialize + parse one full-band U-plane frame (the per-packet
    overhead every pass-through middlebox pays in this implementation)."""
    from repro.fronthaul.cplane import Direction
    from repro.fronthaul.ethernet import MacAddress
    from repro.fronthaul.packet import make_packet, parse_packet
    from repro.fronthaul.timing import SymbolTime
    from repro.fronthaul.uplane import UPlaneMessage

    section = UPlaneSection.from_samples(0, 0, samples)
    packet = make_packet(
        MacAddress.from_int(1), MacAddress.from_int(2),
        UPlaneMessage(direction=Direction.DOWNLINK,
                      time=SymbolTime(0, 0, 0, 0), sections=[section]),
    )
    wire_bytes = packet.pack()
    benchmark(parse_packet, wire_bytes, N_PRB)
