"""Micro-benchmarks: real Python cost of the heavyweight A4 operations.

The latency *model* (Figure 15b) represents the paper's C/DPDK
implementation; these benches measure what the same operations cost in
this Python implementation and verify the model's *relative* ordering
(exponent read << decompress < merge).

Since the vectorization PR, the wire codec is array-at-a-time; the
``test_speedup_*`` benches here compare it against the seed's per-PRB
reference implementation (kept below, verbatim) and assert the speedup
floor (>=5x codec, >=3x merge).  Results are recorded machine-readably in
``BENCH_1.json`` via :func:`_harness.record_bench`.
"""

import time

import numpy as np
import pytest

from _harness import record_bench

from repro.core.actions import ActionContext, PacketCache
from repro.fronthaul.compression import (
    BfpCompressor,
    _pack_bits,
    _sign_extend,
    _unpack_bits,
    clear_codec_memo,
)
from repro.fronthaul.uplane import UPlaneSection

N_PRB = 273  # one full-band 100 MHz symbol


# -- seed reference implementation (per-PRB loops), the speedup baseline ----


def _reference_compress(compressor: BfpCompressor, samples: np.ndarray) -> bytes:
    """The seed's per-PRB compress loop, kept verbatim as the baseline."""
    exponents, mantissas = compressor.compress_array(samples)
    width = compressor.config.iq_width
    mask = (1 << width) - 1
    out = bytearray()
    unsigned = (mantissas & mask).astype(np.uint32)
    for prb_index in range(unsigned.shape[0]):
        out.append(int(exponents[prb_index]) & 0x0F)
        out.extend(_pack_bits(unsigned[prb_index], width))
    return bytes(out)


def _reference_parse_wire(compressor: BfpCompressor, payload: bytes, n_prbs: int):
    """The seed's per-PRB parse loop, kept verbatim as the baseline."""
    width = compressor.config.iq_width
    prb_bytes = compressor.config.prb_payload_bytes()
    exponents = np.empty(n_prbs, dtype=np.uint8)
    mantissas = np.empty((n_prbs, 24), dtype=np.int64)
    for prb_index in range(n_prbs):
        offset = prb_index * prb_bytes
        exponents[prb_index] = payload[offset] & 0x0F
        packed = payload[offset + 1 : offset + prb_bytes]
        unsigned = _unpack_bits(packed, 24, width)
        mantissas[prb_index] = _sign_extend(unsigned, width)
    return exponents, mantissas


def _reference_merge(sections) -> UPlaneSection:
    """The seed's merge: one decompress round-trip per operand."""
    first = sections[0]
    compressor = BfpCompressor(first.compression)
    total = np.zeros((first.num_prb, 24), dtype=np.int64)
    for section in sections:
        exponents, mantissas = _reference_parse_wire(
            compressor, section.payload_bytes(), section.num_prb
        )
        total += compressor.decompress_array(exponents, mantissas)
    merged = np.clip(total, -32768, 32767).astype(np.int16)
    return UPlaneSection.from_samples(
        section_id=first.section_id,
        start_prb=first.start_prb,
        samples=merged,
        compression=first.compression,
    )


def _best_of(fn, *args, repeats=15, cold=False):
    """Best-of-N wall time; ``cold=True`` clears the codec memo per run."""
    fn(*args)  # warm up allocators / JIT-able caches
    best = float("inf")
    for _ in range(repeats):
        if cold:
            clear_codec_memo()
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


# -- fixtures ---------------------------------------------------------------


@pytest.fixture(scope="module")
def samples():
    rng = np.random.default_rng(0)
    return rng.integers(-20000, 20000, size=(N_PRB, 24)).astype(np.int16)


@pytest.fixture(scope="module")
def wire(samples):
    return BfpCompressor().compress(samples)


# -- pytest-benchmark latency benches ---------------------------------------


def test_bfp_compress_full_band(benchmark, samples):
    compressor = BfpCompressor()
    benchmark(compressor.compress, samples)


def test_bfp_decompress_full_band(benchmark, wire):
    compressor = BfpCompressor()
    benchmark(compressor.decompress, wire, N_PRB)


def test_exponent_read_full_band(benchmark, wire):
    """Algorithm 1's fast path: exponents without decompression."""
    compressor = BfpCompressor()
    benchmark(compressor.read_exponents, wire, N_PRB)


def test_exponent_read_much_cheaper_than_decompress(samples, wire):
    compressor = BfpCompressor()
    clear_codec_memo()
    read = _best_of(compressor.read_exponents, wire, N_PRB)
    decompress = _best_of(compressor.decompress, wire, N_PRB, cold=True)
    assert read * 5 < decompress


def test_iq_merge_4_operands(benchmark, samples):
    """The DAS uplink merge of four RUs (one stacked decompress, one sum,
    one recompress since the vectorization PR)."""
    sections = [
        UPlaneSection.from_samples(0, 0, samples) for _ in range(4)
    ]

    def merge():
        ctx = ActionContext(PacketCache())
        return ctx.merge_iq(sections)

    benchmark(merge)


def test_aligned_prb_copy(benchmark, samples):
    """RU sharing's aligned path: a byte-range copy, no codec."""
    source = UPlaneSection.from_samples(0, 0, samples[:106])
    dest = UPlaneSection.from_samples(
        0, 0, np.zeros((273, 24), dtype=np.int16)
    )

    def copy():
        ctx = ActionContext(PacketCache())
        return ctx.copy_prbs(source, dest, 0, 100, 106, aligned=True)

    benchmark(copy)


def test_misaligned_prb_copy(benchmark, samples):
    """RU sharing's misaligned path: decompress + move + recompress."""
    source = UPlaneSection.from_samples(0, 0, samples[:106])
    dest = UPlaneSection.from_samples(
        0, 0, np.zeros((273, 24), dtype=np.int16)
    )

    def copy():
        ctx = ActionContext(PacketCache())
        return ctx.copy_prbs(source, dest, 0, 100, 106, aligned=False)

    benchmark(copy)


def test_full_packet_roundtrip(benchmark, samples, du_mac=None):
    """Serialize + parse one full-band U-plane frame (the per-packet
    overhead every pass-through middlebox pays in this implementation)."""
    from repro.fronthaul.cplane import Direction
    from repro.fronthaul.ethernet import MacAddress
    from repro.fronthaul.packet import make_packet, parse_packet
    from repro.fronthaul.timing import SymbolTime
    from repro.fronthaul.uplane import UPlaneMessage

    section = UPlaneSection.from_samples(0, 0, samples)
    packet = make_packet(
        MacAddress.from_int(1), MacAddress.from_int(2),
        UPlaneMessage(direction=Direction.DOWNLINK,
                      time=SymbolTime(0, 0, 0, 0), sections=[section]),
    )
    wire_bytes = packet.pack()
    benchmark(parse_packet, wire_bytes, N_PRB)


def test_replicate_to_5_rus(benchmark, samples):
    """DAS downlink fan-out: clone + re-serialize one symbol for 5 RUs.

    The zero-copy pack path means the clones reuse the original payload
    bytes instead of re-running the codec per copy."""
    from repro.fronthaul.cplane import Direction
    from repro.fronthaul.ethernet import MacAddress
    from repro.fronthaul.packet import make_packet
    from repro.fronthaul.timing import SymbolTime
    from repro.fronthaul.uplane import UPlaneMessage

    section = UPlaneSection.from_samples(0, 0, samples)
    packet = make_packet(
        MacAddress.from_int(1), MacAddress.from_int(2),
        UPlaneMessage(direction=Direction.DOWNLINK,
                      time=SymbolTime(0, 0, 0, 0), sections=[section]),
    )

    def fan_out():
        ctx = ActionContext(PacketCache())
        copies = ctx.replicate(packet, 4)
        return [p.pack() for p in [packet] + copies]

    benchmark(fan_out)


# -- speedup floors vs the seed implementation (recorded in BENCH_1.json) ---


def test_speedup_full_band_compress(samples):
    """Vectorized compress must be >=5x the seed per-PRB loop."""
    compressor = BfpCompressor()
    reference = _best_of(_reference_compress, compressor, samples)
    optimized = _best_of(compressor.compress, samples, cold=True)
    assert _reference_compress(compressor, samples) == compressor.compress(
        samples
    ), "optimized compress must be byte-identical to the seed"
    speedup = reference / optimized
    record_bench(
        "bfp_compress_full_band",
        {
            "n_prbs": N_PRB,
            "reference_s": reference,
            "optimized_s": optimized,
            "speedup": speedup,
            "floor": 5.0,
        },
    )
    assert speedup >= 5.0, f"compress speedup {speedup:.1f}x below 5x floor"


def test_speedup_full_band_parse(samples, wire):
    """Vectorized parse must be >=5x the seed per-PRB loop."""
    compressor = BfpCompressor()
    reference = _best_of(_reference_parse_wire, compressor, wire, N_PRB)
    optimized = _best_of(compressor.parse_wire, wire, N_PRB, cold=True)
    ref_exp, ref_mant = _reference_parse_wire(compressor, wire, N_PRB)
    opt_exp, opt_mant = compressor.parse_wire(wire, N_PRB)
    assert (ref_exp == opt_exp).all() and (ref_mant == opt_mant).all()
    speedup = reference / optimized
    record_bench(
        "bfp_parse_full_band",
        {
            "n_prbs": N_PRB,
            "reference_s": reference,
            "optimized_s": optimized,
            "speedup": speedup,
            "floor": 5.0,
        },
    )
    assert speedup >= 5.0, f"parse speedup {speedup:.1f}x below 5x floor"


def test_speedup_iq_merge_4_operands(samples):
    """Batched 4-RU merge must be >=3x the seed per-section round-trips."""
    rng = np.random.default_rng(7)
    sections = [
        UPlaneSection.from_samples(
            0, 0,
            rng.integers(-8000, 8000, size=(N_PRB, 24)).astype(np.int16),
        )
        for _ in range(4)
    ]

    def optimized_merge():
        return ActionContext(PacketCache()).merge_iq(sections)

    reference = _best_of(_reference_merge, sections)
    optimized = _best_of(optimized_merge, cold=True)
    assert (
        _reference_merge(sections).payload_bytes()
        == optimized_merge().payload_bytes()
    ), "batched merge must be byte-identical to the seed merge"
    speedup = reference / optimized
    record_bench(
        "iq_merge_4_operands",
        {
            "n_prbs": N_PRB,
            "n_operands": 4,
            "reference_s": reference,
            "optimized_s": optimized,
            "speedup": speedup,
            "floor": 3.0,
        },
    )
    assert speedup >= 3.0, f"merge speedup {speedup:.1f}x below 3x floor"


def test_record_replicate_bench(samples):
    """Record the replicate-to-5 fan-out cost (no floor; trajectory only)."""
    from repro.fronthaul.cplane import Direction
    from repro.fronthaul.ethernet import MacAddress
    from repro.fronthaul.packet import make_packet, parse_packet
    from repro.fronthaul.timing import SymbolTime
    from repro.fronthaul.uplane import UPlaneMessage

    section = UPlaneSection.from_samples(0, 0, samples)
    packet = make_packet(
        MacAddress.from_int(1), MacAddress.from_int(2),
        UPlaneMessage(direction=Direction.DOWNLINK,
                      time=SymbolTime(0, 0, 0, 0), sections=[section]),
    )
    wire_bytes = packet.pack()

    def fan_out():
        ctx = ActionContext(PacketCache())
        copies = ctx.replicate(packet, 4)
        return [p.pack() for p in [packet] + copies]

    record_bench(
        "replicate_to_5_rus",
        {
            "n_prbs": N_PRB,
            "fan_out_s": _best_of(fan_out),
            "parse_full_packet_s": _best_of(parse_packet, wire_bytes, N_PRB),
        },
    )
