"""Observability overhead: the disabled flight recorder must be ~free.

The instrumentation PR's contract is that with observability *disabled*
(the default), ``Middlebox.process`` pays one attribute read per packet
over the seed implementation.  This bench keeps the seed's ``process``
body verbatim as the baseline, times both on the same C-plane burst, and
pins the ratio.  The *enabled* cost (metrics every packet, spans
sampled) is also measured and reported for the record — it is allowed to
be expensive; it just has to be opt-in.

Results land in ``BENCH_1.json`` (machine-readable) and
``benchmarks/output/obs_overhead.txt`` (the CI artifact).

The streaming-telemetry PR adds a second, scenario-level bench on an
8-cell run with the whole plane on (metrics, sampled spans, deadline
accounts, conformance, SLOs).  Two floors: an ObsSpec present but
disabled must be ~1.0x the no-obs run, and *enabling streaming* — the
per-epoch drain/snapshot/ship/fold this PR adds — must stay under
1.25x the same plane collected once at the end of the run.  The full
plane's cost against the no-obs baseline is recorded alongside for the
record.  Those numbers land in ``BENCH_7.json``.
"""

import dataclasses
import gc
import statistics
import time

from _harness import REPO_ROOT, record_bench, report

from repro.core.actions import ActionContext
from repro.core.middlebox import Middlebox, ProcessedPacket, classify
from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection, Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import SymbolTime
from repro.eval.scale import bench_spec
from repro.obs import Observability
from repro.obs.slo import default_slos
from repro.scale import Scenario
from repro.scale.spec import ObsSpec

N_PACKETS = 400
REPEATS = 15
#: The disabled-path allowance: process() is dominated by handler and
#: accounting work shared with the seed, so the enable-check must drown
#: in run-to-run noise well before this bound.
MAX_DISABLED_RATIO = 1.25


class SeedMiddlebox(Middlebox):
    """The seed's ``process`` body, kept verbatim as the baseline."""

    def process(self, packet) -> ProcessedPacket:
        wire_bytes = packet.wire_size
        self.stats.rx_packets += 1
        self.stats.rx_bytes += wire_bytes
        ctx = ActionContext(self.cache, self.cost_model)
        if packet.is_cplane:
            self.on_cplane(ctx, packet)
        else:
            self.on_uplane(ctx, packet)
        if not ctx.emissions:
            self.stats.dropped_packets += 1
        self.stats.account_tx(ctx.emissions)
        self.stats.processing_ns_total += ctx.trace.total_ns()
        traffic_class = classify(packet)
        self.traces.append(ctx.trace)
        self.trace_wire_bytes.append(wire_bytes)
        self.traces_by_class.setdefault(traffic_class, []).append(ctx.trace)
        return ProcessedPacket(
            emissions=ctx.emissions, trace=ctx.trace,
            traffic_class=traffic_class,
        )


def _burst():
    src, dst = MacAddress.from_int(1), MacAddress.from_int(2)
    return [
        make_packet(
            src, dst,
            CPlaneMessage(
                direction=Direction.DOWNLINK,
                time=SymbolTime(0, 0, 0, symbol % 14),
                sections=[CPlaneSection(0, 0, 50)],
            ),
            seq_id=symbol % 256,
        )
        for symbol in range(N_PACKETS)
    ]


def _best_burst_seconds(box: Middlebox) -> float:
    packets = _burst()
    box.process_burst(packets)  # warm up
    best = float("inf")
    for _ in range(REPEATS):
        box.reset_traces()
        box.traces_by_class.clear()
        start = time.perf_counter()
        for packet in packets:
            box.process(packet)
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_observability_overhead():
    seed_s = _best_burst_seconds(SeedMiddlebox())
    disabled_s = _best_burst_seconds(Middlebox())
    enabled_s = _best_burst_seconds(
        Middlebox(obs=Observability(enabled=True, sample_every=16))
    )
    per_packet_ns = lambda total_s: total_s / N_PACKETS * 1e9  # noqa: E731
    ratio = disabled_s / seed_s
    enabled_ratio = enabled_s / seed_s
    record_bench(
        "obs_overhead",
        {
            "n_packets": N_PACKETS,
            "seed_per_packet_ns": round(per_packet_ns(seed_s), 1),
            "disabled_per_packet_ns": round(per_packet_ns(disabled_s), 1),
            "enabled_per_packet_ns": round(per_packet_ns(enabled_s), 1),
            "disabled_ratio": round(ratio, 3),
            "enabled_ratio": round(enabled_ratio, 3),
        },
    )
    report(
        "obs_overhead",
        "\n".join(
            [
                "observability overhead (per-packet process(), best of "
                f"{REPEATS} x {N_PACKETS}-packet bursts)",
                f"  seed (pre-instrumentation)  {per_packet_ns(seed_s):8.0f} ns",
                f"  instrumented, obs disabled  {per_packet_ns(disabled_s):8.0f} ns"
                f"  ({ratio:.2f}x seed)",
                f"  instrumented, obs enabled   {per_packet_ns(enabled_s):8.0f} ns"
                f"  ({enabled_ratio:.2f}x seed, 1-in-16 span sampling)",
            ]
        ),
    )
    assert ratio < MAX_DISABLED_RATIO, (
        f"disabled observability costs {ratio:.2f}x the seed process() "
        f"(allowed < {MAX_DISABLED_RATIO}x)"
    )


# -- scenario-level streaming overhead (BENCH_7) ------------------------------

STREAM_SLOTS = 16
STREAM_EPOCH_SLOTS = 4
STREAM_ROUNDS = 9
#: Re-measure up to this many times before declaring the floor broken.
#: A genuinely-over-budget telemetry plane fails every attempt; a noisy
#: neighbour on a shared host does not.
STREAM_ATTEMPTS = 3
#: What *enabling streaming* may cost: the full plane (metrics, spans,
#: deadline accounts, conformance, SLOs) with per-epoch shipping and
#: live folding on, against the identical plane collected only at the
#: end of the run.  The per-feature costs of the plane itself were each
#: pinned when they landed (BENCH_1 pins the per-packet path); this
#: floor pins what this layer adds — drain/snapshot/fold every epoch.
MAX_STREAMING_RATIO = 1.25
#: An ObsSpec present but disabled: the epoch grid still runs, the
#: telemetry plane does nothing.  "~1.0x" with a noise allowance.
MAX_DISABLED_SCENARIO_RATIO = 1.15


def _measure_scenario_ratios(specs) -> tuple:
    """One measurement attempt: per-spec CPU ms + overhead ratios.

    CPU time (``process_time``) rather than wall time: these runs are
    single-process and CPU-bound, so scheduler interference from a busy
    host inflates wall clocks without touching the quantity the floor is
    about.  Each round runs every spec back-to-back (ABCABC... rather
    than AAABBBCCC) and contributes one *paired* ratio against the
    baseline spec, so machine drift — frequency scaling, a neighbour
    waking up — hits both sides of each ratio roughly equally; the
    median over rounds then discards the rounds it hit anyway.

    Returns ``(median ms per spec, ratio-vs-spec[0] per spec)``.
    """
    for spec in specs:  # warm up (imports, allocator)
        Scenario(spec).run(workers=1)
    rounds = []
    for _ in range(STREAM_ROUNDS):
        row = []
        for spec in specs:
            gc.collect()  # every spec starts from the same heap state
            start = time.process_time()
            Scenario(spec).run(workers=1)
            row.append(time.process_time() - start)
        rounds.append(row)
    medians = [
        statistics.median(row[i] for row in rounds) for i in range(len(specs))
    ]
    ratios = [
        statistics.median(row[i] / row[0] for row in rounds)
        for i in range(len(specs))
    ]
    return medians, ratios


def test_streaming_telemetry_scenario_overhead():
    baseline_spec = dataclasses.replace(
        bench_spec(STREAM_SLOTS),
        name="obs-overhead-baseline",
        epoch_slots=STREAM_EPOCH_SLOTS,
    )
    disabled_spec = dataclasses.replace(
        baseline_spec,
        name="obs-overhead-disabled",
        obs=ObsSpec(enabled=False, stream=True),
    )
    plane = dict(
        enabled=True,
        deadline_accounting=True,
        conformance=True,
        slo=tuple(spec.to_dict() for spec in default_slos()),
    )
    collected_spec = dataclasses.replace(
        baseline_spec,
        name="obs-overhead-collected",
        obs=ObsSpec(stream=False, **plane),
    )
    streaming_spec = dataclasses.replace(
        baseline_spec,
        name="obs-overhead-streaming",
        obs=ObsSpec(stream=True, **plane),
    )
    specs = [baseline_spec, disabled_spec, collected_spec, streaming_spec]
    best = None
    for attempt in range(1, STREAM_ATTEMPTS + 1):
        medians, ratios = _measure_scenario_ratios(specs)
        streaming_ratio = ratios[3] / ratios[2]
        if best is None or streaming_ratio < best[2]:
            best = (medians, ratios, streaming_ratio, attempt)
        if ratios[1] < MAX_DISABLED_SCENARIO_RATIO and (
            streaming_ratio < MAX_STREAMING_RATIO
        ):
            break
    medians, ratios, streaming_ratio, attempt = best
    disabled_ratio = ratios[1]
    baseline_s, disabled_s, collected_s, streaming_s = medians
    record_bench(
        "obs_streaming_overhead",
        {
            "cells": 8,
            "slots": STREAM_SLOTS,
            "epoch_slots": STREAM_EPOCH_SLOTS,
            "rounds": STREAM_ROUNDS,
            "attempts": attempt,
            "baseline_ms": round(baseline_s * 1e3, 2),
            "disabled_ms": round(disabled_s * 1e3, 2),
            "collected_ms": round(collected_s * 1e3, 2),
            "streaming_ms": round(streaming_s * 1e3, 2),
            "disabled_ratio": round(disabled_ratio, 3),
            "plane_ratio": round(ratios[3], 3),
            "streaming_ratio": round(streaming_ratio, 3),
        },
        path=REPO_ROOT / "BENCH_7.json",
    )
    report(
        "obs_streaming_overhead",
        "\n".join(
            [
                "streaming telemetry overhead (8-cell scenario, "
                f"{STREAM_SLOTS} slots, median of {STREAM_ROUNDS} paired "
                "rounds)",
                f"  no obs                      {baseline_s * 1e3:8.1f} ms",
                f"  obs present, disabled       {disabled_s * 1e3:8.1f} ms"
                f"  ({disabled_ratio:.2f}x)",
                f"  full plane, collect at end  {collected_s * 1e3:8.1f} ms"
                f"  ({ratios[2]:.2f}x)",
                f"  full plane, streaming       {streaming_s * 1e3:8.1f} ms"
                f"  ({ratios[3]:.2f}x; {streaming_ratio:.2f}x the "
                "collect-at-end plane)",
            ]
        ),
    )
    assert disabled_ratio < MAX_DISABLED_SCENARIO_RATIO, (
        f"disabled telemetry plane costs {disabled_ratio:.2f}x the no-obs "
        f"run (allowed < {MAX_DISABLED_SCENARIO_RATIO}x) in each of "
        f"{attempt} attempts"
    )
    assert streaming_ratio < MAX_STREAMING_RATIO, (
        f"enabling per-epoch streaming costs {streaming_ratio:.2f}x the "
        f"collect-at-end plane (allowed < {MAX_STREAMING_RATIO}x) in each "
        f"of {attempt} attempts"
    )
