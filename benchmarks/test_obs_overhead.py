"""Observability overhead: the disabled flight recorder must be ~free.

The instrumentation PR's contract is that with observability *disabled*
(the default), ``Middlebox.process`` pays one attribute read per packet
over the seed implementation.  This bench keeps the seed's ``process``
body verbatim as the baseline, times both on the same C-plane burst, and
pins the ratio.  The *enabled* cost (metrics every packet, spans
sampled) is also measured and reported for the record — it is allowed to
be expensive; it just has to be opt-in.

Results land in ``BENCH_1.json`` (machine-readable) and
``benchmarks/output/obs_overhead.txt`` (the CI artifact).
"""

import time

from _harness import record_bench, report

from repro.core.actions import ActionContext
from repro.core.middlebox import Middlebox, ProcessedPacket, classify
from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection, Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import SymbolTime
from repro.obs import Observability

N_PACKETS = 400
REPEATS = 15
#: The disabled-path allowance: process() is dominated by handler and
#: accounting work shared with the seed, so the enable-check must drown
#: in run-to-run noise well before this bound.
MAX_DISABLED_RATIO = 1.25


class SeedMiddlebox(Middlebox):
    """The seed's ``process`` body, kept verbatim as the baseline."""

    def process(self, packet) -> ProcessedPacket:
        wire_bytes = packet.wire_size
        self.stats.rx_packets += 1
        self.stats.rx_bytes += wire_bytes
        ctx = ActionContext(self.cache, self.cost_model)
        if packet.is_cplane:
            self.on_cplane(ctx, packet)
        else:
            self.on_uplane(ctx, packet)
        if not ctx.emissions:
            self.stats.dropped_packets += 1
        self.stats.account_tx(ctx.emissions)
        self.stats.processing_ns_total += ctx.trace.total_ns()
        traffic_class = classify(packet)
        self.traces.append(ctx.trace)
        self.trace_wire_bytes.append(wire_bytes)
        self.traces_by_class.setdefault(traffic_class, []).append(ctx.trace)
        return ProcessedPacket(
            emissions=ctx.emissions, trace=ctx.trace,
            traffic_class=traffic_class,
        )


def _burst():
    src, dst = MacAddress.from_int(1), MacAddress.from_int(2)
    return [
        make_packet(
            src, dst,
            CPlaneMessage(
                direction=Direction.DOWNLINK,
                time=SymbolTime(0, 0, 0, symbol % 14),
                sections=[CPlaneSection(0, 0, 50)],
            ),
            seq_id=symbol % 256,
        )
        for symbol in range(N_PACKETS)
    ]


def _best_burst_seconds(box: Middlebox) -> float:
    packets = _burst()
    box.process_burst(packets)  # warm up
    best = float("inf")
    for _ in range(REPEATS):
        box.reset_traces()
        box.traces_by_class.clear()
        start = time.perf_counter()
        for packet in packets:
            box.process(packet)
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_observability_overhead():
    seed_s = _best_burst_seconds(SeedMiddlebox())
    disabled_s = _best_burst_seconds(Middlebox())
    enabled_s = _best_burst_seconds(
        Middlebox(obs=Observability(enabled=True, sample_every=16))
    )
    per_packet_ns = lambda total_s: total_s / N_PACKETS * 1e9  # noqa: E731
    ratio = disabled_s / seed_s
    enabled_ratio = enabled_s / seed_s
    record_bench(
        "obs_overhead",
        {
            "n_packets": N_PACKETS,
            "seed_per_packet_ns": round(per_packet_ns(seed_s), 1),
            "disabled_per_packet_ns": round(per_packet_ns(disabled_s), 1),
            "enabled_per_packet_ns": round(per_packet_ns(enabled_s), 1),
            "disabled_ratio": round(ratio, 3),
            "enabled_ratio": round(enabled_ratio, 3),
        },
    )
    report(
        "obs_overhead",
        "\n".join(
            [
                "observability overhead (per-packet process(), best of "
                f"{REPEATS} x {N_PACKETS}-packet bursts)",
                f"  seed (pre-instrumentation)  {per_packet_ns(seed_s):8.0f} ns",
                f"  instrumented, obs disabled  {per_packet_ns(disabled_s):8.0f} ns"
                f"  ({ratio:.2f}x seed)",
                f"  instrumented, obs enabled   {per_packet_ns(enabled_s):8.0f} ns"
                f"  ({enabled_ratio:.2f}x seed, 1-in-16 span sampling)",
            ]
        ),
    )
    assert ratio < MAX_DISABLED_RATIO, (
        f"disabled observability costs {ratio:.2f}x the seed process() "
        f"(allowed < {MAX_DISABLED_RATIO}x)"
    )
