"""Ablation: RU sharing's numPrb widening vs an exact C-plane merge.

Section 4.3 chooses to widen the first C-plane request to the RU's full
spectrum instead of waiting to merge all DUs' requests, trading fronthaul
bandwidth for robustness against DUs that send no C-plane (no traffic).
This bench quantifies both sides:

- extra uplink fronthaul bytes of full-spectrum responses, and
- the symbols an exact-merge design loses when a DU is idle (it must
  either stall or time out waiting for a request that never comes).
"""

from _harness import report

from repro.eval.report import format_table
from repro.fronthaul.compression import CompressionConfig


def analyze(du_activity=(1.0, 0.75, 0.5, 0.25), n_dus=2, ru_prbs=273,
            du_prbs=106, ul_symbols_per_second=5_143):
    prb_bytes = CompressionConfig().prb_payload_bytes()
    rows = []
    for activity in du_activity:
        # Widening: the RU always returns its full spectrum per requested
        # symbol; any DU's request triggers it.
        p_any = 1 - (1 - activity) ** n_dus
        widened_bytes = p_any * ru_prbs * prb_bytes * ul_symbols_per_second
        # Exact: only requested slices return, but the merge must wait for
        # all active DUs; symbols where only some DUs requested are late
        # or dropped under an exact-merge-with-deadline design.
        exact_bytes = (
            activity * n_dus * du_prbs * prb_bytes * ul_symbols_per_second
        )
        p_partial = p_any - activity**n_dus
        rows.append(
            (
                activity,
                round(widened_bytes * 8 / 1e9, 2),
                round(exact_bytes * 8 / 1e9, 2),
                round(p_partial * 100, 1),
            )
        )
    return rows


def test_ablation_sharing(benchmark):
    rows = benchmark.pedantic(analyze, rounds=1, iterations=1)
    text = format_table(
        "Ablation: numPrb widening vs exact C-plane merge (per UL port)",
        ("DU activity", "widened Gbps", "exact Gbps", "symbols at risk %"),
        rows,
    )
    report("ablation_sharing", text)
    # Widening costs more bandwidth at low activity ...
    low = rows[-1]
    assert low[1] > low[2]
    # ... but the exact design risks a significant share of symbols
    # whenever DUs are not all active together.
    assert low[3] > 20.0
    # At full activity the bandwidth gap narrows to the slice overhead.
    full = rows[0]
    assert full[1] / max(full[2], 1e-9) < 1.4
