"""Benchmark: Figure 16 — DPDK vs XDP CPU utilization."""

from _harness import report

from repro.eval.fig16 import run_fig16


def test_fig16_dpdk_xdp(benchmark):
    result = benchmark.pedantic(
        run_fig16, kwargs=dict(n_slots=40), rounds=1, iterations=1
    )
    report("fig16", result.format())
    for app in ("das", "dmimo"):
        assert result.dpdk[app]["Traffic"] == 1.0
        assert (
            result.xdp[app]["Idle"]
            < result.xdp[app]["UE Attached"]
            < result.xdp[app]["Traffic"]
        )
    gap = result.xdp["das"]["Traffic"] - result.xdp["dmimo"]["Traffic"]
    assert 0.15 < gap < 0.40  # DAS ~25-30 points above dMIMO
