"""Benchmark: handover-free mobility (Sections 4.1-4.2 motivation).

Not a numbered figure in the paper, but a claim the evaluation leans on:
"handover-free mobility" is one of dMIMO's listed benefits and the O2
deployment of Figure 11 implicitly pays handovers the DAS avoids.
"""

from _harness import report

from repro.eval.mobility import run_mobility


def test_mobility(benchmark):
    result = benchmark.pedantic(run_mobility, rounds=1, iterations=1)
    report("mobility", result.format())
    assert result.multi_cell.handovers >= 3  # one per RU boundary lap
    assert result.das.handovers == 0
    assert result.dmimo.handovers == 0
    assert result.multi_cell.interruption_ms_total > 100
