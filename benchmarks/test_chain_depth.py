"""Benchmark: SR-IOV chain depth vs fronthaul load (Section 5).

"The total number of middleboxes that can be chained ... is constrained
by the PCIe throughput" — this bench sweeps cell configurations and
reports how many middleboxes one NIC sustains, plus the added chain
latency against the slot deadline.
"""

from _harness import report

from repro.core.latency import DEFAULT_COST_MODEL
from repro.eval.fig15 import SLOT_BUDGET_NS, uplane_wire_bytes
from repro.eval.report import format_table
from repro.fronthaul.timing import SYMBOLS_PER_SLOT
from repro.net.nic import Nic
from repro.ran.cell import CellConfig


def analyze():
    nic = Nic()
    rows = []
    for bandwidth_mhz, n_rus in ((40, 2), (40, 4), (100, 2), (100, 4),
                                 (100, 6)):
        cell = CellConfig(pci=1, bandwidth_hz=bandwidth_mhz * 1_000_000)
        frame = uplane_wire_bytes(cell.num_prb)
        symbols_per_second = cell.numerology.slots_per_second * SYMBOLS_PER_SLOT
        # Fronthaul load of the DAS deployment: per-port streams to every RU.
        gbps = (
            frame * 8 * symbols_per_second * cell.n_antennas * n_rus / 1e9
        )
        depth = nic.max_chain_depth(gbps)
        # Added one-way latency of a depth-2 chain (forward per hop).
        hop_ns = DEFAULT_COST_MODEL.forward_ns + frame * 8 / nic.port_gbps
        rows.append(
            (
                f"{bandwidth_mhz}MHz x {n_rus} RUs",
                round(gbps, 1),
                depth,
                round(2 * hop_ns),
            )
        )
    return rows


def test_chain_depth(benchmark):
    rows = benchmark.pedantic(analyze, rounds=1, iterations=1)
    text = format_table(
        "Section 5: PCIe-bounded middlebox chain depth per NIC",
        ("deployment", "fronthaul Gbps", "max chain depth", "2-hop ns"),
        rows,
    )
    report("chain_depth", text)
    by_name = {row[0]: row for row in rows}
    # Small cells leave room for deep chains; 100 MHz DAS at scale leaves
    # only a couple of hops, and latency stays well under the deadline.
    assert by_name["40MHz x 2 RUs"][2] >= 8
    assert by_name["100MHz x 6 RUs"][2] <= 4
    for row in rows:
        assert row[3] < SLOT_BUDGET_NS
