"""Benchmark: Figure 10a — DAS correctness (single cell vs 5-RU DAS)."""

from _harness import report

from repro.eval.fig10 import run_fig10a


def test_fig10a_das(benchmark):
    result = benchmark.pedantic(run_fig10a, rounds=1, iterations=1)
    report("fig10a", result.format())
    # Headline claims: DAS matches the baseline, upper floors only attach
    # with DAS.
    assert abs(
        result.das_simultaneous_dl_mbps - result.baseline_dl_mbps
    ) < 0.05 * result.baseline_dl_mbps
    assert result.upper_floor_attach_failures == 4
