"""Benchmark: Figure 13 — swapping DAS for dMIMO over 4x1-antenna RUs."""

import numpy as np
from _harness import report

from repro.eval.fig13 import run_fig13


def test_fig13_upgrade(benchmark):
    result = benchmark.pedantic(
        run_fig13, kwargs=dict(step_m=2.0), rounds=1, iterations=1
    )
    report("fig13", result.format())
    factors = np.array(result.improvement_factors())
    assert factors.min() > 1.4
    assert 2.0 < factors.mean() < 3.2  # "a factor of 2 or 3"
