"""Benchmark: Figure 14 — power vs throughput of deployment options."""

import numpy as np
from _harness import report

from repro.eval.fig14 import run_fig14


def test_fig14_power(benchmark):
    result = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    report("fig14", result.format())
    assert 350 < result.per_floor_cells.power_w < 430  # ~400 W
    assert 160 < result.single_cell_chain.power_w < 210  # ~180 W
    assert np.mean(result.per_floor_cells.per_floor_dl_mbps) > 500
    assert np.mean(result.single_cell_chain.per_floor_peak_mbps) > 500
