"""Microbench: per-epoch IPC cost, pipe pickling vs shared-memory views.

Isolates what the scale-out pool's transport change actually buys: the
same worker-to-coordinator payload (a packet-batch-shaped epoch result
with raw IQ arrays) delivered N times either as one pipe pickle (the
PR 4 path: serialize, kernel-copy through the pipe, copy again, load)
or through a :class:`~repro.scale.arena.SharedArena` ring where only a
``(offset, nbytes, watermark)`` descriptor crosses the pipe and the
coordinator reads the bytes in place.

Two payload sizes bracket the crossover: at ~100 KiB the pipe's pure-C
pickling beats the arena's Python-level framing, while at ~800 KiB the
arena's single copy wins severalfold over the pipe's four — which is
why the pool keeps the pipe as the *fallback* and the arena as the bulk
path.  Both paths run against a real forked child, so the numbers
include the context switches a worker round-trip pays; per-epoch
**medians** keep one preempted epoch on a loaded CI box from swamping
the comparison.  The recorded numbers land in ``BENCH_6.json``.
"""

import statistics
import time

import numpy as np
from _harness import REPO_ROOT, record_bench, report

from repro.eval.report import format_table
from repro.scale.arena import (
    SharedArena,
    payload_watermark,
    read_payload,
    write_payload,
)

EPOCHS = 50
PRBS = 273
#: (label, sections): ~100 KiB of IQ and ~800 KiB of IQ per epoch.
SIZES = (("small", 8), ("large", 64))
RING_BYTES = 8 * 1024 * 1024
#: The zero-copy claim must hold where it matters: big payloads.
LARGE_SPEEDUP_FLOOR = 1.5


def _payload(sections):
    """One epoch's worth of results: IQ grids plus plain-data trimmings."""
    rng = np.random.default_rng(7)
    return [
        {
            "eaxc": index % 8,
            "seq": index,
            "start_prb": 0,
            "iq": rng.integers(
                -20000, 20000, size=(PRBS, 24)
            ).astype(np.int16),
            "counters": {"uplane_rx": 13 * index, "cplane_rx": index},
        }
        for index in range(sections)
    ]


def _pipe_child(conn, sections):
    payload = _payload(sections)
    while True:
        command = conn.recv()
        if command == "exit":
            break
        conn.send(payload)  # one big pickle through the pipe
    conn.close()


def _arena_child(conn, arena_name, ring_bytes, sections):
    arena = SharedArena.attach(arena_name, 1, ring_bytes)
    ring = arena.ring(0)
    payload = _payload(sections)
    while True:
        command = conn.recv()
        if command == "exit":
            break
        ring.release_until(command[1])  # coordinator's ack watermark
        conn.send(write_payload(ring, payload))  # descriptor only
    arena.close()
    conn.close()


def _fork(target, *args):
    import multiprocessing

    context = multiprocessing.get_context("fork")
    parent, child = context.Pipe()
    process = context.Process(
        target=target, args=(child, *args), daemon=True
    )
    process.start()
    child.close()
    return parent, process


def _stop(conn, process):
    conn.send("exit")
    process.join(timeout=10)
    conn.close()


def _measure_pipe(sections, epochs):
    reference = _payload(sections)
    conn, process = _fork(_pipe_child, sections)
    conn.send("go")  # warm-up round trip outside the timed window
    first = conn.recv()
    laps = []
    for _ in range(epochs):
        started = time.perf_counter()
        conn.send("go")
        conn.recv()
        laps.append((time.perf_counter() - started) * 1e6)
    _stop(conn, process)
    np.testing.assert_array_equal(first[0]["iq"], reference[0]["iq"])
    return laps


def _measure_arena(sections, epochs):
    reference = _payload(sections)
    arena = SharedArena.create(workers=1, bytes_per_worker=RING_BYTES)
    try:
        ring = arena.ring(0)
        conn, process = _fork(_arena_child, arena.name, RING_BYTES, sections)
        acked = 0
        conn.send(("go", acked))  # warm-up
        descriptor = conn.recv()
        restored = read_payload(ring, descriptor)
        np.testing.assert_array_equal(
            restored[0]["iq"], reference[0]["iq"]
        )
        del restored
        acked = payload_watermark(descriptor)
        laps = []
        for _ in range(epochs):
            started = time.perf_counter()
            conn.send(("go", acked))
            descriptor = conn.recv()
            read_payload(ring, descriptor)
            laps.append((time.perf_counter() - started) * 1e6)
            acked = payload_watermark(descriptor)
        _stop(conn, process)
    finally:
        arena.close()
        arena.unlink()
    return laps


def measure(epochs=EPOCHS):
    numbers = {}
    for label, sections in SIZES:
        pipe_median = statistics.median(_measure_pipe(sections, epochs))
        arena_median = statistics.median(_measure_arena(sections, epochs))
        numbers[label] = {
            "payload_kib": round(sections * PRBS * 24 * 2 / 1024, 1),
            "epochs": epochs,
            "pipe_us_per_epoch": pipe_median,
            "arena_us_per_epoch": arena_median,
            "speedup": (
                pipe_median / arena_median if arena_median else 0.0
            ),
        }
    return numbers


def test_scale_ipc(benchmark):
    numbers = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        (
            f"{label} ({entry['payload_kib']:.0f} KiB)",
            f"{entry['pipe_us_per_epoch']:.1f}",
            f"{entry['arena_us_per_epoch']:.1f}",
            f"{entry['speedup']:.2f}x",
        )
        for label, entry in numbers.items()
    ]
    text = format_table(
        f"Epoch IPC round trip, median of {EPOCHS} epochs "
        f"(forked child, {PRBS}-PRB int16 grids)",
        ("payload", "pipe us", "arena us", "speedup"),
        rows,
    )
    report("scale_ipc", text)
    record_bench(
        "scale_ipc_microbench", numbers, path=REPO_ROOT / "BENCH_6.json"
    )
    # Where bulk IQ actually moves, shared memory must beat pickling it
    # through the pipe — even on a 1-core box where both serialize.
    assert numbers["large"]["speedup"] >= LARGE_SPEEDUP_FLOOR
    # Small payloads may favor the pipe's pure-C path; the arena only
    # has to stay in the same league (it is the bulk path, the pool
    # falls back to the pipe when rings are tight).
    assert (
        numbers["small"]["arena_us_per_epoch"]
        < numbers["small"]["pipe_us_per_epoch"] * 4
    )
