"""Benchmark: Figure 10c — PRB utilization estimate vs ground truth."""

from _harness import report

from repro.eval.fig10 import run_fig10c


def test_fig10c_monitor(benchmark):
    result = benchmark.pedantic(
        run_fig10c,
        kwargs=dict(loads_mbps=(0, 100, 200, 300, 400, 500, 600, 700),
                    n_slots=30),
        rounds=1,
        iterations=1,
    )
    report("fig10c", result.format())
    assert result.max_error() < 0.05
