"""Ablation: Algorithm 1's BFP exponent thresholds.

DESIGN.md calls out thr_dl=0 / thr_ul=2 as a design choice.  This bench
sweeps the threshold and reports estimation error against the scheduler
ground truth, showing why the paper's values sit at the sweet spot: too
low counts uplink noise as utilization, too high misses real data.
"""

from _harness import report

from repro.eval.report import format_table


def sweep_thresholds(thresholds=(0, 1, 2, 3, 6, 10), load_mbps=40.0,
                     n_slots=25, seed=3):
    from repro.apps.prb_monitor import PrbMonitorMiddlebox
    from repro.eval.fig10 import run_fig10c

    rows = []
    for threshold in thresholds:
        # Reuse the fig10c harness with a custom UL threshold by patching
        # the monitor after construction via its management interface.
        import repro.eval.fig10 as fig10
        from repro.apps import prb_monitor

        original_init = prb_monitor.PrbMonitorMiddlebox.__init__

        def patched(self, *args, _thr=threshold, **kwargs):
            kwargs["thr_ul"] = _thr
            kwargs["thr_dl"] = min(_thr, 15)
            original_init(self, *args, **kwargs)

        prb_monitor.PrbMonitorMiddlebox.__init__ = patched
        try:
            result = fig10.run_fig10c(loads_mbps=(load_mbps * 10,),
                                      n_slots=n_slots, seed=seed)
        finally:
            prb_monitor.PrbMonitorMiddlebox.__init__ = original_init
        dl_error = abs(
            result.downlink[0].estimated_utilization
            - result.downlink[0].ground_truth_utilization
        )
        ul_error = abs(
            result.uplink[0].estimated_utilization
            - result.uplink[0].ground_truth_utilization
        )
        rows.append((threshold, round(dl_error * 100, 2),
                     round(ul_error * 100, 2)))
    return rows


def test_ablation_thresholds(benchmark):
    rows = benchmark.pedantic(sweep_thresholds, rounds=1, iterations=1)
    text = format_table(
        "Ablation: Algorithm 1 exponent threshold vs estimation error (%)",
        ("threshold", "DL error %", "UL error %"),
        rows,
    )
    report("ablation_thresholds", text)
    by_threshold = {row[0]: row for row in rows}
    # The paper's UL threshold (2) has near-zero error ...
    assert by_threshold[2][2] < 2.0
    # ... while an over-aggressive threshold misses real data.
    assert by_threshold[10][2] > by_threshold[2][2]
    assert by_threshold[10][1] > by_threshold[0][1]
