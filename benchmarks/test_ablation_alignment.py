"""Ablation: aligned vs misaligned PRB sharing (Figure 6).

Appendix A.1.1's center-frequency formula exists so DU PRBs align with
the RU grid and sharing degenerates to byte copies.  This bench measures
the real Python cost of both paths and the modelled per-packet cost,
quantifying what the alignment optimization buys.
"""

import time

import numpy as np
from _harness import report

from repro.core.actions import ActionContext, PacketCache
from repro.core.latency import DEFAULT_COST_MODEL
from repro.eval.report import format_table
from repro.fronthaul.uplane import UPlaneSection


def measure(repeats=30, num_prb=106):
    rng = np.random.default_rng(1)
    samples = rng.integers(-20000, 20000, size=(num_prb, 24)).astype(np.int16)
    source = UPlaneSection.from_samples(0, 0, samples)
    dest = UPlaneSection.from_samples(
        0, 0, np.zeros((273, 24), dtype=np.int16)
    )

    def timed(aligned):
        start = time.perf_counter()
        for _ in range(repeats):
            ctx = ActionContext(PacketCache())
            ctx.copy_prbs(source, dest, 0, 100, num_prb, aligned=aligned)
        return (time.perf_counter() - start) / repeats * 1e6  # us

    model = DEFAULT_COST_MODEL
    return [
        ("aligned", round(timed(True), 1),
         round(model.prb_copy_cost(num_prb, True) / 1000, 2)),
        ("misaligned", round(timed(False), 1),
         round(model.prb_copy_cost(num_prb, False) / 1000, 2)),
    ]


def test_ablation_alignment(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_table(
        "Ablation: aligned vs misaligned PRB copy (106 PRBs)",
        ("path", "python us/copy", "modelled us/copy (C)"),
        rows,
    )
    report("ablation_alignment", text)
    aligned, misaligned = rows
    # Misalignment pays the decompress+recompress codec both in the model
    # and in the measured implementation.
    assert misaligned[1] > 2 * aligned[1]
    assert misaligned[2] > 2 * aligned[2]
