"""Benchmark: Figure 11 — floor-walk O1/O2/O3 comparison."""

from _harness import report

from repro.eval.fig11 import run_fig11


def test_fig11_floorwalk(benchmark):
    result = benchmark.pedantic(
        run_fig11, kwargs=dict(step_m=2.0), rounds=1, iterations=1
    )
    series_text = "\n".join(
        [
            result.format(),
            "",
            "O2 walk series (Mbps): "
            + " ".join(str(int(v)) for v in result.o2.mbps()),
            "O3 walk series (Mbps): "
            + " ".join(str(int(v)) for v in result.o3.mbps()),
        ]
    )
    report("fig11", series_text)
    assert result.o1.mbps().max() < 250
    assert result.o2.mbps().min() < 450  # interference dips
    assert result.o3.mbps().min() > 650  # DAS: ~700 everywhere
