"""Benchmark: Figure 15 — DAS scalability and per-packet latency."""

from _harness import report

from repro.eval.fig15 import run_fig15a, run_fig15b


def test_fig15a_scalability(benchmark):
    result = benchmark.pedantic(run_fig15a, rounds=1, iterations=1)
    report("fig15a", result.format())
    by_rus = {p.n_rus: p for p in result.points}
    assert by_rus[4].cores_required == 1
    assert by_rus[5].cores_required == 2
    assert by_rus[6].egress_gbps < 100  # within the NIC port rate


def test_fig15b_latency(benchmark):
    result = benchmark.pedantic(
        run_fig15b, kwargs=dict(ru_counts=(2, 3, 4), n_slots=5),
        rounds=1, iterations=1,
    )
    report("fig15b", result.format())
    for breakdown in result.breakdowns:
        assert breakdown.percentile("DL U-Plane", 99) < 300
        assert breakdown.percentile("UL U-Plane", 99) > 2_000
