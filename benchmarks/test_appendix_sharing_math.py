"""Benchmark: Appendix A.1 — PRB alignment and PRACH translation math."""

from _harness import report

from repro.eval.appendix import run_sharing_math


def test_appendix_sharing_math(benchmark):
    result = benchmark.pedantic(run_sharing_math, rounds=1, iterations=1)
    report("appendix_a1", result.format())
    assert result.du_offsets_prb == [0.0, 106.0]
    # Both freqOffset derivations agreed inside the runner (asserted there).
    assert result.prach_offsets
