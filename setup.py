"""Legacy setup shim: the offline environment's setuptools predates
PEP 660 editable installs, so ``pip install -e .`` goes through here."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "RANBooster reproduction: fronthaul middleboxes for Open RAN "
        "(SIGCOMM 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
