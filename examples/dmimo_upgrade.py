#!/usr/bin/env python3
"""Flexible upgrade: swap a DAS middlebox for dMIMO (Section 6.3.2).

Four cheap single-antenna RUs cover a floor.  Phase 1 runs them as a DAS
(uniform SISO coverage); phase 2 swaps in the dMIMO middlebox — a pure
software change — turning the same radios into a 4-layer cell and raising
downlink throughput by 2-3x depending on location (Figure 13).

Run:  python examples/dmimo_upgrade.py
"""

import numpy as np

from repro.eval.fig13 import ONE_ANTENNA_RU_BUDGET
from repro.eval.throughput import DeployedCell, UePlacement, evaluate_network
from repro.phy.channel import ChannelModel
from repro.phy.geometry import FloorPlan, WalkPath
from repro.ran.cell import CellConfig
from repro.ran.ue import UserEquipment


def walk_throughput(cell, channel, step_m=3.0):
    series = []
    for index, position in enumerate(WalkPath(floor=0).points(step_m)):
        ue = UserEquipment(f"00101070000{index:03d}", position,
                           channel=channel)
        result = evaluate_network(
            [cell], [UePlacement(ue, cell.name, dl_offered_mbps=2000)]
        )
        series.append(result.ue(ue.imsi).dl_mbps)
    return np.array(series)


def main() -> None:
    plan = FloorPlan()
    channel = ChannelModel(seed=19)
    rus = plan.ru_positions(0)

    print("Phase 1: DAS middlebox from vendor A (single SISO cell)")
    das_cell = DeployedCell(
        "das",
        CellConfig(pci=1, n_antennas=1, max_dl_layers=1),
        list(rus), [1] * 4,
        mode="das",
        budget=ONE_ANTENNA_RU_BUDGET,
    )
    das = walk_throughput(das_cell, channel)
    print(f"  floor walk: min {das.min():4.0f}  mean {das.mean():4.0f}  "
          f"max {das.max():4.0f} Mbps (uniform coverage)")

    print()
    print("Phase 2: software swap to vendor B's dMIMO middlebox")
    print("  (same four 1-antenna RUs, no cabling or hardware changes)")
    dmimo_cell = DeployedCell(
        "dmimo",
        CellConfig(pci=2, n_antennas=4, max_dl_layers=4),
        list(rus), [1] * 4,
        mode="dmimo",
        budget=ONE_ANTENNA_RU_BUDGET,
    )
    dmimo = walk_throughput(dmimo_cell, channel)
    print(f"  floor walk: min {dmimo.min():4.0f}  mean {dmimo.mean():4.0f}  "
          f"max {dmimo.max():4.0f} Mbps")

    factors = dmimo / das
    print()
    print(f"Improvement across the floor: {factors.min():.1f}x to "
          f"{factors.max():.1f}x (mean {factors.mean():.1f}x) — the paper's")
    print("'factor of 2 or 3, depending on the location' (Figure 13).")


if __name__ == "__main__":
    main()
