#!/usr/bin/env python3
"""Quickstart: deploy a DAS middlebox between a DU and two RUs.

Builds the smallest interesting RANBooster deployment — one 40 MHz cell
whose signal is distributed over two RUs by the DAS middlebox — runs
traffic through the packet-level fronthaul, and prints what happened.

Run:  python examples/quickstart.py
"""

from repro.apps.das import DasMiddlebox
from repro.apps.prb_monitor import PrbMonitorMiddlebox
from repro.fronthaul.cplane import Direction
from repro.phy.geometry import Position
from repro.ran.cell import CellConfig
from repro.ran.du import DistributedUnit
from repro.ran.ru import RadioUnit, RuConfig
from repro.ran.traffic import ConstantBitrateFlow
from repro.sim.network_sim import FronthaulNetwork


def main() -> None:
    # 1. A 40 MHz 2x2 cell and its DU.
    cell = CellConfig(pci=1, bandwidth_hz=40_000_000, n_antennas=2,
                      max_dl_layers=2)
    du = DistributedUnit(du_id=1, cell=cell, symbols_per_slot=2)

    # 2. Two commodity RUs (the DAS group).
    rus = [
        RadioUnit(ru_id=i, config=RuConfig(num_prb=cell.num_prb,
                                           n_antennas=2),
                  du_mac=du.mac)
        for i in range(2)
    ]

    # 3. The middleboxes: a passive PRB monitor chained before the DAS.
    monitor = PrbMonitorMiddlebox(carrier_num_prb=cell.num_prb)
    das = DasMiddlebox(du_mac=du.mac, ru_macs=[ru.mac for ru in rus])

    # 4. A UE with bidirectional iperf-like traffic.
    du.scheduler.add_ue("ue-1", dl_layers=2)
    du.scheduler.update_ue_quality("ue-1", dl_aggregate_se=10.0, ul_se=3.0)
    du.attach_flow("ue-1", ConstantBitrateFlow(150, "dl"), Direction.DOWNLINK)
    du.attach_flow("ue-1", ConstantBitrateFlow(25, "ul"), Direction.UPLINK)

    # 5. Wire everything into the fronthaul and run 40 slots (20 ms).
    network = FronthaulNetwork(middleboxes=[monitor, das])
    network.add_du(du)
    network.add_ru(rus[0], Position(10, 10, 0))
    network.add_ru(rus[1], Position(40, 10, 0))
    reports = network.run(40)

    # 6. What happened.
    elapsed_ms = 40 * cell.numerology.slot_duration_ns / 1e6
    print(f"Simulated {elapsed_ms:.0f} ms of fronthaul traffic")
    print(f"  DL packets delivered to RUs : {sum(r.dl_packets for r in reports)}")
    print(f"  UL packets returned to DU   : {sum(r.ul_packets for r in reports)}")
    print(f"  undeliverable frames        : {sum(r.undeliverable for r in reports)}")
    print()
    print("DAS middlebox:")
    print(f"  rx/tx packets    : {das.stats.rx_packets}/{das.stats.tx_packets}")
    print(f"  uplink merges    : {das.merged_uplink_symbols}")
    print(f"  modelled CPU time: {das.stats.processing_ns_total / 1e3:.1f} us")
    print()
    print("Both RUs transmitted the identical cell signal:")
    key = rus[0].transmitted_symbols()[0]
    import numpy as np

    same = np.array_equal(rus[0].transmit_grid(*key),
                          rus[1].transmit_grid(*key))
    print(f"  grids identical at {key[0]} port {key[1]}: {same}")
    print()
    print("PRB monitor (Algorithm 1) vs scheduler ground truth:")
    estimated = monitor.average_utilization(Direction.DOWNLINK)
    # Normalize per DL-capable slot, as a wall-clock monitor would.
    truth = du.scheduler.average_utilization(Direction.DOWNLINK)
    print(f"  estimated DL utilization : {estimated:6.1%} (per observed symbol)")
    print(f"  scheduler ground truth   : {truth:6.1%} (per DL slot)")


if __name__ == "__main__":
    main()
