#!/usr/bin/env python3
"""RAN resilience as a middlebox (Section 8.1).

A primary and a warm-standby DU drive one RU through the resilience
middlebox.  Mid-run the primary DU dies; the middlebox detects the
silence from fronthaul timestamps and re-routes the RU to the standby
within a few slots, while a fronthaul guard middlebox (also from
Section 8.1) filters a spoofing attempt in the same chain.

Run:  python examples/resilient_failover.py
"""

from repro.apps.resilience import ResilienceMiddlebox
from repro.apps.security import FronthaulGuardMiddlebox
from repro.fronthaul.cplane import Direction
from repro.ran.cell import CellConfig
from repro.ran.du import DistributedUnit
from repro.ran.ru import RadioUnit, RuConfig
from repro.ran.traffic import ConstantBitrateFlow
from repro.sim.network_sim import FronthaulNetwork


def make_du(du_id, cell, ru_mac, seed):
    du = DistributedUnit(du_id=du_id, cell=cell, ru_mac=ru_mac,
                         symbols_per_slot=1, seed=seed)
    du.scheduler.add_ue("ue", dl_layers=2)
    du.scheduler.update_ue_quality("ue", dl_aggregate_se=10.0, ul_se=3.0)
    du.attach_flow("ue", ConstantBitrateFlow(100, "dl"), Direction.DOWNLINK)
    du.attach_flow("ue", ConstantBitrateFlow(20, "ul"), Direction.UPLINK)
    return du


def main() -> None:
    cell = CellConfig(pci=1, bandwidth_hz=40_000_000, n_antennas=2,
                      max_dl_layers=2)
    ru = RadioUnit(ru_id=1, config=RuConfig(num_prb=cell.num_prb,
                                            n_antennas=2))
    primary = make_du(1, cell, ru.mac, seed=1)
    standby = make_du(2, cell, ru.mac, seed=2)

    resilience = ResilienceMiddlebox(
        primary_du=primary.mac,
        standby_du=standby.mac,
        ru_mac=ru.mac,
        silence_threshold_ns=3 * cell.numerology.slot_duration_ns,
    )
    guard = FronthaulGuardMiddlebox(
        allowed_sources=[primary.mac, standby.mac, ru.mac, resilience.mac]
    )
    ru.du_mac = resilience.mac

    network = FronthaulNetwork(middleboxes=[guard, resilience])
    network.add_du(primary)
    network.add_du(standby)
    network.add_ru(ru)

    print("Phase 1: primary DU active, standby warm (10 ms)")
    network.run(20)
    print(f"  active DU      : primary (DU {primary.du_id})")
    print(f"  RU received    : {ru.counters.uplane_received} U-plane packets")
    print(f"  guard verdicts : {guard.stats.rx_packets} inspected, "
          f"{len(guard.alerts)} dropped")

    print()
    print("Phase 2: spoofing attempt from an unknown source")
    from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection
    from repro.fronthaul.ethernet import MacAddress
    from repro.fronthaul.packet import make_packet
    from repro.fronthaul.timing import SymbolTime

    attacker = make_packet(
        MacAddress.from_string("de:ad:be:ef:00:01"), ru.mac,
        CPlaneMessage(direction=Direction.DOWNLINK,
                      time=SymbolTime(0, 5, 0, 0),
                      sections=[CPlaneSection(0, 0, cell.num_prb)]),
    )
    verdict = guard.process(attacker)
    print(f"  spoofed C-plane emitted: {len(verdict.emissions)} "
          f"(alert: {guard.alerts[-1].reason})")

    print()
    print("Phase 3: primary DU crashes")
    network._dus.pop(primary.mac.to_int())
    before = ru.counters.uplane_received
    network.run(20)
    event = resilience.events[0]
    print(f"  failover event : silence {event.silence_ns / 1e6:.1f} ms "
          f"-> standby DU")
    print(f"  RU kept running: +{ru.counters.uplane_received - before} "
          f"U-plane packets from the standby")
    print(f"  standby uplink : {standby.counters.ul_bits} bits received")
    print()
    print("The RU never noticed: same fronthaul, new DU — resilience added")
    print("without modifying either RAN stack (Section 8.1).")


if __name__ == "__main__":
    main()
