#!/usr/bin/env python3
"""Neutral host: two operators sharing one 100 MHz RU (Section 4.3).

Plans the spectrum carve with the Appendix A.1.1 alignment formula, runs
the packet-level RU-sharing middlebox with both DUs live (including PRACH
translation so both operators' UEs can attach), and reports per-operator
results.

Run:  python examples/neutral_host_sharing.py
"""

from repro.apps.ru_sharing import RuSharingMiddlebox, SharedDuConfig
from repro.fronthaul.cplane import Direction
from repro.fronthaul.spectrum import PrbGrid, split_ru_spectrum
from repro.ran.cell import CellConfig
from repro.ran.core_network import CoreNetwork, Subscriber
from repro.ran.du import DistributedUnit
from repro.ran.ru import RadioUnit, RuConfig
from repro.ran.traffic import ConstantBitrateFlow
from repro.sim.network_sim import FronthaulNetwork


def main() -> None:
    # 1. The neutral host owns one 100 MHz RU at 3.46 GHz.
    ru_grid = PrbGrid(3.46e9, 273)
    ru = RadioUnit(ru_id=1, config=RuConfig(num_prb=273, n_antennas=2))

    # 2. Carve two aligned 40 MHz slices (Appendix A.1.1) for the MNOs.
    slices = split_ru_spectrum(ru_grid, [106, 106])
    print("Spectrum plan for the shared RU:")
    for name, grid in zip(("MNO-A", "MNO-B"), slices):
        offset = ru_grid.aligned_prb_offset(grid)
        print(f"  {name}: center {grid.center_frequency_hz / 1e9:.5f} GHz, "
              f"106 PRBs at RU offset {offset} (aligned: byte-copy fast path)")

    # 3. One DU + core per operator.
    dus, cores, configs = [], [], []
    for index, (name, grid) in enumerate(zip(("MNO-A", "MNO-B"), slices),
                                         start=1):
        cell = CellConfig(
            pci=index,
            bandwidth_hz=40_000_000,
            center_frequency_hz=grid.center_frequency_hz,
            n_antennas=2,
            max_dl_layers=2,
        )
        du = DistributedUnit(du_id=index, cell=cell, ru_mac=ru.mac,
                             symbols_per_slot=1, seed=index)
        du.scheduler.add_ue(f"{name}-ue", dl_layers=2)
        du.scheduler.update_ue_quality(f"{name}-ue", dl_aggregate_se=10.0,
                                       ul_se=3.0)
        du.attach_flow(f"{name}-ue", ConstantBitrateFlow(100, "dl"),
                       Direction.DOWNLINK)
        du.attach_flow(f"{name}-ue", ConstantBitrateFlow(15, "ul"),
                       Direction.UPLINK)
        core = CoreNetwork(plmn="00101", name=f"core-{name}")
        core.provision(Subscriber(f"0010100000000{index:02d}"))
        dus.append(du)
        cores.append(core)
        configs.append(SharedDuConfig(du_id=index, mac=du.mac, grid=grid))

    # 4. The RU-sharing middlebox in the middle.
    sharing = RuSharingMiddlebox(ru_mac=ru.mac, ru_grid=ru_grid, dus=configs)
    ru.du_mac = sharing.mac
    network = FronthaulNetwork(middleboxes=[sharing])
    for du in dus:
        network.add_du(du)
    network.add_ru(ru)

    # 5. Run 100 slots (50 ms), spanning PRACH occasions.
    reports = network.run(100)

    print()
    print("After 50 ms of shared operation:")
    print(f"  undeliverable frames: {sum(r.undeliverable for r in reports)}")
    print(f"  RU unsolicited drops: {ru.counters.unsolicited_uplane}")
    print(f"  aligned PRB copies  : {sharing.aligned_copies} "
          f"(misaligned: {sharing.misaligned_copies})")
    for du, name in zip(dus, ("MNO-A", "MNO-B")):
        elapsed_s = 100 * du.cell.numerology.slot_duration_ns / 1e9
        print(f"  {name}: DL {du.counters.dl_bits / elapsed_s / 1e6:6.1f} Mbps, "
              f"UL {du.counters.ul_bits / elapsed_s / 1e6:5.1f} Mbps, "
              f"PRACH occasions received: {du.counters.prach_detections}")
    print()
    print("Each DU believes it owns the RU; the RU believes one DU drives")
    print("it — multi-tenancy added with zero infrastructure changes.")


if __name__ == "__main__":
    main()
