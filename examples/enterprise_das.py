#!/usr/bin/env python3
"""The Section 7 case study: private 5G across a five-floor building.

Plans the Cambridge-style deployment — one 100 MHz 4x4 cell per floor,
each distributed over the floor's four RUs by a DAS middlebox, with
frequency reuse across floors — then evaluates coverage, per-floor
throughput, and the Appendix A.2 cost comparison.

Run:  python examples/enterprise_das.py
"""

import numpy as np

from repro.eval.throughput import DeployedCell, UePlacement, evaluate_network
from repro.phy.channel import ChannelModel
from repro.phy.geometry import FloorPlan, WalkPath
from repro.ran.cell import CellConfig
from repro.ran.ue import AttachError, UserEquipment
from repro.sim.cost import DeploymentCost


def main() -> None:
    plan = FloorPlan()
    channel = ChannelModel(seed=7)

    # One DAS cell per floor, frequency reuse everywhere (Section 7:
    # "interference across floors is minimal").
    cells = [
        DeployedCell(
            f"floor{floor}",
            CellConfig(pci=100 + floor),
            plan.ru_positions(floor),
            [4] * 4,
            mode="das",
        )
        for floor in range(plan.floors)
    ]
    views = [cell.view() for cell in cells]

    print("=== Coverage check: every floor, full attach ===")
    for floor in range(plan.floors):
        attached = 0
        for index, position in enumerate(plan.grid_points(floor, step_m=8.0)):
            ue = UserEquipment(f"0010109{floor}00{index:04d}", position,
                               channel=channel)
            try:
                chosen = ue.scan_and_attach(views)
                attached += 1
                assert chosen.pci == 100 + floor, "attached to wrong floor"
            except AttachError:
                pass
        total = len(plan.grid_points(floor, step_m=8.0))
        print(f"  floor {floor}: {attached}/{total} grid points attach "
              f"to their own floor's cell")

    print()
    print("=== Per-floor walk throughput (one active UE walking) ===")
    for floor in (0, 2, 4):
        series = []
        for index, position in enumerate(WalkPath(floor=floor).points(4.0)):
            ue = UserEquipment(f"0010108{floor}00{index:04d}", position,
                               channel=channel)
            result = evaluate_network(
                cells, [UePlacement(ue, f"floor{floor}",
                                    dl_offered_mbps=900)]
            )
            series.append(result.ue(ue.imsi).dl_mbps)
        arr = np.array(series)
        print(f"  floor {floor}: min {arr.min():6.0f}  "
              f"mean {arr.mean():6.0f}  max {arr.max():6.0f} Mbps")

    print()
    print("=== Cost vs a conventional DAS (Appendix A.2) ===")
    cost = DeploymentCost()
    print(f"  RANBooster deployment (50% margin): "
          f"${cost.ranbooster_usd():>10,.0f}")
    print(f"  conventional DAS ($2/sqft)        : "
          f"${cost.conventional_usd():>10,.0f}")
    print(f"  savings                           : "
          f"{cost.savings_fraction():.0%}")


if __name__ == "__main__":
    main()
