#!/usr/bin/env python3
"""Real-time PRB utilization monitoring (Section 4.4, Figure 10c).

Ramps offered load on a 100 MHz cell while the PRB monitoring middlebox
estimates utilization from BFP exponents at sub-millisecond granularity,
then renders the telemetry timeline as an ASCII dashboard next to the
scheduler's ground truth — the kind of feed an energy-saving or load-
balancing application would consume.

The run is instrumented with the flight recorder (:mod:`repro.obs`): the
final section renders the live counter/gauge table from the exposition
module, exactly what a scraper would read off ``/metrics``.

Run:  python examples/prb_dashboard.py
"""

from repro.apps.prb_monitor import TELEMETRY_TOPIC, PrbMonitorMiddlebox
from repro.fronthaul.cplane import Direction
from repro.obs import Observability, render_dashboard
from repro.ran.cell import CellConfig
from repro.ran.du import DistributedUnit
from repro.ran.ru import RadioUnit, RuConfig
from repro.ran.traffic import ConstantBitrateFlow
from repro.sim.network_sim import FronthaulNetwork

RAMP = [(0.0, 20), (150.0, 20), (400.0, 20), (700.0, 20), (100.0, 20)]
BAR_WIDTH = 40


def main() -> None:
    cell = CellConfig(pci=9, n_antennas=1, max_dl_layers=1)
    du = DistributedUnit(du_id=1, cell=cell, symbols_per_slot=1, seed=3)
    ru = RadioUnit(ru_id=1, config=RuConfig(num_prb=cell.num_prb,
                                            n_antennas=1),
                   mac=du.ru_mac, du_mac=du.mac)
    # Arm the flight recorder for this run: metrics + sampled spans.
    obs = Observability(enabled=True, sample_every=16)
    monitor = PrbMonitorMiddlebox(carrier_num_prb=cell.num_prb, obs=obs)
    du.scheduler.add_ue("ue", dl_layers=4)
    du.scheduler.update_ue_quality("ue", dl_aggregate_se=16.0, ul_se=3.0)

    # Subscribe to the telemetry feed like a RIC application would.
    live_samples = []

    def on_sample(record) -> None:
        live_samples.append((record.timestamp_ns, record.payload.utilization))

    monitor.telemetry.subscribe(TELEMETRY_TOPIC, on_sample)

    network = FronthaulNetwork(middleboxes=[monitor])
    network.add_du(du)
    network.add_ru(ru)

    print("PRB utilization dashboard (100 MHz cell, 10 ms per ramp step)")
    print(f"{'offered':>8}  {'monitor':>8}  {'truth':>6}  timeline")
    for rate_mbps, n_slots in RAMP:
        du.flows.clear()
        if rate_mbps > 0:
            du.attach_flow("ue", ConstantBitrateFlow(rate_mbps, "dl"),
                           Direction.DOWNLINK)
        log_start = len(du.scheduler.mac_log)
        estimate_start = len(monitor.estimates)
        network.run(n_slots)
        window = [
            e.utilization
            for e in monitor.estimates[estimate_start:]
            if e.direction is Direction.DOWNLINK
        ]
        dl_logs = [
            entry.utilization
            for entry in du.scheduler.mac_log[log_start:]
            if entry.direction is Direction.DOWNLINK
        ]
        truth = sum(dl_logs) / len(dl_logs) if dl_logs else 0.0
        estimate = sum(window) / max(len(dl_logs), 1)
        bar = "#" * int(estimate * BAR_WIDTH)
        print(f"{rate_mbps:7.0f}M  {estimate:8.1%}  {truth:6.1%}  |{bar}")

    # Detach like a well-behaved RIC app (no leaked callbacks on reuse).
    monitor.telemetry.unsubscribe(TELEMETRY_TOPIC, on_sample)

    print()
    first, last = live_samples[0][0], live_samples[-1][0]
    rate = len(live_samples) / ((last - first) / 1e9) if last > first else 0
    print(f"Telemetry feed: {len(live_samples)} samples, "
          f"{rate:,.0f} samples/s (sub-millisecond granularity)")

    # The operator view: live counters/gauges from the metrics registry.
    print()
    print(render_dashboard(obs.registry, title="prb monitor observability"))
    print(f"flight recorder: {len(obs.recorder)} spans retained "
          f"(1-in-{obs.sample_every} sampling), {obs.recorder.evicted} evicted")


if __name__ == "__main__":
    main()
