"""The control plane's routing table: streams -> middlebox chains.

RANBooster's service model is a *routing* one: the fronthaul switch
steers each eAxC stream through a tenant's middlebox chain, and the
operator's control plane is the thing that knows — at any moment —
which (cell, stream) pair lands on which chain on which worker.  The
:class:`RoutingTable` is that knowledge as plain data, derived
deterministically from the running :class:`~repro.scale.spec.
ScenarioSpec` and :class:`~repro.scale.shard.ShardPlan`: one
:class:`Route` per RU eAxC stream and per UE flow, keyed by
``(cell, stream)``.

The table is immutable and versioned.  Every applied
:class:`~repro.serve.delta.SpecDelta` produces a new table with a
bumped ``version``; sessions that cached a lookup can cheaply detect
staleness, and the scripted eval asserts the exact version sequence a
known mutation script produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.ran.stacks import profile_by_name
from repro.scale.shard import ShardPlan
from repro.scale.spec import ScenarioSpec


@dataclass(frozen=True)
class Route:
    """Where one stream of one cell goes.

    ``stream`` is ``"eaxc:<ru_id>"`` for an RU's fronthaul stream (the
    global 1-based RU id is the eAxC RU-port the deployment assigns the
    radio) or ``"flow:<ue_id>/<flow>"`` for a scheduled traffic flow.
    ``chain`` is the *group's* chain — the stage names every packet of
    this stream traverses, cell-contributed stages in declaration
    order — and ``worker`` is the shard index executing it.
    """

    cell: str
    stream: str
    group: str
    worker: int
    chain: Tuple[str, ...]
    wire_fault: Optional[str] = None
    #: Negotiated wire codec of the stream's cell ("bfp" / "modcomp") —
    #: what an operator needs to know before tapping the stream.
    codec: str = "bfp"

    @property
    def key(self) -> Tuple[str, str]:
        return (self.cell, self.stream)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cell": self.cell,
            "stream": self.stream,
            "group": self.group,
            "worker": self.worker,
            "chain": list(self.chain),
            "wire_fault": self.wire_fault,
            "codec": self.codec,
        }


@dataclass(frozen=True)
class RoutingTable:
    """Immutable (cell, stream) -> :class:`Route` map, versioned."""

    version: int
    routes: Tuple[Route, ...]
    _index: Dict[Tuple[str, str], Route] = field(
        init=False, default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_index", {route.key: route for route in self.routes}
        )

    @classmethod
    def from_spec(
        cls, spec: ScenarioSpec, plan: ShardPlan, version: int = 0
    ) -> "RoutingTable":
        """Derive the table for a (spec, shard-plan) pair.

        Deterministic: routes appear in spec declaration order (cells,
        then each cell's RUs, then its UE flows), so two coordinators
        holding the same spec and plan serve identical tables.
        """
        routes: List[Route] = []
        for group_name, members in spec.groups().items():
            worker = plan.shard_of(group_name)
            chain = tuple(
                stage.stage for cell in members for stage in cell.chain
            )
            wired = next(
                (cell for cell in members if cell.wire is not None), None
            )
            fault = wired.wire.get("kind") if wired is not None else None
            for cell in members:
                base = spec.ru_id_base(cell.name)
                codec = (
                    cell.codec
                    or profile_by_name(cell.profile).preferred_codec
                )
                for offset, _ru in enumerate(cell.rus):
                    routes.append(
                        Route(
                            cell=cell.name,
                            stream=f"eaxc:{base + offset}",
                            group=group_name,
                            worker=worker,
                            chain=chain,
                            wire_fault=fault,
                            codec=codec,
                        )
                    )
                for ue in cell.ues:
                    for flow in ue.flows:
                        label = flow.name or f"{flow.kind}-{flow.direction}"
                        routes.append(
                            Route(
                                cell=cell.name,
                                stream=f"flow:{ue.ue_id}/{label}",
                                group=group_name,
                                worker=worker,
                                chain=chain,
                                wire_fault=fault,
                                codec=codec,
                            )
                        )
        return cls(version=version, routes=tuple(routes))

    def lookup(self, cell: str, stream: str) -> Route:
        try:
            return self._index[(cell, stream)]
        except KeyError:
            raise KeyError(
                f"no route for ({cell!r}, {stream!r}); "
                f"{len(self.routes)} routes at version {self.version}"
            ) from None

    def routes_for_cell(self, cell: str) -> List[Route]:
        return [route for route in self.routes if route.cell == cell]

    @property
    def cells(self) -> List[str]:
        seen: List[str] = []
        for route in self.routes:
            if route.cell not in seen:
                seen.append(route.cell)
        return seen

    def __len__(self) -> int:
        return len(self.routes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "routes": [route.to_dict() for route in self.routes],
        }


__all__ = ["Route", "RoutingTable"]
