"""The asyncio control service: sessions, acks, telemetry push.

:class:`ServeService` listens on a TCP socket (loopback by default,
port 0 = pick free) and runs one :class:`ControlSession` per
connection, all sharing one :class:`~repro.serve.engine.LiveRun`.
Every operation that touches the pool — an epoch barrier, a delta, a
collect — runs in the default executor behind one asyncio lock, so the
event loop stays responsive while a barrier is in flight and control
operations serialize exactly as the pool's single-coordinator protocol
requires.  Deltas therefore land *between* epoch barriers by
construction, which is precisely "applied at the next epoch barrier".

Telemetry flows the other way: each drive step drains the live run's
pending bus records (epoch summaries, SLO alert edges, per-group
conformance deltas, applied-delta journal entries) and fans them out as
``event`` frames to every session subscribed to the matching topic.
Subscription state is per-session; a session that never subscribes gets
a pure request/ack channel.

Drive modes: with ``auto_drive=True`` the service paces itself to the
horizon in a background task; otherwise clients drive explicitly with
``step`` — the deterministic mode the scripted eval uses.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Set

from repro.scale.spec import ScenarioSpec
from repro.serve.delta import DeltaError, SpecDelta
from repro.serve.engine import TOPICS, LiveRun
from repro.serve.protocol import (
    FrameError,
    error_response,
    event,
    read_frame,
    response,
    write_frame,
)


class ControlSession:
    """One connected controller: request/ack plus subscribed pushes."""

    def __init__(self, service: "ServeService", reader, writer):
        self.service = service
        self.reader = reader
        self.writer = writer
        self.subscriptions: Set[str] = set()
        self.seq = 0
        self._write_lock = asyncio.Lock()
        self.closed = False

    async def send(self, message: Dict[str, Any]) -> None:
        if self.closed:
            return
        try:
            async with self._write_lock:
                await write_frame(self.writer, message)
        except (ConnectionError, RuntimeError, OSError):
            self.closed = True

    async def push(self, topic: str, data: Any) -> None:
        if topic not in self.subscriptions:
            return
        self.seq += 1
        await self.send(event(topic, self.seq, data))

    async def serve(self) -> None:
        """The session's read loop: one ack per request, in order."""
        try:
            while True:
                try:
                    request = await read_frame(self.reader)
                except FrameError:
                    break
                except EOFError:
                    break
                await self.send(await self.service.handle(self, request))
                if request.get("op") == "shutdown":
                    break
        finally:
            self.closed = True
            self.service.sessions.discard(self)
            try:
                self.writer.close()
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass


class ServeService:
    """The long-running routing service around one live scenario."""

    def __init__(
        self,
        spec: ScenarioSpec,
        workers: int = 1,
        host: str = "127.0.0.1",
        port: int = 0,
        auto_drive: bool = False,
        pace_s: float = 0.0,
    ):
        self.spec = spec
        self.workers = workers
        self.host = host
        self.port = port
        self.auto_drive = auto_drive
        self.pace_s = pace_s
        self.live: Optional[LiveRun] = None
        self.sessions: Set[ControlSession] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._driver: Optional[asyncio.Task] = None
        self._pool_lock = asyncio.Lock()
        self._stopping = asyncio.Event()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "ServeService":
        """Begin the run and open the listener (port resolves here)."""
        loop = asyncio.get_running_loop()
        self.live = LiveRun(self.spec, workers=self.workers)
        await loop.run_in_executor(None, self.live.begin)
        self._server = await asyncio.start_server(
            self._on_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.auto_drive:
            self._driver = asyncio.create_task(self._drive())
        return self

    async def _on_connection(self, reader, writer) -> None:
        session = ControlSession(self, reader, writer)
        self.sessions.add(session)
        await session.serve()

    async def _drive(self) -> None:
        while not self._stopping.is_set():
            finished = await self._step_once()
            if finished:
                return
            if self.pace_s:
                try:
                    await asyncio.wait_for(
                        self._stopping.wait(), timeout=self.pace_s
                    )
                except asyncio.TimeoutError:
                    pass

    async def _step_once(self) -> bool:
        loop = asyncio.get_running_loop()
        async with self._pool_lock:
            finished = await loop.run_in_executor(
                None, self.live.advance_epoch
            )
        await self._fan_out()
        return finished

    async def _fan_out(self) -> None:
        for record in self.live.drain_events():
            for session in list(self.sessions):
                await session.push(record["topic"], record["data"])

    async def stop(self) -> None:
        """Close the listener, the sessions, and the pool — idempotent."""
        self._stopping.set()
        if self._driver is not None:
            await self._driver
            self._driver = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for session in list(self.sessions):
            session.closed = True
            try:
                session.writer.close()
            except (ConnectionError, OSError):
                pass
        self.sessions.clear()
        if self.live is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.live.close)

    # -- request dispatch ----------------------------------------------------

    async def handle(
        self, session: ControlSession, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        request_id = request.get("id")
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if op else None
        if handler is None:
            return error_response(request_id, f"unknown op {op!r}")
        try:
            result = await handler(session, request)
        except (DeltaError, ValueError, KeyError) as exc:
            # A rejected request: the run is untouched (validation
            # precedes mutation end to end) and the session continues.
            return error_response(request_id, str(exc))
        return response(request_id, **result)

    async def _op_hello(self, session, request) -> Dict[str, Any]:
        return {
            "scenario": self.spec.name,
            "slots": self.live.spec.slots,
            "epoch_slots": self.live.spec.effective_epoch_slots(),
            "workers": self.live.pool.plan.workers,
            "topics": list(TOPICS),
            "auto_drive": self.auto_drive,
            "routing_version": self.live.routes.version,
        }

    async def _op_status(self, session, request) -> Dict[str, Any]:
        async with self._pool_lock:
            return self.live.status()

    async def _op_routes(self, session, request) -> Dict[str, Any]:
        cell = request.get("cell")
        table = self.live.routes
        if cell is not None:
            routes = [r.to_dict() for r in table.routes_for_cell(cell)]
            if not routes:
                raise KeyError(f"no routes for cell {cell!r}")
            return {"version": table.version, "routes": routes}
        return table.to_dict()

    async def _op_subscribe(self, session, request) -> Dict[str, Any]:
        topics = request.get("topics", list(TOPICS))
        unknown = [t for t in topics if t not in TOPICS]
        if unknown:
            raise ValueError(
                f"unknown topics {unknown}; available: {list(TOPICS)}"
            )
        session.subscriptions.update(topics)
        return {"subscribed": sorted(session.subscriptions)}

    async def _op_unsubscribe(self, session, request) -> Dict[str, Any]:
        topics = request.get("topics", list(TOPICS))
        session.subscriptions.difference_update(topics)
        return {"subscribed": sorted(session.subscriptions)}

    async def _op_apply(self, session, request) -> Dict[str, Any]:
        delta = SpecDelta.from_dict(request.get("delta") or {})
        loop = asyncio.get_running_loop()
        async with self._pool_lock:
            applied = await loop.run_in_executor(
                None, self.live.apply, delta
            )
        await self._fan_out()
        return {"applied": applied}

    async def _op_step(self, session, request) -> Dict[str, Any]:
        epochs = int(request.get("epochs", 1))
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        finished = self.live.finished
        for _ in range(epochs):
            finished = await self._step_once()
            if finished:
                break
        return {"done": self.live.done, "finished": finished}

    async def _op_collect(self, session, request) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        async with self._pool_lock:
            result = await loop.run_in_executor(None, self.live.collect)
        return {
            "digest": result.digest,
            "slots": result.slots,
            "workers": result.workers,
            "groups": sorted(result.groups),
            "recovery": getattr(result, "recovery", None),
        }

    async def _op_shutdown(self, session, request) -> Dict[str, Any]:
        self._stopping.set()
        return {"stopping": True}


async def serve_until_complete(
    spec: ScenarioSpec,
    workers: int = 1,
    host: str = "127.0.0.1",
    port: int = 0,
    pace_s: float = 0.0,
) -> ServeService:
    """Start an auto-driving service; caller awaits :meth:`stop`."""
    service = ServeService(
        spec,
        workers=workers,
        host=host,
        port=port,
        auto_drive=True,
        pace_s=pace_s,
    )
    return await service.start()


__all__ = ["ControlSession", "ServeService", "serve_until_complete"]
