"""`ServeClient`: the convenience API for driving a control service.

An asyncio client in the idiom of the everynet RAN routing pyclient: a
connection manager that demultiplexes the session's two inbound stream
shapes — acks, matched to requests by correlation id, and subscribed
telemetry events, buffered in an inbound queue the caller consumes at
its own pace::

    client = await ServeClient.connect("127.0.0.1", port)
    hello = await client.hello()
    await client.subscribe(["epochs", "alerts"])
    await client.apply(SpecDelta(ops=(DeltaOp(op="add_cell", cell=...),)))
    await client.step(epochs=2)
    alert = await client.wait_for_event("alerts", timeout=5.0)
    digest = (await client.collect())["digest"]
    await client.close()

A rejected request raises :class:`RequestRejected` carrying the
service's error string; the session — and the run — live on.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, List, Optional

from repro.serve.delta import SpecDelta
from repro.serve.protocol import read_frame, write_frame


class RequestRejected(RuntimeError):
    """The service acked a request with ``ok: false``."""

    def __init__(self, op: str, error: str):
        super().__init__(f"{op} rejected: {error}")
        self.op = op
        self.error = error


class ServeClient:
    """One control session, client side."""

    def __init__(self, reader, writer):
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._waiters: Dict[int, asyncio.Future] = {}
        self.events: asyncio.Queue = asyncio.Queue()
        self._pump = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 0
    ) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader)
                if "event" in frame:
                    self.events.put_nowait(frame)
                    continue
                waiter = self._waiters.pop(frame.get("id"), None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(frame)
        except (EOFError, ValueError, ConnectionError, OSError) as exc:
            for waiter in self._waiters.values():
                if not waiter.done():
                    waiter.set_exception(
                        ConnectionError(f"session closed: {exc}")
                    )
            self._waiters.clear()

    async def request(self, op: str, **payload: Any) -> Dict[str, Any]:
        """Send one request; return its ack body (sans envelope)."""
        request_id = next(self._ids)
        waiter = asyncio.get_running_loop().create_future()
        self._waiters[request_id] = waiter
        await write_frame(
            self._writer, {"id": request_id, "op": op, **payload}
        )
        ack = await waiter
        if not ack.get("ok"):
            raise RequestRejected(op, ack.get("error", "unknown error"))
        return {
            key: value
            for key, value in ack.items()
            if key not in ("id", "ok")
        }

    # -- the control verbs ---------------------------------------------------

    async def hello(self) -> Dict[str, Any]:
        return await self.request("hello")

    async def status(self) -> Dict[str, Any]:
        return await self.request("status")

    async def routes(self, cell: Optional[str] = None) -> Dict[str, Any]:
        if cell is None:
            return await self.request("routes")
        return await self.request("routes", cell=cell)

    async def subscribe(
        self, topics: Optional[List[str]] = None
    ) -> List[str]:
        payload = {} if topics is None else {"topics": topics}
        return (await self.request("subscribe", **payload))["subscribed"]

    async def unsubscribe(
        self, topics: Optional[List[str]] = None
    ) -> List[str]:
        payload = {} if topics is None else {"topics": topics}
        return (await self.request("unsubscribe", **payload))["subscribed"]

    async def apply(self, delta: SpecDelta) -> Dict[str, Any]:
        """Apply a live mutation; returns the applied-outcome journal."""
        ack = await self.request("apply", delta=delta.to_dict())
        return ack["applied"]

    async def step(self, epochs: int = 1) -> Dict[str, Any]:
        return await self.request("step", epochs=epochs)

    async def collect(self) -> Dict[str, Any]:
        return await self.request("collect")

    async def shutdown(self) -> Dict[str, Any]:
        return await self.request("shutdown")

    # -- event consumption ---------------------------------------------------

    async def next_event(
        self, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        if timeout is None:
            return await self.events.get()
        return await asyncio.wait_for(self.events.get(), timeout=timeout)

    async def wait_for_event(
        self,
        topic: str,
        timeout: float = 30.0,
        predicate=None,
    ) -> Dict[str, Any]:
        """The next event on ``topic`` matching ``predicate`` (if any).

        Events on other topics are *not* discarded silently — they are
        simply consumed; callers interleaving topics should drain
        :attr:`events` themselves.
        """
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise TimeoutError(
                    f"no {topic!r} event within {timeout}s"
                )
            frame = await self.next_event(timeout=remaining)
            if frame["event"] != topic:
                continue
            if predicate is not None and not predicate(frame["data"]):
                continue
            return frame

    async def close(self) -> None:
        self._pump.cancel()
        try:
            await self._pump
        except (asyncio.CancelledError, Exception):
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


__all__ = ["RequestRejected", "ServeClient"]
