"""Length-prefixed JSON framing for control sessions.

The control plane speaks a deliberately boring wire format — the same
one the everynet RAN routing client uses and the same one the scale
pool's pipe protocol approximates: each frame is a 4-byte big-endian
length followed by that many bytes of UTF-8 JSON.  Boring is the point:
a frame boundary never depends on payload content, a partial read is
detected structurally, and any language can speak it in twenty lines.

Two frame shapes travel each direction:

- **Requests** (client -> service): ``{"id": n, "op": "...", ...}`` —
  ``id`` is a client-chosen correlation number, ``op`` selects the
  operation, remaining keys are operands.
- **Responses** (service -> client): ``{"id": n, "ok": true, ...}`` or
  ``{"id": n, "ok": false, "error": "..."}`` — every request is acked
  exactly once, errors are values, and the session survives a rejected
  request (rollback is the engine's job, reporting is the protocol's).
- **Events** (service -> client, unsolicited): ``{"event": "topic",
  "seq": n, "data": {...}}`` — pushed to subscribed sessions between
  acks; ``seq`` is a per-session monotone counter so a client can
  detect its own missed reads.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict

#: Frame length prefix: 4-byte big-endian unsigned.
_HEADER = struct.Struct(">I")

#: Refuse frames past this size — a control message is kilobytes; a
#: megabyte frame is a protocol error, not a big request.
MAX_FRAME_BYTES = 8 * 1024 * 1024


class FrameError(ValueError):
    """A malformed frame: oversized, truncated, or not a JSON object."""


def encode_frame(message: Dict[str, Any]) -> bytes:
    """One wire frame: length prefix + compact sorted-key JSON."""
    if not isinstance(message, dict):
        raise FrameError(f"frames carry JSON objects, got {type(message)}")
    body = json.dumps(
        message, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(body)} bytes exceeds limit")
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame body is not JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise FrameError("frame body must be a JSON object")
    return message


async def read_frame(reader: asyncio.StreamReader) -> Dict[str, Any]:
    """Read one frame; raises ``EOFError`` on clean connection close.

    A close *inside* a frame (header or body truncated) is a
    :class:`FrameError` — the peer vanished mid-sentence.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError("connection closed") from exc
        raise FrameError("connection closed inside a frame header") from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {length} bytes exceeds limit")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed inside a frame body") from exc
    return decode_body(body)


async def write_frame(
    writer: asyncio.StreamWriter, message: Dict[str, Any]
) -> None:
    writer.write(encode_frame(message))
    await writer.drain()


def response(request_id: Any, **result: Any) -> Dict[str, Any]:
    """A success ack for ``request_id``."""
    return {"id": request_id, "ok": True, **result}


def error_response(request_id: Any, error: str) -> Dict[str, Any]:
    """A failure ack: the request was rejected, the session lives on."""
    return {"id": request_id, "ok": False, "error": error}


def event(topic: str, seq: int, data: Any) -> Dict[str, Any]:
    """An unsolicited push to a subscribed session."""
    return {"event": topic, "seq": seq, "data": data}


__all__ = [
    "FrameError",
    "MAX_FRAME_BYTES",
    "decode_body",
    "encode_frame",
    "error_response",
    "event",
    "read_frame",
    "response",
    "write_frame",
]
