"""Typed live mutations of a running :class:`~repro.scale.spec.ScenarioSpec`.

A neutral-host middlebox operator admits tenants, rechains their
middleboxes, and injects or clears impairments *while the service runs*
— restart-and-replay is exactly the operational regime the control plane
exists to avoid.  A :class:`SpecDelta` is the wire-safe description of
one such mutation: an ordered tuple of :class:`DeltaOp` operations, each
naming cells, registered stage names, and registered fault kinds in
plain data (JSON round-trippable, unknown keys rejected — the same
discipline as the spec layer it mutates).

Semantics — **rebase, not patch**.  Applying a delta at slot ``s`` of a
running scenario produces the state the *mutated spec run from scratch*
would have reached at slot ``s``: the engine rebuilds every coupling
group whose build fingerprint changed
(:meth:`~repro.scale.spec.ScenarioSpec.group_fingerprints`) and
deterministically replays the confirmed prefix, while untouched groups
keep their live objects.  Three properties fall out:

- **The digest oracle survives mutation.**  A mutated run's results are
  byte-identical to a from-scratch run of the mutated spec, at any
  worker count — the property the delta test suite pins.
- **Supervised recovery composes.**  PR 8's respawn-and-replay rebuilds
  a lost shard from the *current* spec; after a mutation that is the
  mutated spec, and the replayed state is exactly the pre-crash one.
- **Rollback is trivial.**  A delta is validated (structurally, then by
  a trial build of the changed groups) *before* any running state is
  touched; a rejected delta leaves the run byte-identical to one that
  never saw it.

Telemetry history is *not* rewritten: epochs already folded by the
coordinator keep their pre-mutation payloads, and post-mutation epochs
ship deltas against the replayed baseline.  The final cumulative epoch
ships post-mutation truth, so ``live == collect`` still holds bit for
bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.scale.spec import ScenarioSpec

#: The operations a delta may carry, in the vocabulary of the spec.
DELTA_OPS = (
    "add_cell",
    "remove_cell",
    "rechain",
    "inject_fault",
    "clear_fault",
)


class DeltaError(ValueError):
    """A delta that cannot apply to the spec it was aimed at.

    Raised *before* any running state changes — validation, trial
    builds, and spec construction all happen on plain data, so a
    rejected delta has no side effects to roll back.
    """


@dataclass(frozen=True)
class DeltaOp:
    """One mutation step.

    ``op`` selects the operation; the other fields are per-op operands:

    - ``add_cell``: ``cell`` is a full :class:`~repro.scale.spec.
      CellSpec` dict, appended to the scenario (so existing cells keep
      their derived du/RU identities).
    - ``remove_cell``: ``target`` names the cell to evict.
    - ``rechain``: ``target`` plus ``chain``, the replacement stage list
      (:class:`~repro.scale.spec.StageSpec` dicts, by registered name).
    - ``inject_fault``: ``target`` plus ``fault``, a named fault spec
      (:mod:`repro.faults.registry`) installed as the cell's access
      wire.
    - ``clear_fault``: ``target``; removes the cell's access wire.
    """

    op: str
    target: str = ""
    cell: Optional[Dict[str, Any]] = None
    chain: Optional[Tuple[Dict[str, Any], ...]] = None
    fault: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.op not in DELTA_OPS:
            raise DeltaError(
                f"op must be one of {DELTA_OPS}, got {self.op!r}"
            )
        if self.op == "add_cell":
            if not isinstance(self.cell, dict) or not self.cell.get("name"):
                raise DeltaError("add_cell needs a 'cell' spec dict with a name")
            if self.target:
                raise DeltaError("add_cell takes 'cell', not 'target'")
        else:
            if not self.target:
                raise DeltaError(f"{self.op} needs a 'target' cell name")
            if self.cell is not None:
                raise DeltaError(f"{self.op} does not take a 'cell' dict")
        if self.op == "rechain" and self.chain is None:
            raise DeltaError("rechain needs a 'chain' stage list")
        if self.op != "rechain" and self.chain is not None:
            raise DeltaError(f"{self.op} does not take a 'chain'")
        if self.op == "inject_fault" and not self.fault:
            raise DeltaError("inject_fault needs a 'fault' spec")
        if self.op != "inject_fault" and self.fault is not None:
            raise DeltaError(f"{self.op} does not take a 'fault'")

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"op": self.op}
        if self.target:
            data["target"] = self.target
        if self.cell is not None:
            data["cell"] = dict(self.cell)
        if self.chain is not None:
            data["chain"] = [dict(stage) for stage in self.chain]
        if self.fault is not None:
            data["fault"] = dict(self.fault)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DeltaOp":
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise DeltaError(f"delta op has unknown keys: {sorted(unknown)}")
        data = dict(data)
        if data.get("chain") is not None:
            data["chain"] = tuple(dict(stage) for stage in data["chain"])
        if data.get("cell") is not None:
            data["cell"] = dict(data["cell"])
        if data.get("fault") is not None:
            data["fault"] = dict(data["fault"])
        return cls(**data)


@dataclass(frozen=True)
class SpecDelta:
    """An ordered batch of mutations applied atomically at one barrier."""

    ops: Tuple[DeltaOp, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.ops:
            raise DeltaError("a delta needs at least one op")

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"ops": [op.to_dict() for op in self.ops]}
        if self.name:
            data["name"] = self.name
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpecDelta":
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise DeltaError(f"delta has unknown keys: {sorted(unknown)}")
        ops = data.get("ops")
        if not isinstance(ops, (list, tuple)):
            raise DeltaError("delta needs an 'ops' list")
        return cls(
            ops=tuple(DeltaOp.from_dict(dict(op)) for op in ops),
            name=data.get("name", ""),
        )

    @classmethod
    def from_json(cls, text: str) -> "SpecDelta":
        return cls.from_dict(json.loads(text))

    # -- application ---------------------------------------------------------

    def apply(self, spec: ScenarioSpec) -> ScenarioSpec:
        """The mutated spec (pure; ``spec`` itself is untouched).

        Validation is layered: each op checks its operands against the
        evolving cell population (typed :class:`DeltaError`), stage and
        fault names are checked against the live registries, and the
        final :class:`~repro.scale.spec.ScenarioSpec` constructor
        re-runs every structural invariant.  Ops apply in order, so a
        delta may admit a cell and immediately rechain it.
        """
        data = spec.to_dict()
        cells: List[Dict[str, Any]] = data["cells"]
        for op in self.ops:
            handler = _HANDLERS[op.op]
            handler(op, cells)
        _check_group_wires(cells)
        try:
            return ScenarioSpec.from_dict(data)
        except (ValueError, KeyError, TypeError) as exc:
            raise DeltaError(f"mutated spec is invalid: {exc}") from exc


# -- op handlers (mutate the plain cell list in place) ------------------------


def _find(cells: List[Dict[str, Any]], name: str) -> Dict[str, Any]:
    for cell in cells:
        if cell["name"] == name:
            return cell
    raise DeltaError(
        f"unknown cell {name!r}; scenario has {[c['name'] for c in cells]}"
    )


def _check_stages(stages: Sequence[Dict[str, Any]]) -> None:
    from repro.scale.registry import stage_names

    known = set(stage_names())
    for stage in stages:
        if not isinstance(stage, dict) or "stage" not in stage:
            raise DeltaError(f"chain entries need a 'stage' name: {stage!r}")
        if stage["stage"] not in known:
            raise DeltaError(
                f"unknown stage {stage['stage']!r}; "
                f"registered: {sorted(known)}"
            )


def _check_fault(fault: Dict[str, Any]) -> None:
    from repro.faults.registry import fault_kinds

    kind = fault.get("kind")
    if kind not in fault_kinds():
        raise DeltaError(
            f"unknown fault kind {kind!r}; registered: {fault_kinds()}"
        )


def _add_cell(op: DeltaOp, cells: List[Dict[str, Any]]) -> None:
    name = op.cell["name"]
    if any(cell["name"] == name for cell in cells):
        raise DeltaError(f"cell {name!r} already exists")
    _check_stages(op.cell.get("chain", ()))
    if op.cell.get("wire") is not None:
        _check_fault(op.cell["wire"])
    cells.append(json.loads(json.dumps(op.cell)))


def _remove_cell(op: DeltaOp, cells: List[Dict[str, Any]]) -> None:
    cell = _find(cells, op.target)
    if len(cells) == 1:
        raise DeltaError("cannot remove the last cell of a scenario")
    cells.remove(cell)


def _rechain(op: DeltaOp, cells: List[Dict[str, Any]]) -> None:
    cell = _find(cells, op.target)
    _check_stages(op.chain)
    cell["chain"] = [json.loads(json.dumps(stage)) for stage in op.chain]


def _inject_fault(op: DeltaOp, cells: List[Dict[str, Any]]) -> None:
    cell = _find(cells, op.target)
    _check_fault(op.fault)
    cell["wire"] = json.loads(json.dumps(op.fault))


def _clear_fault(op: DeltaOp, cells: List[Dict[str, Any]]) -> None:
    cell = _find(cells, op.target)
    if cell.get("wire") is None:
        raise DeltaError(f"cell {op.target!r} has no fault to clear")
    cell["wire"] = None


def _check_group_wires(cells: List[Dict[str, Any]]) -> None:
    """A coupling group has exactly one access wire (build invariant)."""
    wired: Dict[str, List[str]] = {}
    for cell in cells:
        if cell.get("wire") is not None:
            group = cell.get("group") or cell["name"]
            wired.setdefault(group, []).append(cell["name"])
    for group, names in wired.items():
        if len(names) > 1:
            raise DeltaError(
                f"group {group!r} would carry {len(names)} access wires "
                f"({names}); a group has one"
            )


_HANDLERS = {
    "add_cell": _add_cell,
    "remove_cell": _remove_cell,
    "rechain": _rechain,
    "inject_fault": _inject_fault,
    "clear_fault": _clear_fault,
}


# -- mutation planning --------------------------------------------------------


@dataclass(frozen=True)
class MutationPlan:
    """What a delta disturbs: the groups to rebuild-and-replay.

    Computed by diffing :meth:`~repro.scale.spec.ScenarioSpec.
    group_fingerprints` between the running and mutated specs.  Note
    that evicting a cell shifts the derived identities (du ids, RU id
    bases, default seeds) of every cell declared after it, so such a
    delta legitimately marks later groups changed too — the fingerprint
    is the single source of truth for "would this group build
    differently".
    """

    added: Tuple[str, ...]
    removed: Tuple[str, ...]
    changed: Tuple[str, ...]

    @property
    def rebuilt(self) -> Tuple[str, ...]:
        """Groups the mutated run must build fresh (added + changed)."""
        return self.added + self.changed

    def to_dict(self) -> Dict[str, Any]:
        return {
            "added": list(self.added),
            "removed": list(self.removed),
            "changed": list(self.changed),
        }


def plan_mutation(old: ScenarioSpec, new: ScenarioSpec) -> MutationPlan:
    """Diff two specs into the group-level work a live engine must do."""
    old_fp = old.group_fingerprints()
    new_fp = new.group_fingerprints()
    return MutationPlan(
        added=tuple(name for name in new_fp if name not in old_fp),
        removed=tuple(name for name in old_fp if name not in new_fp),
        changed=tuple(
            name
            for name in new_fp
            if name in old_fp and old_fp[name] != new_fp[name]
        ),
    )


__all__ = [
    "DELTA_OPS",
    "DeltaError",
    "DeltaOp",
    "MutationPlan",
    "SpecDelta",
    "plan_mutation",
]
