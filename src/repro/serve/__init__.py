"""The live control plane: middleboxes-as-a-service over the engine.

The paper's democratization claim is a *service* claim — a neutral-host
operator runs fronthaul middleboxes as a service, admitting tenants,
rechaining their processing, and injecting or clearing impairments
without touching RU/DU software and without restarting anything.  This
package is that service around the scale engine:

- :mod:`repro.serve.delta` — typed, validated, JSON-safe live
  mutations of a running :class:`~repro.scale.spec.ScenarioSpec`
  (rebase semantics: a mutated run is byte-identical to a from-scratch
  run of the mutated spec);
- :mod:`repro.serve.routing` — the versioned ``(cell, stream)`` ->
  middlebox-chain routing table;
- :mod:`repro.serve.engine` — :class:`LiveRun`, the synchronous core
  driving a worker pool epoch by epoch with mutation between barriers;
- :mod:`repro.serve.protocol` / :mod:`repro.serve.service` — the
  length-prefixed-JSON control protocol and the asyncio session server;
- :mod:`repro.serve.client` — :class:`ServeClient`, the async
  convenience API (request/ack plus subscribed telemetry events).
"""

from repro.serve.client import RequestRejected, ServeClient
from repro.serve.delta import (
    DELTA_OPS,
    DeltaError,
    DeltaOp,
    MutationPlan,
    SpecDelta,
    plan_mutation,
)
from repro.serve.engine import TOPICS, LiveRun, run_to_completion
from repro.serve.protocol import FrameError
from repro.serve.routing import Route, RoutingTable
from repro.serve.service import (
    ControlSession,
    ServeService,
    serve_until_complete,
)

__all__ = [
    "DELTA_OPS",
    "TOPICS",
    "ControlSession",
    "DeltaError",
    "DeltaOp",
    "FrameError",
    "LiveRun",
    "MutationPlan",
    "RequestRejected",
    "Route",
    "RoutingTable",
    "ServeClient",
    "ServeService",
    "SpecDelta",
    "plan_mutation",
    "run_to_completion",
    "serve_until_complete",
]
