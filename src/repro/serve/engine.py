"""The live run: a worker pool driven epoch by epoch under control.

:class:`LiveRun` is the synchronous core of the control plane — the
piece that owns the pool, the routing table, and the telemetry fan-out,
with no asyncio in sight so it unit-tests like any other scale-layer
object.  The asyncio service (:mod:`repro.serve.service`) is a thin
protocol shell around it.

The contract inherits the scale layer's oracles wholesale:

- An unmutated live run's collect digest is byte-identical to the batch
  ``run_scenario`` result for the same spec — driving epochs one at a
  time changes *when* barriers happen, never what they compute.
- After :meth:`apply`, the run is indistinguishable from a from-scratch
  run of the mutated spec (rebase semantics; see
  :meth:`~repro.scale.pool.WorkerPool.mutate`).  No worker restarts:
  the same processes keep running, only the disturbed coupling groups
  rebuild.
- A rejected delta (:class:`~repro.serve.delta.DeltaError`) is applied
  nowhere: validation runs against a *copy* of the spec before the pool
  hears anything, so the run continues byte-identical to one that never
  saw the request.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.core.telemetry import TelemetryBus, TelemetryRecord
from repro.obs.slo import ALERT_TOPIC
from repro.obs.stream import EPOCH_TOPIC
from repro.scale.pool import WorkerPool
from repro.scale.supervisor import SupervisedWorkerPool
from repro.scale.spec import ScenarioSpec
from repro.serve.delta import SpecDelta
from repro.serve.routing import RoutingTable

#: Event topics a control session may subscribe to.
TOPICS = ("epochs", "alerts", "conformance", "deltas")


class LiveRun:
    """One scenario, running, mutable, observable.

    ``workers`` picks the pool width; the spec's ``supervised()``
    policy picks the plain or self-healing pool exactly as the batch
    path does.  All driving methods are synchronous and must be called
    from one thread at a time (the service serializes them behind a
    lock).
    """

    def __init__(self, spec: ScenarioSpec, workers: int = 1):
        self.spec = spec
        self.workers = workers
        self.bus = TelemetryBus()
        pool_cls = SupervisedWorkerPool if spec.supervised() else WorkerPool
        self.pool = pool_cls(spec, workers=workers, bus=self.bus)
        self.routes = RoutingTable.from_spec(spec, self.pool.plan)
        self.deltas_applied: List[Dict[str, Any]] = []
        self.finished = False
        self._began = False
        self._pending: List[Dict[str, Any]] = []
        self._conformance_seen: Dict[str, Dict[str, Any]] = {}
        self.bus.subscribe(EPOCH_TOPIC, self._on_epoch)
        self.bus.subscribe(ALERT_TOPIC, self._on_alert)

    # -- bus fan-in ----------------------------------------------------------

    def _on_epoch(self, record: TelemetryRecord) -> None:
        self._pending.append(
            {"topic": "epochs", "data": dict(record.payload)}
        )
        for group, totals in sorted(
            self.pool.telemetry.group_conformance.items()
        ):
            seen = self._conformance_seen.get(group, {})
            delta = {
                "frames_checked": (
                    totals["frames_checked"]
                    - seen.get("frames_checked", 0)
                ),
                "violations": (
                    totals["violations"] - seen.get("violations", 0)
                ),
                "counts": {
                    kind: count - seen.get("counts", {}).get(kind, 0)
                    for kind, count in totals["counts"].items()
                    if count - seen.get("counts", {}).get(kind, 0)
                },
            }
            self._conformance_seen[group] = {
                "frames_checked": totals["frames_checked"],
                "violations": totals["violations"],
                "counts": dict(totals["counts"]),
            }
            if delta["frames_checked"] or delta["violations"]:
                self._pending.append(
                    {
                        "topic": "conformance",
                        "data": {"group": group, **delta},
                    }
                )

    def _on_alert(self, record: TelemetryRecord) -> None:
        self._pending.append(
            {"topic": "alerts", "data": dict(record.payload)}
        )

    def drain_events(self) -> List[Dict[str, Any]]:
        """Everything published since the last drain, in fold order."""
        pending, self._pending = self._pending, []
        return pending

    # -- drive ---------------------------------------------------------------

    @property
    def done(self) -> int:
        return self.pool.done

    def begin(self) -> None:
        if self._began:
            raise RuntimeError("live run already begun")
        self._began = True
        self.pool.begin()

    def advance_epoch(self) -> bool:
        """One epoch barrier; ``True`` once the horizon completes."""
        if not self._began:
            self.begin()
        self.finished = self.pool.advance_epoch()
        return self.finished

    def apply(self, delta: SpecDelta) -> Dict[str, Any]:
        """Validate and apply one delta at the current barrier.

        Raises :class:`~repro.serve.delta.DeltaError` (or ``ValueError``
        for a run-shape change) with the run untouched; on success the
        routing table re-derives at a bumped version and the outcome is
        journaled in :attr:`deltas_applied`.
        """
        mutated = delta.apply(self.spec)  # validates; pure
        outcome = self.pool.mutate(mutated)  # trial-builds, then commits
        self.spec = mutated
        self.routes = RoutingTable.from_spec(
            mutated, self.pool.plan, version=self.routes.version + 1
        )
        applied = {
            "delta": delta.to_dict(),
            "at_slot": self.pool.done,
            "routing_version": self.routes.version,
            **outcome,
        }
        self.deltas_applied.append(applied)
        self._pending.append({"topic": "deltas", "data": dict(applied)})
        return applied

    def collect(self):
        """The run's :class:`~repro.scale.runner.ScenarioResult` so far."""
        return self.pool.collect()

    def status(self) -> Dict[str, Any]:
        telemetry = self.pool.telemetry
        restarts = getattr(self.pool, "restarts", None)
        return {
            "scenario": self.spec.name,
            "workers": self.pool.plan.workers,
            "slots": self.spec.slots,
            "done": self.pool.done,
            "finished": self.finished,
            "epochs": telemetry.epochs,
            "routing_version": self.routes.version,
            "deltas_applied": len(self.deltas_applied),
            "alerts_firing": telemetry.slo.firing(),
            "worker_restarts": sum(restarts) if restarts else 0,
            "worker_pids": [p.pid for p in self.pool._processes],
        }

    def close(self) -> None:
        self.pool.close()


def run_to_completion(
    live: LiveRun,
    pace_s: float = 0.0,
    deadline_s: Optional[float] = None,
) -> None:
    """Drive a live run to its horizon (the no-controller fallback)."""
    deadline = (
        time.monotonic() + deadline_s if deadline_s is not None else None
    )
    while not live.advance_epoch():
        if deadline is not None and time.monotonic() > deadline:
            raise TimeoutError(
                f"live run past its {deadline_s}s deadline at slot "
                f"{live.done}/{live.spec.slots}"
            )
        if pace_s:
            time.sleep(pace_s)


__all__ = ["LiveRun", "TOPICS", "run_to_completion"]
