"""Per-action latency cost model.

The paper measures per-packet middlebox processing times on Intel Xeon
6338N cores (Figure 15b): downlink forwarding/replication stay under
300 ns, uplink caching under 300 ns, and uplink IQ merges (decompress,
sum, recompress across N RUs) take 4-6 us growing with the RU count.

This model assigns each action a cost in nanoseconds with the same
structure and calibration, so the scalability and deadline analyses
(Figure 15a, Section 6.4.1) can be reproduced.  The *real* Python cost of
the heavyweight operations is measured separately by pytest-benchmark;
this model represents the C/DPDK implementation the paper ships.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ActionCostModel:
    """Nanosecond costs of middlebox actions on one CPU core.

    Per-PRB costs scale payload work with bandwidth: a 273-PRB (100 MHz)
    decompression costs ``273 * decompress_ns_per_prb ~= 1.05 us``,
    making a 4-RU merge ``4*1.05 + 3*0.08*273/273... ~= 6 us`` as measured.
    """

    forward_ns: float = 50.0  # A1: MAC rewrite + tx enqueue
    drop_ns: float = 25.0  # A1: drop
    replicate_ns_per_copy: float = 30.0  # A2: refcount clone + enqueue
    cache_ns: float = 180.0  # A3: hash + store
    cache_lookup_ns: float = 90.0  # A3: hash + fetch
    header_modify_ns: float = 60.0  # A4: O-RAN header field rewrite
    inspect_ns: float = 45.0  # A4: read-only field access
    exponent_read_ns_per_prb: float = 0.9  # A4: Algorithm 1 exponent scan
    decompress_ns_per_prb: float = 3.85  # A4: BFP decompress
    compress_ns_per_prb: float = 4.76  # A4: BFP recompress
    iq_sum_ns_per_prb_per_operand: float = 0.37  # A4: element-wise add
    prb_copy_ns_per_prb: float = 0.62  # A4: aligned byte-range copy

    def decompress_cost(self, num_prb: int) -> float:
        return self.decompress_ns_per_prb * num_prb

    def compress_cost(self, num_prb: int) -> float:
        return self.compress_ns_per_prb * num_prb

    def merge_cost(self, num_prb: int, n_operands: int) -> float:
        """Full uplink merge: decompress all operands, sum, recompress.

        This is the heavyweight path of the DAS middlebox (Section 4.1);
        at 273 PRBs it yields ~3.7 us for 2 operands and ~6.2 us for 4,
        matching the Figure 15b boxen plot.
        """
        if n_operands < 1:
            raise ValueError("merge needs at least one operand")
        return (
            self.decompress_cost(num_prb) * n_operands
            + self.iq_sum_ns_per_prb_per_operand * num_prb * max(n_operands - 1, 1)
            + self.compress_cost(num_prb)
        )

    def prb_copy_cost(self, num_prb: int, aligned: bool = True) -> float:
        """PRB relocation for RU sharing: aligned copies move wire bytes;
        misaligned copies pay decompress + recompress (Figure 6)."""
        base = self.prb_copy_ns_per_prb * num_prb
        if aligned:
            return base
        return base + self.decompress_cost(num_prb) + self.compress_cost(num_prb)


DEFAULT_COST_MODEL = ActionCostModel()


@dataclass(frozen=True)
class XdpOverheads:
    """Extra costs of the XDP datapath relative to DPDK (Section 5).

    Kernel-path packets pay the driver-hook overhead; packets needing
    userspace processing additionally pay the AF_XDP redirect, wakeup
    syscall and copy.  Jumbo frames pay a multi-buffer penalty.
    """

    kernel_factor: float = 1.35  # eBPF interpretation / helper overhead
    af_xdp_redirect_ns: float = 900.0
    wakeup_syscall_ns: float = 1400.0
    copy_ns_per_kb: float = 250.0
    jumbo_multibuffer_ns: float = 600.0
    jumbo_threshold_bytes: int = 3500
    #: Per-packet NAPI/driver cost of the interrupt-driven path; dominated
    #: by page allocation and DMA mapping for the multi-KB fronthaul
    #: frames the generic XDP path handles poorly [45].
    interrupt_ns: float = 2500.0


DEFAULT_XDP_OVERHEADS = XdpOverheads()
