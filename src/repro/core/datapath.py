"""DPDK and XDP datapath execution models (Section 5, Figures 15-16).

RANBooster was implemented on both DPDK (kernel bypass, poll-mode, a full
core per queue) and XDP (in-kernel, interrupt-driven, with a userspace
AF_XDP component for heavyweight actions).  These models translate the
per-packet :class:`~repro.core.actions.ActionTrace` records into CPU time,
utilization and deadline behaviour:

- **DPDK**: per-packet time is the plain sum of action costs; utilization
  is always 100% because of the poll-mode driver.
- **XDP**: kernel-capable actions pay an eBPF factor; packets whose trace
  needs a userspace action additionally pay the AF_XDP redirect, wakeup
  syscall, and copy; jumbo frames pay a multi-buffer penalty; utilization
  is traffic-proportional because the driver is interrupt-driven.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable

from repro.core.actions import ActionTrace, ExecLocation
from repro.core.latency import DEFAULT_XDP_OVERHEADS, XdpOverheads


class DatapathKind(enum.Enum):
    DPDK = "dpdk"
    XDP = "xdp"


@dataclass
class PacketWork:
    """One packet's workload as seen by a datapath."""

    trace: ActionTrace
    wire_bytes: int


class DpdkDatapath:
    """Kernel-bypass poll-mode datapath.

    ``cpu_utilization`` is 1.0 per dedicated core regardless of traffic —
    the defining cost of DPDK that Figure 16 plots.
    """

    kind = DatapathKind.DPDK

    def packet_time_ns(self, work: PacketWork) -> float:
        return work.trace.total_ns()

    def cpu_utilization(
        self, works: Iterable[PacketWork], interval_ns: float, cores: int = 1
    ) -> float:
        """Utilization of the polling core(s): always fully busy."""
        if cores < 1:
            raise ValueError("at least one core required")
        return 1.0

    def busy_fraction(
        self, works: Iterable[PacketWork], interval_ns: float, cores: int = 1
    ) -> float:
        """Fraction of cycles doing useful work (vs empty polling)."""
        total = sum(self.packet_time_ns(w) for w in works)
        return min(total / (interval_ns * cores), 1.0)


class XdpDatapath:
    """In-kernel interrupt-driven datapath with an AF_XDP userspace path."""

    kind = DatapathKind.XDP

    def __init__(self, overheads: XdpOverheads = DEFAULT_XDP_OVERHEADS):
        self.overheads = overheads

    def packet_time_ns(self, work: PacketWork) -> float:
        o = self.overheads
        kernel_ns = sum(
            e.cost_ns
            for e in work.trace.events
            if e.location is ExecLocation.KERNEL
        )
        user_ns = sum(
            e.cost_ns
            for e in work.trace.events
            if e.location is ExecLocation.USERSPACE
        )
        time_ns = o.interrupt_ns + kernel_ns * o.kernel_factor
        if work.trace.needs_userspace():
            time_ns += (
                o.af_xdp_redirect_ns
                + o.wakeup_syscall_ns
                + o.copy_ns_per_kb * (work.wire_bytes / 1024.0)
                + user_ns
            )
        if work.wire_bytes > o.jumbo_threshold_bytes:
            time_ns += o.jumbo_multibuffer_ns
        return time_ns

    def supports_frame(self, wire_bytes: int, max_mtu: int = 3498) -> bool:
        """XDP multi-buffer limits: the paper notes the XDP version "can
        currently only handle smaller bandwidths" — 100 MHz frames exceed
        the driver's supported frame size."""
        return wire_bytes <= max_mtu

    def cpu_utilization(
        self, works: Iterable[PacketWork], interval_ns: float, cores: int = 1
    ) -> float:
        """Interrupt-driven: utilization tracks offered load."""
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        total = sum(self.packet_time_ns(w) for w in works)
        return min(total / (interval_ns * cores), 1.0)


@dataclass(frozen=True)
class ScalabilityPoint:
    """One point of the Figure 15a scalability analysis."""

    n_rus: int
    per_slot_processing_ns: float
    cores_required: int
    ingress_gbps: float
    egress_gbps: float


def cores_required(
    per_slot_processing_ns: float,
    slot_budget_ns: float = 30_000.0,
) -> int:
    """Cores needed to bound added latency below the slot deadline.

    Uplink merge work parallelizes across RU antennas (Section 6.4.1:
    "each CPU core handles only a subset of the RU antennas"), so doubling
    cores halves the critical-path processing time.
    """
    if per_slot_processing_ns <= 0:
        return 1
    return max(1, math.ceil(per_slot_processing_ns / slot_budget_ns))


def deadline_violated(
    per_slot_processing_ns: float,
    cores: int,
    slot_budget_ns: float = 30_000.0,
) -> bool:
    """Whether the per-slot middlebox work misses the vRAN deadline."""
    if cores < 1:
        raise ValueError("at least one core required")
    return (per_slot_processing_ns / cores) > slot_budget_ns
