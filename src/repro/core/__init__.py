"""The RANBooster middlebox framework (the paper's core contribution).

- :mod:`repro.core.actions` -- the four processing actions: A1 packet
  redirection/drop, A2 replication, A3 caching, A4 payload inspection and
  modification (Section 3.2.1), each with cost accounting.
- :mod:`repro.core.middlebox` -- the templated middlebox base class
  developers specialize with C-/U-plane handlers (Section 3.2.2).
- :mod:`repro.core.chain` -- middlebox chaining over an SR-IOV style
  embedded switch (Section 5, Figure 8).
- :mod:`repro.core.telemetry` -- the monitoring interface middleboxes
  expose to applications.
- :mod:`repro.core.management` -- on-the-fly rule/configuration changes.
- :mod:`repro.core.latency` -- the per-action latency cost model
  (calibrated to Figure 15b).
- :mod:`repro.core.datapath` -- DPDK and XDP execution models: CPU
  utilization, deadlines, kernel/userspace placement (Figures 15-16).
"""

from repro.core.actions import ActionContext, ActionKind, ActionTrace, PacketCache
from repro.core.middlebox import Emission, Middlebox, MiddleboxStats
from repro.core.chain import FronthaulSwitch, MiddleboxChain, PortRole
from repro.core.telemetry import TelemetryBus, TelemetryRecord
from repro.core.management import ManagementInterface
from repro.core.latency import ActionCostModel, DEFAULT_COST_MODEL
from repro.core.datapath import (
    DatapathKind,
    DpdkDatapath,
    ExecLocation,
    XdpDatapath,
)

__all__ = [
    "ActionContext",
    "ActionKind",
    "ActionTrace",
    "PacketCache",
    "Emission",
    "Middlebox",
    "MiddleboxStats",
    "FronthaulSwitch",
    "MiddleboxChain",
    "PortRole",
    "TelemetryBus",
    "TelemetryRecord",
    "ManagementInterface",
    "ActionCostModel",
    "DEFAULT_COST_MODEL",
    "DatapathKind",
    "DpdkDatapath",
    "XdpDatapath",
    "ExecLocation",
]
