"""Middlebox deployment and chaining (Section 5, Figure 8).

A :class:`FronthaulSwitch` models the SR-IOV embedded switch of the NIC:
endpoints (DUs, RUs) and middlebox virtual functions attach to ports, and
frames are delivered by destination MAC.  A :class:`MiddleboxChain` runs
packets through an ordered sequence of middleboxes — the RU-sharing ⊕ DAS
composition of Figure 12 is exactly ``MiddleboxChain([sharing, das])``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.middlebox import Middlebox
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import FronthaulPacket


class PortRole(enum.Enum):
    DU = "du"
    RU = "ru"
    MIDDLEBOX = "middlebox"


@dataclass
class SwitchPort:
    """One port of the embedded switch (a VF or a physical endpoint)."""

    name: str
    role: PortRole
    macs: Tuple[MacAddress, ...]
    deliver: Callable[[FronthaulPacket], None]
    tx_bytes: int = 0
    rx_bytes: int = 0


class SwitchLoopError(Exception):
    """A frame traversed more hops than the switch allows (loop guard)."""


class FronthaulSwitch:
    """MAC-learning-free switch: delivery strictly by registered MACs.

    Middleboxes are *bumps in the wire*: a middlebox port can be
    interposed on specific MACs so that frames towards those MACs are
    handed to the middlebox instead of the endpoint; the middlebox's
    emissions re-enter the switch (the SR-IOV hairpin of Figure 8).
    """

    MAX_HOPS = 16

    def __init__(self):
        self._ports: Dict[str, SwitchPort] = {}
        self._mac_table: Dict[int, str] = {}
        self._interpositions: Dict[int, List[str]] = {}

    def attach(
        self,
        name: str,
        role: PortRole,
        macs: Sequence[MacAddress],
        deliver: Callable[[FronthaulPacket], None],
    ) -> SwitchPort:
        if name in self._ports:
            raise ValueError(f"port {name!r} already attached")
        port = SwitchPort(name=name, role=role, macs=tuple(macs), deliver=deliver)
        self._ports[name] = port
        for mac in macs:
            self._mac_table[mac.to_int()] = name
        return port

    def interpose(self, middlebox_port: str, macs: Sequence[MacAddress]) -> None:
        """Steer frames addressed to ``macs`` through a middlebox port.

        Multiple interpositions on the same MAC form a chain: frames pass
        through them in registration order before reaching the endpoint.
        """
        if middlebox_port not in self._ports:
            raise KeyError(f"unknown port {middlebox_port!r}")
        for mac in macs:
            chain = self._interpositions.setdefault(mac.to_int(), [])
            if middlebox_port in chain:
                raise ValueError(
                    f"port {middlebox_port!r} already interposed on {mac}"
                )
            chain.append(middlebox_port)

    def inject(
        self,
        packet: FronthaulPacket,
        from_port: str,
        _hops: int = 0,
        _chain_index: Optional[int] = None,
    ) -> None:
        """Switch a frame: deliver to the next interposed middlebox or the
        endpoint owning the destination MAC."""
        if _hops > self.MAX_HOPS:
            raise SwitchLoopError(f"frame exceeded {self.MAX_HOPS} hops")
        dst = packet.eth.dst.to_int()
        chain = self._interpositions.get(dst, [])
        position = 0 if _chain_index is None else _chain_index
        # Find the next middlebox in the chain after the sender.
        if from_port in chain:
            position = chain.index(from_port) + 1
        if position < len(chain) and chain[position] != from_port:
            target = self._ports[chain[position]]
        else:
            owner = self._mac_table.get(dst)
            if owner is None:
                return  # unknown MAC: flood suppressed, frame dies
            target = self._ports[owner]
            if target.name == from_port:
                return
        size = packet.wire_size
        self._ports[from_port].tx_bytes += size
        target.rx_bytes += size
        target.deliver(packet)

    def port(self, name: str) -> SwitchPort:
        return self._ports[name]

    def ports(self) -> List[SwitchPort]:
        return list(self._ports.values())


class MiddleboxChain:
    """An ordered composition of middleboxes (service chaining).

    ``process_downlink`` pushes packets through boxes in order (towards
    the RUs); ``process_uplink`` through the reverse order (towards the
    DUs), matching Figure 8's bidirectional chain over one NIC.
    """

    def __init__(self, middleboxes: Sequence[Middlebox]):
        if not middleboxes:
            raise ValueError("a chain needs at least one middlebox")
        self.middleboxes = list(middleboxes)

    def process_downlink(
        self, packets: List[FronthaulPacket]
    ) -> List[FronthaulPacket]:
        current = list(packets)
        for middlebox in self.middleboxes:
            current = middlebox.process_burst(current)
        return current

    def process_uplink(
        self, packets: List[FronthaulPacket]
    ) -> List[FronthaulPacket]:
        current = list(packets)
        for middlebox in reversed(self.middleboxes):
            current = middlebox.process_burst(current)
        return current

    def total_processing_ns(self) -> float:
        return sum(m.stats.processing_ns_total for m in self.middleboxes)
