"""Middlebox deployment and chaining (Section 5, Figure 8).

A :class:`FronthaulSwitch` models the SR-IOV embedded switch of the NIC:
endpoints (DUs, RUs) and middlebox virtual functions attach to ports, and
frames are delivered by destination MAC.  A :class:`MiddleboxChain` runs
packets through an ordered sequence of middleboxes — the RU-sharing ⊕ DAS
composition of Figure 12 is exactly ``MiddleboxChain([sharing, das])``.

Both are instrumented against :mod:`repro.obs`: the switch keeps per-port
byte/packet/drop counters, the chain records per-stage latency
propagation (how modelled latency accumulates along the chain).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs as obs_module
from repro.core.middlebox import Middlebox
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import FronthaulPacket
from repro.obs import Observability


class PortRole(enum.Enum):
    DU = "du"
    RU = "ru"
    MIDDLEBOX = "middlebox"


@dataclass
class SwitchPort:
    """One port of the embedded switch (a VF or a physical endpoint)."""

    name: str
    role: PortRole
    macs: Tuple[MacAddress, ...]
    deliver: Callable[[FronthaulPacket], None]
    tx_bytes: int = 0
    rx_bytes: int = 0
    tx_packets: int = 0
    rx_packets: int = 0
    #: Frames this port injected that died in the fabric (unknown MAC or
    #: hairpin back to the sender).
    dropped_frames: int = 0


class SwitchLoopError(Exception):
    """A frame traversed more hops than the switch allows (loop guard)."""


class FronthaulSwitch:
    """MAC-learning-free switch: delivery strictly by registered MACs.

    Middleboxes are *bumps in the wire*: a middlebox port can be
    interposed on specific MACs so that frames towards those MACs are
    handed to the middlebox instead of the endpoint; the middlebox's
    emissions re-enter the switch (the SR-IOV hairpin of Figure 8).
    """

    MAX_HOPS = 16

    def __init__(
        self, name: str = "fabric", obs: Optional[Observability] = None
    ):
        self.name = name
        self.obs = obs if obs is not None else obs_module.DEFAULT_OBSERVABILITY
        self._ports: Dict[str, SwitchPort] = {}
        self._mac_table: Dict[int, str] = {}
        self._interpositions: Dict[int, List[str]] = {}

    def attach(
        self,
        name: str,
        role: PortRole,
        macs: Sequence[MacAddress],
        deliver: Callable[[FronthaulPacket], None],
    ) -> SwitchPort:
        if name in self._ports:
            raise ValueError(f"port {name!r} already attached")
        port = SwitchPort(name=name, role=role, macs=tuple(macs), deliver=deliver)
        self._ports[name] = port
        for mac in macs:
            self._mac_table[mac.to_int()] = name
        return port

    def interpose(self, middlebox_port: str, macs: Sequence[MacAddress]) -> None:
        """Steer frames addressed to ``macs`` through a middlebox port.

        Multiple interpositions on the same MAC form a chain: frames pass
        through them in registration order before reaching the endpoint.
        """
        if middlebox_port not in self._ports:
            raise KeyError(f"unknown port {middlebox_port!r}")
        for mac in macs:
            chain = self._interpositions.setdefault(mac.to_int(), [])
            if middlebox_port in chain:
                raise ValueError(
                    f"port {middlebox_port!r} already interposed on {mac}"
                )
            chain.append(middlebox_port)

    def _count_drop(self, from_port: str) -> None:
        self._ports[from_port].dropped_frames += 1
        if self.obs.enabled:
            self.obs.registry.counter(
                "switch_drops_total",
                "frames that died in the switch fabric per injecting port",
                labels=("switch", "port"),
            ).labels(self.name, from_port).inc()

    def inject(
        self,
        packet: FronthaulPacket,
        from_port: str,
        _hops: int = 0,
        _chain_index: Optional[int] = None,
    ) -> None:
        """Switch a frame: deliver to the next interposed middlebox or the
        endpoint owning the destination MAC."""
        if _hops > self.MAX_HOPS:
            if self.obs.enabled:
                self.obs.registry.counter(
                    "switch_loop_errors_total",
                    "frames killed by the hop-count loop guard",
                    labels=("switch",),
                ).labels(self.name).inc()
            raise SwitchLoopError(f"frame exceeded {self.MAX_HOPS} hops")
        dst = packet.eth.dst.to_int()
        chain = self._interpositions.get(dst, [])
        position = 0 if _chain_index is None else _chain_index
        # Find the next middlebox in the chain after the sender.
        if from_port in chain:
            position = chain.index(from_port) + 1
        if position < len(chain) and chain[position] != from_port:
            target = self._ports[chain[position]]
        else:
            owner = self._mac_table.get(dst)
            if owner is None:
                self._count_drop(from_port)
                return  # unknown MAC: flood suppressed, frame dies
            target = self._ports[owner]
            if target.name == from_port:
                self._count_drop(from_port)
                return
        size = packet.wire_size
        source = self._ports[from_port]
        source.tx_bytes += size
        source.tx_packets += 1
        target.rx_bytes += size
        target.rx_packets += 1
        if self.obs.enabled:
            registry = self.obs.registry
            bytes_total = registry.counter(
                "switch_port_bytes_total",
                "wire bytes per switch port and direction",
                labels=("switch", "port", "direction"),
            )
            packets_total = registry.counter(
                "switch_port_packets_total",
                "frames per switch port and direction",
                labels=("switch", "port", "direction"),
            )
            bytes_total.labels(self.name, from_port, "tx").inc(size)
            bytes_total.labels(self.name, target.name, "rx").inc(size)
            packets_total.labels(self.name, from_port, "tx").inc()
            packets_total.labels(self.name, target.name, "rx").inc()
        target.deliver(packet)

    def port(self, name: str) -> SwitchPort:
        return self._ports[name]

    def ports(self) -> List[SwitchPort]:
        return list(self._ports.values())


class MiddleboxChain:
    """An ordered composition of middleboxes (service chaining).

    ``process_downlink`` pushes packets through boxes in order (towards
    the RUs); ``process_uplink`` through the reverse order (towards the
    DUs), matching Figure 8's bidirectional chain over one NIC.

    When observability is enabled, every burst records per-stage latency
    propagation: the modelled time each stage added and the cumulative
    latency a packet has accumulated when it leaves that stage.
    """

    def __init__(
        self,
        middleboxes: Sequence[Middlebox],
        name: str = "chain",
        obs: Optional[Observability] = None,
    ):
        if not middleboxes:
            raise ValueError("a chain needs at least one middlebox")
        self.middleboxes = list(middleboxes)
        self.name = name
        self.obs = obs if obs is not None else obs_module.DEFAULT_OBSERVABILITY
        for stage, middlebox in enumerate(self.middleboxes):
            middlebox.chain_stage = stage

    def _run(
        self, packets: List[FronthaulPacket], boxes: Sequence[Middlebox],
        direction: str,
    ) -> List[FronthaulPacket]:
        current = list(packets)
        if not self.obs.enabled:
            for middlebox in boxes:
                current = middlebox.process_burst(current)
            return current
        registry = self.obs.registry
        stage_ns = registry.histogram(
            "chain_stage_burst_ns",
            "modelled processing added by each chain stage per burst",
            labels=("chain", "stage", "direction"),
        )
        cumulative_ns = registry.histogram(
            "chain_cumulative_burst_ns",
            "modelled latency accumulated through the chain per burst",
            labels=("chain", "stage", "direction"),
        )
        packets_total = registry.counter(
            "chain_packets_total",
            "packets entering the chain per direction",
            labels=("chain", "direction"),
        )
        packets_total.labels(self.name, direction).inc(len(current))
        cumulative = 0.0
        for middlebox in boxes:
            before_ns = middlebox.stats.processing_ns_total
            current = middlebox.process_burst(current)
            added = middlebox.stats.processing_ns_total - before_ns
            cumulative += added
            stage = f"{middlebox.chain_stage}:{middlebox.name}"
            stage_ns.labels(self.name, stage, direction).observe(added)
            cumulative_ns.labels(self.name, stage, direction).observe(cumulative)
        return current

    def process_downlink(
        self, packets: List[FronthaulPacket]
    ) -> List[FronthaulPacket]:
        return self._run(packets, self.middleboxes, "DL")

    def process_uplink(
        self, packets: List[FronthaulPacket]
    ) -> List[FronthaulPacket]:
        return self._run(packets, list(reversed(self.middleboxes)), "UL")

    def total_processing_ns(self) -> float:
        return sum(m.stats.processing_ns_total for m in self.middleboxes)
