"""Middlebox deployment and chaining (Section 5, Figure 8).

A :class:`FronthaulSwitch` models the SR-IOV embedded switch of the NIC:
endpoints (DUs, RUs) and middlebox virtual functions attach to ports, and
frames are delivered by destination MAC.  A :class:`MiddleboxChain` runs
packets through an ordered sequence of middleboxes — the RU-sharing ⊕ DAS
composition of Figure 12 is exactly ``MiddleboxChain([sharing, das])``.

Both are instrumented against :mod:`repro.obs`: the switch keeps per-port
byte/packet/drop counters, the chain records per-stage latency
propagation (how modelled latency accumulates along the chain).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs as obs_module
from repro.core.middlebox import Middlebox
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import FronthaulPacket
from repro.obs import Observability


class PortRole(enum.Enum):
    DU = "du"
    RU = "ru"
    MIDDLEBOX = "middlebox"


@dataclass
class SwitchPort:
    """One port of the embedded switch (a VF or a physical endpoint)."""

    name: str
    role: PortRole
    macs: Tuple[MacAddress, ...]
    deliver: Callable[[FronthaulPacket], None]
    tx_bytes: int = 0
    rx_bytes: int = 0
    tx_packets: int = 0
    rx_packets: int = 0
    #: Frames this port injected that died in the fabric (unknown MAC or
    #: hairpin back to the sender).
    dropped_frames: int = 0
    #: Frames whose delivery raised ``ValueError`` (a parser rejected the
    #: bytes): counted here and swallowed instead of crashing the fabric.
    malformed_frames: int = 0
    #: Frames absorbed by a fault injector installed on this port's wire.
    impaired_frames: int = 0


class SwitchLoopError(Exception):
    """A frame traversed more hops than the switch allows (loop guard)."""


class BreakerState(enum.Enum):
    """Circuit-breaker states for one chain stage."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: Numeric encoding of breaker states for the obs gauge.
BREAKER_STATE_VALUE = {
    BreakerState.CLOSED: 0,
    BreakerState.OPEN: 1,
    BreakerState.HALF_OPEN: 2,
}


class CircuitBreaker:
    """Fail-open circuit breaker for one middlebox stage.

    ``failure_threshold`` consecutive faults open the breaker; while
    open, the next ``probation_packets`` admissions are refused (the
    stage is bypassed), after which one probe packet is admitted in
    half-open state.  A successful probe closes the breaker; a failed
    probe re-opens it for another probation period.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        probation_packets: int = 16,
        on_transition: Optional[
            Callable[[BreakerState, BreakerState], None]
        ] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if probation_packets < 0:
            raise ValueError("probation_packets must be >= 0")
        self.failure_threshold = failure_threshold
        self.probation_packets = probation_packets
        self.on_transition = on_transition
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opens = 0
        self.recoveries = 0
        self._open_remaining = 0

    def _transition(self, to: BreakerState) -> None:
        previous = self.state
        self.state = to
        if to is BreakerState.OPEN:
            self.opens += 1
            self._open_remaining = self.probation_packets
        elif to is BreakerState.CLOSED and previous is BreakerState.HALF_OPEN:
            self.recoveries += 1
        if self.on_transition is not None:
            self.on_transition(previous, to)

    def admit(self) -> bool:
        """Should the stage see the next packet?"""
        if self.state is not BreakerState.OPEN:
            return True
        if self._open_remaining > 0:
            self._open_remaining -= 1
            return False
        self._transition(BreakerState.HALF_OPEN)
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.OPEN)
        elif (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._transition(BreakerState.OPEN)


class FronthaulSwitch:
    """MAC-learning-free switch: delivery strictly by registered MACs.

    Middleboxes are *bumps in the wire*: a middlebox port can be
    interposed on specific MACs so that frames towards those MACs are
    handed to the middlebox instead of the endpoint; the middlebox's
    emissions re-enter the switch (the SR-IOV hairpin of Figure 8).
    """

    MAX_HOPS = 16

    def __init__(
        self, name: str = "fabric", obs: Optional[Observability] = None
    ):
        self.name = name
        self.obs = obs if obs is not None else obs_module.DEFAULT_OBSERVABILITY
        self._ports: Dict[str, SwitchPort] = {}
        self._mac_table: Dict[int, str] = {}
        self._interpositions: Dict[int, List[str]] = {}
        #: Per-port fault injectors (repro.faults.FaultInjector) applied
        #: to frames on their way into the port's device.
        self._impairments: Dict[str, object] = {}
        #: Resolved per-(port, direction) byte/packet counter children,
        #: keyed by the registry they came from (streaming runs swap
        #: registries) — this path runs once per delivered frame.
        self._port_children: tuple = (None, {})

    def attach(
        self,
        name: str,
        role: PortRole,
        macs: Sequence[MacAddress],
        deliver: Callable[[FronthaulPacket], None],
    ) -> SwitchPort:
        if name in self._ports:
            raise ValueError(f"port {name!r} already attached")
        port = SwitchPort(name=name, role=role, macs=tuple(macs), deliver=deliver)
        self._ports[name] = port
        for mac in macs:
            self._mac_table[mac.to_int()] = name
        return port

    def interpose(self, middlebox_port: str, macs: Sequence[MacAddress]) -> None:
        """Steer frames addressed to ``macs`` through a middlebox port.

        Multiple interpositions on the same MAC form a chain: frames pass
        through them in registration order before reaching the endpoint.
        """
        if middlebox_port not in self._ports:
            raise KeyError(f"unknown port {middlebox_port!r}")
        for mac in macs:
            chain = self._interpositions.setdefault(mac.to_int(), [])
            if middlebox_port in chain:
                raise ValueError(
                    f"port {middlebox_port!r} already interposed on {mac}"
                )
            chain.append(middlebox_port)

    def impair(self, port: str, injector):
        """Install a fault injector on the wire into ``port``; returns it.

        ``injector`` may be a live injector object — duck-typed
        (``apply_one`` + ``stats.absorbed``, as
        :class:`repro.faults.FaultInjector` provides) so the core layer
        stays independent of the faults package — or a *declarative
        spec*: the name of a registered fault kind (``"iid_loss"``) or a
        dict (``{"kind": "iid_loss", "rate": 0.01, "seed": 7}``) resolved
        through the fault registry of :mod:`repro.faults.registry`.
        """
        if port not in self._ports:
            raise KeyError(f"unknown port {port!r}")
        if isinstance(injector, (str, dict)):
            # Lazy import: only spec-based impairment pulls in the faults
            # package; live-object installs keep the core standalone.
            from repro.faults.registry import injector_from_spec

            injector = injector_from_spec(injector)
        self._impairments[port] = injector
        return injector

    def _port_counters(self, port: str, direction: str) -> tuple:
        """The (bytes, packets) counter children for one port direction.

        Cached per registry: ``inject`` runs this once per delivered
        frame, and re-resolving families and label children there is
        measurably slower than a dict hit.
        """
        registry = self.obs.registry
        cached_registry, children = self._port_children
        if cached_registry is not registry:
            children = {}
            self._port_children = (registry, children)
        pair = children.get((port, direction))
        if pair is None:
            pair = (
                registry.counter(
                    "switch_port_bytes_total",
                    "wire bytes per switch port and direction",
                    labels=("switch", "port", "direction"),
                ).labels(self.name, port, direction),
                registry.counter(
                    "switch_port_packets_total",
                    "frames per switch port and direction",
                    labels=("switch", "port", "direction"),
                ).labels(self.name, port, direction),
            )
            children[(port, direction)] = pair
        return pair

    def _count_drop(self, from_port: str) -> None:
        self._ports[from_port].dropped_frames += 1
        if self.obs.enabled:
            self.obs.registry.counter(
                "switch_drops_total",
                "frames that died in the switch fabric per injecting port",
                labels=("switch", "port"),
            ).labels(self.name, from_port).inc()

    def inject(
        self,
        packet: FronthaulPacket,
        from_port: str,
        _hops: int = 0,
        _chain_index: Optional[int] = None,
    ) -> None:
        """Switch a frame: deliver to the next interposed middlebox or the
        endpoint owning the destination MAC."""
        if _hops > self.MAX_HOPS:
            if self.obs.enabled:
                self.obs.registry.counter(
                    "switch_loop_errors_total",
                    "frames killed by the hop-count loop guard",
                    labels=("switch",),
                ).labels(self.name).inc()
            raise SwitchLoopError(f"frame exceeded {self.MAX_HOPS} hops")
        dst = packet.eth.dst.to_int()
        chain = self._interpositions.get(dst, [])
        position = 0 if _chain_index is None else _chain_index
        # Find the next middlebox in the chain after the sender.
        if from_port in chain:
            position = chain.index(from_port) + 1
        if position < len(chain) and chain[position] != from_port:
            target = self._ports[chain[position]]
        else:
            owner = self._mac_table.get(dst)
            if owner is None:
                self._count_drop(from_port)
                return  # unknown MAC: flood suppressed, frame dies
            target = self._ports[owner]
            if target.name == from_port:
                self._count_drop(from_port)
                return
        injector = self._impairments.get(target.name)
        if injector is None:
            deliveries = [packet]
        else:
            absorbed_before = injector.stats.absorbed
            deliveries = injector.apply_one(packet)
            absorbed = injector.stats.absorbed - absorbed_before
            if absorbed:
                target.impaired_frames += absorbed
                if self.obs.enabled:
                    self.obs.registry.counter(
                        "switch_impaired_total",
                        "frames absorbed by the fault injector on a port",
                        labels=("switch", "port"),
                    ).labels(self.name, target.name).inc(absorbed)
            if not deliveries:
                return
        source = self._ports[from_port]
        if self.obs.enabled:
            tx_children = self._port_counters(from_port, "tx")
            rx_children = self._port_counters(target.name, "rx")
        else:
            tx_children = rx_children = None
        for frame in deliveries:
            size = frame.wire_size
            source.tx_bytes += size
            source.tx_packets += 1
            target.rx_bytes += size
            target.rx_packets += 1
            if tx_children is not None:
                tx_children[0].inc(size)
                tx_children[1].inc()
                rx_children[0].inc(size)
                rx_children[1].inc()
            try:
                target.deliver(frame)
            except ValueError:
                # A parser rejected the bytes (corrupted/truncated frame):
                # contain it here as a counted malformed drop instead of
                # letting it unwind the whole slot.
                target.malformed_frames += 1
                if tx_children is not None:
                    self.obs.registry.counter(
                        "switch_malformed_total",
                        "frames rejected by the receiving device's parser",
                        labels=("switch", "port"),
                    ).labels(self.name, target.name).inc()

    def port(self, name: str) -> SwitchPort:
        return self._ports[name]

    def ports(self) -> List[SwitchPort]:
        return list(self._ports.values())


class MiddleboxChain:
    """An ordered composition of middleboxes (service chaining).

    ``process_downlink`` pushes packets through boxes in order (towards
    the RUs); ``process_uplink`` through the reverse order (towards the
    DUs), matching Figure 8's bidirectional chain over one NIC.

    When observability is enabled, every burst records per-stage latency
    propagation: the modelled time each stage added and the cumulative
    latency a packet has accumulated when it leaves that stage.

    With ``isolate_faults`` (the default), a stage that raises becomes a
    counted drop instead of crashing the chain, and every stage gets a
    :class:`CircuitBreaker`: after ``breaker_threshold`` consecutive
    faults the stage is bypassed (packets pass through unprocessed) for
    ``breaker_probation`` packets, then probed half-open.
    """

    def __init__(
        self,
        middleboxes: Sequence[Middlebox],
        name: str = "chain",
        obs: Optional[Observability] = None,
        isolate_faults: bool = True,
        breaker_threshold: int = 5,
        breaker_probation: int = 16,
    ):
        if not middleboxes:
            raise ValueError("a chain needs at least one middlebox")
        self.middleboxes = list(middleboxes)
        self.name = name
        self.obs = obs if obs is not None else obs_module.DEFAULT_OBSERVABILITY
        self.isolate_faults = isolate_faults
        self.stage_faults = [0] * len(self.middleboxes)
        self.stage_bypassed = [0] * len(self.middleboxes)
        #: Packets that skipped a hold-capable stage because the caller
        #: passed ``deadline_flush=False`` (see :meth:`process_uplink`).
        self.hold_bypassed = 0
        #: Bounded log of ``(stage, middlebox, repr(exc))`` for post-mortems.
        self.fault_log: Deque[Tuple[int, str, str]] = deque(maxlen=64)
        self.breaker_events: List[Tuple[int, str, str]] = []
        self.breakers: List[CircuitBreaker] = []
        for stage, middlebox in enumerate(self.middleboxes):
            middlebox.chain_stage = stage
            self.breakers.append(
                CircuitBreaker(
                    failure_threshold=breaker_threshold,
                    probation_packets=breaker_probation,
                    on_transition=self._breaker_observer(stage, middlebox),
                )
            )

    def _breaker_observer(
        self, stage: int, middlebox: Middlebox
    ) -> Callable[[BreakerState, BreakerState], None]:
        stage_label = f"{stage}:{middlebox.name}"

        def observe(previous: BreakerState, state: BreakerState) -> None:
            self.breaker_events.append(
                (stage, previous.value, state.value)
            )
            if self.obs.enabled:
                registry = self.obs.registry
                registry.counter(
                    "chain_breaker_transitions_total",
                    "circuit-breaker state transitions per stage",
                    labels=("chain", "stage", "to"),
                ).labels(self.name, stage_label, state.value).inc()
                registry.gauge(
                    "chain_breaker_state",
                    "breaker state per stage (0 closed, 1 open, 2 half-open)",
                    labels=("chain", "stage"),
                ).labels(self.name, stage_label).set(
                    BREAKER_STATE_VALUE[state]
                )

        return observe

    def _run_stage(
        self,
        middlebox: Middlebox,
        packets: List[FronthaulPacket],
        direction: str,
    ) -> List[FronthaulPacket]:
        """Run one stage with per-packet fault isolation + breaker."""
        stage = middlebox.chain_stage
        breaker = self.breakers[stage]
        out: List[FronthaulPacket] = []
        for packet in packets:
            if not breaker.admit():
                # Breaker open: fail open — the packet skips the stage.
                self.stage_bypassed[stage] += 1
                if self.obs.enabled:
                    self.obs.registry.counter(
                        "chain_stage_bypassed_total",
                        "packets that skipped a stage with an open breaker",
                        labels=("chain", "stage"),
                    ).labels(self.name, f"{stage}:{middlebox.name}").inc()
                out.append(packet)
                continue
            try:
                processed = middlebox.process(packet)
            except Exception as exc:  # noqa: BLE001 — isolation boundary
                breaker.record_failure()
                self.stage_faults[stage] += 1
                self.fault_log.append((stage, middlebox.name, repr(exc)))
                if self.obs.enabled:
                    self.obs.registry.counter(
                        "chain_stage_faults_total",
                        "exceptions raised by a stage, absorbed as drops",
                        labels=("chain", "stage", "direction"),
                    ).labels(
                        self.name, f"{stage}:{middlebox.name}", direction
                    ).inc()
                continue
            breaker.record_success()
            out.extend(e.packet for e in processed.emissions)
        return out

    @property
    def total_stage_faults(self) -> int:
        return sum(self.stage_faults)

    def _run(
        self, packets: List[FronthaulPacket], boxes: Sequence[Middlebox],
        direction: str,
    ) -> List[FronthaulPacket]:
        current = list(packets)
        if not self.obs.enabled:
            for middlebox in boxes:
                if self.isolate_faults:
                    current = self._run_stage(middlebox, current, direction)
                else:
                    current = middlebox.process_burst(current)
            return current
        registry = self.obs.registry
        stage_ns = registry.histogram(
            "chain_stage_burst_ns",
            "modelled processing added by each chain stage per burst",
            labels=("chain", "stage", "direction"),
        )
        cumulative_ns = registry.histogram(
            "chain_cumulative_burst_ns",
            "modelled latency accumulated through the chain per burst",
            labels=("chain", "stage", "direction"),
        )
        packets_total = registry.counter(
            "chain_packets_total",
            "packets entering the chain per direction",
            labels=("chain", "direction"),
        )
        packets_total.labels(self.name, direction).inc(len(current))
        cumulative = 0.0
        for middlebox in boxes:
            before_ns = middlebox.stats.processing_ns_total
            if self.isolate_faults:
                current = self._run_stage(middlebox, current, direction)
            else:
                current = middlebox.process_burst(current)
            added = middlebox.stats.processing_ns_total - before_ns
            cumulative += added
            stage = f"{middlebox.chain_stage}:{middlebox.name}"
            stage_ns.labels(self.name, stage, direction).observe(added)
            cumulative_ns.labels(self.name, stage, direction).observe(cumulative)
        return current

    def _resolve_stage(self, source: Union[int, str, Middlebox]) -> int:
        """Stage index of ``source`` (an index, a middlebox, or its name)."""
        if isinstance(source, Middlebox):
            return source.chain_stage
        if isinstance(source, str):
            for middlebox in self.middleboxes:
                if middlebox.name == source:
                    return middlebox.chain_stage
            raise KeyError(f"no chain stage named {source!r}")
        stage = int(source)
        if not 0 <= stage <= len(self.middleboxes):
            raise IndexError(
                f"stage {stage} out of range for a "
                f"{len(self.middleboxes)}-stage chain"
            )
        return stage

    def process_downlink(
        self, packets: List[FronthaulPacket]
    ) -> List[FronthaulPacket]:
        return self._run(packets, self.middleboxes, "DL")

    def process_uplink(
        self,
        packets: List[FronthaulPacket],
        *,
        source: Optional[Union[int, str, Middlebox]] = None,
        deadline_flush: bool = True,
    ) -> List[FronthaulPacket]:
        """Run packets towards the DUs (reverse stage order).

        ``source`` names the stage that *emitted* the packets — a stage
        index, a middlebox instance, or a middlebox name.  Only stages
        below it (the uplink tail) run; ``None`` runs the full chain, the
        path of packets entering from the RU side.

        ``deadline_flush`` controls whether hold-capable stages — those
        exposing ``flush_deadline``, like the DAS merge — may capture
        packets from this burst.  The default ``True`` is normal
        traversal.  Deadline sweeps pass ``False`` so a merge that was
        already force-flushed at the slot boundary is never re-captured
        (and re-delayed) by another merge stage further down the chain;
        such stages are bypassed and counted in ``hold_bypassed``.
        """
        if source is None:
            boxes = list(reversed(self.middleboxes))
        else:
            boxes = list(reversed(self.middleboxes[: self._resolve_stage(source)]))
        if not deadline_flush:
            holding = [b for b in boxes if hasattr(b, "flush_deadline")]
            if holding:
                self.hold_bypassed += len(holding) * len(packets)
                boxes = [b for b in boxes if not hasattr(b, "flush_deadline")]
        if not boxes:
            return list(packets)
        return self._run(packets, boxes, "UL")

    def total_processing_ns(self) -> float:
        return sum(m.stats.processing_ns_total for m in self.middleboxes)
