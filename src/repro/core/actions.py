"""The four RANBooster processing actions (Section 3.2.1).

- **A1 packet redirection and drop** -- steering packets to a different
  DU or RU by rewriting Ethernet addresses / VLAN ids, or dropping them.
- **A2 packet replication** -- cloning a packet towards several
  destinations.
- **A3 packet caching** -- storing packets keyed by (time, direction,
  port) to combine with later arrivals.
- **A4 payload inspection and modification** -- reading/rewriting O-RAN
  header fields and raw IQ samples.

Every action invocation is recorded in an :class:`ActionTrace` with its
modelled cost and execution-location capability, which the datapath models
(Figures 15-16) consume.  The A4 helpers do the *real* work on real packet
bytes -- BFP decompression, element-wise IQ summing, PRB relocation -- so
middlebox correctness is exercised end to end.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.latency import DEFAULT_COST_MODEL, ActionCostModel
from repro.fronthaul.compression import merge_payloads
from repro.fronthaul.cplane import CPlaneMessage
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import FronthaulPacket
from repro.fronthaul.uplane import UPlaneSection


class ActionKind(enum.Enum):
    ROUTE = "A1.route"
    DROP = "A1.drop"
    REPLICATE = "A2.replicate"
    CACHE_PUT = "A3.cache_put"
    CACHE_GET = "A3.cache_get"
    INSPECT = "A4.inspect"
    HEADER_MODIFY = "A4.header_modify"
    READ_EXPONENTS = "A4.read_exponents"
    DECOMPRESS = "A4.decompress"
    COMPRESS = "A4.compress"
    IQ_MERGE = "A4.iq_merge"
    PRB_COPY = "A4.prb_copy"


class ExecLocation(enum.Enum):
    """Where an action can run in the XDP datapath (Section 5).

    Redirection, drops and simple header work run in the kernel XDP
    program; caching, replication and IQ modification are inefficient in
    eBPF and go to the userspace component over AF_XDP.
    """

    KERNEL = "kernel"
    USERSPACE = "userspace"


#: Capability map: the cheapest location each action kind can run at.
ACTION_LOCATION: Dict[ActionKind, ExecLocation] = {
    ActionKind.ROUTE: ExecLocation.KERNEL,
    ActionKind.DROP: ExecLocation.KERNEL,
    ActionKind.REPLICATE: ExecLocation.USERSPACE,
    ActionKind.CACHE_PUT: ExecLocation.USERSPACE,
    ActionKind.CACHE_GET: ExecLocation.USERSPACE,
    ActionKind.INSPECT: ExecLocation.KERNEL,
    ActionKind.HEADER_MODIFY: ExecLocation.KERNEL,
    ActionKind.READ_EXPONENTS: ExecLocation.KERNEL,
    ActionKind.DECOMPRESS: ExecLocation.USERSPACE,
    ActionKind.COMPRESS: ExecLocation.USERSPACE,
    ActionKind.IQ_MERGE: ExecLocation.USERSPACE,
    ActionKind.PRB_COPY: ExecLocation.USERSPACE,
}


@dataclass(frozen=True)
class ActionEvent:
    """One recorded action invocation."""

    kind: ActionKind
    cost_ns: float
    location: ExecLocation


@dataclass
class ActionTrace:
    """Per-packet record of the actions applied to it."""

    events: List[ActionEvent] = field(default_factory=list)

    def record(self, kind: ActionKind, cost_ns: float) -> None:
        self.events.append(ActionEvent(kind, cost_ns, ACTION_LOCATION[kind]))

    def total_ns(self) -> float:
        return sum(event.cost_ns for event in self.events)

    def needs_userspace(self) -> bool:
        return any(e.location is ExecLocation.USERSPACE for e in self.events)

    def kinds(self) -> List[ActionKind]:
        return [event.kind for event in self.events]


class PacketCache:
    """Action A3: packets stored by key until their peers arrive.

    Keys are typically ``(time, direction, ru_port)`` flow keys; the DAS
    middlebox caches per-RU uplink packets until all RUs reported, and the
    RU-sharing middlebox caches per-DU C-plane requests.
    """

    def __init__(self):
        self._store: Dict[Hashable, List[Tuple[Hashable, FronthaulPacket]]] = (
            defaultdict(list)
        )

    def put(self, key: Hashable, packet: FronthaulPacket, tag: Hashable = None) -> int:
        """Store a packet under ``key``; returns the new occupancy."""
        self._store[key].append((tag, packet))
        return len(self._store[key])

    def occupancy(self, key: Hashable) -> int:
        return len(self._store.get(key, ()))

    def peek(self, key: Hashable) -> List[Tuple[Hashable, FronthaulPacket]]:
        return list(self._store.get(key, ()))

    def tags(self, key: Hashable) -> List[Hashable]:
        return [tag for tag, _ in self._store.get(key, ())]

    def pop_all(self, key: Hashable) -> List[Tuple[Hashable, FronthaulPacket]]:
        return self._store.pop(key, [])

    def discard(self, key: Hashable) -> None:
        self._store.pop(key, None)

    def keys(self) -> List[Hashable]:
        return list(self._store)

    def __len__(self) -> int:
        return sum(len(v) for v in self._store.values())


@dataclass
class Emission:
    """A packet leaving the middlebox (after A1 resolution)."""

    packet: FronthaulPacket


class ActionContext:
    """The per-packet action API handed to middlebox handlers.

    Collects emissions and records an :class:`ActionTrace`.  Handlers call
    these methods instead of mutating packets ad hoc, which is what makes
    the latency/datapath accounting of Figures 15-16 possible.
    """

    def __init__(
        self,
        cache: PacketCache,
        cost_model: ActionCostModel = DEFAULT_COST_MODEL,
    ):
        self.cache_store = cache
        self.cost = cost_model
        self.trace = ActionTrace()
        self.emissions: List[Emission] = []

    # -- A1: redirection and drop -------------------------------------------

    def forward(
        self,
        packet: FronthaulPacket,
        dst: Optional[MacAddress] = None,
        src: Optional[MacAddress] = None,
    ) -> None:
        """Send a packet out, optionally rewriting its MAC addresses."""
        if dst is not None:
            packet.eth.dst = dst
        if src is not None:
            packet.eth.src = src
        self.trace.record(ActionKind.ROUTE, self.cost.forward_ns)
        self.emissions.append(Emission(packet))

    def drop(self, packet: FronthaulPacket) -> None:
        self.trace.record(ActionKind.DROP, self.cost.drop_ns)

    # -- A2: replication -------------------------------------------------------

    def replicate(self, packet: FronthaulPacket, copies: int) -> List[FronthaulPacket]:
        """Clone a packet ``copies`` times (the original stays usable)."""
        if copies < 0:
            raise ValueError("copies must be non-negative")
        self.trace.record(
            ActionKind.REPLICATE, self.cost.replicate_ns_per_copy * copies
        )
        return [packet.clone() for _ in range(copies)]

    # -- A3: caching ------------------------------------------------------------

    def cache_put(
        self, key: Hashable, packet: FronthaulPacket, tag: Hashable = None
    ) -> int:
        self.trace.record(ActionKind.CACHE_PUT, self.cost.cache_ns)
        return self.cache_store.put(key, packet, tag)

    def cache_pop_all(
        self, key: Hashable
    ) -> List[Tuple[Hashable, FronthaulPacket]]:
        self.trace.record(ActionKind.CACHE_GET, self.cost.cache_lookup_ns)
        return self.cache_store.pop_all(key)

    def cache_peek(
        self, key: Hashable
    ) -> List[Tuple[Hashable, FronthaulPacket]]:
        self.trace.record(ActionKind.CACHE_GET, self.cost.cache_lookup_ns)
        return self.cache_store.peek(key)

    # -- A4: inspection and modification ----------------------------------------

    def inspect(self, packet: FronthaulPacket) -> FronthaulPacket:
        """Read-only access to header fields (cost-tagged)."""
        self.trace.record(ActionKind.INSPECT, self.cost.inspect_ns)
        return packet

    def set_ru_port(self, packet: FronthaulPacket, ru_port: int) -> None:
        """Remap the eAxC RU-port id (the dMIMO antenna remap)."""
        packet.ecpri.eaxc = packet.ecpri.eaxc.with_ru_port(ru_port)
        self.trace.record(ActionKind.HEADER_MODIFY, self.cost.header_modify_ns)

    def set_cplane_num_prb(
        self, packet: FronthaulPacket, num_prb: int, start_prb: int = 0
    ) -> None:
        """Widen a C-plane request to ``num_prb`` PRBs (RU sharing)."""
        if not packet.is_cplane:
            raise ValueError("numPrb widening applies to C-plane packets")
        message: CPlaneMessage = packet.message
        for section in message.sections:
            section.start_prb = start_prb
            section.num_prb = num_prb
        self.trace.record(ActionKind.HEADER_MODIFY, self.cost.header_modify_ns)

    def set_section_fields(self, packet: FronthaulPacket, **fields) -> None:
        """Rewrite arbitrary section fields (freqOffset, sectionId, ...)."""
        for section in packet.message.sections:
            for name, value in fields.items():
                if not hasattr(section, name):
                    raise AttributeError(f"section has no field {name!r}")
                setattr(section, name, value)
        self.trace.record(ActionKind.HEADER_MODIFY, self.cost.header_modify_ns)

    def read_exponents(self, section: UPlaneSection) -> np.ndarray:
        """Per-PRB BFP exponents without decompressing (Algorithm 1)."""
        self.trace.record(
            ActionKind.READ_EXPONENTS,
            self.cost.exponent_read_ns_per_prb * section.num_prb,
        )
        return section.exponents()

    def decompress(self, section: UPlaneSection) -> np.ndarray:
        self.trace.record(
            ActionKind.DECOMPRESS, self.cost.decompress_cost(section.num_prb)
        )
        return section.iq_samples()

    def compress(self, section: UPlaneSection, samples: np.ndarray) -> UPlaneSection:
        self.trace.record(
            ActionKind.COMPRESS, self.cost.compress_cost(section.num_prb)
        )
        return section.replace_payload(samples)

    def merge_iq(self, sections: Sequence[UPlaneSection]) -> UPlaneSection:
        """Element-wise sum of the IQ samples of aligned sections.

        The DAS uplink combine (Section 4.1), batched: all N operand
        payloads are decompressed in ONE codec pass into an
        ``(n_rus, n_prbs, 24)`` stack, summed once with saturation, and
        recompressed once — no per-section decompress/recompress
        round-trips and no per-PRB Python loop.
        """
        if not sections:
            raise ValueError("nothing to merge")
        first = sections[0]
        for section in sections[1:]:
            if section.prb_range != first.prb_range:
                raise ValueError(
                    f"cannot merge misaligned sections {section.prb_range} "
                    f"vs {first.prb_range}"
                )
            if section.compression != first.compression:
                raise ValueError("cannot merge mixed compression configs")
        payload = merge_payloads(
            [section.payload for section in sections],
            first.num_prb,
            first.compression,
        )
        self.trace.record(
            ActionKind.IQ_MERGE,
            self.cost.merge_cost(first.num_prb, len(sections)),
        )
        return UPlaneSection(
            section_id=first.section_id,
            start_prb=first.start_prb,
            num_prb=first.num_prb,
            payload=payload,
            compression=first.compression,
        )

    def copy_prbs(
        self,
        source: UPlaneSection,
        destination: UPlaneSection,
        source_start_prb: int,
        dest_start_prb: int,
        num_prb: int,
        aligned: bool = True,
    ) -> UPlaneSection:
        """Relocate PRBs between sections (RU-sharing mux/demux).

        Aligned grids move the raw compressed bytes (exponent included);
        misaligned grids must decompress, shift, and recompress
        (Section 4.3, Figure 6).
        """
        self.trace.record(
            ActionKind.PRB_COPY, self.cost.prb_copy_cost(num_prb, aligned)
        )
        if aligned:
            prb_bytes = source.compression.prb_payload_bytes()
            if destination.compression != source.compression:
                raise ValueError("aligned copy requires identical compression")
            src_index = source_start_prb - source.start_prb
            dst_index = dest_start_prb - destination.start_prb
            if not (0 <= src_index and src_index + num_prb <= source.num_prb):
                raise ValueError("source PRB range out of bounds")
            if not (
                0 <= dst_index and dst_index + num_prb <= destination.num_prb
            ):
                raise ValueError("destination PRB range out of bounds")
            payload = bytearray(destination.payload)
            payload[
                dst_index * prb_bytes : (dst_index + num_prb) * prb_bytes
            ] = source.payload[
                src_index * prb_bytes : (src_index + num_prb) * prb_bytes
            ]
            return UPlaneSection(
                section_id=destination.section_id,
                start_prb=destination.start_prb,
                num_prb=destination.num_prb,
                payload=bytes(payload),
                compression=destination.compression,
            )
        # Misaligned: full decompress of both, sample-level move, recompress.
        src_samples = self.decompress(source)
        dst_samples = self.decompress(destination).copy()
        src_index = source_start_prb - source.start_prb
        dst_index = dest_start_prb - destination.start_prb
        dst_samples[dst_index : dst_index + num_prb] = src_samples[
            src_index : src_index + num_prb
        ]
        return self.compress(destination, dst_samples)

    def extract_prbs(
        self,
        source: UPlaneSection,
        source_start_prb: int,
        num_prb: int,
        section_id: int,
        dest_start_prb: int = 0,
    ) -> UPlaneSection:
        """Aligned extraction: carve a PRB range out of ``source`` as a new
        section sharing the original payload bytes (RU-sharing demux).

        Equivalent to allocating a zero section and :meth:`copy_prbs`-ing
        into it, but zero-copy: the new section's payload is a view over
        the source's wire bytes.
        """
        self.trace.record(
            ActionKind.PRB_COPY, self.cost.prb_copy_cost(num_prb, True)
        )
        view = source.prb_payload_view(source_start_prb, num_prb)
        return UPlaneSection(
            section_id=section_id,
            start_prb=dest_start_prb,
            num_prb=num_prb,
            payload=view,
            compression=source.compression,
        )

    def assemble_prbs(
        self,
        num_prb: int,
        placements: Sequence[Tuple[UPlaneSection, int]],
        compression,
        section_id: int = 0,
        start_prb: int = 0,
    ) -> UPlaneSection:
        """Aligned scatter: build one ``num_prb``-wide section by writing
        each source's wire bytes at its destination PRB index in a single
        output buffer (RU-sharing downlink mux).

        ``placements`` is a sequence of ``(source_section, dest_prb_index)``
        pairs.  Unwritten PRBs are idle (exponent 0, zero mantissas) —
        byte-identical to compressing a zero grid.  One allocation total,
        versus one full payload copy per operand with repeated
        :meth:`copy_prbs` calls.
        """
        prb_bytes = compression.prb_payload_bytes()
        payload = bytearray(num_prb * prb_bytes)
        for source, dest_index in placements:
            if source.compression != compression:
                raise ValueError("aligned assembly requires identical compression")
            if not (0 <= dest_index and dest_index + source.num_prb <= num_prb):
                raise ValueError("destination PRB range out of bounds")
            self.trace.record(
                ActionKind.PRB_COPY,
                self.cost.prb_copy_cost(source.num_prb, True),
            )
            payload[
                dest_index * prb_bytes : (dest_index + source.num_prb) * prb_bytes
            ] = source.payload
        return UPlaneSection(
            section_id=section_id,
            start_prb=start_prb,
            num_prb=num_prb,
            payload=bytes(payload),
            compression=compression,
        )
