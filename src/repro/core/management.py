"""Management interface: on-the-fly middlebox reconfiguration.

Middleboxes "expose monitoring and management interfaces to modify their
behavior on-the-fly (e.g., apply forwarding rules)" (Section 3.2).  The
interface is a typed key/value store with validation callbacks plus a
forwarding-rule table, so experiments can retarget a running middlebox
(e.g. add an RU to a DAS group) without reconstructing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.fronthaul.ethernet import MacAddress


@dataclass(frozen=True)
class ForwardingRule:
    """Steer packets matching a destination MAC to a new destination."""

    match_dst: MacAddress
    new_dst: MacAddress
    enabled: bool = True


class ValidationError(Exception):
    """A management update was rejected by the middlebox's validator."""


class ManagementInterface:
    """Runtime configuration endpoint of one middlebox."""

    def __init__(self, owner: str = ""):
        self.owner = owner
        self._values: Dict[str, Any] = {}
        self._validators: Dict[str, Callable[[Any], bool]] = {}
        self._rules: List[ForwardingRule] = []
        self._listeners: List[Callable[[str, Any], None]] = []

    def declare(
        self,
        key: str,
        default: Any,
        validator: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        """Register a configurable knob with an optional validator."""
        self._values[key] = default
        if validator is not None:
            self._validators[key] = validator

    def get(self, key: str) -> Any:
        if key not in self._values:
            raise KeyError(f"unknown management key {key!r}")
        return self._values[key]

    def set(self, key: str, value: Any) -> None:
        if key not in self._values:
            raise KeyError(f"unknown management key {key!r}")
        validator = self._validators.get(key)
        if validator is not None and not validator(value):
            raise ValidationError(f"value {value!r} rejected for key {key!r}")
        self._values[key] = value
        for listener in self._listeners:
            listener(key, value)

    def on_change(self, listener: Callable[[str, Any], None]) -> None:
        self._listeners.append(listener)

    def keys(self) -> List[str]:
        return sorted(self._values)

    # -- forwarding rules -----------------------------------------------------

    def add_rule(self, rule: ForwardingRule) -> None:
        self._rules.append(rule)

    def clear_rules(self) -> None:
        self._rules.clear()

    def resolve(self, dst: MacAddress) -> MacAddress:
        """Apply the first matching enabled rule (identity if none)."""
        for rule in self._rules:
            if rule.enabled and rule.match_dst == dst:
                return rule.new_dst
        return dst

    @property
    def rules(self) -> List[ForwardingRule]:
        return list(self._rules)
