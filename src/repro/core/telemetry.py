"""Telemetry: the monitoring interface middleboxes expose.

RANBooster middleboxes "expose monitoring and management interfaces ... to
send telemetry data to applications" (Section 3.2).  The bus is a simple
in-process pub/sub with retained history, which the PRB monitoring
middlebox publishes its utilization bitvectors to, and which experiment
harnesses subscribe to.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List


@dataclass(frozen=True)
class TelemetryRecord:
    """One published sample: topic, logical timestamp, payload."""

    topic: str
    timestamp_ns: float
    payload: Any
    source: str = ""


class TelemetryBus:
    """In-process pub/sub with per-topic retained history.

    History is a bounded ``deque`` per topic, so publishing stays O(1)
    even once a long run saturates the retention limit (the old list
    implementation re-sliced the whole history on every publish past the
    limit).
    """

    def __init__(self, history_limit: int = 100_000):
        if history_limit < 1:
            raise ValueError("history_limit must be >= 1")
        self._subscribers: Dict[str, List[Callable[[TelemetryRecord], None]]] = (
            defaultdict(list)
        )
        self._history_limit = history_limit
        self._history: Dict[str, Deque[TelemetryRecord]] = defaultdict(
            lambda: deque(maxlen=history_limit)
        )

    def publish(
        self, topic: str, payload: Any, timestamp_ns: float = 0.0, source: str = ""
    ) -> TelemetryRecord:
        record = TelemetryRecord(
            topic=topic, timestamp_ns=timestamp_ns, payload=payload, source=source
        )
        self._history[topic].append(record)
        for callback in self._subscribers[topic]:
            callback(record)
        return record

    def subscribe(
        self, topic: str, callback: Callable[[TelemetryRecord], None]
    ) -> None:
        self._subscribers[topic].append(callback)

    def unsubscribe(
        self, topic: str, callback: Callable[[TelemetryRecord], None]
    ) -> None:
        """Remove a previously registered callback.

        Experiment harnesses subscribe per run; without this they leaked
        callbacks (and their captured state) across runs on a shared bus.
        Raises ``ValueError`` if the callback is not subscribed.
        """
        try:
            self._subscribers[topic].remove(callback)
        except ValueError:
            raise ValueError(
                f"callback not subscribed to topic {topic!r}"
            ) from None

    def history(self, topic: str) -> List[TelemetryRecord]:
        return list(self._history[topic])

    def latest(self, topic: str) -> TelemetryRecord:
        history = self._history[topic]
        if not history:
            raise KeyError(f"no telemetry published on topic {topic!r}")
        return history[-1]

    def topics(self) -> List[str]:
        return sorted(self._history)
