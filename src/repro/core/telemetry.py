"""Telemetry: the monitoring interface middleboxes expose.

RANBooster middleboxes "expose monitoring and management interfaces ... to
send telemetry data to applications" (Section 3.2).  The bus is a simple
in-process pub/sub with retained history, which the PRB monitoring
middlebox publishes its utilization bitvectors to, and which experiment
harnesses subscribe to.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List


@dataclass(frozen=True)
class TelemetryRecord:
    """One published sample: topic, logical timestamp, payload."""

    topic: str
    timestamp_ns: float
    payload: Any
    source: str = ""


class TelemetryBus:
    """In-process pub/sub with per-topic retained history."""

    def __init__(self, history_limit: int = 100_000):
        self._subscribers: Dict[str, List[Callable[[TelemetryRecord], None]]] = (
            defaultdict(list)
        )
        self._history: Dict[str, List[TelemetryRecord]] = defaultdict(list)
        self._history_limit = history_limit

    def publish(
        self, topic: str, payload: Any, timestamp_ns: float = 0.0, source: str = ""
    ) -> TelemetryRecord:
        record = TelemetryRecord(
            topic=topic, timestamp_ns=timestamp_ns, payload=payload, source=source
        )
        history = self._history[topic]
        history.append(record)
        if len(history) > self._history_limit:
            del history[: len(history) - self._history_limit]
        for callback in self._subscribers[topic]:
            callback(record)
        return record

    def subscribe(
        self, topic: str, callback: Callable[[TelemetryRecord], None]
    ) -> None:
        self._subscribers[topic].append(callback)

    def history(self, topic: str) -> List[TelemetryRecord]:
        return list(self._history[topic])

    def latest(self, topic: str) -> TelemetryRecord:
        history = self._history[topic]
        if not history:
            raise KeyError(f"no telemetry published on topic {topic!r}")
        return history[-1]

    def topics(self) -> List[str]:
        return sorted(self._history)
