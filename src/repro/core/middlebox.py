"""The templated middlebox design (Section 3.2.2).

Developers subclass :class:`Middlebox` and implement ``on_cplane`` /
``on_uplane`` handlers using the :class:`~repro.core.actions.ActionContext`
API.  The base class supplies everything else: the packet cache, telemetry
and management interfaces, statistics, the per-packet action traces the
datapath models consume, and the flight-recorder instrumentation
(:mod:`repro.obs`) every packet is accounted against when observability
is enabled.  All four reference applications of the paper (and this repo)
are built from this one template.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import obs as obs_module
from repro.core.actions import (
    ActionContext,
    ActionTrace,
    Emission,
    PacketCache,
)
from repro.core.latency import DEFAULT_COST_MODEL, ActionCostModel
from repro.core.management import ManagementInterface
from repro.core.telemetry import TelemetryBus
from repro.fronthaul.cplane import Direction
from repro.fronthaul.packet import FronthaulPacket
from repro.obs import Observability, PacketSpan, SpanEvent, SpanKey


@dataclass
class MiddleboxStats:
    """Counters every middlebox maintains."""

    rx_packets: int = 0
    tx_packets: int = 0
    dropped_packets: int = 0
    rx_bytes: int = 0
    tx_bytes: int = 0
    processing_ns_total: float = 0.0

    def account_rx(self, packet: FronthaulPacket) -> int:
        """Count one received packet; returns its wire size in bytes."""
        wire_bytes = packet.wire_size
        self.rx_packets += 1
        self.rx_bytes += wire_bytes
        return wire_bytes

    def account_tx(self, emissions: List[Emission]) -> int:
        """Count emitted packets; returns the emitted wire bytes."""
        tx_bytes = sum(e.packet.wire_size for e in emissions)
        self.tx_packets += len(emissions)
        self.tx_bytes += tx_bytes
        return tx_bytes


@dataclass
class ProcessedPacket:
    """Result of running one packet through a middlebox."""

    emissions: List[Emission]
    trace: ActionTrace
    traffic_class: str = "other"


class Middlebox:
    """Base class of all RANBooster middleboxes.

    Subclasses implement :meth:`on_cplane` and :meth:`on_uplane`; the
    default for both is transparent forwarding, so an empty subclass is a
    valid (pass-through) middlebox.  ``carrier_num_prb`` gives handlers
    the context to resolve ``numPrb=0`` wire encodings.

    ``obs`` is the observability handle packets are accounted against;
    it defaults to the module-level (disabled) handle, in which case the
    per-packet cost is a single attribute check.

    ``stack_profile`` is the vendor stack profile
    (:class:`~repro.ran.stacks.VendorProfile`) of the deployment the
    middlebox serves, if known.  Middleboxes take no vendor-specific code
    paths (Section 6.2), but apps may derive configuration defaults from
    it (e.g. the fronthaul compression convention), and scenario-built
    deployments record it for reporting.  Every ``repro.apps`` middlebox
    accepts the same ``(name, obs, stack_profile)`` base keywords.
    """

    #: Human-readable application name (overridden by subclasses).
    app_name = "passthrough"

    def __init__(
        self,
        name: str = "",
        telemetry: Optional[TelemetryBus] = None,
        cost_model: ActionCostModel = DEFAULT_COST_MODEL,
        obs: Optional[Observability] = None,
        stack_profile=None,
    ):
        self.name = name or self.app_name
        self.telemetry = telemetry or TelemetryBus()
        self.cost_model = cost_model
        self.obs = obs if obs is not None else obs_module.DEFAULT_OBSERVABILITY
        self.stack_profile = stack_profile
        self.cache = PacketCache()
        self.management = ManagementInterface(owner=self.name)
        self.stats = MiddleboxStats()
        self.traces: List[ActionTrace] = []
        #: Wire size (bytes) of the packet behind each entry of ``traces``.
        self.trace_wire_bytes: List[int] = []
        #: Per-traffic-class traces for the Figure 15b breakdown.
        self.traces_by_class: Dict[str, List[ActionTrace]] = {}
        #: Position in an enclosing chain (set by MiddleboxChain).
        self.chain_stage: int = 0
        #: Resolved metric children per traffic class, keyed by the
        #: registry they came from (streaming runs swap registries).
        self._obs_children: tuple = (None, {})

    # -- handler hooks ---------------------------------------------------------

    def on_cplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        ctx.forward(packet)

    def on_uplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        ctx.forward(packet)

    # -- engine ------------------------------------------------------------------

    def process(self, packet: FronthaulPacket) -> ProcessedPacket:
        """Run one packet through the handler; returns emissions + trace."""
        obs = self.obs
        recording = obs.enabled
        start_ns = obs.clock() if recording else 0
        wire_bytes = self.stats.account_rx(packet)
        ctx = ActionContext(self.cache, self.cost_model)
        if packet.is_cplane:
            self.on_cplane(ctx, packet)
        else:
            self.on_uplane(ctx, packet)
        if not ctx.emissions:
            self.stats.dropped_packets += 1
        tx_bytes = self.stats.account_tx(ctx.emissions)
        modeled_ns = ctx.trace.total_ns()
        self.stats.processing_ns_total += modeled_ns
        traffic_class = classify(packet)
        self.traces.append(ctx.trace)
        self.trace_wire_bytes.append(wire_bytes)
        self.traces_by_class.setdefault(traffic_class, []).append(ctx.trace)
        if recording:
            self._observe(
                obs, packet, ctx, traffic_class, wire_bytes, tx_bytes,
                modeled_ns, start_ns,
            )
        return ProcessedPacket(
            emissions=ctx.emissions, trace=ctx.trace, traffic_class=traffic_class
        )

    def _observe(
        self,
        obs: Observability,
        packet: FronthaulPacket,
        ctx: ActionContext,
        traffic_class: str,
        wire_bytes: int,
        tx_bytes: int,
        modeled_ns: float,
        start_ns: int,
    ) -> None:
        """Account one processed packet in the metrics registry and, when
        sampled, leave a span in the flight recorder."""
        wall_ns = obs.clock() - start_ns
        registry = obs.registry
        cached_registry, by_class = self._obs_children
        if cached_registry is not registry:
            by_class = {}
            self._obs_children = (registry, by_class)
        children = by_class.get(traffic_class)
        if children is None:
            # tx and drops slots stay lazy (None) so their series still
            # appear in the registry only on first actual use.
            children = [
                registry.counter(
                    "middlebox_packets_total",
                    "packets processed per middlebox and traffic class",
                    labels=("middlebox", "class"),
                ).labels(self.name, traffic_class),
                registry.counter(
                    "middlebox_bytes_total",
                    "wire bytes through each middlebox by direction",
                    labels=("middlebox", "direction"),
                ).labels(self.name, "rx"),
                None,
                None,
                registry.histogram(
                    "middlebox_modeled_ns",
                    "modelled per-packet processing time (ActionCostModel)",
                    labels=("middlebox", "class"),
                ).labels(self.name, traffic_class),
                registry.histogram(
                    "middlebox_wall_ns",
                    "measured per-packet wall time of this Python "
                    "implementation",
                    labels=("middlebox", "class"),
                ).labels(self.name, traffic_class),
            ]
            by_class[traffic_class] = children
        children[0].inc()
        children[1].inc(wire_bytes)
        if tx_bytes:
            tx = children[2]
            if tx is None:
                tx = children[2] = registry.counter(
                    "middlebox_bytes_total",
                    "wire bytes through each middlebox by direction",
                    labels=("middlebox", "direction"),
                ).labels(self.name, "tx")
            tx.inc(tx_bytes)
        if not ctx.emissions:
            drops = children[3]
            if drops is None:
                drops = children[3] = registry.counter(
                    "middlebox_drops_total",
                    "packets absorbed (no emission) per middlebox",
                    labels=("middlebox",),
                ).labels(self.name)
            drops.inc()
        children[4].observe(modeled_ns)
        children[5].observe(wall_ns)
        if obs.should_sample():
            # Positional construction: this runs per sampled packet and
            # keyword dataclass calls are measurably slower.
            time = packet.time
            obs.recorder.record(
                PacketSpan(
                    SpanKey(
                        packet.ecpri.eaxc.to_int(),
                        time.frame,
                        time.subframe,
                        time.slot,
                        time.symbol,
                        "DL"
                        if packet.direction is Direction.DOWNLINK
                        else "UL",
                        packet.ecpri.seq_id,
                    ),
                    self.name,
                    traffic_class,
                    modeled_ns,
                    float(wall_ns),
                    start_ns,
                    tuple(
                        [
                            SpanEvent(
                                event.kind.value,
                                event.cost_ns,
                                event.location.value,
                            )
                            for event in ctx.trace.events
                        ]
                    ),
                    len(ctx.emissions),
                    not ctx.emissions,
                    self.chain_stage,
                )
            )

    def process_burst(
        self, packets: List[FronthaulPacket]
    ) -> List[FronthaulPacket]:
        """Convenience: process packets in order, return all emissions."""
        out: List[FronthaulPacket] = []
        for packet in packets:
            out.extend(e.packet for e in self.process(packet).emissions)
        return out

    def reset_traces(self) -> None:
        self.traces.clear()
        self.trace_wire_bytes.clear()
        self.traces_by_class.clear()
        self.stats.processing_ns_total = 0.0


def classify(packet: FronthaulPacket) -> str:
    """Traffic class labels used by Figure 15b."""
    plane = "C-Plane" if packet.is_cplane else "U-Plane"
    direction = "DL" if packet.direction is Direction.DOWNLINK else "UL"
    return f"{direction} {plane}"
