"""The templated middlebox design (Section 3.2.2).

Developers subclass :class:`Middlebox` and implement ``on_cplane`` /
``on_uplane`` handlers using the :class:`~repro.core.actions.ActionContext`
API.  The base class supplies everything else: the packet cache, telemetry
and management interfaces, statistics, and the per-packet action traces
the datapath models consume.  All four reference applications of the paper
(and this repo) are built from this one template.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.actions import (
    ActionContext,
    ActionTrace,
    Emission,
    PacketCache,
)
from repro.core.latency import DEFAULT_COST_MODEL, ActionCostModel
from repro.core.management import ManagementInterface
from repro.core.telemetry import TelemetryBus
from repro.fronthaul.cplane import Direction
from repro.fronthaul.packet import FronthaulPacket


@dataclass
class MiddleboxStats:
    """Counters every middlebox maintains."""

    rx_packets: int = 0
    tx_packets: int = 0
    dropped_packets: int = 0
    rx_bytes: int = 0
    tx_bytes: int = 0
    processing_ns_total: float = 0.0

    def account_tx(self, emissions: List[Emission]) -> None:
        self.tx_packets += len(emissions)
        self.tx_bytes += sum(e.packet.wire_size for e in emissions)


@dataclass
class ProcessedPacket:
    """Result of running one packet through a middlebox."""

    emissions: List[Emission]
    trace: ActionTrace
    traffic_class: str = "other"


class Middlebox:
    """Base class of all RANBooster middleboxes.

    Subclasses implement :meth:`on_cplane` and :meth:`on_uplane`; the
    default for both is transparent forwarding, so an empty subclass is a
    valid (pass-through) middlebox.  ``carrier_num_prb`` gives handlers
    the context to resolve ``numPrb=0`` wire encodings.
    """

    #: Human-readable application name (overridden by subclasses).
    app_name = "passthrough"

    def __init__(
        self,
        name: str = "",
        telemetry: Optional[TelemetryBus] = None,
        cost_model: ActionCostModel = DEFAULT_COST_MODEL,
    ):
        self.name = name or self.app_name
        self.telemetry = telemetry or TelemetryBus()
        self.cost_model = cost_model
        self.cache = PacketCache()
        self.management = ManagementInterface(owner=self.name)
        self.stats = MiddleboxStats()
        self.traces: List[ActionTrace] = []
        #: Wire size (bytes) of the packet behind each entry of ``traces``.
        self.trace_wire_bytes: List[int] = []
        #: Per-traffic-class traces for the Figure 15b breakdown.
        self.traces_by_class: Dict[str, List[ActionTrace]] = {}

    # -- handler hooks ---------------------------------------------------------

    def on_cplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        ctx.forward(packet)

    def on_uplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        ctx.forward(packet)

    # -- engine ------------------------------------------------------------------

    def process(self, packet: FronthaulPacket) -> ProcessedPacket:
        """Run one packet through the handler; returns emissions + trace."""
        wire_bytes = packet.wire_size
        self.stats.rx_packets += 1
        self.stats.rx_bytes += wire_bytes
        ctx = ActionContext(self.cache, self.cost_model)
        if packet.is_cplane:
            self.on_cplane(ctx, packet)
        else:
            self.on_uplane(ctx, packet)
        if not ctx.emissions:
            self.stats.dropped_packets += 1
        self.stats.account_tx(ctx.emissions)
        self.stats.processing_ns_total += ctx.trace.total_ns()
        traffic_class = classify(packet)
        self.traces.append(ctx.trace)
        self.trace_wire_bytes.append(wire_bytes)
        self.traces_by_class.setdefault(traffic_class, []).append(ctx.trace)
        return ProcessedPacket(
            emissions=ctx.emissions, trace=ctx.trace, traffic_class=traffic_class
        )

    def process_burst(
        self, packets: List[FronthaulPacket]
    ) -> List[FronthaulPacket]:
        """Convenience: process packets in order, return all emissions."""
        out: List[FronthaulPacket] = []
        for packet in packets:
            out.extend(e.packet for e in self.process(packet).emissions)
        return out

    def reset_traces(self) -> None:
        self.traces.clear()
        self.trace_wire_bytes.clear()
        self.traces_by_class.clear()
        self.stats.processing_ns_total = 0.0


def classify(packet: FronthaulPacket) -> str:
    """Traffic class labels used by Figure 15b."""
    plane = "C-Plane" if packet.is_cplane else "U-Plane"
    direction = "DL" if packet.direction is Direction.DOWNLINK else "UL"
    return f"{direction} {plane}"
