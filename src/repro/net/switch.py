"""The top-of-rack fronthaul switch (an Arista 7050 equivalent).

A thin capacity-aware wrapper around the MAC-forwarding core of
:class:`repro.core.chain.FronthaulSwitch`: per-port byte counters let the
experiments verify that middlebox fan-out traffic (Figure 15a) stays
within port capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.chain import FronthaulSwitch, PortRole
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import FronthaulPacket
from repro.obs import Observability


@dataclass
class PortSpec:
    name: str
    capacity_gbps: float = 100.0


class EthernetSwitch:
    """Capacity-tracked Ethernet switch for DU/RU/middlebox attachment."""

    def __init__(
        self, name: str = "arista7050", obs: Optional[Observability] = None
    ):
        self.name = name
        self.fabric = FronthaulSwitch(name=name, obs=obs)
        self._capacity: Dict[str, float] = {}

    def attach(
        self,
        spec: PortSpec,
        role: PortRole,
        macs: Sequence[MacAddress],
        deliver: Callable[[FronthaulPacket], None],
    ) -> None:
        self.fabric.attach(spec.name, role, macs, deliver)
        self._capacity[spec.name] = spec.capacity_gbps

    def inject(self, packet: FronthaulPacket, from_port: str) -> None:
        self.fabric.inject(packet, from_port)

    def impair(self, port: str, injector):
        """Install a fault injector on the wire into ``port``.

        Accepts a live :class:`~repro.faults.FaultInjector`, a registered
        fault kind name (``"iid_loss"``), or a declarative spec dict
        (``{"kind": "iid_loss", "rate": 0.05}``) resolved through
        :func:`repro.faults.injector_from_spec`.  Returns the installed
        injector so spec callers can reach its stats.
        """
        return self.fabric.impair(port, injector)

    def port(self, name: str):
        """The underlying fabric port — the attachment point for taps
        (e.g. :func:`repro.conformance.tap.tap_switch_port`)."""
        return self.fabric.port(name)

    def port_utilization(self, port: str, interval_ns: float) -> float:
        """Egress utilization of one port over an interval."""
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        entry = self.fabric.port(port)
        bits = entry.rx_bytes * 8  # bytes delivered to the port's device
        return bits / (self._capacity[port] * interval_ns)

    def port_names(self) -> List[str]:
        return sorted(self._capacity)
