"""NIC with SR-IOV virtual functions and the PCIe constraint.

SR-IOV splits a physical NIC into virtual functions, each assigned to one
middlebox; frames hop between chained middleboxes through the NIC's
embedded switch, crossing the PCIe bus twice per hop.  "The total number
of middleboxes that can be chained ... is constrained by the PCIe
throughput" (Section 5) — :meth:`Nic.max_chain_depth` computes that bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class PcieBus:
    """A PCIe attachment point (Gen4 x16 by default, ~25 GB/s usable)."""

    usable_gbps: float = 200.0

    def __post_init__(self) -> None:
        if self.usable_gbps <= 0:
            raise ValueError("PCIe bandwidth must be positive")


@dataclass
class VirtualFunction:
    """One SR-IOV VF: a middlebox's attachment to the embedded switch."""

    index: int
    owner: str
    rx_bytes: int = 0
    tx_bytes: int = 0

    def account(self, rx_bytes: int = 0, tx_bytes: int = 0) -> None:
        self.rx_bytes += rx_bytes
        self.tx_bytes += tx_bytes


class Nic:
    """A physical NIC (ConnectX-6 Dx class): port rate, VFs, PCIe."""

    def __init__(
        self,
        name: str = "cx6dx",
        port_gbps: float = 100.0,
        max_vfs: int = 64,
        pcie: Optional[PcieBus] = None,
    ):
        if port_gbps <= 0:
            raise ValueError("port rate must be positive")
        if max_vfs < 1:
            raise ValueError("NIC must support at least one VF")
        self.name = name
        self.port_gbps = port_gbps
        self.max_vfs = max_vfs
        self.pcie = pcie or PcieBus()
        self._vfs: Dict[int, VirtualFunction] = {}

    def create_vf(self, owner: str) -> VirtualFunction:
        if len(self._vfs) >= self.max_vfs:
            raise RuntimeError(
                f"NIC {self.name} exhausted its {self.max_vfs} VFs"
            )
        index = len(self._vfs)
        vf = VirtualFunction(index=index, owner=owner)
        self._vfs[index] = vf
        return vf

    @property
    def vfs(self) -> List[VirtualFunction]:
        return [self._vfs[i] for i in sorted(self._vfs)]

    def pcie_traffic_gbps(
        self, fronthaul_gbps: float, chain_depth: int
    ) -> float:
        """PCIe load of a chain: every hop crosses the bus twice."""
        if chain_depth < 1:
            raise ValueError("chain depth must be at least 1")
        return fronthaul_gbps * 2 * chain_depth

    def max_chain_depth(self, fronthaul_gbps: float) -> int:
        """Deepest chain the PCIe bus sustains for a given fronthaul load."""
        if fronthaul_gbps <= 0:
            return self.max_vfs
        depth = int(self.pcie.usable_gbps / (2 * fronthaul_gbps))
        return max(0, min(depth, self.max_vfs))

    def port_headroom_gbps(self, offered_gbps: float) -> float:
        return self.port_gbps - offered_gbps
