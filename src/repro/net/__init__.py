"""Network substrate: links, NICs with SR-IOV, and the fronthaul switch.

Models the testbed's 100GbE Arista switch fabric and the Mellanox
ConnectX-6 Dx NICs whose SR-IOV virtual functions host chained middleboxes
(Section 5, Figure 8), including the PCIe throughput constraint that
bounds chain depth.
"""

from repro.net.link import Link, LinkStats
from repro.net.nic import Nic, PcieBus, VirtualFunction
from repro.net.switch import EthernetSwitch

__all__ = [
    "Link",
    "LinkStats",
    "Nic",
    "PcieBus",
    "VirtualFunction",
    "EthernetSwitch",
]
