"""Point-to-point links with capacity and latency accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import obs as obs_module
from repro.obs import Observability


@dataclass
class LinkStats:
    bytes_carried: int = 0
    packets_carried: int = 0
    drops: int = 0


@dataclass
class Link:
    """A full-duplex link: fixed propagation delay plus serialization.

    ``transfer`` accounts a frame and returns its one-way latency in
    nanoseconds; sustained-rate checks are done per interval via
    :meth:`utilization`.
    """

    name: str
    capacity_gbps: float = 100.0
    propagation_ns: float = 500.0
    stats: LinkStats = field(default_factory=LinkStats)
    obs: Optional[Observability] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.capacity_gbps <= 0:
            raise ValueError("link capacity must be positive")

    def serialization_ns(self, frame_bytes: int) -> float:
        return frame_bytes * 8 / self.capacity_gbps

    def transfer(self, frame_bytes: int) -> float:
        """Account one frame; returns its latency (ns)."""
        self.stats.bytes_carried += frame_bytes
        self.stats.packets_carried += 1
        return self.propagation_ns + self.serialization_ns(frame_bytes)

    def drop(self, count: int = 1, reason: str = "impairment") -> None:
        """Account frames that died on this link (impairment, malformed)."""
        if count <= 0:
            return
        self.stats.drops += count
        obs = self.obs if self.obs is not None else obs_module.DEFAULT_OBSERVABILITY
        if obs.enabled:
            obs.registry.counter(
                "link_drops_total",
                "frames dropped on a link by cause",
                labels=("link", "reason"),
            ).labels(self.name, reason).inc(count)

    def utilization(self, interval_ns: float) -> float:
        """Average utilization over an interval given accounted traffic."""
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        bits = self.stats.bytes_carried * 8
        return bits / (self.capacity_gbps * interval_ns)

    def reset(self) -> None:
        self.stats = LinkStats()
