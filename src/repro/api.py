"""The stable public facade of the RANBooster reproduction.

One import surface for the pieces a deployment script needs.  Everything
here is re-exported from its home module — import from :mod:`repro.api`
and stay insulated from internal layout changes.  The surface is
*locked*: ``tests/api/api_surface.txt`` snapshots every name and
signature exported here, and a tier-1 test diffs it, so facade breakage
is always an explicit, reviewed change.

**Scenario API** — declare a deployment as plain data, run it at any
worker count, get byte-identical digests::

    from repro.api import Scenario, run

    result = run({"name": "two-cell", "slots": 40, "cells": [...]},
                 workers=4)
    print(result.digest, result.cell_slots_per_second)

The four reference applications of the paper (Section 5) are
constructible by registered stage name — ``"das"``, ``"dmimo"``,
``"ru_sharing"``, ``"prb_monitor"`` — or directly via the classes
re-exported here.

**Live control plane** — serve a scenario as a long-running routing
service: admit/evict cells, rechain middleboxes, and inject faults on
the *running* deployment via typed ``SpecDelta`` mutations applied at
epoch barriers (no worker restart, digests stay those of a from-scratch
run of the mutated spec)::

    from repro.api import ServeClient, SpecDelta, DeltaOp

    client = await ServeClient.connect(port=port)
    await client.subscribe(["epochs", "alerts"])
    await client.apply(SpecDelta(ops=(
        DeltaOp(op="add_cell", cell=tenant_cell_dict),)))
    route = (await client.routes(cell="tenant"))["routes"][0]

**Streaming telemetry** — the per-epoch telemetry fold and declarative
SLO alerting every sharded run (and the serve plane) publishes::

    from repro.api import SloSpec, TelemetryStream

    spec = {"obs": {"enabled": True, "stream": True,
                    "slo": [{"name": "latency", "objective":
                             "p99_slot_latency_ns", "threshold": 30_000}]},
            ...}

**Conformance** — the wire-level O-RAN validator (enable with
``obs.conformance: true`` in a spec, or tap a switch port directly)::

    from repro.api import WireValidator

**Fault injection** — seeded, deterministic impairment of any link or
switch, by registered fault kind::

    from repro.api import fault_kinds, injector_from_spec

    injector = injector_from_spec({"kind": "gilbert_elliott",
                                   "p_loss_bad": 0.3, "seed": 7})
"""

from __future__ import annotations

from repro.apps.das import DasMiddlebox
from repro.apps.dmimo import DmimoMiddlebox
from repro.apps.prb_monitor import PrbMonitorMiddlebox
from repro.apps.ru_sharing import RuSharingMiddlebox
from repro.conformance import ConformanceReport, WireValidator
from repro.faults import FaultInjector
from repro.faults.registry import fault_kinds, injector_from_spec
from repro.obs.slo import SloSpec
from repro.obs.stream import TelemetryStream
from repro.scale import (
    CellSpec,
    FlowSpec,
    ObsSpec,
    RuSpec,
    Scenario,
    ScenarioResult,
    ScenarioSpec,
    StageSpec,
    UeSpec,
    register_stage,
    run,
    stage_names,
)
from repro.serve import (
    DeltaOp,
    LiveRun,
    RoutingTable,
    ServeClient,
    ServeService,
    SpecDelta,
)

__all__ = [
    # Scenario API
    "Scenario",
    "ScenarioResult",
    "ScenarioSpec",
    "CellSpec",
    "RuSpec",
    "UeSpec",
    "FlowSpec",
    "StageSpec",
    "ObsSpec",
    "run",
    "register_stage",
    "stage_names",
    # Live control plane
    "ServeService",
    "ServeClient",
    "LiveRun",
    "RoutingTable",
    "SpecDelta",
    "DeltaOp",
    # Streaming telemetry
    "TelemetryStream",
    "SloSpec",
    # Conformance
    "WireValidator",
    "ConformanceReport",
    # The paper's four reference applications
    "DasMiddlebox",
    "DmimoMiddlebox",
    "RuSharingMiddlebox",
    "PrbMonitorMiddlebox",
    # Fault injection
    "FaultInjector",
    "fault_kinds",
    "injector_from_spec",
]
