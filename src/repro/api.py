"""The stable public facade of the RANBooster reproduction.

One import surface for the pieces a deployment script needs: the
declarative Scenario API, the four paper applications, and fault
injection.  Everything here is re-exported from its home module — import
from :mod:`repro.api` and stay insulated from internal layout changes::

    from repro.api import Scenario, run

    result = run({
        "name": "two-cell",
        "slots": 40,
        "cells": [...],
    }, workers=4)
    print(result.digest, result.cell_slots_per_second)

The four reference applications of the paper (Section 5) are also
constructible by registered stage name from a spec — ``"das"``,
``"dmimo"``, ``"ru_sharing"``, ``"prb_monitor"`` — without touching the
classes re-exported here.
"""

from __future__ import annotations

from repro.apps.das import DasMiddlebox
from repro.apps.dmimo import DmimoMiddlebox
from repro.apps.prb_monitor import PrbMonitorMiddlebox
from repro.apps.ru_sharing import RuSharingMiddlebox
from repro.faults import FaultInjector
from repro.faults.registry import fault_kinds, injector_from_spec
from repro.scale import (
    CellSpec,
    FlowSpec,
    ObsSpec,
    RuSpec,
    Scenario,
    ScenarioResult,
    ScenarioSpec,
    StageSpec,
    UeSpec,
    register_stage,
    run,
    stage_names,
)

__all__ = [
    # Scenario API
    "Scenario",
    "ScenarioResult",
    "ScenarioSpec",
    "CellSpec",
    "RuSpec",
    "UeSpec",
    "FlowSpec",
    "StageSpec",
    "ObsSpec",
    "run",
    "register_stage",
    "stage_names",
    # The paper's four reference applications
    "DasMiddlebox",
    "DmimoMiddlebox",
    "RuSharingMiddlebox",
    "PrbMonitorMiddlebox",
    # Fault injection
    "FaultInjector",
    "fault_kinds",
    "injector_from_spec",
]
