"""Regenerate every table and figure: ``python -m repro.eval``.

Runs the full experiment set (the same runners the benchmarks wrap) and
prints each result table.  Pass experiment ids to run a subset, e.g.::

    python -m repro.eval fig10a table2 fig15
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict


def _runners() -> "Dict[str, Callable[[], str]]":
    from repro.eval.appendix import run_cost_analysis, run_sharing_math
    from repro.eval.chaos import run_chaos
    from repro.eval.chaos_scale import run as run_chaos_scale
    from repro.eval.codec import run_codec
    from repro.eval.codec import write_bench as write_codec_bench
    from repro.eval.conformance import run_conformance
    from repro.eval.fig10 import run_fig10a, run_fig10b, run_fig10c
    from repro.eval.fig11 import run_fig11
    from repro.eval.fig12 import run_fig12
    from repro.eval.fig13 import run_fig13
    from repro.eval.fig14 import run_fig14
    from repro.eval.fig15 import run_fig15a, run_fig15a_measured, run_fig15b
    from repro.eval.fig16 import run_fig16
    from repro.eval.obs_top import run_obs_top
    from repro.eval.scale import run_scale, write_bench
    from repro.eval.serve import run as run_serve_eval
    from repro.eval.table2 import run_table2

    def _scale() -> str:
        result = run_scale()
        write_bench(result)
        return result.format()

    def _codec() -> str:
        result = run_codec()
        write_codec_bench(result)
        return result.format()

    return {
        "fig10a": lambda: run_fig10a().format(),
        "fig10b": lambda: run_fig10b().format(),
        "fig10c": lambda: run_fig10c().format(),
        "table2": lambda: run_table2().format(),
        "fig11": lambda: run_fig11().format(),
        "fig12": lambda: run_fig12().format(),
        "fig13": lambda: run_fig13().format(),
        "fig14": lambda: run_fig14().format(),
        "fig15a": lambda: run_fig15a().format(),
        "fig15a_measured": lambda: run_fig15a_measured().format(),
        "fig15b": lambda: run_fig15b().format(),
        "fig16": lambda: run_fig16().format(),
        "appendix_a1": lambda: run_sharing_math().format(),
        "appendix_a2": lambda: run_cost_analysis().format(),
        "chaos": lambda: run_chaos().format(),
        "chaos-scale": lambda: run_chaos_scale().format(),
        "codec": _codec,
        "conformance": lambda: run_conformance().format(),
        "obs-top": lambda: run_obs_top().format(),
        "scale": _scale,
        "serve": lambda: run_serve_eval().format(),
    }


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    runners = _runners()
    selected = argv or list(runners)
    unknown = [name for name in selected if name not in runners]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}")
        print(f"available: {', '.join(runners)}")
        return 2
    for name in selected:
        start = time.time()
        print(f"== {name} " + "=" * max(60 - len(name), 0))
        print(runners[name]())
        print(f"   ({time.time() - start:.1f}s)")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
