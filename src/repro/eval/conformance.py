"""Conformance gate: the wire validator against clean and seeded traffic.

Two halves, both required to pass:

1. **Clean interop matrix** — the Section 6.2 deployment (1 DU, 2 RUs,
   DAS + PRB monitor) for each of the three vendor stack profiles, with
   validators at *two* tap styles simultaneously: the network's RU/DU
   ingress hook and a pass-through :class:`ConformanceTap` chain stage.
   Every profile must finish with zero violations — the repo's own
   traffic is the conformance baseline.

2. **Seeded violation matrix** — one crafted scenario per violation
   class in the taxonomy (all eleven), each fed to a fresh validator.
   The gate asserts the expected class is detected *and* that no other
   class fires: detection without classification is a miss.

The clean half runs the full profile x codec matrix: every vendor
profile under every wire codec it advertises (BFP always, modcomp
where the profile carries a modcomp config), so a codec regression in
either direction of the dispatch layer fails the gate.

Run via ``PYTHONPATH=src python -m repro.eval conformance``; shrink with
``REPRO_CONFORMANCE_SLOTS`` for CI smoke runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.apps.das import DasMiddlebox
from repro.apps.prb_monitor import PrbMonitorMiddlebox
from repro.conformance import (
    ConformanceReport,
    ConformanceTap,
    ViolationClass,
    WireValidator,
)
from repro.eval.report import format_table
from repro.fronthaul.compression import BFP_COMP_METH, CompressionConfig
from repro.fronthaul.cplane import (
    CPlaneMessage,
    CPlaneSection,
    Direction,
    SectionType,
)
from repro.fronthaul.ecpri import EAxCId
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import FronthaulPacket, make_packet
from repro.fronthaul.timing import SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection
from repro.ran.cell import CellConfig
from repro.ran.du import DistributedUnit
from repro.ran.ru import RadioUnit, RuConfig
from repro.ran.stacks import (
    ALL_PROFILES,
    negotiate_compression,
    profile_by_name,
)
from repro.ran.traffic import ConstantBitrateFlow
from repro.sim.network_sim import FronthaulNetwork

DEFAULT_SLOTS = 12


@dataclass
class CleanRow:
    """One (vendor profile, wire codec) cell of the clean matrix."""

    profile: str
    codec: str
    slots: int
    frames: int
    violations: int
    detail: str = ""


@dataclass
class SeededRow:
    """One crafted-violation scenario's outcome."""

    name: str
    expected: str
    detected: int
    extra: Dict[str, int]

    @property
    def ok(self) -> bool:
        return self.detected >= 1 and not self.extra


@dataclass
class ConformanceResult:
    seed: int
    slots: int
    clean: List[CleanRow]
    seeded: List[SeededRow]

    def assert_healthy(self) -> None:
        for row in self.clean:
            label = f"{row.profile}/{row.codec}"
            if row.frames == 0:
                raise AssertionError(f"{label}: validator saw no frames")
            if row.violations:
                raise AssertionError(
                    f"{label}: {row.violations} violation(s) on clean "
                    f"traffic: {row.detail}"
                )
        for row in self.seeded:
            if row.detected == 0:
                raise AssertionError(
                    f"seeded {row.name}: expected class {row.expected} "
                    "not detected"
                )
            if row.extra:
                raise AssertionError(
                    f"seeded {row.name}: misclassified — extra classes "
                    f"{row.extra} alongside {row.expected}"
                )

    def format(self) -> str:
        clean_table = format_table(
            f"Conformance: clean interop matrix "
            f"(seed={self.seed}, {self.slots} slots, 2 tap styles)",
            ["profile", "codec", "frames checked", "violations", "verdict"],
            [
                (
                    row.profile,
                    row.codec,
                    row.frames,
                    row.violations,
                    "ok" if row.violations == 0 else "VIOLATIONS",
                )
                for row in self.clean
            ],
        )
        seeded_table = format_table(
            "Conformance: seeded violation classification",
            ["scenario", "expected class", "detected", "verdict"],
            [
                (
                    row.name,
                    row.expected,
                    row.detected,
                    "ok" if row.ok else "MISSED/MISCLASSIFIED",
                )
                for row in self.seeded
            ],
        )
        return "\n\n".join([clean_table, seeded_table])


# -- half 1: the clean interop matrix ----------------------------------------


def _run_clean(profile, codec: str, slots: int, seed: int) -> CleanRow:
    compression = negotiate_compression(profile, codec)
    cell = CellConfig(
        pci=1,
        bandwidth_hz=40_000_000,
        n_antennas=2,
        max_dl_layers=2,
        compression=compression,
    )
    du = DistributedUnit(
        du_id=1,
        cell=cell,
        profile=profile,
        symbols_per_slot=1,
        seed=seed,
        compression=compression,
    )
    rus = [
        RadioUnit(
            ru_id=i,
            config=RuConfig(
                num_prb=cell.num_prb,
                n_antennas=2,
                compression=compression,
            ),
            du_mac=du.mac,
            seed=seed,
        )
        for i in range(2)
    ]
    du.scheduler.add_ue("ue", dl_layers=2)
    du.scheduler.update_ue_quality("ue", dl_aggregate_se=10.0, ul_se=3.0)
    du.attach_flow("ue", ConstantBitrateFlow(100, "dl"), Direction.DOWNLINK)
    du.attach_flow("ue", ConstantBitrateFlow(15, "ul"), Direction.UPLINK)

    def validator(tap_style: str) -> WireValidator:
        return WireValidator(
            name=f"{profile.name}-{codec}-{tap_style}",
            profile=profile,
            carrier_num_prb=cell.num_prb,
            numerology=cell.numerology,
            allowed_compressions={compression},
        )

    ingress = validator("ingress")
    chain_validator = validator("chain")
    das = DasMiddlebox(du_mac=du.mac, ru_macs=[ru.mac for ru in rus])
    monitor = PrbMonitorMiddlebox(carrier_num_prb=cell.num_prb)
    network = FronthaulNetwork(
        middleboxes=[ConformanceTap(chain_validator), monitor, das],
        validator=ingress,
    )
    network.add_du(du)
    for ru in rus:
        network.add_ru(ru)
    network.run(slots)
    merged = ConformanceReport()
    merged.merge(ingress.report)
    merged.merge(chain_validator.report)
    return CleanRow(
        profile=profile.name,
        codec=codec,
        slots=slots,
        frames=merged.frames_checked,
        violations=merged.total_violations,
        detail="; ".join(str(r) for r in merged.records[:3]),
    )


# -- half 2: seeded violations, one scenario per class -----------------------

_SRC = MacAddress.from_int(0x02_00_00_00_00_01)
_DST = MacAddress.from_int(0x02_00_00_00_00_02)
_EAXC = EAxCId.from_int(0x0101)


def _fresh_validator(**kwargs) -> WireValidator:
    profile = profile_by_name("srsRAN")
    return WireValidator(
        name="seeded", profile=profile, carrier_num_prb=106, **kwargs
    )


def _cplane(
    start_prb: int,
    num_prb: int,
    seq: int = 0,
    time: Optional[SymbolTime] = None,
    compression: Optional[CompressionConfig] = None,
) -> FronthaulPacket:
    if compression is None:
        compression = profile_by_name("srsRAN").compression
    message = CPlaneMessage(
        direction=Direction.DOWNLINK,
        time=time if time is not None else SymbolTime(0, 0, 0, 0),
        section_type=SectionType.DATA,
        compression=compression,
    )
    message.sections = [
        CPlaneSection(section_id=1, start_prb=start_prb, num_prb=num_prb)
    ]
    return make_packet(
        src=_SRC, dst=_DST, message=message, seq_id=seq, eaxc=_EAXC
    )


def _uplane(
    start_prb: int,
    num_prb: int,
    seq: int = 0,
    time: Optional[SymbolTime] = None,
    compression: Optional[CompressionConfig] = None,
    payload: Optional[bytes] = None,
) -> FronthaulPacket:
    if compression is None:
        compression = profile_by_name("srsRAN").compression
    if payload is None:
        section = UPlaneSection.from_samples(
            section_id=1,
            start_prb=start_prb,
            samples=np.full((num_prb, 24), 7, dtype=np.int16),
            compression=compression,
        )
    else:
        section = UPlaneSection(
            section_id=1,
            start_prb=start_prb,
            num_prb=num_prb,
            payload=payload,
            compression=compression,
        )
    message = UPlaneMessage(
        direction=Direction.DOWNLINK,
        time=time if time is not None else SymbolTime(0, 0, 0, 0),
        sections=[section],
    )
    return make_packet(
        src=_SRC, dst=_DST, message=message, seq_id=seq, eaxc=_EAXC
    )


def _seed_bad_ecpri_length(validator: WireValidator) -> None:
    # Cut a frame mid-section: the declared payloadSize no longer matches
    # the bytes on the wire.
    data = _uplane(0, 4).pack()
    validator.observe_bytes(data[:-5], tap="seeded")


def _seed_malformed_frame(validator: WireValidator) -> None:
    data = bytearray(_cplane(0, 10).pack())
    data[14] = (data[14] & 0x0F) | (0x2 << 4)  # eCPRI version 2
    validator.observe_bytes(bytes(data), tap="seeded")


def _seed_section_structure(validator: WireValidator) -> None:
    # PRBs [100, 120) overrun the 106-PRB carrier.
    validator.observe(_cplane(100, 20), tap="seeded")


def _seed_prb_section_mismatch(validator: WireValidator) -> None:
    validator.observe(_cplane(0, 20, seq=0), tap="seeded")
    validator.observe(_uplane(30, 10, seq=1), tap="seeded")


def _seed_bfp_width_mismatch(validator: WireValidator) -> None:
    wide = CompressionConfig(iq_width=14, comp_meth=BFP_COMP_METH)
    validator.observe(_cplane(0, 4, seq=0), tap="seeded")
    validator.observe(
        _uplane(0, 4, seq=1, compression=wide), tap="seeded"
    )


def _seed_illegal_bfp_exponent(validator: WireValidator) -> None:
    compression = profile_by_name("srsRAN").compression
    good = _uplane(0, 2, seq=1).message.sections[0].payload_bytes()
    payload = bytearray(good)
    payload[0] = 0x0F  # exponent 15 > legal max 7 for width-9 BFP
    validator.observe(_cplane(0, 2, seq=0), tap="seeded")
    validator.observe(
        _uplane(0, 2, seq=1, compression=compression, payload=bytes(payload)),
        tap="seeded",
    )


def _seed_codec_mismatch(validator: WireValidator) -> None:
    # A modcomp payload on a deployment that only negotiated BFP: the
    # RU has no decoder armed for udCompMeth 4 at all.
    modcomp = profile_by_name("srsRAN").modcomp
    validator.observe(_cplane(0, 4, seq=0), tap="seeded")
    validator.observe(
        _uplane(0, 4, seq=1, compression=modcomp), tap="seeded"
    )


def _seed_illegal_modcomp_param(validator: WireValidator) -> None:
    modcomp = profile_by_name("srsRAN").modcomp
    good = (
        _uplane(0, 2, seq=1, compression=modcomp)
        .message.sections[0]
        .payload_bytes()
    )
    payload = bytearray(good)
    payload[0] = 0x80  # csf set, and...
    payload[1] = 20  # ...scaler 20 > legal max 13 for width-3 modcomp
    validator.observe(
        _cplane(0, 2, seq=0, compression=modcomp), tap="seeded"
    )
    validator.observe(
        _uplane(0, 2, seq=1, compression=modcomp, payload=bytes(payload)),
        tap="seeded",
    )


def _seed_seq_gap(validator: WireValidator) -> None:
    validator.observe(_cplane(0, 10, seq=0), tap="seeded")
    validator.observe(_cplane(0, 10, seq=2), tap="seeded")


def _seed_seq_dup(validator: WireValidator) -> None:
    packet = _cplane(0, 10, seq=5)
    validator.observe(packet, tap="seeded")
    validator.observe(packet, tap="seeded")


def _seed_stale_slot(validator: WireValidator) -> None:
    validator.observe(
        _cplane(0, 10, seq=0, time=SymbolTime(2, 0, 0, 0)), tap="seeded"
    )
    validator.observe(
        _cplane(0, 10, seq=1, time=SymbolTime(0, 0, 0, 0)), tap="seeded"
    )


# (name, expected class, scenario, validator kwargs).  The modcomp
# param scenario arms the validator with the negotiated modcomp config
# so only the corrupt parameter — not the codec choice — is illegal.
_SEEDED = [
    ("truncated-uplane", ViolationClass.BAD_ECPRI_LENGTH,
     _seed_bad_ecpri_length, {}),
    ("bad-version", ViolationClass.MALFORMED_FRAME, _seed_malformed_frame,
     {}),
    ("carrier-overrun", ViolationClass.SECTION_STRUCTURE,
     _seed_section_structure, {}),
    ("unscheduled-uplane", ViolationClass.PRB_SECTION_MISMATCH,
     _seed_prb_section_mismatch, {}),
    ("wrong-width", ViolationClass.BFP_WIDTH_MISMATCH,
     _seed_bfp_width_mismatch, {}),
    ("corrupt-exponent", ViolationClass.ILLEGAL_BFP_EXPONENT,
     _seed_illegal_bfp_exponent, {}),
    ("unnegotiated-codec", ViolationClass.CODEC_MISMATCH,
     _seed_codec_mismatch, {}),
    ("corrupt-scaler", ViolationClass.ILLEGAL_MODCOMP_PARAM,
     _seed_illegal_modcomp_param,
     {"allowed_compressions": (profile_by_name("srsRAN").modcomp,)}),
    ("skipped-seq", ViolationClass.SEQ_GAP, _seed_seq_gap, {}),
    ("repeated-seq", ViolationClass.SEQ_DUP, _seed_seq_dup, {}),
    ("regressed-slot", ViolationClass.STALE_SLOT, _seed_stale_slot, {}),
]


def _run_seeded() -> List[SeededRow]:
    rows = []
    for name, expected, scenario, validator_kwargs in _SEEDED:
        validator = _fresh_validator(**validator_kwargs)
        scenario(validator)
        counts = dict(validator.report.counts)
        detected = counts.pop(expected.value, 0)
        rows.append(
            SeededRow(
                name=name,
                expected=expected.value,
                detected=detected,
                extra=counts,
            )
        )
    return rows


# -- entry point --------------------------------------------------------------


def run_conformance(
    seed: int = 20, slots: Optional[int] = None
) -> ConformanceResult:
    if slots is None:
        slots = int(
            os.environ.get("REPRO_CONFORMANCE_SLOTS", str(DEFAULT_SLOTS))
        )
    slots = max(slots, 8)
    result = ConformanceResult(
        seed=seed,
        slots=slots,
        clean=[
            _run_clean(profile, codec, slots, seed)
            for profile in ALL_PROFILES
            for codec in profile.supported_codecs()
        ],
        seeded=_run_seeded(),
    )
    result.assert_healthy()
    return result


if __name__ == "__main__":
    print(run_conformance().format())
