"""Experiment runners: one per table/figure of the paper's evaluation.

- :mod:`repro.eval.throughput` -- the analytic network evaluator (SINR ->
  rank/SE -> scheduler sharing -> Mbps, with inter-cell interference
  coupling) used by all throughput figures.
- :mod:`repro.eval.fig10` -- correctness: DAS (10a), RU sharing (10b),
  PRB monitoring (10c).
- :mod:`repro.eval.table2` -- dMIMO vs single-RU MIMO.
- :mod:`repro.eval.fig11` -- the floor-walk comparison O1/O2/O3.
- :mod:`repro.eval.fig12` -- RU sharing + DAS chaining (two MNOs).
- :mod:`repro.eval.fig13` -- DAS -> dMIMO middlebox upgrade.
- :mod:`repro.eval.fig14` -- power consumption configurations.
- :mod:`repro.eval.fig15` -- scalability and per-packet latency.
- :mod:`repro.eval.fig16` -- DPDK vs XDP CPU utilization.
- :mod:`repro.eval.appendix` -- cost analysis and sharing math.
"""

from repro.eval.throughput import (
    DeployedCell,
    NetworkEvaluation,
    UePlacement,
    evaluate_network,
)

__all__ = [
    "DeployedCell",
    "NetworkEvaluation",
    "UePlacement",
    "evaluate_network",
]
