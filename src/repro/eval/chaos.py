"""Chaos evaluation: graceful degradation under deterministic faults.

Three measurements, all driven by the seeded fault injector
(:mod:`repro.faults`) so a fixed seed reproduces identical numbers:

1. **Merge completeness and goodput vs loss rate** — a DAS deployment
   (1 DU, 2 RUs, partial merge + deadline flush on) under i.i.d. loss
   sweeps, a Gilbert–Elliott bursty episode, and corruption/truncation.
2. **Full chaos chain** — resilience ⊕ DAS ⊕ RU-sharing ⊕ a
   scheduled-throwing middlebox, under 1% i.i.d. loss, a bursty-loss
   episode, and 0.1% corruption, with the primary DU silenced mid-run.
   Asserts zero uncaught exceptions, exact circuit-breaker behavior, and
   that every absorbed fault is accounted in the obs counters.
3. **Failover-time CDF** — :class:`ResilienceMiddlebox` detection delay
   under injected DU silence across trials with varying failure phase.

Run via ``PYTHONPATH=src python -m repro.eval chaos``; shrink with the
``REPRO_CHAOS_SLOTS`` environment variable for CI smoke runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.apps.das import DasMiddlebox
from repro.apps.resilience import ResilienceMiddlebox
from repro.apps.ru_sharing import RuSharingMiddlebox, SharedDuConfig
from repro.eval.report import format_table
from repro.faults import (
    FaultConfig,
    FaultInjector,
    FaultScope,
    FaultyMiddlebox,
    GilbertElliottConfig,
    ImpairedLink,
)
from repro.fronthaul.cplane import Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.timing import SymbolTime
from repro.net.link import Link
from repro.obs import Observability
from repro.obs.sketch import QuantileSketch
from repro.ran.cell import CellConfig
from repro.ran.du import DistributedUnit
from repro.ran.ru import RadioUnit, RuConfig
from repro.ran.traffic import ConstantBitrateFlow
from repro.sim.network_sim import FronthaulNetwork

DEFAULT_SLOTS = 24
#: Chain-scenario fault schedule: exactly threshold consecutive faults.
BREAKER_THRESHOLD = 5
BREAKER_PROBATION = 6
FAULTY_RANGE = (20, 20 + BREAKER_THRESHOLD)
#: The SLO the seeded burn-rate scenario must fire, by name.
SLO_ALERT_NAME = "deadline-miss-burn"
#: Starved per-slot budget (ns): any slot carrying traffic misses it.
SLO_STARVED_BUDGET_NS = 100.0


def _cell() -> CellConfig:
    return CellConfig(
        pci=1, bandwidth_hz=40_000_000, n_antennas=2, max_dl_layers=2
    )


def _make_du(du_id: int, cell: CellConfig, seed: int) -> DistributedUnit:
    du = DistributedUnit(
        du_id=du_id, cell=cell, symbols_per_slot=1, seed=seed
    )
    du.scheduler.add_ue("ue", dl_layers=2)
    du.scheduler.update_ue_quality("ue", dl_aggregate_se=10.0, ul_se=3.0)
    du.attach_flow("ue", ConstantBitrateFlow(100, "dl"), Direction.DOWNLINK)
    du.attach_flow("ue", ConstantBitrateFlow(20, "ul"), Direction.UPLINK)
    return du


@dataclass
class ScenarioRow:
    """One loss-sweep scenario outcome."""

    name: str
    offered: int
    wire_absorbed: int
    full_merges: int
    degraded_merges: int
    abandoned: int
    ul_delivered: int
    malformed: int

    @property
    def completeness_pct(self) -> float:
        total = self.full_merges + self.degraded_merges + self.abandoned
        if total == 0:
            return 0.0
        return 100.0 * (self.full_merges + self.degraded_merges) / total


@dataclass
class ChainOutcome:
    """The full DAS + RU-sharing + resilience chain under chaos."""

    slots: int
    wire_absorbed: int
    wire_events: int
    stage_faults: int
    stage_bypassed: int
    breaker_opens: int
    breaker_recoveries: int
    full_merges: int
    degraded_merges: int
    abandoned_merges: int
    malformed: int
    ul_delivered: int
    failovers: int
    accounting: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    @property
    def accounting_ok(self) -> bool:
        return all(a == b for a, b in self.accounting.values())


@dataclass
class SloChaosOutcome:
    """A seeded streamed run engineered to burn its deadline SLO budget."""

    epochs: int
    deadline_checks: int
    deadline_misses: int
    #: Every burn-rate alert edge the run's SLO engine emitted, in order.
    alerts: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def fired(self) -> List[str]:
        return [a["slo"] for a in self.alerts if a["state"] == "firing"]

    def edge_fingerprint(self) -> Tuple:
        return tuple(
            (a["slo"], a["state"], a["epoch"]) for a in self.alerts
        )


@dataclass
class ChaosResult:
    seed: int
    slots: int
    scenarios: List[ScenarioRow]
    chain: ChainOutcome
    failover_ms: List[float]
    slo: Optional[SloChaosOutcome] = None

    def fingerprint(self) -> Tuple:
        """Stable value equality across runs at the same seed."""
        return (
            self.seed,
            self.slots,
            tuple(
                (
                    row.name, row.offered, row.wire_absorbed,
                    row.full_merges, row.degraded_merges, row.abandoned,
                    row.ul_delivered, row.malformed,
                )
                for row in self.scenarios
            ),
            (
                self.chain.wire_absorbed, self.chain.wire_events,
                self.chain.stage_faults, self.chain.stage_bypassed,
                self.chain.breaker_opens, self.chain.breaker_recoveries,
                self.chain.full_merges, self.chain.degraded_merges,
                self.chain.abandoned_merges, self.chain.malformed,
                self.chain.ul_delivered, self.chain.failovers,
            ),
            tuple(self.failover_ms),
            (
                self.slo.edge_fingerprint()
                if self.slo is not None
                else ()
            ),
        )

    def assert_healthy(self) -> None:
        """The CI smoke gate: chaos was injected, absorbed, and accounted."""
        absorbed = sum(row.wire_absorbed for row in self.scenarios)
        if absorbed == 0:
            raise AssertionError("loss sweep absorbed no faults")
        if self.chain.wire_absorbed == 0:
            raise AssertionError("chain scenario absorbed no wire faults")
        if self.chain.stage_faults != FAULTY_RANGE[1] - FAULTY_RANGE[0]:
            raise AssertionError(
                f"expected {FAULTY_RANGE[1] - FAULTY_RANGE[0]} stage faults,"
                f" got {self.chain.stage_faults}"
            )
        if self.chain.breaker_opens != 1 or self.chain.breaker_recoveries != 1:
            raise AssertionError(
                "breaker did not open and recover exactly once: "
                f"opens={self.chain.breaker_opens} "
                f"recoveries={self.chain.breaker_recoveries}"
            )
        if self.chain.stage_bypassed != BREAKER_PROBATION:
            raise AssertionError(
                f"expected {BREAKER_PROBATION} bypassed packets, "
                f"got {self.chain.stage_bypassed}"
            )
        if not self.chain.accounting_ok:
            mismatches = {
                key: pair
                for key, pair in self.chain.accounting.items()
                if pair[0] != pair[1]
            }
            raise AssertionError(f"obs accounting mismatch: {mismatches}")
        if self.chain.failovers != 1:
            raise AssertionError(
                f"expected exactly one failover, got {self.chain.failovers}"
            )
        if not self.failover_ms:
            raise AssertionError("no failover trials produced an event")
        if self.slo is not None:
            if SLO_ALERT_NAME not in self.slo.fired:
                raise AssertionError(
                    f"seeded SLO chaos run did not fire {SLO_ALERT_NAME!r}; "
                    f"edges: {self.slo.alerts}"
                )
            if any(a["state"] == "resolved" for a in self.slo.alerts):
                raise AssertionError(
                    "deadline burn never recovers in this scenario, yet "
                    f"a resolved edge appeared: {self.slo.alerts}"
                )

    def format(self) -> str:
        sweep = format_table(
            f"Chaos sweep: DAS merge completeness vs loss "
            f"(seed={self.seed}, {self.slots} slots)",
            [
                "scenario", "offered", "absorbed", "full", "degraded",
                "abandoned", "complete%", "ul-delivered", "malformed",
            ],
            [
                (
                    row.name, row.offered, row.wire_absorbed,
                    row.full_merges, row.degraded_merges, row.abandoned,
                    row.completeness_pct, row.ul_delivered, row.malformed,
                )
                for row in self.scenarios
            ],
        )
        c = self.chain
        chain_table = format_table(
            "Chaos chain: resilience + DAS + RU-sharing + faulty stage",
            ["metric", "value"],
            [
                ("wire absorbed / events", f"{c.wire_absorbed}/{c.wire_events}"),
                ("stage faults (isolated)", c.stage_faults),
                ("breaker opens/recoveries",
                 f"{c.breaker_opens}/{c.breaker_recoveries}"),
                ("packets bypassed while open", c.stage_bypassed),
                ("merges full/degraded/abandoned",
                 f"{c.full_merges}/{c.degraded_merges}/{c.abandoned_merges}"),
                ("malformed contained", c.malformed),
                ("uplink packets delivered", c.ul_delivered),
                ("failovers", c.failovers),
                ("obs accounting", "ok" if c.accounting_ok else "MISMATCH"),
            ],
        )
        cdf = format_table(
            "Failover detection time CDF (injected DU silence)",
            ["percentile", "ms"],
            [
                (label, _percentile(self.failover_ms, q))
                for label, q in (
                    ("p0", 0.0), ("p25", 0.25), ("p50", 0.5),
                    ("p75", 0.75), ("p100", 1.0),
                )
            ],
        )
        blocks = [sweep, chain_table, cdf]
        if self.slo is not None:
            blocks.append(
                format_table(
                    "SLO burn-rate chaos: starved deadline budget "
                    f"({self.slo.epochs} stream epochs)",
                    ["edge", "slo", "epoch", "burn"],
                    [
                        (
                            alert["state"], alert["slo"], alert["epoch"],
                            f"{alert['burn_rate']:.1f}x",
                        )
                        for alert in self.slo.alerts
                    ]
                    or [("(none)", "-", "-", "-")],
                )
            )
        return "\n\n".join(blocks)


def _percentile(values: List[float], q: float) -> float:
    """Sketch-backed quantile (q in [0, 1]) — the streaming plane's own
    estimator (:class:`~repro.obs.sketch.QuantileSketch`), so CDFs here
    and in the live dashboard agree.  Exact at q=0 and q=1."""
    if not values:
        return float("nan")
    sketch = QuantileSketch()
    for value in values:
        sketch.observe(value)
    return sketch.quantile(q)


# -- scenario 1: loss sweep over a DAS deployment --------------------------


def _loss_scenarios() -> List[Tuple[str, Optional[FaultConfig]]]:
    uplink = FaultScope(direction=Direction.UPLINK)
    return [
        ("baseline", None),
        ("iid-1%", FaultConfig(loss_rate=0.01, scope=uplink)),
        ("iid-5%", FaultConfig(loss_rate=0.05, scope=uplink)),
        ("iid-20%", FaultConfig(loss_rate=0.20, scope=uplink)),
        (
            "ge-burst",
            FaultConfig(
                burst=GilbertElliottConfig(
                    p_enter_burst=0.05, p_exit_burst=0.30, loss_burst=0.9
                ),
                scope=uplink,
            ),
        ),
        (
            "corrupt-2%",
            FaultConfig(corrupt_rate=0.02, corrupt_bits=4, truncate_rate=0.01),
        ),
    ]


def _run_sweep_scenario(
    name: str, config: Optional[FaultConfig], seed: int, slots: int
) -> ScenarioRow:
    cell = _cell()
    du = _make_du(1, cell, seed)
    rus = [
        RadioUnit(
            ru_id=i,
            config=RuConfig(num_prb=cell.num_prb, n_antennas=2),
            du_mac=du.mac,
            seed=seed,
        )
        for i in range(2)
    ]
    das = DasMiddlebox(
        du_mac=du.mac,
        ru_macs=[ru.mac for ru in rus],
        partial_merge=True,
    )
    wire = None
    injector = None
    if config is not None:
        injector = FaultInjector(
            config, seed=seed, name=f"sweep-{name}",
            carrier_num_prb=cell.num_prb,
        )
        wire = ImpairedLink(injector)
    network = FronthaulNetwork(
        middleboxes=[das], wire=wire, deadline_flush=True
    )
    network.add_du(du)
    for ru in rus:
        network.add_ru(ru)
    reports = network.run(slots)
    return ScenarioRow(
        name=name,
        offered=injector.stats.offered if injector else 0,
        wire_absorbed=injector.stats.absorbed if injector else 0,
        full_merges=das.merged_uplink_symbols,
        degraded_merges=das.degraded_merges,
        abandoned=das.missed_merge_deadlines,
        ul_delivered=du.counters.ul_packets + du.counters.prach_detections,
        malformed=sum(r.malformed for r in reports),
    )


# -- scenario 2: the full chaos chain --------------------------------------


def _run_chain_chaos(seed: int, slots: int) -> ChainOutcome:
    obs = Observability(enabled=True, sample_every=1 << 30)
    cell = _cell()
    numerology = cell.numerology
    primary = _make_du(1, cell, seed + 1)
    standby = _make_du(2, cell, seed + 2)
    ru = RadioUnit(
        ru_id=1,
        config=RuConfig(num_prb=cell.num_prb, n_antennas=2),
        seed=seed,
    )
    grid = cell.grid
    das_mac = MacAddress.from_int(0x02_00_00_00_40_01)
    sharing_mac = MacAddress.from_int(0x02_00_00_00_40_02)
    resilience_mac = MacAddress.from_int(0x02_00_00_00_40_03)
    resilience = ResilienceMiddlebox(
        primary_du=primary.mac,
        standby_du=standby.mac,
        ru_mac=das_mac,
        silence_threshold_ns=2 * numerology.slot_duration_ns,
        mac=resilience_mac,
        obs=obs,
    )
    das = DasMiddlebox(
        du_mac=resilience_mac,
        ru_macs=[sharing_mac],
        mac=das_mac,
        partial_merge=True,
        obs=obs,
    )
    sharing = RuSharingMiddlebox(
        ru_mac=ru.mac,
        ru_grid=grid,
        dus=[SharedDuConfig(du_id=1, mac=das_mac, grid=grid)],
        mac=sharing_mac,
        obs=obs,
    )
    faulty = FaultyMiddlebox(fail_range=FAULTY_RANGE, obs=obs)
    ru.du_mac = sharing_mac

    injector = FaultInjector(
        FaultConfig(
            loss_rate=0.01,
            burst=GilbertElliottConfig(
                p_enter_burst=0.02, p_exit_burst=0.35, loss_burst=0.9
            ),
            corrupt_rate=0.001,
            corrupt_bits=3,
        ),
        seed=seed,
        name="chaos-wire",
        carrier_num_prb=cell.num_prb,
        obs=obs,
    )
    fail_slot = slots // 2
    injector.silence(
        primary.mac,
        SymbolTime.from_absolute_slot(fail_slot, numerology).slot_key(),
    )
    network = FronthaulNetwork(
        middleboxes=[resilience, das, sharing, faulty],
        wire=ImpairedLink(injector, link=Link(name="chaos-wire-link", obs=obs)),
        deadline_flush=True,
        breaker_threshold=BREAKER_THRESHOLD,
        breaker_probation=BREAKER_PROBATION,
        obs=obs,
    )
    network.add_du(primary)
    network.add_du(standby)
    network.add_ru(ru)
    reports = network.run(slots)

    chain = network.chain
    snap = obs.registry.snapshot()

    def counter_sum(metric: str, prefix: str = "") -> float:
        family = snap.get(metric)
        if family is None:
            return 0.0
        return sum(
            value
            for key, value in family["series"].items()
            if key.startswith(prefix)
        )

    # Every absorbed/injected fault must be visible to the flight
    # recorder: python-side truth vs the obs counters.
    accounting: Dict[str, Tuple[float, float]] = {
        "wire_events": (
            float(injector.stats.injected_events),
            counter_sum("fault_injected_total", "chaos-wire,"),
        ),
        "stage_faults": (
            float(chain.total_stage_faults),
            counter_sum("chain_stage_faults_total"),
        ),
        "stage_bypassed": (
            float(sum(chain.stage_bypassed)),
            counter_sum("chain_stage_bypassed_total"),
        ),
        "degraded_merges": (
            float(das.degraded_merges),
            counter_sum("das_degraded_merges_total"),
        ),
        "abandoned_merges": (
            float(das.missed_merge_deadlines),
            counter_sum("das_missed_merge_deadlines_total"),
        ),
        "link_drops": (
            float(network.wire.link.stats.drops),
            counter_sum("link_drops_total"),
        ),
    }
    return ChainOutcome(
        slots=slots,
        wire_absorbed=injector.stats.absorbed,
        wire_events=injector.stats.injected_events,
        stage_faults=chain.total_stage_faults,
        stage_bypassed=sum(chain.stage_bypassed),
        breaker_opens=chain.breakers[faulty.chain_stage].opens,
        breaker_recoveries=chain.breakers[faulty.chain_stage].recoveries,
        full_merges=das.merged_uplink_symbols,
        degraded_merges=das.degraded_merges,
        abandoned_merges=das.missed_merge_deadlines,
        malformed=sum(r.malformed for r in reports),
        ul_delivered=(
            primary.counters.ul_packets
            + primary.counters.prach_detections
            + standby.counters.ul_packets
            + standby.counters.prach_detections
        ),
        failovers=len(resilience.events),
        accounting=accounting,
    )


# -- scenario 3: failover-time CDF ------------------------------------------


def _failover_trial(seed: int, fail_slot: int) -> Optional[float]:
    cell = _cell()
    numerology = cell.numerology
    primary = _make_du(1, cell, seed + 1)
    standby = _make_du(2, cell, seed + 2)
    ru = RadioUnit(
        ru_id=1,
        config=RuConfig(num_prb=cell.num_prb, n_antennas=2),
        seed=seed,
    )
    box = ResilienceMiddlebox(
        primary_du=primary.mac,
        standby_du=standby.mac,
        ru_mac=ru.mac,
        silence_threshold_ns=2 * numerology.slot_duration_ns,
    )
    ru.du_mac = box.mac
    injector = FaultInjector(
        seed=seed, name=f"failover-{fail_slot}",
        carrier_num_prb=cell.num_prb,
    )
    injector.silence(
        primary.mac,
        SymbolTime.from_absolute_slot(fail_slot, numerology).slot_key(),
    )
    network = FronthaulNetwork(
        middleboxes=[box], wire=ImpairedLink(injector)
    )
    network.add_du(primary)
    network.add_du(standby)
    network.add_ru(ru)
    network.run(fail_slot + 8)
    if not box.events:
        return None
    return box.events[0].silence_ns / 1e6


# -- scenario 4: deterministic SLO burn-rate alert ---------------------------


def _run_slo_chaos(seed: int, slots: int) -> SloChaosOutcome:
    """A streamed scenario whose deadline SLO *must* fire, same edge every
    run: the per-slot latency budget is starved to 100 ns (any slot that
    carries traffic misses), so the windowed miss rate burns ~100x the
    1% objective and the engine emits one firing edge — deterministic
    because the whole run is (seeded traffic, modelled latencies, fixed
    epoch grid)."""
    from repro.scale import Scenario, ScenarioSpec

    spec = ScenarioSpec.from_dict(
        {
            "name": "slo-chaos",
            "slots": slots,
            "seed": seed,
            "epoch_slots": max(2, slots // 4),
            "cells": [
                {
                    "name": "slo-cell1",
                    "pci": 1,
                    "bandwidth_hz": 20_000_000,
                    "rus": [{"name": "slo-cell1-ru1", "n_antennas": 2}],
                    "ues": [
                        {
                            "ue_id": "slo-ue1",
                            "flows": [
                                {"kind": "cbr", "rate_mbps": 40.0,
                                 "direction": "dl"},
                            ],
                        }
                    ],
                    "chain": [{"stage": "prb_monitor"}],
                },
            ],
            "obs": {
                "enabled": True,
                "deadline_accounting": True,
                "stream": True,
                "deadline_budget_ns": SLO_STARVED_BUDGET_NS,
                "slo": [
                    {
                        "name": SLO_ALERT_NAME,
                        "objective": "deadline_miss_rate",
                        "threshold": 0.01,
                        "window_epochs": 2,
                        "min_samples": 2,
                    }
                ],
            },
        }
    )
    result = Scenario(spec).run(workers=1)
    stream = result.telemetry
    assert stream is not None, "SLO chaos run produced no telemetry stream"
    misses = sum(a.violations for a in stream.accountants.values())
    checks = sum(len(a.accounts) for a in stream.accountants.values())
    return SloChaosOutcome(
        epochs=stream.epochs,
        deadline_checks=checks,
        deadline_misses=misses,
        alerts=[alert.to_dict() for alert in stream.slo.alerts],
    )


# -- entry point -------------------------------------------------------------


def run_chaos(seed: int = 7, slots: Optional[int] = None) -> ChaosResult:
    if slots is None:
        slots = int(os.environ.get("REPRO_CHAOS_SLOTS", str(DEFAULT_SLOTS)))
    slots = max(slots, 12)
    scenarios = [
        _run_sweep_scenario(name, config, seed, slots)
        for name, config in _loss_scenarios()
    ]
    chain = _run_chain_chaos(seed, max(slots, 20))
    failover_ms = [
        ms
        for ms in (
            _failover_trial(seed + trial, fail_slot)
            for trial, fail_slot in enumerate(range(3, 9))
        )
        if ms is not None
    ]
    result = ChaosResult(
        seed=seed,
        slots=slots,
        scenarios=scenarios,
        chain=chain,
        failover_ms=failover_ms,
        slo=_run_slo_chaos(seed, slots),
    )
    result.assert_healthy()
    return result


if __name__ == "__main__":
    print(run_chaos().format())
