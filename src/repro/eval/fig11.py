"""Figure 11: floor-walk comparison of deployment options (Section 6.3.1).

Covering one floor with 100 MHz of spectrum and four RUs:

- **O1**: four 25 MHz 4x4 cells on non-overlapping frequencies — no
  interference, but the mobile UE caps at ~200 Mbps from limited spectrum.
- **O2**: four 100 MHz 4x4 cells with full frequency reuse — inter-cell
  interference from the static UE's serving cell carves throughput dips.
- **O3**: one 100 MHz 4x4 cell distributed over all four RUs by the
  RANBooster DAS middlebox — ~700 Mbps everywhere.

A static UE near RU 1 receives 100 Mbps throughout; the mobile UE walks
the floor requesting 700 Mbps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.eval.report import format_table
from repro.eval.throughput import DeployedCell, UePlacement, evaluate_network
from repro.phy.channel import ChannelModel
from repro.phy.geometry import FloorPlan, Position, WalkPath
from repro.ran.cell import CellConfig
from repro.ran.stacks import SRSRAN, VendorProfile
from repro.ran.ue import UserEquipment

MOBILE_LOAD_MBPS = 700.0
STATIC_LOAD_MBPS = 100.0


@dataclass
class WalkSample:
    position: Tuple[float, float]
    serving_cell: str
    dl_mbps: float


@dataclass
class FloorWalkResult:
    option: str
    samples: List[WalkSample]
    static_dl_mbps: List[float]

    def mbps(self) -> np.ndarray:
        return np.array([s.dl_mbps for s in self.samples])

    def summary(self) -> Tuple[float, float, float]:
        series = self.mbps()
        return float(series.min()), float(series.mean()), float(series.max())


@dataclass
class Fig11Result:
    o1: FloorWalkResult
    o2: FloorWalkResult
    o3: FloorWalkResult

    def format(self) -> str:
        rows = []
        for result in (self.o1, self.o2, self.o3):
            low, mean, high = result.summary()
            rows.append((result.option, low, mean, high))
        return format_table(
            "Figure 11: mobile UE downlink along the floor walk (Mbps)",
            ("option", "min", "mean", "max"),
            rows,
        )


def _walk_positions(step_m: float) -> List[Position]:
    return list(WalkPath(floor=0).points(step_m))


def run_fig11(
    profile: VendorProfile = SRSRAN, step_m: float = 2.0, seed: int = 13
) -> Fig11Result:
    plan = FloorPlan()
    channel = ChannelModel(seed=seed)
    rus = plan.ru_positions(0)
    static_position = Position(rus[0].x + 2.0, rus[0].y + 1.0, 0)
    walk = _walk_positions(step_m)

    def run_option(option: str, cells: List[DeployedCell]) -> FloorWalkResult:
        views = [cell.view() for cell in cells]
        samples: List[WalkSample] = []
        static_series: List[float] = []
        for index, position in enumerate(walk):
            mobile = UserEquipment(
                f"0010100000007{index:02d}", position, channel=channel
            )
            static = UserEquipment("001010000000699", static_position,
                                   channel=channel)
            # Attach by strongest RSRP among this option's cells.
            mobile_cell = cells[
                max(range(len(cells)), key=lambda i: mobile.rsrp_dbm(views[i]))
            ]
            static_cell = cells[
                max(range(len(cells)), key=lambda i: static.rsrp_dbm(views[i]))
            ]
            result = evaluate_network(
                cells,
                [
                    UePlacement(static, static_cell.name, STATIC_LOAD_MBPS),
                    UePlacement(mobile, mobile_cell.name, MOBILE_LOAD_MBPS),
                ],
            )
            samples.append(
                WalkSample(
                    position=(position.x, position.y),
                    serving_cell=mobile_cell.name,
                    dl_mbps=result.ue(mobile.imsi).dl_mbps,
                )
            )
            static_series.append(result.ue(static.imsi).dl_mbps)
        return FloorWalkResult(
            option=option, samples=samples, static_dl_mbps=static_series
        )

    # O1: four 25 MHz cells on non-overlapping center frequencies.
    o1_cells = [
        DeployedCell(
            f"o1_cell{i}",
            CellConfig(
                pci=100 + i,
                bandwidth_hz=25_000_000,
                center_frequency_hz=3.40e9 + i * 25_000_000,
            ),
            [rus[i]],
            [4],
            mode="single",
            profile=profile,
        )
        for i in range(4)
    ]
    # O2: four 100 MHz cells re-using the same spectrum.
    o2_cells = [
        DeployedCell(
            f"o2_cell{i}",
            CellConfig(pci=110 + i),
            [rus[i]],
            [4],
            mode="single",
            profile=profile,
        )
        for i in range(4)
    ]
    # O3: one 100 MHz DAS cell across all four RUs.
    o3_cells = [
        DeployedCell(
            "o3_das",
            CellConfig(pci=120),
            list(rus),
            [4] * 4,
            mode="das",
            profile=profile,
        )
    ]
    return Fig11Result(
        o1=run_option("O1 4x25MHz cells", o1_cells),
        o2=run_option("O2 4x100MHz cells", o2_cells),
        o3=run_option("O3 RANBooster DAS", o3_cells),
    )
