"""Appendix experiments: A.1 sharing math checks and A.2 cost analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.eval.report import format_table
from repro.fronthaul.prach import (
    translate_freq_offset,
    translate_freq_offset_via_re0,
)
from repro.fronthaul.spectrum import PrbGrid, split_ru_spectrum
from repro.sim.cost import DeploymentCost


@dataclass
class SharingMathResult:
    """Appendix A.1.1/A.1.2 worked example (the paper's Figure 6 setup)."""

    ru_center_hz: float
    du_centers_hz: List[float]
    du_offsets_prb: List[float]
    prach_offsets: List[Tuple[int, int]]  # (DU freqOffset, RU freqOffset)

    def format(self) -> str:
        rows = []
        for index, (center, offset) in enumerate(
            zip(self.du_centers_hz, self.du_offsets_prb)
        ):
            rows.append((f"DU {index}", center / 1e9, offset))
        return format_table(
            "Appendix A.1: aligned DU placement in a 100MHz shared RU",
            ("DU", "center GHz", "PRB offset"),
            rows,
        )


def run_sharing_math(
    ru_center_hz: float = 3.46e9, du_prbs: Tuple[int, int] = (106, 106)
) -> SharingMathResult:
    ru_grid = PrbGrid(ru_center_hz, 273)
    grids = split_ru_spectrum(ru_grid, list(du_prbs))
    offsets = [ru_grid.offset_of(grid) for grid in grids]
    prach = []
    for grid in grids:
        for du_offset in (0, 100, 1272):
            ru_offset = translate_freq_offset(
                du_offset, grid.center_frequency_hz, ru_center_hz, 30_000
            )
            # The two derivations of Appendix A.1.2 must agree.
            assert ru_offset == translate_freq_offset_via_re0(
                du_offset, grid.center_frequency_hz, ru_center_hz, 30_000
            )
            prach.append((du_offset, ru_offset))
    return SharingMathResult(
        ru_center_hz=ru_center_hz,
        du_centers_hz=[g.center_frequency_hz for g in grids],
        du_offsets_prb=offsets,
        prach_offsets=prach,
    )


@dataclass
class CostResult:
    """Appendix A.2: CapEx comparison for the Cambridge deployment."""

    ranbooster_usd: float
    conventional_usd: float
    savings_fraction: float

    def format(self) -> str:
        return format_table(
            "Appendix A.2: CapEx comparison (USD)",
            ("solution", "cost", "relative"),
            [
                ("RANBooster (50% margin)", round(self.ranbooster_usd),
                 f"-{self.savings_fraction * 100:.0f}%"),
                ("Conventional DAS ($2/sqft)", round(self.conventional_usd),
                 "baseline"),
            ],
        )


def run_cost_analysis() -> CostResult:
    deployment = DeploymentCost()
    return CostResult(
        ranbooster_usd=deployment.ranbooster_usd(),
        conventional_usd=deployment.conventional_usd(),
        savings_fraction=deployment.savings_fraction(),
    )
