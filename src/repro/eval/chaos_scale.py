"""Chaos-scale evaluation: self-healing recovery is provably exact.

The scale-out digest oracle (sharded == single-process, byte for byte)
turns "the supervisor recovered" from a vibe into a theorem: if a run
that lost a worker mid-epoch still produces the unfaulted digest, the
respawn-and-replay path reconstructed the lost shard *exactly* — every
packet, every counter, every telemetry delta.

This eval sweeps that claim across the failure classes:

1. **Seeded injection sweep** — one :func:`~repro.faults.process.
   seeded_chaos_sweep` injection per kind (kill -9 mid-epoch, stalled
   worker, poisoned reply, corrupted arena frame) plus explicit kill
   points at the first and last barrier epoch, each run at 2 and 4
   workers under a supervised pool.  Asserts, per run: digest equality
   with the unfaulted reference, identical merged timelines, identical
   deterministic stream expositions, ``live_snapshot() == collect()``
   after recovery, and at least one restart actually happened (a sweep
   that silently stopped injecting proves nothing).
2. **Restart-budget exhaustion** — a re-arming kill that outlives its
   budget must end in :class:`~repro.scale.supervisor.
   ShardRecoveryExhausted` in bounded wall time, with partial results
   from the surviving workers, every worker process dead, and the
   shared-memory segment unlinked.

Run via ``PYTHONPATH=src python -m repro.eval chaos-scale``; shrink
with ``REPRO_CHAOS_SCALE_SLOTS`` / ``REPRO_CHAOS_SCALE_WORKERS`` for CI
smoke runs.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from multiprocessing import shared_memory

from repro.eval.report import format_table
from repro.faults.process import ProcessChaosSpec, seeded_chaos_sweep
from repro.obs.live import deterministic_exposition
from repro.scale import ScenarioSpec, run_scenario
from repro.scale.supervisor import ShardRecoveryExhausted, SupervisedWorkerPool

DEFAULT_SLOTS = 8
DEFAULT_WORKERS = (2, 4)
SWEEP_SEED = 20250808

#: Fast supervision policy for the eval: tight barrier deadline, short
#: backoff — deterministic results do not depend on these, only wall
#: time does.
SUPERVISOR = {
    "barrier_timeout_s": 5.0,
    "poll_interval_s": 0.01,
    "max_restarts_per_worker": 2,
    "backoff_base_s": 0.01,
    "backoff_factor": 2.0,
}


def chaos_scale_spec(slots: int) -> ScenarioSpec:
    """A 6-cell topology with real coupling: one 3-cell DAS campus, one
    shared-spectrum pair, two singletons — enough groups that 4 workers
    get a meaningful placement, with the full obs plane streaming."""
    def cell(name, pci, group=None, chain=(), rus=None, extra=None):
        data = {
            "name": name,
            "pci": pci,
            "bandwidth_hz": 20_000_000,
            "group": group,
            "rus": rus or [{"name": f"{name}-ru"}],
            "ues": [
                {
                    "ue_id": f"{name}-ue",
                    "flows": [
                        {"kind": "cbr", "rate_mbps": 25, "direction": "dl"},
                        {
                            "kind": "poisson",
                            "rate_mbps": 8,
                            "direction": "ul",
                            "seed": pci,
                        },
                    ],
                }
            ],
            "chain": list(chain),
        }
        data.update(extra or {})
        return data

    cells = [
        cell(
            "campus0",
            1,
            group="campus",
            rus=[{"name": "campus0-ru1"}, {"name": "campus0-ru2"}],
            chain=[{"stage": "das", "params": {"partial_merge": True}}],
        ),
        cell("campus1", 2, group="campus"),
        cell("campus2", 3, group="campus"),
        cell("pair0", 4, group="pair", chain=[{"stage": "prb_monitor"}]),
        cell("pair1", 5, group="pair"),
        cell("solo0", 6, chain=[{"stage": "prb_monitor"}]),
        cell("solo1", 7),
    ]
    return ScenarioSpec.from_dict(
        {
            "name": "chaos-scale",
            "slots": slots,
            "seed": 17,
            "epoch_slots": 2,
            "obs": {
                "enabled": True,
                "stream": True,
                "deadline_accounting": True,
            },
            "cells": cells,
        }
    )


def _injections(spec: ScenarioSpec) -> List[ProcessChaosSpec]:
    """The sweep: one seeded point per failure class plus the edge kill
    points (first barrier epoch, last barrier epoch)."""
    epochs = -(-spec.slots // spec.effective_epoch_slots())
    groups = list(spec.groups())
    sweep = seeded_chaos_sweep(SWEEP_SEED, epochs=epochs, groups=groups)
    sweep.append(
        ProcessChaosSpec(
            kind="kill", epoch=0, group="campus", name="kill-first-epoch"
        )
    )
    sweep.append(
        ProcessChaosSpec(
            kind="kill",
            epoch=epochs - 1,
            group=groups[-1],
            name="kill-last-epoch",
        )
    )
    return sweep


@dataclass
class ChaosScaleResult:
    """Everything the chaos-scale gate measured, plus its assertions."""

    slots: int
    worker_counts: Tuple[int, ...]
    reference_digest: str = ""
    #: (injection name, kind, epoch, group, workers) -> row dict.
    rows: List[Dict[str, Any]] = field(default_factory=list)
    exhaustion: Dict[str, Any] = field(default_factory=dict)

    def fingerprint(self) -> Tuple:
        """Deterministic identity of the whole sweep (CI pins digests)."""
        return (
            self.reference_digest,
            tuple(
                (
                    row["injection"],
                    row["workers"],
                    row["digest_equal"],
                    row["restarts"],
                )
                for row in self.rows
            ),
        )

    def assert_healthy(self) -> None:
        assert self.rows, "sweep ran no injections"
        for row in self.rows:
            name = f"{row['injection']} @ {row['workers']}w"
            assert row["digest_equal"], (
                f"{name}: recovered digest diverged from unfaulted run"
            )
            assert row["timeline_equal"], f"{name}: merged timeline diverged"
            assert row["stream_equal"], (
                f"{name}: deterministic stream exposition diverged"
            )
            assert row["live_equals_collect"], (
                f"{name}: live_snapshot() != collect() after recovery"
            )
            assert row["restarts"] >= 1, f"{name}: no restart happened"
        ex = self.exhaustion
        assert ex.get("raised"), "budget exhaustion did not raise"
        assert ex.get("partial_groups"), "exhaustion carried no partial results"
        assert ex.get("no_leak"), "exhaustion leaked the shm segment"
        assert ex.get("workers_dead"), "exhaustion left live workers"

    def format(self) -> str:
        table = format_table(
            f"Chaos-scale sweep ({self.slots} slots, "
            f"reference {self.reference_digest[:12]}...)",
            [
                "injection",
                "kind",
                "epoch",
                "target",
                "workers",
                "restarts",
                "replayed",
                "digest",
                "live==collect",
            ],
            [
                [
                    row["injection"],
                    row["kind"],
                    row["epoch"],
                    row["target"],
                    row["workers"],
                    row["restarts"],
                    row["replayed_slots"],
                    "equal" if row["digest_equal"] else "DIVERGED",
                    "yes" if row["live_equals_collect"] else "NO",
                ]
                for row in self.rows
            ],
        )
        ex = self.exhaustion
        lines = [
            table,
            "",
            "Restart-budget exhaustion (re-arming kill, budget "
            f"{ex.get('budget')}):",
            f"  raised ShardRecoveryExhausted: {ex.get('raised')}"
            f" in {ex.get('elapsed_s', 0.0):.2f}s",
            f"  partial results from survivors: {ex.get('partial_groups')}",
            f"  shm segment unlinked: {ex.get('no_leak')}; "
            f"all workers dead: {ex.get('workers_dead')}",
        ]
        return "\n".join(lines)


def _with_chaos(
    spec: ScenarioSpec, injection: ProcessChaosSpec
) -> ScenarioSpec:
    data = spec.to_dict()
    data["process_chaos"] = [injection.to_dict()]
    data["supervisor"] = dict(SUPERVISOR)
    return ScenarioSpec.from_dict(data)


def run_chaos_scale(
    slots: int = DEFAULT_SLOTS,
    worker_counts: Tuple[int, ...] = DEFAULT_WORKERS,
) -> ChaosScaleResult:
    spec = chaos_scale_spec(slots)
    result = ChaosScaleResult(slots=slots, worker_counts=tuple(worker_counts))

    references: Dict[int, Any] = {}
    for workers in worker_counts:
        references[workers] = run_scenario(spec, workers=workers)
    baseline = references[worker_counts[0]]
    result.reference_digest = baseline.digest
    for workers, reference in references.items():
        assert reference.digest == baseline.digest, (
            f"unfaulted sharded run diverged at {workers} workers"
        )

    for injection in _injections(spec):
        for workers in worker_counts:
            reference = references[workers]
            faulted = run_scenario(
                _with_chaos(spec, injection), workers=workers
            )
            result.rows.append(
                {
                    "injection": injection.name or injection.kind,
                    "kind": injection.kind,
                    "epoch": injection.epoch,
                    "target": injection.group or f"w{injection.worker}",
                    "workers": workers,
                    "restarts": faulted.recovery.get("total_restarts", 0),
                    "replayed_slots": faulted.recovery.get(
                        "replayed_slots", 0
                    ),
                    "digest_equal": faulted.digest == reference.digest,
                    "timeline_equal": (
                        faulted.timeline() == reference.timeline()
                    ),
                    "stream_equal": (
                        deterministic_exposition(faulted.telemetry.registry)
                        == deterministic_exposition(
                            reference.telemetry.registry
                        )
                    ),
                    "live_equals_collect": (
                        faulted.telemetry.live_snapshot()
                        == faulted.metrics().snapshot()
                    ),
                }
            )

    result.exhaustion = _run_exhaustion(spec)
    return result


def _run_exhaustion(spec: ScenarioSpec) -> Dict[str, Any]:
    budget = 1
    data = spec.to_dict()
    data["process_chaos"] = [
        {"kind": "kill", "epoch": 1, "group": "campus", "rearm": True}
    ]
    data["supervisor"] = dict(SUPERVISOR, max_restarts_per_worker=budget)
    doomed = ScenarioSpec.from_dict(data)
    pool = SupervisedWorkerPool(doomed, workers=2)
    pool.start()
    segment = pool.arena_name
    started = time.monotonic()
    outcome: Dict[str, Any] = {"budget": budget, "raised": False}
    try:
        pool.run()
    except ShardRecoveryExhausted as exc:
        outcome["raised"] = True
        outcome["partial_groups"] = sorted(exc.partial)
        outcome["failed_worker"] = exc.worker
        outcome["restarts"] = exc.restarts
    outcome["elapsed_s"] = time.monotonic() - started
    try:
        shared_memory.SharedMemory(name=segment)
        outcome["no_leak"] = False
    except FileNotFoundError:
        outcome["no_leak"] = True
    outcome["workers_dead"] = not any(
        process.is_alive() for process in pool._processes
    )
    return outcome


def run() -> ChaosScaleResult:
    slots = int(os.environ.get("REPRO_CHAOS_SCALE_SLOTS", str(DEFAULT_SLOTS)))
    workers_env = os.environ.get("REPRO_CHAOS_SCALE_WORKERS", "")
    if workers_env:
        worker_counts = tuple(
            int(token) for token in workers_env.split(",") if token
        )
    else:
        worker_counts = DEFAULT_WORKERS
    result = run_chaos_scale(slots=slots, worker_counts=worker_counts)
    result.assert_healthy()
    return result


__all__ = [
    "ChaosScaleResult",
    "chaos_scale_spec",
    "run",
    "run_chaos_scale",
]
