"""obs-top: the live streaming-telemetry dashboard over a sharded run.

Runs the canonical 8-cell scenario (:func:`repro.eval.scale.bench_spec`)
with the full telemetry plane armed — metrics, sampled spans, deadline
accounting, wire conformance, SLO burn-rate evaluation — streamed from
the workers at every barrier epoch and folded live by the coordinator,
then renders the ``obs-top`` operator screen from the stream.

Two invariants are asserted on every invocation (they are the streaming
plane's contract, so this eval doubles as the CI smoke):

- **streaming never perturbs results** — the run's digest equals a
  reference run with observability fully disabled;
- **live equals collect, bit for bit** — after the final epoch the
  stream's folded registry snapshot equals the end-of-run ``collect()``
  merge exactly.

:func:`ObsTopResult.golden_exposition` is the deterministic subset of
the Prometheus exposition (wall-clock families filtered); CI pins its
bytes.  Run via ``PYTHONPATH=src python -m repro.eval obs-top``; shrink
with ``REPRO_OBS_TOP_SLOTS`` / force a worker count with
``REPRO_OBS_TOP_WORKERS``.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.core.telemetry import TelemetryBus
from repro.eval.scale import bench_spec
from repro.obs.live import deterministic_exposition, render_live
from repro.obs.slo import default_slos
from repro.obs.stream import EPOCH_TOPIC, TelemetryStream
from repro.scale import Scenario
from repro.scale.spec import ObsSpec, ScenarioSpec

DEFAULT_SLOTS = 40
DEFAULT_WORKERS = 4
DEFAULT_EPOCH_SLOTS = 5


def obs_top_spec(
    slots: int = DEFAULT_SLOTS,
    epoch_slots: int = DEFAULT_EPOCH_SLOTS,
    slos: tuple = (),
) -> ScenarioSpec:
    """The 8-cell bench topology with the full telemetry plane armed."""
    slo_dicts = tuple(
        spec.to_dict() for spec in (slos or default_slos())
    )
    return dataclasses.replace(
        bench_spec(slots),
        name="obs-top-8cell",
        epoch_slots=epoch_slots,
        obs=ObsSpec(
            enabled=True,
            deadline_accounting=True,
            conformance=True,
            stream=True,
            slo=slo_dicts,
        ),
    )


@dataclass
class ObsTopResult:
    slots: int
    workers: int
    epochs: int
    digest: str
    reference_digest: str
    spans_seen: int
    spans_dropped: int
    frames_checked: int
    bus_epoch_records: int
    alerts: List[Dict[str, Any]] = field(default_factory=list)
    screen: str = ""
    exposition: str = ""

    @property
    def digests_match(self) -> bool:
        return self.digest == self.reference_digest

    def golden_exposition(self) -> str:
        """The seed-stable exposition bytes CI pins."""
        return self.exposition

    def format(self) -> str:
        lines = [self.screen, ""]
        lines.append(
            f"digest {self.digest[:12]}... "
            + (
                "== reference (streaming is invisible to results)"
                if self.digests_match
                else f"!= reference {self.reference_digest[:12]}..."
            )
        )
        lines.append(
            f"{self.epochs} epochs folded across {self.workers} workers; "
            f"{self.bus_epoch_records} epoch records on the bus; "
            f"{len(self.alerts)} SLO alert edges"
        )
        return "\n".join(lines)


def run_obs_top(slots: int = 0, workers: int = 0) -> ObsTopResult:
    """Run the streamed 8-cell scenario and fold it into one screen."""
    slots = slots or int(
        os.environ.get("REPRO_OBS_TOP_SLOTS", DEFAULT_SLOTS)
    )
    workers = workers or int(
        os.environ.get("REPRO_OBS_TOP_WORKERS", DEFAULT_WORKERS)
    )
    spec = obs_top_spec(slots)
    # Reference: observability fully off — streaming must not perturb it.
    reference = Scenario(
        dataclasses.replace(spec, obs=ObsSpec())
    ).run(workers=1)
    bus = TelemetryBus()
    result = Scenario(spec).run(workers=workers, bus=bus)
    stream: TelemetryStream = result.telemetry
    assert stream is not None and stream.finalized, (
        "streaming run returned no finalized telemetry stream"
    )
    assert result.digest == reference.digest, (
        f"streaming perturbed the digest: {result.digest} != "
        f"{reference.digest}"
    )
    live = stream.live_snapshot()
    collected = result.metrics().snapshot()
    assert live == collected, (
        "live-folded snapshot diverged from end-of-run collect()"
    )
    return ObsTopResult(
        slots=slots,
        workers=workers,
        epochs=stream.epochs,
        digest=result.digest,
        reference_digest=reference.digest,
        spans_seen=stream.spans_seen,
        spans_dropped=sum(stream.spans_dropped.values()),
        frames_checked=stream.frames_checked,
        bus_epoch_records=len(bus.history(EPOCH_TOPIC)),
        alerts=[alert.to_dict() for alert in stream.slo.alerts],
        screen=render_live(
            stream, title=f"obs-top: {spec.name} @ {workers} workers"
        ),
        exposition=deterministic_exposition(stream.registry),
    )


def main() -> str:
    return run_obs_top().format()


if __name__ == "__main__":
    print(main())
