"""Codec benchmark: modcomp vs BFP wire bytes and scenario throughput.

Two measurements, both recorded into ``BENCH_10.json``:

1. **Wire bytes** — for every vendor profile, real U-plane frames are
   packed under both negotiated codecs (same seeded samples, headers
   included) and the on-wire byte totals compared.  The gate asserts
   srsRAN's width-3 modcomp config shrinks wire bytes by at least
   :data:`REDUCTION_FLOOR` against its width-9 BFP baseline — the
   headline the second codec exists for.

2. **Throughput delta** — the canonical 8-cell scale benchmark (see
   :func:`repro.eval.scale.bench_spec`) run single-process twice: once
   with every cell on its profile default (BFP) and once with every
   cell pinned to ``codec: modcomp`` through per-stream negotiation.
   The recorded cell-slots/s delta is the compute price (or win) of the
   denser codec across the full DU->switch->RU datapath.  It is
   informational only — run-to-run timing noise at this scenario size
   exceeds the real per-codec difference, so health gates on the
   deterministic wire bytes, never on the delta.

Run via ``PYTHONPATH=src python -m repro.eval codec``; shrink with
``REPRO_CODEC_SLOTS`` for CI smoke runs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.eval.report import format_table
from repro.eval.scale import bench_spec
from repro.fronthaul.cplane import Direction
from repro.fronthaul.ecpri import EAxCId
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import make_packet
from repro.fronthaul.timing import SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection
from repro.ran.stacks import ALL_PROFILES, negotiate_compression
from repro.scale import Scenario, ScenarioSpec

DEFAULT_SLOTS = 40
#: Minimum srsRAN modcomp wire-byte reduction vs its BFP-9 baseline.
REDUCTION_FLOOR = 2.0
#: Carrier of the wire measurement (the 40 MHz clean-matrix cell).
NUM_PRB = 106
#: Packed frames per (profile, codec) cell: 14 symbols x 2 ants x 2 slots.
FRAMES = 56

_SRC = MacAddress.from_int(0x02_00_00_00_00_01)
_DST = MacAddress.from_int(0x02_00_00_00_00_02)
_EAXC = EAxCId.from_int(0x0101)


@dataclass
class WireRow:
    """One (profile, codec) cell of the wire-byte matrix."""

    profile: str
    codec: str
    iq_width: int
    frames: int
    total_bytes: int

    @property
    def bytes_per_prb(self) -> float:
        return self.total_bytes / (self.frames * NUM_PRB)


@dataclass
class CodecResult:
    slots: int
    wire: List[WireRow] = field(default_factory=list)
    #: profile -> bfp_bytes / modcomp_bytes (headers included).
    reduction: Dict[str, float] = field(default_factory=dict)
    bfp_cell_slots_per_second: float = 0.0
    modcomp_cell_slots_per_second: float = 0.0
    bfp_digest: str = ""
    modcomp_digest: str = ""

    @property
    def throughput_delta_pct(self) -> float:
        """Modcomp throughput relative to BFP, in percent (+ is faster)."""
        if not self.bfp_cell_slots_per_second:
            return 0.0
        ratio = (
            self.modcomp_cell_slots_per_second
            / self.bfp_cell_slots_per_second
        )
        return (ratio - 1.0) * 100.0

    def assert_healthy(self) -> None:
        floor = self.reduction.get("srsRAN", 0.0)
        if floor < REDUCTION_FLOOR:
            raise AssertionError(
                f"srsRAN modcomp wire reduction {floor:.2f}x below the "
                f"{REDUCTION_FLOOR:.1f}x floor"
            )
        for profile, reduction in self.reduction.items():
            if reduction <= 1.0:
                raise AssertionError(
                    f"{profile}: modcomp inflated the wire "
                    f"({reduction:.2f}x)"
                )
        if self.bfp_digest == self.modcomp_digest:
            raise AssertionError(
                "BFP and modcomp scenario digests collide — the codec "
                "switch is not reaching the wire"
            )

    def format(self) -> str:
        wire_table = format_table(
            f"Codec wire bytes: {FRAMES} packed U-plane frames x "
            f"{NUM_PRB} PRBs, headers included",
            ["profile", "codec", "iq_width", "total bytes", "B/PRB",
             "reduction"],
            [
                (
                    row.profile,
                    row.codec,
                    row.iq_width,
                    row.total_bytes,
                    f"{row.bytes_per_prb:.2f}",
                    (
                        f"{self.reduction[row.profile]:.2f}x"
                        if row.codec == "modcomp" else "-"
                    ),
                )
                for row in self.wire
            ],
        )
        lines = [
            wire_table,
            f"floor: srsRAN modcomp >= {REDUCTION_FLOOR:.1f}x smaller "
            f"than BFP-9 on the wire "
            f"({self.reduction.get('srsRAN', 0.0):.2f}x measured)",
            f"8-cell throughput ({self.slots} slots, 1 worker): "
            f"bfp {self.bfp_cell_slots_per_second:.1f} c-s/s, "
            f"modcomp {self.modcomp_cell_slots_per_second:.1f} c-s/s "
            f"({self.throughput_delta_pct:+.1f}%)",
        ]
        return "\n".join(lines)

    def to_bench(self) -> Dict[str, object]:
        return {
            "codec_8cell": {
                "slots": self.slots,
                "num_prb": NUM_PRB,
                "frames_per_cell": FRAMES,
                "wire_bytes": {
                    row.profile: {
                        **{
                            other.codec: other.total_bytes
                            for other in self.wire
                            if other.profile == row.profile
                        },
                    }
                    for row in self.wire
                },
                "wire_reduction": dict(self.reduction),
                "reduction_floor": REDUCTION_FLOOR,
                "bfp_cell_slots_per_second": (
                    self.bfp_cell_slots_per_second
                ),
                "modcomp_cell_slots_per_second": (
                    self.modcomp_cell_slots_per_second
                ),
                "throughput_delta_pct": self.throughput_delta_pct,
                "bfp_digest_sha256": self.bfp_digest,
                "modcomp_digest_sha256": self.modcomp_digest,
            }
        }


def _measure_wire(profile, codec: str, seed: int) -> WireRow:
    """Pack FRAMES full U-plane frames and count every byte on the wire."""
    compression = negotiate_compression(profile, codec)
    rng = np.random.default_rng(seed)
    total = 0
    for seq in range(FRAMES):
        samples = rng.integers(
            -4096, 4096, size=(NUM_PRB, 24), dtype=np.int16
        )
        section = UPlaneSection.from_samples(
            section_id=1,
            start_prb=0,
            samples=samples,
            compression=compression,
        )
        message = UPlaneMessage(
            direction=Direction.DOWNLINK,
            time=SymbolTime(0, 0, seq // 14 % 2, seq % 14),
            sections=[section],
        )
        packet = make_packet(
            src=_SRC, dst=_DST, message=message, seq_id=seq % 256,
            eaxc=_EAXC,
        )
        total += len(packet.pack())
    return WireRow(
        profile=profile.name,
        codec=codec,
        iq_width=compression.iq_width,
        frames=FRAMES,
        total_bytes=total,
    )


def _modcomp_bench_spec(slots: int) -> ScenarioSpec:
    """The 8-cell benchmark with every cell negotiated onto modcomp."""
    data = bench_spec(slots).to_dict()
    for cell in data["cells"]:
        cell["codec"] = "modcomp"
    data["name"] = "scale-bench-8cell-modcomp"
    return ScenarioSpec.from_dict(data)


def run_codec(slots: int = 0, seed: int = 10) -> CodecResult:
    slots = slots or int(os.environ.get("REPRO_CODEC_SLOTS", DEFAULT_SLOTS))
    result = CodecResult(slots=slots)
    for profile in ALL_PROFILES:
        per_codec: Dict[str, WireRow] = {}
        for codec in sorted(profile.supported_codecs()):
            row = _measure_wire(profile, codec, seed)
            per_codec[codec] = row
            result.wire.append(row)
        if "modcomp" in per_codec:
            result.reduction[profile.name] = (
                per_codec["bfp"].total_bytes
                / per_codec["modcomp"].total_bytes
            )
    bfp_run = Scenario(bench_spec(slots)).run(workers=1)
    modcomp_run = Scenario(_modcomp_bench_spec(slots)).run(workers=1)
    result.bfp_cell_slots_per_second = bfp_run.cell_slots_per_second
    result.modcomp_cell_slots_per_second = (
        modcomp_run.cell_slots_per_second
    )
    result.bfp_digest = bfp_run.digest
    result.modcomp_digest = modcomp_run.digest
    result.assert_healthy()
    return result


def write_bench(result: CodecResult, path: str = "BENCH_10.json") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result.to_bench(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def main() -> str:
    result = run_codec()
    write_bench(result)
    return result.format()


if __name__ == "__main__":
    print(main())
