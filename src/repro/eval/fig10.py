"""Figure 10: correctness of the DAS, RU-sharing and PRB-monitoring
middleboxes (Sections 6.2.1, 6.2.3, 6.2.4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.eval.report import format_table
from repro.eval.throughput import DeployedCell, UePlacement, evaluate_network
from repro.fronthaul.cplane import Direction
from repro.fronthaul.spectrum import PrbGrid, split_ru_spectrum
from repro.phy.channel import ChannelModel
from repro.phy.geometry import FloorPlan, Position
from repro.ran.cell import CellConfig
from repro.ran.stacks import SRSRAN, VendorProfile
from repro.ran.ue import AttachError, UserEquipment

SATURATING_LOAD_MBPS = 2_000.0


@dataclass
class Fig10aResult:
    """Figure 10a rows: single-cell baseline vs DAS across five floors."""

    baseline_dl_mbps: float
    baseline_ul_mbps: float
    das_simultaneous_dl_mbps: float
    das_simultaneous_ul_mbps: float
    das_individual_dl_mbps: List[float]
    das_individual_ul_mbps: List[float]
    upper_floor_attach_failures: int

    def rows(self) -> List[Tuple[str, float, float]]:
        rows = [
            ("Single cell - 1 RU (2 near UEs)", self.baseline_dl_mbps,
             self.baseline_ul_mbps),
            ("DAS 5 RUs - all UEs transmitting", self.das_simultaneous_dl_mbps,
             self.das_simultaneous_ul_mbps),
        ]
        for floor, (dl, ul) in enumerate(
            zip(self.das_individual_dl_mbps, self.das_individual_ul_mbps)
        ):
            rows.append((f"DAS 5 RUs - floor {floor} UE alone", dl, ul))
        return rows

    def format(self) -> str:
        return format_table(
            "Figure 10a: DAS aggregate throughput (Mbps)",
            ("configuration", "downlink", "uplink"),
            self.rows(),
        )


def run_fig10a(
    profile: VendorProfile = SRSRAN, seed: int = 7
) -> Fig10aResult:
    plan = FloorPlan()
    channel = ChannelModel(seed=seed)
    ground_ru = plan.ru_positions(0)[0]
    config = CellConfig(pci=1)

    def near(position: Position, dx: float) -> Position:
        return Position(position.x + dx, position.y + 1.0, position.floor)

    # -- baseline: one ground-floor RU, two near UEs --------------------------
    baseline = DeployedCell(
        "baseline", config, [ground_ru], [4], mode="single", profile=profile
    )
    ue_a = UserEquipment("001010000000001", near(ground_ru, 3.0), channel=channel)
    ue_b = UserEquipment("001010000000002", near(ground_ru, -4.0), channel=channel)
    result = evaluate_network(
        [baseline],
        [
            UePlacement(ue_a, "baseline", SATURATING_LOAD_MBPS,
                        SATURATING_LOAD_MBPS),
            UePlacement(ue_b, "baseline", SATURATING_LOAD_MBPS,
                        SATURATING_LOAD_MBPS),
        ],
    )
    baseline_dl = result.total_dl_mbps()
    baseline_ul = min(result.total_ul_mbps(),
                      max(r.ul_capacity_mbps for r in result.ues))

    # -- upper-floor UEs cannot attach to the single ground cell --------------
    attach_failures = 0
    for floor in range(1, plan.floors):
        ue = UserEquipment(
            f"00101000000010{floor}",
            near(plan.ru_positions(floor)[0], 2.0),
            channel=channel,
        )
        try:
            ue.scan_and_attach([baseline.view()])
        except AttachError:
            attach_failures += 1

    # -- DAS: one RU per floor, one UE per floor -------------------------------
    das_rus = [plan.ru_positions(floor)[0] for floor in range(plan.floors)]
    das = DeployedCell(
        "das", config, das_rus, [4] * len(das_rus), mode="das", profile=profile
    )
    das_ues = [
        UserEquipment(
            f"00101000000020{floor}", near(das_rus[floor], 3.0), channel=channel
        )
        for floor in range(plan.floors)
    ]
    for ue in das_ues:
        ue.scan_and_attach([das.view()])  # all floors attach now

    simultaneous = evaluate_network(
        [das],
        [
            UePlacement(ue, "das", SATURATING_LOAD_MBPS, SATURATING_LOAD_MBPS)
            for ue in das_ues
        ],
    )
    individual_dl, individual_ul = [], []
    for ue in das_ues:
        alone = evaluate_network(
            [das],
            [UePlacement(ue, "das", SATURATING_LOAD_MBPS, SATURATING_LOAD_MBPS)],
        )
        individual_dl.append(alone.total_dl_mbps())
        individual_ul.append(alone.ue(ue.imsi).ul_mbps)

    return Fig10aResult(
        baseline_dl_mbps=baseline_dl,
        baseline_ul_mbps=baseline_ul,
        das_simultaneous_dl_mbps=simultaneous.total_dl_mbps(),
        das_simultaneous_ul_mbps=min(
            simultaneous.total_ul_mbps(),
            max(r.ul_capacity_mbps for r in simultaneous.ues),
        ),
        das_individual_dl_mbps=individual_dl,
        das_individual_ul_mbps=individual_ul,
        upper_floor_attach_failures=attach_failures,
    )


@dataclass
class Fig10bResult:
    """Figure 10b: dedicated 40 MHz RU vs shared 100 MHz RU."""

    dedicated_dl_mbps: float
    dedicated_ul_mbps: float
    shared_dl_mbps: Dict[str, float]
    shared_ul_mbps: Dict[str, float]

    def format(self) -> str:
        rows = [
            ("40MHz cell - dedicated 40MHz RU", self.dedicated_dl_mbps,
             self.dedicated_ul_mbps)
        ]
        for name in sorted(self.shared_dl_mbps):
            rows.append(
                (f"40MHz cell {name} - shared 100MHz RU",
                 self.shared_dl_mbps[name], self.shared_ul_mbps[name])
            )
        return format_table(
            "Figure 10b: RU sharing throughput (Mbps)",
            ("configuration", "downlink", "uplink"),
            rows,
        )


def run_fig10b(
    profile: VendorProfile = SRSRAN, seed: int = 7
) -> Fig10bResult:
    plan = FloorPlan()
    channel = ChannelModel(seed=seed)
    ru = plan.ru_positions(0)[1]

    def make_ue(suffix: str, dx: float) -> UserEquipment:
        return UserEquipment(
            f"0010100000003{suffix}",
            Position(ru.x + dx, ru.y + 1.0, 0),
            channel=channel,
        )

    # Dedicated: a 40 MHz cell on its own 40 MHz RU.
    dedicated_config = CellConfig(
        pci=5, bandwidth_hz=40_000_000, center_frequency_hz=3.43e9
    )
    dedicated = DeployedCell(
        "dedicated", dedicated_config, [ru], [4], mode="single", profile=profile
    )
    ue0 = make_ue("01", 3.0)
    res = evaluate_network(
        [dedicated],
        [UePlacement(ue0, "dedicated", SATURATING_LOAD_MBPS, SATURATING_LOAD_MBPS)],
    )
    dedicated_dl = res.ue(ue0.imsi).dl_mbps
    dedicated_ul = res.ue(ue0.imsi).ul_mbps

    # Shared: two 40 MHz cells carved out of one 100 MHz RU, PRB-aligned
    # per Appendix A.1.1.
    ru_grid = PrbGrid(3.46e9, 273)
    grid_a, grid_b = split_ru_spectrum(ru_grid, [106, 106])
    shared_dl: Dict[str, float] = {}
    shared_ul: Dict[str, float] = {}
    cells = []
    placements = []
    ues = {}
    for name, grid, pci in (("A", grid_a, 6), ("B", grid_b, 7)):
        config = CellConfig(
            pci=pci,
            bandwidth_hz=40_000_000,
            center_frequency_hz=grid.center_frequency_hz,
        )
        cells.append(
            DeployedCell(
                f"mno_{name}", config, [ru], [4], mode="single", profile=profile
            )
        )
        ue = make_ue(f"1{pci}", -3.0 if name == "A" else 4.0)
        ues[name] = ue
        placements.append(
            UePlacement(ue, f"mno_{name}", SATURATING_LOAD_MBPS,
                        SATURATING_LOAD_MBPS)
        )
    shared = evaluate_network(cells, placements)
    for name in ("A", "B"):
        shared_dl[name] = shared.ue(ues[name].imsi).dl_mbps
        shared_ul[name] = shared.ue(ues[name].imsi).ul_mbps
    return Fig10bResult(
        dedicated_dl_mbps=dedicated_dl,
        dedicated_ul_mbps=dedicated_ul,
        shared_dl_mbps=shared_dl,
        shared_ul_mbps=shared_ul,
    )


@dataclass
class Fig10cPoint:
    offered_mbps: float
    estimated_utilization: float
    ground_truth_utilization: float


@dataclass
class Fig10cResult:
    """Figure 10c: monitor estimate vs MAC-log ground truth per load."""

    downlink: List[Fig10cPoint]
    uplink: List[Fig10cPoint]

    def max_error(self) -> float:
        points = self.downlink + self.uplink
        return max(
            abs(p.estimated_utilization - p.ground_truth_utilization)
            for p in points
        )

    def format(self) -> str:
        rows = []
        for label, points in (("DL", self.downlink), ("UL", self.uplink)):
            for p in points:
                rows.append(
                    (label, p.offered_mbps,
                     round(p.estimated_utilization * 100, 1),
                     round(p.ground_truth_utilization * 100, 1))
                )
        return format_table(
            "Figure 10c: PRB utilization, estimate vs ground truth (%)",
            ("dir", "offered Mbps", "RANBooster", "ground truth"),
            rows,
        )


def run_fig10c(
    loads_mbps: Tuple[float, ...] = (0, 100, 200, 300, 400, 500, 600, 700),
    n_slots: int = 30,
    seed: int = 3,
) -> Fig10cResult:
    """Packet-level run of the PRB monitor against scheduler ground truth.

    A 100 MHz cell (one monitored antenna port) serves one UE at each
    offered load; the monitor's estimates (Algorithm 1 over real BFP
    exponents) are compared with the scheduler's MAC log.
    """
    from repro.apps.prb_monitor import PrbMonitorMiddlebox
    from repro.fronthaul.compression import SAMPLES_PER_PRB
    from repro.phy.iq import QamModulator
    from repro.ran.du import DistributedUnit
    from repro.ran.ru import RadioUnit, RuConfig
    from repro.ran.traffic import ConstantBitrateFlow
    from repro.sim.network_sim import FronthaulNetwork

    downlink_points: List[Fig10cPoint] = []
    uplink_points: List[Fig10cPoint] = []
    for load in loads_mbps:
        cell = CellConfig(pci=9, n_antennas=1, max_dl_layers=1)
        du = DistributedUnit(
            du_id=3, cell=cell, symbols_per_slot=1, seed=seed
        )
        ru = RadioUnit(
            ru_id=9,
            config=RuConfig(num_prb=cell.num_prb, n_antennas=1),
            mac=du.ru_mac,
            du_mac=du.mac,
            seed=seed,
        )
        monitor = PrbMonitorMiddlebox(carrier_num_prb=cell.num_prb)
        # A 4x4-class aggregate SE so the load/utilization mapping matches
        # the paper's 100 MHz 4x4 cell (only port 0 carries monitored IQ).
        du.scheduler.add_ue("ue", dl_layers=4)
        du.scheduler.update_ue_quality("ue", dl_aggregate_se=16.0, ul_se=3.0)
        if load > 0:
            du.attach_flow("ue", ConstantBitrateFlow(load, "dl"),
                           Direction.DOWNLINK)
            du.attach_flow(
                "ue", ConstantBitrateFlow(load / 10.0, "ul"), Direction.UPLINK
            )
        network = FronthaulNetwork(middleboxes=[monitor])
        network.add_du(du)
        network.add_ru(ru)
        modulator = QamModulator(16)
        rng = np.random.default_rng(seed)

        def ue_uplink(ru_obj, position, time, port, _du=du, _rng=rng):
            """Transmit QAM on the PRBs the DU granted this slot."""
            pending = _du._pending_ul.get(time.slot_key())
            if not pending:
                return None
            n_sc = ru_obj.config.num_prb * SAMPLES_PER_PRB
            grid = np.zeros(n_sc, dtype=np.complex128)
            for allocation in pending:
                start = allocation.start_prb * SAMPLES_PER_PRB
                count = allocation.num_prb * SAMPLES_PER_PRB
                grid[start : start + count] = modulator.modulate(
                    _rng.integers(0, 16, count)
                ) * 0.5
            return grid

        network.run(n_slots, uplink_signal_fn=ue_uplink)
        # Estimates exist only for slots that carried U-plane traffic;
        # slots with no U-plane are idle by definition, so normalize per
        # direction-capable slot (what a wall-clock monitor does).
        from collections import defaultdict

        def per_slot_estimate(direction: Direction) -> float:
            per_slot: Dict[Tuple, List[float]] = defaultdict(list)
            for estimate in monitor.estimates:
                if estimate.direction is direction:
                    per_slot[estimate.time.slot_key()].append(
                        estimate.utilization
                    )
            n_capable = sum(
                1
                for entry in du.scheduler.mac_log
                if entry.direction is direction
            )
            if not n_capable:
                return 0.0
            return (
                sum(float(np.mean(v)) for v in per_slot.values()) / n_capable
            )

        ul_estimate = per_slot_estimate(Direction.UPLINK)
        downlink_points.append(
            Fig10cPoint(
                offered_mbps=load,
                estimated_utilization=per_slot_estimate(Direction.DOWNLINK),
                ground_truth_utilization=du.scheduler.average_utilization(
                    Direction.DOWNLINK
                ),
            )
        )
        uplink_points.append(
            Fig10cPoint(
                offered_mbps=load / 10.0,
                estimated_utilization=ul_estimate,
                ground_truth_utilization=du.scheduler.average_utilization(
                    Direction.UPLINK
                ),
            )
        )
    return Fig10cResult(downlink=downlink_points, uplink=uplink_points)
