"""Figure 15: DAS middlebox scalability and per-packet latency
(Section 6.4.1).

(a) Compute and network requirements vs number of RUs: middlebox ingress
and egress traffic grow linearly with the RU count (well under NIC
capacity); one CPU core bounds the per-slot uplink merge work below the
~30 us slot deadline for up to four RUs, beyond which a second core is
needed.

(b) Per-packet processing time by traffic type: DL C-/U-plane stay under
300 ns (forward + replicate); uplink packets split into a cheap caching
majority (~75%) and an expensive decompress+sum+recompress merge tail of
4-6 us that grows with the RU count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:
    from repro.obs import DeadlineAccountant

from repro.core.datapath import ScalabilityPoint, cores_required
from repro.core.latency import DEFAULT_COST_MODEL, ActionCostModel
from repro.eval.report import format_table
from repro.obs.sketch import QuantileSketch
from repro.fronthaul.timing import SYMBOLS_PER_SLOT
from repro.ran.cell import CellConfig
from repro.ran.stacks import SRSRAN, VendorProfile

#: The paper's deadline budget for added middlebox processing per slot.
SLOT_BUDGET_NS = 30_000.0


def uplane_wire_bytes(num_prb: int, cost_free: bool = True) -> int:
    """Wire size of one full-band U-plane frame (headers + BFP payload)."""
    from repro.fronthaul.compression import CompressionConfig

    payload = num_prb * CompressionConfig().prb_payload_bytes()
    # Ethernet (14) + eCPRI (8) + U-plane header (4) + section header (6).
    return payload + 14 + 8 + 4 + 6


def cplane_wire_bytes() -> int:
    return 14 + 8 + 8 + 8  # Ethernet + eCPRI + radio-app header + section


@dataclass
class Fig15aResult:
    points: List[ScalabilityPoint]

    def format(self) -> str:
        return format_table(
            "Figure 15a: DAS scalability vs number of RUs",
            ("RUs", "per-slot processing us", "CPU cores", "ingress Gbps",
             "egress Gbps"),
            [
                (
                    p.n_rus,
                    round(p.per_slot_processing_ns / 1000.0, 1),
                    p.cores_required,
                    round(p.ingress_gbps, 1),
                    round(p.egress_gbps, 1),
                )
                for p in self.points
            ],
        )


def run_fig15a(
    ru_counts=(2, 3, 4, 5, 6),
    cell: CellConfig = CellConfig(pci=1),
    profile: VendorProfile = SRSRAN,
    cost: ActionCostModel = DEFAULT_COST_MODEL,
) -> Fig15aResult:
    """Analytic scalability of the DPDK DAS middlebox (100 MHz 4x4)."""
    n_ports = cell.n_antennas
    num_prb = cell.num_prb
    tdd = profile.tdd
    slots_per_second = cell.numerology.slots_per_second
    dl_symbols_per_slot = tdd.downlink_symbol_fraction() * SYMBOLS_PER_SLOT
    ul_symbols_per_slot = tdd.uplink_symbol_fraction() * SYMBOLS_PER_SLOT

    # Traffic rates (bits/s) through the middlebox.
    u_bytes = uplane_wire_bytes(num_prb)
    c_bytes = cplane_wire_bytes()
    dl_uplane_bps = u_bytes * 8 * dl_symbols_per_slot * slots_per_second * n_ports
    ul_uplane_bps = u_bytes * 8 * ul_symbols_per_slot * slots_per_second * n_ports
    cplane_bps = c_bytes * 8 * 2 * slots_per_second * n_ports

    points: List[ScalabilityPoint] = []
    for n_rus in ru_counts:
        # Per-slot uplink work (Section 6.4.1's accounting: one packet per
        # RU antenna per slot): cache all but the last RU's packets, then
        # one merge per antenna port over all N operands.
        cache_ops = n_ports * (n_rus - 1)
        processing_ns = (
            cache_ops * cost.cache_ns
            + n_ports * cost.cache_lookup_ns
            + n_ports * cost.merge_cost(num_prb, n_rus)
            + n_ports * cost.forward_ns
        )
        ingress_bps = dl_uplane_bps + cplane_bps + n_rus * ul_uplane_bps
        egress_bps = n_rus * (dl_uplane_bps + cplane_bps) + ul_uplane_bps
        points.append(
            ScalabilityPoint(
                n_rus=n_rus,
                per_slot_processing_ns=processing_ns,
                cores_required=cores_required(processing_ns, SLOT_BUDGET_NS),
                ingress_gbps=ingress_bps / 1e9,
                egress_gbps=egress_bps / 1e9,
            )
        )
    return Fig15aResult(points=points)


@dataclass
class LatencyBreakdown:
    """Per-traffic-class packet processing times for one RU count.

    Percentiles read from mergeable quantile sketches
    (:class:`~repro.obs.sketch.QuantileSketch`) — the same machinery the
    streaming telemetry plane ships cross-shard, so eval numbers and live
    dashboard numbers come from one estimator.
    """

    n_rus: int
    by_class: Dict[str, List[float]]  # class -> per-packet ns

    def sketch(self, traffic_class: str) -> QuantileSketch:
        sketch = QuantileSketch()
        for value in self.by_class[traffic_class]:
            sketch.observe(value)
        return sketch

    def percentile(self, traffic_class: str, q: float) -> float:
        return self.sketch(traffic_class).percentile(q)


@dataclass
class Fig15bResult:
    breakdowns: List[LatencyBreakdown]

    def format(self) -> str:
        rows = []
        for breakdown in self.breakdowns:
            for traffic_class in sorted(breakdown.by_class):
                sketch = breakdown.sketch(traffic_class)
                rows.append(
                    (
                        breakdown.n_rus,
                        traffic_class,
                        round(sketch.percentile(50), 0),
                        round(sketch.percentile(75), 0),
                        round(sketch.max, 0),
                    )
                )
        return format_table(
            "Figure 15b: per-packet processing time (ns)",
            ("RUs", "traffic", "median", "p75", "max"),
            rows,
        )


@dataclass
class Fig15aMeasuredResult:
    """Observable Figure 15a: per-chain latency budgets from live runs."""

    accountants: Dict[int, "DeadlineAccountant"]
    registry_text: str = ""

    def format(self) -> str:
        blocks = []
        for n_rus in sorted(self.accountants):
            accountant = self.accountants[n_rus]
            blocks.append(
                accountant.budget_report(
                    title=f"Figure 15a (measured): DAS chain, {n_rus} RUs"
                )
            )
        return "\n\n".join(blocks)


def run_fig15a_measured(
    ru_counts=(2, 3, 4),
    n_slots: int = 4,
    seed: int = 29,
    budget_ns: float = SLOT_BUDGET_NS,
) -> Fig15aMeasuredResult:
    """The deadline-accounting version of Figure 15a: run the real DAS
    middlebox per RU count with the flight recorder armed and account
    every slot's modelled latency against the fronthaul budget."""
    from repro.apps.das import DasMiddlebox
    from repro.fronthaul.cplane import Direction
    from repro.obs import DeadlineAccountant, Observability, render_prometheus
    from repro.ran.du import DistributedUnit
    from repro.ran.ru import RadioUnit, RuConfig
    from repro.ran.traffic import ConstantBitrateFlow
    from repro.sim.network_sim import FronthaulNetwork

    accountants: Dict[int, DeadlineAccountant] = {}
    obs = Observability(enabled=True)
    for n_rus in ru_counts:
        cell = CellConfig(pci=1)
        du = DistributedUnit(du_id=1, cell=cell, symbols_per_slot=1, seed=seed)
        rus = [
            RadioUnit(
                ru_id=index,
                config=RuConfig(num_prb=cell.num_prb,
                                n_antennas=cell.n_antennas),
                du_mac=du.mac,
                seed=seed,
            )
            for index in range(n_rus)
        ]
        das = DasMiddlebox(
            du_mac=du.mac,
            ru_macs=[ru.mac for ru in rus],
            name=f"das-{n_rus}ru",
            obs=obs,
        )
        du.scheduler.add_ue("ue", dl_layers=4)
        du.scheduler.update_ue_quality("ue", dl_aggregate_se=16.0, ul_se=3.0)
        du.attach_flow("ue", ConstantBitrateFlow(800, "dl"),
                       Direction.DOWNLINK)
        du.attach_flow("ue", ConstantBitrateFlow(60, "ul"), Direction.UPLINK)
        accountant = DeadlineAccountant(
            numerology=cell.numerology, budget_ns=budget_ns, obs=obs
        )
        network = FronthaulNetwork(
            middleboxes=[das], deadline_accountant=accountant
        )
        network.add_du(du)
        for ru in rus:
            network.add_ru(ru)
        network.run(n_slots)
        accountants[n_rus] = accountant
    return Fig15aMeasuredResult(
        accountants=accountants, registry_text=render_prometheus(obs.registry)
    )


def run_fig15b(
    ru_counts=(2, 3, 4),
    n_slots: int = 4,
    seed: int = 29,
) -> Fig15bResult:
    """Packet-level latency breakdown: run the real DAS middlebox on a
    100 MHz cell and read its per-packet action traces."""
    from repro.apps.das import DasMiddlebox
    from repro.fronthaul.cplane import Direction
    from repro.ran.du import DistributedUnit
    from repro.ran.ru import RadioUnit, RuConfig
    from repro.ran.traffic import ConstantBitrateFlow
    from repro.sim.network_sim import FronthaulNetwork

    breakdowns: List[LatencyBreakdown] = []
    for n_rus in ru_counts:
        cell = CellConfig(pci=1)
        du = DistributedUnit(du_id=1, cell=cell, symbols_per_slot=1, seed=seed)
        rus = [
            RadioUnit(
                ru_id=index,
                config=RuConfig(num_prb=cell.num_prb,
                                n_antennas=cell.n_antennas),
                du_mac=du.mac,
                seed=seed,
            )
            for index in range(n_rus)
        ]
        das = DasMiddlebox(du_mac=du.mac, ru_macs=[ru.mac for ru in rus])
        du.scheduler.add_ue("ue", dl_layers=4)
        du.scheduler.update_ue_quality("ue", dl_aggregate_se=16.0, ul_se=3.0)
        du.attach_flow("ue", ConstantBitrateFlow(800, "dl"),
                       Direction.DOWNLINK)
        du.attach_flow("ue", ConstantBitrateFlow(60, "ul"), Direction.UPLINK)
        network = FronthaulNetwork(middleboxes=[das])
        network.add_du(du)
        for ru in rus:
            network.add_ru(ru)
        network.run(n_slots)
        by_class: Dict[str, List[float]] = {}
        for traffic_class, traces in das.traces_by_class.items():
            by_class[traffic_class] = [trace.total_ns() for trace in traces]
        breakdowns.append(LatencyBreakdown(n_rus=n_rus, by_class=by_class))
    return Fig15bResult(breakdowns=breakdowns)
