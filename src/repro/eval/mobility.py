"""Mobility: handovers under multi-cell vs DAS/dMIMO deployments.

Sections 4.1-4.2 motivate DAS and dMIMO with "handover-free mobility": a
single distributed cell never hands a moving UE over, while a multi-cell
deployment hands over at every cell boundary, each handover risking an
interruption.  This experiment walks a UE across the floor under both
deployments, counts handovers (serving-PCI changes with hysteresis), and
accounts the interruption time a real stack would pay per handover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.eval.report import format_table
from repro.eval.throughput import DeployedCell
from repro.phy.channel import ChannelModel
from repro.phy.geometry import FloorPlan, WalkPath
from repro.ran.cell import CellConfig
from repro.ran.stacks import SRSRAN, VendorProfile
from repro.ran.ue import UserEquipment

#: A2 handover hysteresis: the target must beat the server by this margin.
HANDOVER_HYSTERESIS_DB = 3.0
#: Typical NR Xn handover interruption (control-plane driven).
HANDOVER_INTERRUPTION_MS = 45.0
WALK_SPEED_MPS = 1.4  # pedestrian


@dataclass
class MobilityResult:
    deployment: str
    handovers: int
    walk_seconds: float
    interruption_ms_total: float
    serving_trace: List[int]

    @property
    def interruption_fraction(self) -> float:
        return self.interruption_ms_total / (self.walk_seconds * 1000.0)


@dataclass
class MobilityComparison:
    multi_cell: MobilityResult
    das: MobilityResult
    dmimo: MobilityResult

    def format(self) -> str:
        rows = [
            (
                result.deployment,
                result.handovers,
                round(result.interruption_ms_total, 0),
                f"{result.interruption_fraction:.2%}",
            )
            for result in (self.multi_cell, self.das, self.dmimo)
        ]
        return format_table(
            "Mobility: handovers along a floor walk (pedestrian, one lap)",
            ("deployment", "handovers", "interruption ms", "time interrupted"),
            rows,
        )


def _walk_serving_trace(
    cells: List[DeployedCell], channel: ChannelModel, step_m: float
) -> List[int]:
    """Serving PCI at each walk position with handover hysteresis."""
    views = [cell.view() for cell in cells]
    serving: int = -1
    trace: List[int] = []
    for index, position in enumerate(WalkPath(floor=0).points(step_m)):
        ue = UserEquipment(f"00101060000{index:04d}", position,
                           channel=channel)
        rsrps = {view.pci: ue.rsrp_dbm(view) for view in views}
        if serving < 0:
            serving = max(rsrps, key=rsrps.get)
        else:
            best_pci = max(rsrps, key=rsrps.get)
            if (
                best_pci != serving
                and rsrps[best_pci] > rsrps[serving] + HANDOVER_HYSTERESIS_DB
            ):
                serving = best_pci
        trace.append(serving)
    return trace


def _result(name: str, trace: List[int], step_m: float) -> MobilityResult:
    handovers = sum(1 for a, b in zip(trace, trace[1:]) if a != b)
    walk_seconds = len(trace) * step_m / WALK_SPEED_MPS
    return MobilityResult(
        deployment=name,
        handovers=handovers,
        walk_seconds=walk_seconds,
        interruption_ms_total=handovers * HANDOVER_INTERRUPTION_MS,
        serving_trace=trace,
    )


def run_mobility(
    profile: VendorProfile = SRSRAN, step_m: float = 1.0, seed: int = 37
) -> MobilityComparison:
    plan = FloorPlan()
    channel = ChannelModel(seed=seed)
    rus = plan.ru_positions(0)

    multi_cells = [
        DeployedCell(f"cell{i}", CellConfig(pci=i + 1), [rus[i]], [4],
                     mode="single", profile=profile)
        for i in range(4)
    ]
    das_cell = [
        DeployedCell("das", CellConfig(pci=50), list(rus), [4] * 4,
                     mode="das", profile=profile)
    ]
    dmimo_cell = [
        DeployedCell("dmimo", CellConfig(pci=51), list(rus), [1] * 4,
                     mode="dmimo", profile=profile)
    ]
    return MobilityComparison(
        multi_cell=_result(
            "4 cells (handover at boundaries)",
            _walk_serving_trace(multi_cells, channel, step_m),
            step_m,
        ),
        das=_result(
            "RANBooster DAS (one cell)",
            _walk_serving_trace(das_cell, channel, step_m),
            step_m,
        ),
        dmimo=_result(
            "RANBooster dMIMO (one cell)",
            _walk_serving_trace(dmimo_cell, channel, step_m),
            step_m,
        ),
    )
