"""Scale-out benchmark: sharded throughput vs single-process, same bytes.

Runs the canonical 8-cell scenario (six independent cells plus one
coupled group: a cross-DU shared RU, exercising the atomic-placement
rule) through the persistent worker pool at 1, 2, 4 and 8 workers,
asserting after every sharded run that the result digest is
**byte-identical** to the single-process run — the sharding contract —
and recording throughput (cell-slots simulated per wall second) into
``BENCH_6.json``.

Every sharded worker count is measured twice through one
:class:`~repro.scale.pool.WorkerPool`:

- **cold** — first ``run()`` on a fresh pool, including fork and the
  parallel worker-side builds (what a one-shot ``scenario.run()`` pays);
- **warm** — a second ``run()`` on the same live pool, which only
  resets worker state: the steady-state cost a service or sweep sees.

The ≥3x warm-speedup floor at 8 workers only holds where the workers
can actually run in parallel: the assertion is gated on
``os.cpu_count() >= 4`` and the recorded JSON carries the host's cpu
count so a 1-core CI box records honest numbers without failing a
physically impossible bar.  Set ``REPRO_SCALE_REQUIRE_FLOOR=1`` (the
multicore CI job does) to *fail* instead of skipping when the gate
cannot be enforced — the floor is never silently waved through.

Run via ``PYTHONPATH=src python -m repro.eval scale``; shrink with the
``REPRO_SCALE_SLOTS`` environment variable for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List

from repro.eval.report import format_table
from repro.scale import Scenario, ScenarioSpec, WorkerPool

DEFAULT_SLOTS = 40
SPEEDUP_FLOOR = 3.0
FLOOR_WORKERS = 8
#: Minimum schedulable cores for the speedup floor to be meaningful.
FLOOR_MIN_CPUS = 4
#: Aspirational aggregate throughput (recorded, not gated).
TARGET_CELL_SLOTS_PER_S = 5000.0
WORKER_SWEEP = (1, 2, 4, 8)


def bench_spec(slots: int = DEFAULT_SLOTS) -> ScenarioSpec:
    """The 8-cell benchmark topology (also the golden-fixture scenario).

    Cells 1..6 are independent singleton groups with the paper's
    middleboxes spread across them; cells 7+8 form one coupled group
    ("campus"): both DUs mux onto cell 7's wide shared RU, so the pair
    must land on one shard.
    """
    chains = [
        [{"stage": "das", "params": {"partial_merge": True}}],
        [{"stage": "prb_monitor"}],
        [{"stage": "dmimo"}],
        [{"stage": "fronthaul_guard"}],
        [{"stage": "spectrum_sensor"}],
        [{"stage": "passthrough"}],
    ]
    cells: List[dict] = []
    for index, chain in enumerate(chains):
        name = f"cell{index + 1}"
        n_rus = 2 if chain[0]["stage"] in ("das", "dmimo") else 1
        cells.append(
            {
                "name": name,
                "pci": index + 1,
                "bandwidth_hz": 20_000_000,
                "rus": [
                    {
                        "name": f"{name}-ru{r + 1}",
                        "n_antennas": 2,
                        "position": (10.0 * r, 5.0 * index, 0, 3.0),
                    }
                    for r in range(n_rus)
                ],
                "ues": [
                    {
                        "ue_id": f"{name}-ue1",
                        "flows": [
                            {"kind": "cbr", "rate_mbps": 40.0,
                             "direction": "dl"},
                            {"kind": "poisson", "rate_mbps": 10.0,
                             "direction": "ul", "seed": index},
                        ],
                    }
                ],
                "chain": chain,
            }
        )
    # The coupled pair: cell7 hosts a wide RU, cell8's DU muxes onto it.
    cells.append(
        {
            "name": "cell7",
            "pci": 7,
            "bandwidth_hz": 20_000_000,
            "center_frequency_hz": 3.45e9,
            "group": "campus",
            "rus": [
                {
                    "name": "cell7-shared-ru",
                    "n_antennas": 2,
                    "num_prb": 160,
                    "center_frequency_hz": 3.46e9,
                }
            ],
            "ues": [
                {
                    "ue_id": "cell7-ue1",
                    "flows": [
                        {"kind": "cbr", "rate_mbps": 40.0, "direction": "dl"}
                    ],
                }
            ],
            "chain": [
                {
                    "stage": "ru_sharing",
                    "params": {
                        "ru": "cell7-shared-ru",
                        "cells": ["cell7", "cell8"],
                    },
                }
            ],
        }
    )
    cells.append(
        {
            "name": "cell8",
            "pci": 8,
            "bandwidth_hz": 20_000_000,
            "center_frequency_hz": 3.47e9,
            "group": "campus",
            "rus": [{"name": "cell8-ru1", "n_antennas": 2}],
            "ues": [
                {
                    "ue_id": "cell8-ue1",
                    "flows": [
                        {"kind": "cbr", "rate_mbps": 30.0, "direction": "dl"}
                    ],
                }
            ],
            "chain": [],
        }
    )
    return ScenarioSpec.from_dict(
        {
            "name": "scale-bench-8cell",
            "slots": slots,
            "seed": 4,
            "cells": cells,
        }
    )


@dataclass
class ScaleResult:
    slots: int
    cells: int
    cpu_count: int
    digest: str
    epoch_slots: int = 0
    #: workers -> cold cell-slots per wall second (fork + build + run).
    throughput: Dict[int, float] = field(default_factory=dict)
    #: workers -> cold wall seconds.
    wall: Dict[int, float] = field(default_factory=dict)
    #: workers -> warm cell-slots per wall second (live pool, reset + run).
    warm_throughput: Dict[int, float] = field(default_factory=dict)
    #: workers -> warm wall seconds.
    warm_wall: Dict[int, float] = field(default_factory=dict)
    #: workers -> IPC accounting of the warm run (arena bytes, fallbacks).
    transport: Dict[int, Dict[str, int]] = field(default_factory=dict)
    floor_enforced: bool = False

    @property
    def speedup_at_floor(self) -> float:
        """Warm 8-worker throughput over the single-process rate."""
        base = self.warm_throughput.get(1, 0.0)
        if not base:
            return 0.0
        return self.warm_throughput.get(FLOOR_WORKERS, 0.0) / base

    @property
    def best_throughput(self) -> float:
        return max(self.warm_throughput.values(), default=0.0)

    def rows(self) -> List[List[object]]:
        base = self.warm_throughput.get(1, 0.0)
        return [
            [
                workers,
                f"{self.wall[workers]:.3f}",
                f"{self.throughput[workers]:.1f}",
                f"{self.warm_wall[workers]:.3f}",
                f"{self.warm_throughput[workers]:.1f}",
                (
                    f"{self.warm_throughput[workers] / base:.2f}x"
                    if base else "-"
                ),
            ]
            for workers in sorted(self.throughput)
        ]

    def format(self) -> str:
        table = format_table(
            f"Scale-out: {self.cells} cells x {self.slots} slots, "
            f"epoch {self.epoch_slots} "
            f"(digest {self.digest[:12]}..., {self.cpu_count} cpus)",
            ["workers", "cold_s", "cold c-s/s", "warm_s", "warm c-s/s",
             "speedup"],
            self.rows(),
        )
        floor = (
            f"floor: >= {SPEEDUP_FLOOR:.0f}x warm at {FLOOR_WORKERS} "
            "workers "
            + ("ENFORCED" if self.floor_enforced
               else f"not enforced (host has {self.cpu_count} cpus, "
                    f"needs {FLOOR_MIN_CPUS})")
        )
        target = (
            f"target: {TARGET_CELL_SLOTS_PER_S:.0f} cell-slots/s aggregate; "
            f"best {self.best_throughput:.1f}"
        )
        return table + "\n" + floor + "\n" + target

    def to_bench(self) -> Dict[str, object]:
        def by_workers(mapping: Dict[int, object]) -> Dict[str, object]:
            return {
                str(workers): value
                for workers, value in sorted(mapping.items())
            }

        return {
            "scale_out_8cell": {
                "cells": self.cells,
                "slots": self.slots,
                "epoch_slots": self.epoch_slots,
                "cpu_count": self.cpu_count,
                "digest_sha256": self.digest,
                "cell_slots_per_second": by_workers(self.throughput),
                "wall_seconds": by_workers(self.wall),
                "warm_cell_slots_per_second": by_workers(
                    self.warm_throughput
                ),
                "warm_wall_seconds": by_workers(self.warm_wall),
                "transport": by_workers(self.transport),
                "speedup_8_vs_1": self.speedup_at_floor,
                "floor": SPEEDUP_FLOOR,
                "floor_enforced": self.floor_enforced,
                "target_cell_slots_per_second": TARGET_CELL_SLOTS_PER_S,
                "best_cell_slots_per_second": self.best_throughput,
            }
        }


def _assert_matches(outcome, reference, workers: int) -> None:
    # The sharding contract: any worker count, the same bytes.
    assert outcome.digest == reference.digest, (
        f"{workers}-worker digest {outcome.digest} != "
        f"single-process {reference.digest}"
    )
    assert outcome.timeline() == reference.timeline(), (
        f"{workers}-worker merged timeline diverged"
    )


def run_scale(slots: int = 0) -> ScaleResult:
    """Sweep worker counts; assert byte-identical results throughout."""
    slots = slots or int(os.environ.get("REPRO_SCALE_SLOTS", DEFAULT_SLOTS))
    scenario = Scenario(bench_spec(slots))
    cpu_count = os.cpu_count() or 1
    result = ScaleResult(
        slots=slots,
        cells=len(scenario.spec.cells),
        cpu_count=cpu_count,
        digest="",
        epoch_slots=scenario.spec.effective_epoch_slots(),
    )
    reference = scenario.run(workers=1)
    result.digest = reference.digest
    # Single-process has no fork/build to amortize: cold == warm.
    result.throughput[1] = reference.cell_slots_per_second
    result.wall[1] = reference.wall_seconds
    result.warm_throughput[1] = reference.cell_slots_per_second
    result.warm_wall[1] = reference.wall_seconds
    for workers in WORKER_SWEEP:
        if workers == 1:
            continue
        pool = WorkerPool(scenario.spec, workers)
        try:
            started = time.perf_counter()
            cold = pool.run()  # forks + builds + runs
            cold_wall = time.perf_counter() - started
            warm = pool.run()  # live workers: reset + run
        finally:
            pool.close()
        _assert_matches(cold, reference, workers)
        _assert_matches(warm, reference, workers)
        cells = len(scenario.spec.cells)
        result.throughput[workers] = cells * slots / cold_wall
        result.wall[workers] = cold_wall
        result.warm_throughput[workers] = warm.cell_slots_per_second
        result.warm_wall[workers] = warm.wall_seconds
        result.transport[workers] = dict(warm.transport)
    # The >=3x warm floor needs real parallelism AND a full-size run
    # (smoke horizons finish before the pool can amortize anything);
    # enforce only where the bar is meaningful, record honestly always.
    result.floor_enforced = (
        cpu_count >= FLOOR_MIN_CPUS and slots >= DEFAULT_SLOTS
    )
    if os.environ.get("REPRO_SCALE_REQUIRE_FLOOR") and not result.floor_enforced:
        raise RuntimeError(
            "REPRO_SCALE_REQUIRE_FLOOR is set but the floor cannot be "
            f"enforced here (host has {cpu_count} cpus, needs "
            f"{FLOOR_MIN_CPUS}; run has {slots} slots, needs "
            f"{DEFAULT_SLOTS}) — run full-size on a multicore machine"
        )
    if result.floor_enforced:
        assert result.speedup_at_floor >= SPEEDUP_FLOOR, (
            f"warm 8-worker speedup {result.speedup_at_floor:.2f}x below "
            f"the {SPEEDUP_FLOOR:.0f}x floor"
        )
    return result


def write_bench(result: ScaleResult, path: str = "BENCH_6.json") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result.to_bench(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def main() -> str:
    result = run_scale()
    write_bench(result)
    return result.format()


if __name__ == "__main__":
    print(main())
