"""Scale-out benchmark: sharded throughput vs single-process, same bytes.

Runs the canonical 8-cell scenario (six independent cells plus one
coupled group: a cross-DU shared RU, exercising the atomic-placement
rule) through the scale-out engine at 1, 2, 4 and 8 workers, asserting
after every sharded run that the result digest is **byte-identical** to
the single-process run — the sharding contract — and recording
throughput (cell-slots simulated per wall second) into ``BENCH_4.json``.

The ≥3x speedup floor at 8 workers only holds where 8 workers can
actually run: the assertion is gated on ``os.cpu_count() >= 8`` and the
recorded JSON carries the host's cpu count so a 1-core CI box records
honest numbers without failing a physically impossible bar.

Run via ``PYTHONPATH=src python -m repro.eval scale``; shrink with the
``REPRO_SCALE_SLOTS`` environment variable for CI smoke runs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List

from repro.eval.report import format_table
from repro.scale import Scenario, ScenarioSpec

DEFAULT_SLOTS = 40
SPEEDUP_FLOOR = 3.0
FLOOR_WORKERS = 8
WORKER_SWEEP = (1, 2, 4, 8)


def bench_spec(slots: int = DEFAULT_SLOTS) -> ScenarioSpec:
    """The 8-cell benchmark topology (also the golden-fixture scenario).

    Cells 1..6 are independent singleton groups with the paper's
    middleboxes spread across them; cells 7+8 form one coupled group
    ("campus"): both DUs mux onto cell 7's wide shared RU, so the pair
    must land on one shard.
    """
    chains = [
        [{"stage": "das", "params": {"partial_merge": True}}],
        [{"stage": "prb_monitor"}],
        [{"stage": "dmimo"}],
        [{"stage": "fronthaul_guard"}],
        [{"stage": "spectrum_sensor"}],
        [{"stage": "passthrough"}],
    ]
    cells: List[dict] = []
    for index, chain in enumerate(chains):
        name = f"cell{index + 1}"
        n_rus = 2 if chain[0]["stage"] in ("das", "dmimo") else 1
        cells.append(
            {
                "name": name,
                "pci": index + 1,
                "bandwidth_hz": 20_000_000,
                "rus": [
                    {
                        "name": f"{name}-ru{r + 1}",
                        "n_antennas": 2,
                        "position": (10.0 * r, 5.0 * index, 0, 3.0),
                    }
                    for r in range(n_rus)
                ],
                "ues": [
                    {
                        "ue_id": f"{name}-ue1",
                        "flows": [
                            {"kind": "cbr", "rate_mbps": 40.0,
                             "direction": "dl"},
                            {"kind": "poisson", "rate_mbps": 10.0,
                             "direction": "ul", "seed": index},
                        ],
                    }
                ],
                "chain": chain,
            }
        )
    # The coupled pair: cell7 hosts a wide RU, cell8's DU muxes onto it.
    cells.append(
        {
            "name": "cell7",
            "pci": 7,
            "bandwidth_hz": 20_000_000,
            "center_frequency_hz": 3.45e9,
            "group": "campus",
            "rus": [
                {
                    "name": "cell7-shared-ru",
                    "n_antennas": 2,
                    "num_prb": 160,
                    "center_frequency_hz": 3.46e9,
                }
            ],
            "ues": [
                {
                    "ue_id": "cell7-ue1",
                    "flows": [
                        {"kind": "cbr", "rate_mbps": 40.0, "direction": "dl"}
                    ],
                }
            ],
            "chain": [
                {
                    "stage": "ru_sharing",
                    "params": {
                        "ru": "cell7-shared-ru",
                        "cells": ["cell7", "cell8"],
                    },
                }
            ],
        }
    )
    cells.append(
        {
            "name": "cell8",
            "pci": 8,
            "bandwidth_hz": 20_000_000,
            "center_frequency_hz": 3.47e9,
            "group": "campus",
            "rus": [{"name": "cell8-ru1", "n_antennas": 2}],
            "ues": [
                {
                    "ue_id": "cell8-ue1",
                    "flows": [
                        {"kind": "cbr", "rate_mbps": 30.0, "direction": "dl"}
                    ],
                }
            ],
            "chain": [],
        }
    )
    return ScenarioSpec.from_dict(
        {
            "name": "scale-bench-8cell",
            "slots": slots,
            "seed": 4,
            "cells": cells,
        }
    )


@dataclass
class ScaleResult:
    slots: int
    cells: int
    cpu_count: int
    digest: str
    #: workers -> cell-slots per wall second.
    throughput: Dict[int, float] = field(default_factory=dict)
    #: workers -> wall seconds.
    wall: Dict[int, float] = field(default_factory=dict)
    floor_enforced: bool = False

    @property
    def speedup_at_floor(self) -> float:
        base = self.throughput.get(1, 0.0)
        if not base:
            return 0.0
        return self.throughput.get(FLOOR_WORKERS, 0.0) / base

    def rows(self) -> List[List[object]]:
        base = self.throughput.get(1, 0.0)
        return [
            [
                workers,
                f"{self.wall[workers]:.3f}",
                f"{self.throughput[workers]:.1f}",
                f"{self.throughput[workers] / base:.2f}x" if base else "-",
            ]
            for workers in sorted(self.throughput)
        ]

    def format(self) -> str:
        table = format_table(
            f"Scale-out: {self.cells} cells x {self.slots} slots "
            f"(digest {self.digest[:12]}..., {self.cpu_count} cpus)",
            ["workers", "wall_s", "cell_slots/s", "speedup"],
            self.rows(),
        )
        floor = (
            f"floor: >= {SPEEDUP_FLOOR:.0f}x at {FLOOR_WORKERS} workers "
            + ("ENFORCED" if self.floor_enforced
               else f"not enforced (host has {self.cpu_count} cpus)")
        )
        return table + "\n" + floor

    def to_bench(self) -> Dict[str, object]:
        return {
            "scale_out_8cell": {
                "cells": self.cells,
                "slots": self.slots,
                "cpu_count": self.cpu_count,
                "digest_sha256": self.digest,
                "cell_slots_per_second": {
                    str(workers): value
                    for workers, value in sorted(self.throughput.items())
                },
                "wall_seconds": {
                    str(workers): value
                    for workers, value in sorted(self.wall.items())
                },
                "speedup_8_vs_1": self.speedup_at_floor,
                "floor": SPEEDUP_FLOOR,
                "floor_enforced": self.floor_enforced,
            }
        }


def run_scale(slots: int = 0) -> ScaleResult:
    """Sweep worker counts; assert byte-identical results throughout."""
    slots = slots or int(os.environ.get("REPRO_SCALE_SLOTS", DEFAULT_SLOTS))
    scenario = Scenario(bench_spec(slots))
    cpu_count = os.cpu_count() or 1
    result = ScaleResult(
        slots=slots,
        cells=len(scenario.spec.cells),
        cpu_count=cpu_count,
        digest="",
    )
    reference = None
    for workers in WORKER_SWEEP:
        outcome = scenario.run(workers=workers)
        if reference is None:
            reference = outcome
            result.digest = outcome.digest
        # The sharding contract: any worker count, the same bytes.
        assert outcome.digest == reference.digest, (
            f"{workers}-worker digest {outcome.digest} != "
            f"single-process {reference.digest}"
        )
        assert outcome.timeline() == reference.timeline(), (
            f"{workers}-worker merged timeline diverged"
        )
        result.throughput[workers] = outcome.cell_slots_per_second
        result.wall[workers] = outcome.wall_seconds
    # The >=3x floor needs 8 schedulable cores; enforce only where the
    # hardware makes the bar meaningful, record honestly everywhere.
    result.floor_enforced = cpu_count >= FLOOR_WORKERS
    if result.floor_enforced:
        assert result.speedup_at_floor >= SPEEDUP_FLOOR, (
            f"8-worker speedup {result.speedup_at_floor:.2f}x below the "
            f"{SPEEDUP_FLOOR:.0f}x floor"
        )
    return result


def write_bench(result: ScaleResult, path: str = "BENCH_4.json") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result.to_bench(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def main() -> str:
    result = run_scale()
    write_bench(result)
    return result.format()


if __name__ == "__main__":
    print(main())
