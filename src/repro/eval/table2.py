"""Table 2: distributed MIMO vs single-RU MIMO (Section 6.2.2).

Baselines use one RU with 2 or 4 antennas; the dMIMO configurations place
two RUs ~5 m apart contributing 1 or 2 antennas each.  The paper verifies
that throughput and the UE rank indicator match between each baseline and
its distributed counterpart, and that uplink (SISO) throughput is
unaffected (~70 Mbps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.eval.report import format_table
from repro.eval.throughput import DeployedCell, UePlacement, evaluate_network
from repro.phy.channel import ChannelModel
from repro.phy.geometry import Position
from repro.ran.cell import CellConfig
from repro.ran.stacks import SRSRAN, VendorProfile
from repro.ran.ue import UserEquipment

SATURATING_LOAD_MBPS = 2_000.0


@dataclass
class Table2Row:
    label: str
    layers: int
    dl_mbps: float
    rank: int
    ul_mbps: float


@dataclass
class Table2Result:
    rows: List[Table2Row]

    def row(self, label: str) -> Table2Row:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)

    def format(self) -> str:
        return format_table(
            "Table 2: dMIMO vs single-RU MIMO",
            ("configuration", "layers", "DL Mbps", "rank", "UL Mbps"),
            [
                (r.label, r.layers, r.dl_mbps, r.rank, r.ul_mbps)
                for r in self.rows
            ],
        )


def run_table2(profile: VendorProfile = SRSRAN, seed: int = 11) -> Table2Result:
    channel = ChannelModel(seed=seed)
    # Two RUs ~5 m apart (Section 6.2.2), UE in close range between them.
    ru_a = Position(20.0, 10.0, 0, height=3.0)
    ru_b = Position(25.0, 10.0, 0, height=3.0)
    ue_position = Position(22.5, 12.5, 0)

    configurations = [
        ("Single RU - 2 antennas", [ru_a], [2], 2),
        ("Two RUs - 1 antenna each (RANBooster)", [ru_a, ru_b], [1, 1], 2),
        ("Single RU - 4 antennas", [ru_a], [4], 4),
        ("Two RUs - 2 antennas each (RANBooster)", [ru_a, ru_b], [2, 2], 4),
    ]
    rows: List[Table2Row] = []
    for index, (label, positions, antennas, layers) in enumerate(configurations):
        config = CellConfig(
            pci=40 + index,
            n_antennas=sum(antennas),
            max_dl_layers=layers,
        )
        cell = DeployedCell(
            label,
            config,
            list(positions),
            list(antennas),
            mode="single" if len(positions) == 1 else "dmimo",
            profile=profile,
        )
        ue = UserEquipment(f"0010100000005{index:02d}", ue_position,
                           channel=channel)
        result = evaluate_network(
            [cell],
            [UePlacement(ue, label, SATURATING_LOAD_MBPS, SATURATING_LOAD_MBPS)],
        )
        entry = result.ue(ue.imsi)
        rows.append(
            Table2Row(
                label=label,
                layers=layers,
                dl_mbps=entry.dl_mbps,
                rank=entry.rank,
                ul_mbps=entry.ul_mbps,
            )
        )
    return Table2Result(rows=rows)
