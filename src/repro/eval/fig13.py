"""Figure 13: flexible upgrades — swap the DAS middlebox for a dMIMO
middlebox over the same 4x1-antenna RUs (Section 6.3.2, "Boosting the
network's performance").

With cheap single-antenna RUs, a DAS middlebox gives a uniform ~250 Mbps
SISO cell across the floor; replacing it with a dMIMO middlebox turns the
same four RUs into a 4-layer cell, raising downlink throughput by a factor
of 2-3 depending on the location — purely a software swap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.eval.report import format_table
from repro.eval.throughput import DeployedCell, UePlacement, evaluate_network
from repro.phy.channel import ChannelModel, LinkBudget
from repro.phy.geometry import FloorPlan, WalkPath
from repro.ran.cell import CellConfig
from repro.ran.stacks import SRSRAN, VendorProfile
from repro.ran.ue import UserEquipment

SATURATING_LOAD_MBPS = 2_000.0
#: Cheap single-antenna RUs transmit at lower power than the 4x4 units.
ONE_ANTENNA_RU_BUDGET = LinkBudget(tx_power_dbm=21.0, antenna_gain_db=3.0)


@dataclass
class Fig13Result:
    das_walk_mbps: List[float]
    dmimo_walk_mbps: List[float]

    def improvement_factors(self) -> List[float]:
        return [
            dmimo / das if das > 0 else float("inf")
            for das, dmimo in zip(self.das_walk_mbps, self.dmimo_walk_mbps)
        ]

    def format(self) -> str:
        das = np.array(self.das_walk_mbps)
        dmimo = np.array(self.dmimo_walk_mbps)
        factors = np.array(self.improvement_factors())
        rows = [
            ("DAS (vendor A) - SISO", das.min(), das.mean(), das.max()),
            ("dMIMO (vendor B) - 4 layers", dmimo.min(), dmimo.mean(),
             dmimo.max()),
            ("improvement factor", factors.min(), factors.mean(),
             factors.max()),
        ]
        return format_table(
            "Figure 13: DAS vs dMIMO middlebox over 4x1-antenna RUs (Mbps)",
            ("configuration", "min", "mean", "max"),
            rows,
        )


def run_fig13(
    profile: VendorProfile = SRSRAN, step_m: float = 3.0, seed: int = 19
) -> Fig13Result:
    plan = FloorPlan()
    channel = ChannelModel(seed=seed)
    rus = plan.ru_positions(0)
    config_siso = CellConfig(pci=140, n_antennas=1, max_dl_layers=1)
    config_dmimo = CellConfig(pci=141, n_antennas=4, max_dl_layers=4)

    das_cell = DeployedCell(
        "das",
        config_siso,
        list(rus),
        [1] * 4,
        mode="das",
        profile=profile,
        budget=ONE_ANTENNA_RU_BUDGET,
    )
    dmimo_cell = DeployedCell(
        "dmimo",
        config_dmimo,
        list(rus),
        [1] * 4,
        mode="dmimo",
        profile=profile,
        budget=ONE_ANTENNA_RU_BUDGET,
    )
    walk = list(WalkPath(floor=0).points(step_m))
    das_series: List[float] = []
    dmimo_series: List[float] = []
    for index, position in enumerate(walk):
        ue = UserEquipment(f"0010100000090{index:02d}", position,
                           channel=channel)
        das_result = evaluate_network(
            [das_cell], [UePlacement(ue, "das", SATURATING_LOAD_MBPS)]
        )
        dmimo_result = evaluate_network(
            [dmimo_cell], [UePlacement(ue, "dmimo", SATURATING_LOAD_MBPS)]
        )
        das_series.append(das_result.ue(ue.imsi).dl_mbps)
        dmimo_series.append(dmimo_result.ue(ue.imsi).dl_mbps)
    return Fig13Result(das_walk_mbps=das_series, dmimo_walk_mbps=dmimo_series)
