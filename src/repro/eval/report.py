"""Report formatting: print experiment results as the paper's rows."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    title: str, header: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Monospace table with a title line (what the benches print)."""
    rendered: List[List[str]] = [[str(cell) for cell in header]]
    for row in rows:
        rendered.append([_fmt(cell) for cell in row])
    widths = [
        max(len(rendered[r][c]) for r in range(len(rendered)))
        for c in range(len(header))
    ]
    lines = [title]
    for index, row in enumerate(rendered):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)
