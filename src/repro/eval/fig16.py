"""Figure 16: CPU utilization of DPDK vs XDP middleboxes (Section 6.4.2).

The DAS and dMIMO middleboxes run on a 40 MHz cell (the XDP limit) pinned
to one core under three conditions: no UE, UE attached but idle, and UE
receiving downlink at full capacity.  DPDK's poll-mode driver burns 100%
of the core regardless; XDP's interrupt-driven path scales with traffic,
and DAS costs ~25-30% more CPU than dMIMO under load because its IQ work
crosses into userspace while dMIMO's header remaps stay in the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.datapath import DpdkDatapath, PacketWork, XdpDatapath
from repro.eval.report import format_table
from repro.fronthaul.cplane import Direction
from repro.ran.cell import CellConfig
from repro.ran.stacks import SRSRAN, VendorProfile

CONDITIONS = ("Idle", "UE Attached", "Traffic")


@dataclass
class Fig16Result:
    #: {app: {condition: utilization}} for each datapath.
    dpdk: Dict[str, Dict[str, float]]
    xdp: Dict[str, Dict[str, float]]

    def format(self) -> str:
        rows = []
        for app in sorted(self.dpdk):
            for condition in CONDITIONS:
                rows.append(
                    (
                        app,
                        condition,
                        round(self.dpdk[app][condition] * 100.0, 1),
                        round(self.xdp[app][condition] * 100.0, 1),
                    )
                )
        return format_table(
            "Figure 16: CPU utilization, DPDK vs XDP (%)",
            ("middlebox", "cell condition", "DPDK %", "XDP %"),
            rows,
        )


def _build_app(app: str, du, rus):
    from repro.apps.das import DasMiddlebox
    from repro.apps.dmimo import DmimoMiddlebox, RuPortMap

    if app == "das":
        return DasMiddlebox(du_mac=du.mac, ru_macs=[ru.mac for ru in rus])
    port_map = RuPortMap(groups=tuple((ru.mac, 1) for ru in rus))
    return DmimoMiddlebox(du_mac=du.mac, port_map=port_map)


def run_fig16(
    profile: VendorProfile = SRSRAN,
    n_slots: int = 40,
    seed: int = 31,
) -> Fig16Result:
    from repro.ran.du import DistributedUnit
    from repro.ran.ru import RadioUnit, RuConfig
    from repro.ran.traffic import ConstantBitrateFlow
    from repro.sim.network_sim import FronthaulNetwork

    dpdk_model = DpdkDatapath()
    xdp_model = XdpDatapath()
    dpdk: Dict[str, Dict[str, float]] = {}
    xdp: Dict[str, Dict[str, float]] = {}
    for app in ("das", "dmimo"):
        dpdk[app] = {}
        xdp[app] = {}
        for condition in CONDITIONS:
            if app == "das":
                cell = CellConfig(
                    pci=1, bandwidth_hz=40_000_000, n_antennas=2,
                    max_dl_layers=2,
                )
                ru_antennas = 2
                n_rus = 2
            else:
                cell = CellConfig(
                    pci=1, bandwidth_hz=40_000_000, n_antennas=2,
                    max_dl_layers=2,
                )
                ru_antennas = 1
                n_rus = 2
            du = DistributedUnit(du_id=1, cell=cell, symbols_per_slot=None,
                                 seed=seed)
            rus = [
                RadioUnit(
                    ru_id=index,
                    config=RuConfig(num_prb=cell.num_prb,
                                    n_antennas=ru_antennas),
                    du_mac=du.mac,
                    seed=seed,
                )
                for index in range(n_rus)
            ]
            middlebox = _build_app(app, du, rus)
            if condition != "Idle":
                du.scheduler.add_ue("ue", dl_layers=cell.max_dl_layers)
                du.scheduler.update_ue_quality(
                    "ue", dl_aggregate_se=11.0, ul_se=3.0
                )
            if condition == "UE Attached":
                # Attached-idle UEs exchange sporadic control traffic only
                # (CQI reports, RRC keepalives): a packet every few slots.
                from repro.ran.traffic import PoissonFlow

                du.attach_flow(
                    "ue",
                    PoissonFlow(2.0, packet_bits=12_000, seed=seed),
                    Direction.DOWNLINK,
                )
                du.attach_flow(
                    "ue",
                    PoissonFlow(0.5, packet_bits=6_000, seed=seed + 1),
                    Direction.UPLINK,
                )
            elif condition == "Traffic":
                du.attach_flow("ue", ConstantBitrateFlow(2000.0, "dl"),
                               Direction.DOWNLINK)
                du.attach_flow("ue", ConstantBitrateFlow(10.0, "ul"),
                               Direction.UPLINK)
            network = FronthaulNetwork(middleboxes=[middlebox])
            network.add_du(du)
            for ru in rus:
                network.add_ru(ru)
            network.run(n_slots)
            interval_ns = n_slots * cell.numerology.slot_duration_ns
            works = [
                PacketWork(trace=trace, wire_bytes=size)
                for trace, size in zip(
                    middlebox.traces, middlebox.trace_wire_bytes
                )
            ]
            dpdk[app][condition] = dpdk_model.cpu_utilization(
                works, interval_ns
            )
            xdp[app][condition] = xdp_model.cpu_utilization(works, interval_ns)
    return Fig16Result(dpdk=dpdk, xdp=xdp)
