"""Analytic network throughput evaluation.

Maps a deployment (cells radiating from RU groups, UEs with offered
loads) to sustained per-UE throughput:

1. per-UE link quality from the channel model (DAS cells combine RU
   powers into one signal; dMIMO/single cells expose per-RU antenna
   groups),
2. rank selection and aggregate spectral efficiency from the MIMO model,
   clamped by the vendor profile's MCS ceilings,
3. scheduler sharing: UEs on the same cell split PRBs proportionally to
   demand,
4. inter-cell interference coupling: a cell's transmit activity is its
   PRB utilization, which feeds other cells' SINRs — iterated to a fixed
   point (the Figure 11b mechanism).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.phy.channel import LinkBudget
from repro.phy.geometry import Position
from repro.phy.mimo import spectral_efficiency, throughput_mbps
from repro.ran.cell import CellConfig
from repro.ran.stacks import SRSRAN, VendorProfile
from repro.ran.ue import CellView, UserEquipment


@dataclass
class DeployedCell:
    """One cell radiating from one or more RUs.

    ``mode`` selects how the RUs combine: ``"das"`` replicates one signal
    (powers add, layers limited by per-RU antennas); ``"dmimo"`` forms a
    virtual RU (antennas add, per-RU SINR differs); ``"single"`` is a
    one-RU cell (equivalent to dmimo with one group).
    """

    name: str
    config: CellConfig
    ru_positions: List[Position]
    ru_antennas: List[int]
    mode: str = "single"
    profile: VendorProfile = SRSRAN
    budget: LinkBudget = field(default_factory=LinkBudget)

    def __post_init__(self) -> None:
        if self.mode not in ("das", "dmimo", "single"):
            raise ValueError(f"unknown cell mode {self.mode!r}")
        if len(self.ru_positions) != len(self.ru_antennas):
            raise ValueError("one antenna count per RU required")
        if self.mode == "single" and len(self.ru_positions) != 1:
            raise ValueError("single mode takes exactly one RU")

    def view(self) -> CellView:
        return CellView(
            pci=self.config.pci,
            plmn="00101",
            ru_positions=self.ru_positions,
            ru_antennas=self.ru_antennas,
            n_subcarriers=self.config.num_prb * 12,
            ru_budget=self.budget,
        )

    def overlaps(self, other: "DeployedCell") -> bool:
        """Frequency overlap (co-channel interference condition)."""
        low_a = self.config.grid.prb0_frequency_hz
        high_a = low_a + self.config.grid.occupied_bandwidth_hz
        low_b = other.config.grid.prb0_frequency_hz
        high_b = low_b + other.config.grid.occupied_bandwidth_hz
        return low_a < high_b and low_b < high_a


@dataclass
class UePlacement:
    """One UE attached to a named cell with offered traffic."""

    ue: UserEquipment
    cell_name: str
    dl_offered_mbps: float = 0.0
    ul_offered_mbps: float = 0.0


@dataclass
class UeResult:
    imsi: str
    cell_name: str
    dl_mbps: float
    ul_mbps: float
    dl_capacity_mbps: float
    ul_capacity_mbps: float
    rank: int
    sinr_db: float


@dataclass
class NetworkEvaluation:
    ues: List[UeResult]
    cell_activity: Dict[str, float]

    def ue(self, imsi: str) -> UeResult:
        for result in self.ues:
            if result.imsi == imsi:
                return result
        raise KeyError(f"no result for IMSI {imsi}")

    def total_dl_mbps(self) -> float:
        return sum(r.dl_mbps for r in self.ues)

    def total_ul_mbps(self) -> float:
        return sum(r.ul_mbps for r in self.ues)


def _dl_link(
    cell: DeployedCell,
    placement: UePlacement,
    interferers: Sequence[Tuple[Position, float]],
):
    view = cell.view()
    bandwidth = cell.config.occupied_bandwidth_hz
    max_layers = cell.config.max_dl_layers
    method = placement.ue.das_link if cell.mode == "das" else placement.ue.mimo_link
    if cell.mode == "das":
        layer_ceiling = min(cell.ru_antennas)
    else:
        layer_ceiling = sum(cell.ru_antennas)
    layer_ceiling = min(layer_ceiling, max_layers, placement.ue.n_antennas)
    max_se = (
        cell.profile.dl_max_se_rank1
        if layer_ceiling == 1
        else cell.profile.dl_max_se
    )
    return method(
        view,
        bandwidth,
        interferers,
        max_layers=max_layers,
        max_se=max_se,
    )


#: Link adaptation is driven by HARQ feedback: even a low-duty-cycle
#: interferer forces the outer loop to a collision-safe MCS, so the
#: *effective* interference activity is super-linear in the true duty
#: cycle.  activity_eff = activity ** CQI_CONSERVATISM.
CQI_CONSERVATISM = 0.3
#: Cells transmit SSB/reference signals even with no user traffic.
BROADCAST_ACTIVITY = 0.04


def evaluate_network(
    cells: Sequence[DeployedCell],
    placements: Sequence[UePlacement],
    iterations: int = 5,
    cqi_conservatism: float = CQI_CONSERVATISM,
    broadcast_activity: float = BROADCAST_ACTIVITY,
) -> NetworkEvaluation:
    """Fixed-point throughput evaluation of a deployment."""
    by_name = {cell.name: cell for cell in cells}
    for placement in placements:
        if placement.cell_name not in by_name:
            raise KeyError(f"unknown cell {placement.cell_name!r}")
    # Start from full activity (worst-case interference) and iterate down.
    activity: Dict[str, float] = {cell.name: 1.0 for cell in cells}
    results: List[UeResult] = []
    for _ in range(max(iterations, 1)):
        results = []
        demand_fractions: Dict[str, float] = {cell.name: 0.0 for cell in cells}
        per_ue: List[Tuple[UePlacement, float, float, int, float]] = []
        for placement in placements:
            cell = by_name[placement.cell_name]
            interferers: List[Tuple[Position, float]] = []
            for other in cells:
                if other.name == cell.name or not cell.overlaps(other):
                    continue
                effective = max(
                    activity[other.name] ** cqi_conservatism
                    if activity[other.name] > 0
                    else 0.0,
                    broadcast_activity,
                )
                for position in other.ru_positions:
                    interferers.append((position, effective))
            link = _dl_link(cell, placement, interferers)
            rank = link.best_rank()
            dl_capacity = throughput_mbps(
                link.aggregate_se(),
                cell.config.occupied_bandwidth_hz,
                cell.profile.tdd.downlink_symbol_fraction(),
                cell.profile.dl_overhead,
            ) * cell.profile.scheduler_efficiency
            ul_sinr = placement.ue.uplink_sinr_db(
                cell.view(), cell.config.occupied_bandwidth_hz
            )
            ul_se = min(spectral_efficiency(ul_sinr), cell.profile.ul_max_se)
            ul_capacity = throughput_mbps(
                ul_se,
                cell.config.occupied_bandwidth_hz,
                cell.profile.tdd.uplink_symbol_fraction(),
                cell.profile.ul_overhead,
            ) * cell.profile.scheduler_efficiency
            sinr = max(link.antenna_sinrs_db)
            per_ue.append((placement, dl_capacity, ul_capacity, rank, sinr))
            if dl_capacity > 0:
                demand_fractions[cell.name] += (
                    placement.dl_offered_mbps / dl_capacity
                )
        # Scheduler sharing within each cell.
        for placement, dl_capacity, ul_capacity, rank, sinr in per_ue:
            cell_demand = demand_fractions[placement.cell_name]
            scale = 1.0 if cell_demand <= 1.0 else 1.0 / cell_demand
            dl_achieved = min(placement.dl_offered_mbps * scale, dl_capacity)
            ul_achieved = min(placement.ul_offered_mbps, ul_capacity)
            results.append(
                UeResult(
                    imsi=placement.ue.imsi,
                    cell_name=placement.cell_name,
                    dl_mbps=dl_achieved,
                    ul_mbps=ul_achieved,
                    dl_capacity_mbps=dl_capacity,
                    ul_capacity_mbps=ul_capacity,
                    rank=rank,
                    sinr_db=sinr,
                )
            )
        activity = {
            name: min(demand_fractions[name], 1.0) for name in demand_fractions
        }
    return NetworkEvaluation(ues=results, cell_activity=activity)
