"""Serve evaluation: the live control plane, driven by a scripted client.

The acceptance story of the control plane is operational: a neutral-host
operator admits a tenant onto a *running* fronthaul service, rechains
its middleboxes, watches an impairment trip the tenant's SLO, and
evicts it — all through the control session, with no worker restart and
no loss of the engine's byte-level determinism.  This eval runs that
script end to end over a real asyncio service and TCP sockets:

1. **No-delta identity** — a served run that receives no deltas
   collects a digest byte-identical to the batch ``run_scenario`` of
   the same spec (the service is a *driver* of the engine, not a second
   engine).
2. **Scripted tenancy** — admit tenant (``add_cell``) -> rechain
   (``rechain`` to ``prb_monitor``) -> inject a named wire fault
   (``duplicate``, which deterministically produces SEQ_DUP conformance
   violations) -> the subscribed session receives the
   ``tenant-conformance`` SLO alert edge -> evict.  Asserts every
   request was acked, a rejected delta rolls back cleanly, the worker
   pids never change, restarts stay zero, and — because the script nets
   out to the base spec — the final digest again equals the batch
   reference.
3. **Mutation oracle** — immediately after the fault delta, a mid-run
   ``collect`` digest equals a from-scratch run of the mutated spec
   truncated to the confirmed slots (rebase semantics, checked live).

Run via ``PYTHONPATH=src python -m repro.eval serve``; shrink with
``REPRO_SERVE_SLOTS`` / ``REPRO_SERVE_WORKERS`` for CI smoke runs.
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.eval.report import format_table
from repro.scale import ScenarioSpec, run_scenario
from repro.serve import DeltaOp, RequestRejected, ServeClient, ServeService, SpecDelta

DEFAULT_SLOTS = 27
DEFAULT_WORKERS = 2
EPOCH_SLOTS = 3

#: The tenant's access-wire impairment: deterministic duplicates at a
#: rate that guarantees SEQ_DUP conformance violations within one epoch.
TENANT_FAULT = {"kind": "duplicate", "rate": 0.5}

#: The conformance SLO the fault must trip (edge-triggered, windowed).
TENANT_SLO = {
    "name": "tenant-conformance",
    "objective": "conformance_violation_rate",
    "threshold": 0.01,
    "window_epochs": 2,
    "min_samples": 1,
}


def serve_spec(slots: int = DEFAULT_SLOTS) -> ScenarioSpec:
    """The base scenario: two anchor cells, full obs plane, one SLO."""
    if slots % EPOCH_SLOTS:
        raise ValueError(f"slots must be a multiple of {EPOCH_SLOTS}")
    return ScenarioSpec.from_dict(
        {
            "name": "serve-eval",
            "slots": slots,
            "epoch_slots": EPOCH_SLOTS,
            "seed": 11,
            "obs": {
                "enabled": True,
                "stream": True,
                "conformance": True,
                "slo": [dict(TENANT_SLO)],
            },
            "cells": [
                {
                    "name": "anchor-a",
                    "pci": 1,
                    "bandwidth_hz": 20_000_000,
                    "rus": [{"name": "a-ru1"}],
                    "ues": [
                        {
                            "ue_id": "u1",
                            "flows": [
                                {"kind": "cbr", "rate_mbps": 30,
                                 "direction": "dl"}
                            ],
                        }
                    ],
                    "chain": [{"stage": "passthrough"}],
                },
                {
                    "name": "anchor-b",
                    "pci": 2,
                    "bandwidth_hz": 20_000_000,
                    "rus": [{"name": "b-ru1"}],
                    "ues": [
                        {
                            "ue_id": "u2",
                            "flows": [
                                {"kind": "cbr", "rate_mbps": 20,
                                 "direction": "ul"}
                            ],
                        }
                    ],
                    "chain": [{"stage": "passthrough"}],
                },
            ],
        }
    )


def tenant_cell() -> Dict[str, Any]:
    return {
        "name": "tenant",
        "pci": 7,
        "bandwidth_hz": 20_000_000,
        "rus": [{"name": "t-ru1"}],
        "ues": [
            {
                "ue_id": "t1",
                "flows": [
                    {"kind": "cbr", "rate_mbps": 15, "direction": "ul"}
                ],
            }
        ],
        "chain": [{"stage": "passthrough"}],
    }


@dataclass
class ServeEvalResult:
    """Everything the scripted run observed, plus the hard gates."""

    slots: int
    workers: int
    rows: List[List[Any]] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)
    alert: Dict[str, Any] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def assert_healthy(self) -> None:
        failed = sorted(
            name for name, passed in self.checks.items() if not passed
        )
        if failed:
            raise AssertionError(f"serve eval gates failed: {failed}")

    def format(self) -> str:
        table = format_table(
            f"Live control plane script ({self.workers} workers, "
            f"{self.slots} slots)",
            ["step", "op", "at_slot", "outcome"],
            self.rows,
        )
        gates = ", ".join(
            f"{name}={'ok' if passed else 'FAIL'}"
            for name, passed in sorted(self.checks.items())
        )
        alert = (
            f"alert: {self.alert.get('slo')} {self.alert.get('state')} "
            f"at epoch {self.alert.get('epoch')}"
            if self.alert
            else "alert: none"
        )
        return (
            f"{table}\n{alert}\n"
            f"gates: {gates}\n"
            f"wall: {self.wall_seconds:.1f}s"
        )


async def _script(
    spec: ScenarioSpec, workers: int, result: ServeEvalResult
) -> None:
    reference = run_scenario(spec, workers=1)

    # --- phase 1: an unmutated served run is the batch run -----------------
    service = await ServeService(spec, workers=workers).start()
    try:
        client = await ServeClient.connect(port=service.port)
        await client.subscribe(["epochs"])
        await client.step(epochs=spec.slots)  # clamps at the horizon
        collected = await client.collect()
        result.checks["no_delta_digest_identity"] = (
            collected["digest"] == reference.digest
        )
        epoch_event = await client.wait_for_event("epochs", timeout=10.0)
        result.checks["epoch_telemetry_streamed"] = (
            epoch_event["data"]["frames_checked"] > 0
        )
        await client.close()
    finally:
        await service.stop()
    result.rows.append(
        ["baseline", "serve-without-deltas", spec.slots,
         collected["digest"][:12]]
    )

    # --- phase 2: the tenancy script ---------------------------------------
    service = await ServeService(spec, workers=workers).start()
    try:
        client = await ServeClient.connect(port=service.port)
        await client.subscribe(["alerts", "deltas", "conformance"])
        pids_before = (await client.status())["worker_pids"]

        await client.step(epochs=2)
        admitted = await client.apply(
            SpecDelta(
                name="admit-tenant",
                ops=(DeltaOp(op="add_cell", cell=tenant_cell()),),
            )
        )
        result.checks["admit_rebuilt_only_tenant"] = (
            admitted["rebuilt"] == ["tenant"]
        )
        result.rows.append(
            ["admit", "add_cell", admitted["at_slot"],
             f"rebuilt={admitted['rebuilt']}"]
        )
        tenant_routes = await client.routes(cell="tenant")
        result.checks["tenant_routed"] = (
            len(tenant_routes["routes"]) == 2
            and tenant_routes["version"] == 1
        )

        await client.step(epochs=1)
        rechained = await client.apply(
            SpecDelta(
                name="rechain-tenant",
                ops=(
                    DeltaOp(
                        op="rechain",
                        target="tenant",
                        chain=({"stage": "prb_monitor"},),
                    ),
                ),
            )
        )
        result.rows.append(
            ["rechain", "rechain", rechained["at_slot"],
             f"version={rechained['routing_version']}"]
        )
        rechained_routes = await client.routes(cell="tenant")
        result.checks["rechain_visible_in_routes"] = (
            rechained_routes["routes"][0]["chain"] == ["prb_monitor"]
        )

        # A delta aimed at a cell that does not exist must be rejected
        # with the run untouched (the ack says no; nothing else moves).
        version_before = (await client.status())["routing_version"]
        try:
            await client.apply(
                SpecDelta(
                    ops=(
                        DeltaOp(
                            op="rechain",
                            target="nobody",
                            chain=({"stage": "passthrough"},),
                        ),
                    ),
                )
            )
            result.checks["bad_delta_rejected"] = False
        except RequestRejected:
            result.checks["bad_delta_rejected"] = (
                (await client.status())["routing_version"]
                == version_before
            )
        result.rows.append(
            ["reject", "rechain(unknown cell)", version_before,
             "acked ok=false, rolled back"]
        )

        await client.step(epochs=1)
        impaired = await client.apply(
            SpecDelta(
                name="impair-tenant",
                ops=(
                    DeltaOp(
                        op="inject_fault",
                        target="tenant",
                        fault=dict(TENANT_FAULT),
                    ),
                ),
            )
        )
        result.rows.append(
            ["impair", "inject_fault", impaired["at_slot"],
             f"fault={TENANT_FAULT['kind']}"]
        )

        # The duplicate fault produces SEQ_DUP conformance violations
        # deterministically; the windowed SLO must fire within a few
        # epochs and reach this subscribed session as an alert edge.
        for _ in range(4):
            step = await client.step(epochs=1)
            try:
                frame = await client.wait_for_event(
                    "alerts",
                    timeout=1.0,
                    predicate=lambda data: data.get("state") == "firing",
                )
                result.alert = frame["data"]
                break
            except TimeoutError:
                if step["finished"]:
                    break
        result.checks["slo_alert_received"] = (
            result.alert.get("slo") == TENANT_SLO["name"]
            and result.alert.get("state") == "firing"
        )
        result.rows.append(
            ["alert", "slo-edge", (await client.status())["done"],
             result.alert.get("slo", "MISSING")]
        )

        # Mutation oracle, live: a mid-run collect equals a from-scratch
        # run of the mutated spec truncated to the confirmed slots.
        status = await client.status()
        mid = await client.collect()
        mutated = spec.to_dict()
        cell = tenant_cell()
        cell["chain"] = [{"stage": "prb_monitor"}]
        cell["wire"] = dict(TENANT_FAULT)
        mutated["cells"].append(cell)
        mutated["slots"] = status["done"]
        truncated_ref = run_scenario(
            ScenarioSpec.from_dict(mutated), workers=1
        )
        result.checks["mid_run_digest_oracle"] = (
            mid["digest"] == truncated_ref.digest
        )
        result.rows.append(
            ["oracle", "collect@mid-run", status["done"],
             mid["digest"][:12]]
        )

        evicted = await client.apply(
            SpecDelta(
                name="evict-tenant",
                ops=(DeltaOp(op="remove_cell", target="tenant"),),
            )
        )
        result.rows.append(
            ["evict", "remove_cell", evicted["at_slot"],
             f"removed={evicted['removed']}"]
        )
        await client.step(epochs=spec.slots)
        final_status = await client.status()
        result.checks["no_worker_restart"] = (
            final_status["worker_pids"] == pids_before
            and final_status["worker_restarts"] == 0
        )
        result.checks["routing_versions_sequential"] = (
            final_status["routing_version"] == 4
        )
        final = await client.collect()
        # The script nets out to the base spec, so determinism demands
        # the final digest equal the batch reference again.
        result.checks["evict_nets_out_to_base_digest"] = (
            final["digest"] == reference.digest
        )
        result.rows.append(
            ["final", "collect@horizon", final_status["done"],
             final["digest"][:12]]
        )
        await client.shutdown()
        await client.close()
    finally:
        await service.stop()


def run_serve(
    slots: int = DEFAULT_SLOTS, workers: int = DEFAULT_WORKERS
) -> ServeEvalResult:
    spec = serve_spec(slots)
    result = ServeEvalResult(slots=slots, workers=workers)
    started = time.monotonic()
    asyncio.run(_script(spec, workers, result))
    result.wall_seconds = time.monotonic() - started
    return result


def run() -> ServeEvalResult:
    slots = int(os.environ.get("REPRO_SERVE_SLOTS", str(DEFAULT_SLOTS)))
    workers = int(
        os.environ.get("REPRO_SERVE_WORKERS", str(DEFAULT_WORKERS))
    )
    result = run_serve(slots=slots, workers=workers)
    result.assert_healthy()
    return result


__all__ = ["ServeEvalResult", "run", "run_serve", "serve_spec", "tenant_cell"]
