"""Figure 12: chaining RU sharing with DAS for multi-tenancy
(Section 6.3.2, "Enhancing the network's capabilities").

Two MNOs deploy over the same four 100 MHz RUs: the RU-sharing middlebox
splits each RU's spectrum into two aligned 40 MHz slices, and each MNO's
DAS middlebox distributes its cell across all four RUs.  Each MNO's UE
achieves ~350 Mbps anywhere on the floor, with no infrastructure change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.eval.report import format_table
from repro.eval.throughput import DeployedCell, UePlacement, evaluate_network
from repro.fronthaul.spectrum import PrbGrid, split_ru_spectrum
from repro.phy.channel import ChannelModel
from repro.phy.geometry import FloorPlan, WalkPath
from repro.ran.cell import CellConfig
from repro.ran.stacks import SRSRAN, VendorProfile
from repro.ran.ue import UserEquipment

SATURATING_LOAD_MBPS = 1_000.0


@dataclass
class Fig12Result:
    mno1_walk_mbps: List[float]
    mno2_walk_mbps: List[float]

    def summary(self, series: List[float]):
        arr = np.array(series)
        return float(arr.min()), float(arr.mean()), float(arr.max())

    def format(self) -> str:
        rows = []
        for name, series in (
            ("MNO 1 (40MHz over shared DAS)", self.mno1_walk_mbps),
            ("MNO 2 (40MHz over shared DAS)", self.mno2_walk_mbps),
        ):
            low, mean, high = self.summary(series)
            rows.append((name, low, mean, high))
        return format_table(
            "Figure 12: per-MNO UE downlink across the floor (Mbps)",
            ("network", "min", "mean", "max"),
            rows,
        )


def run_fig12(
    profile: VendorProfile = SRSRAN, step_m: float = 4.0, seed: int = 17
) -> Fig12Result:
    plan = FloorPlan()
    channel = ChannelModel(seed=seed)
    rus = plan.ru_positions(0)
    ru_grid = PrbGrid(3.46e9, 273)
    grid_1, grid_2 = split_ru_spectrum(ru_grid, [106, 106])

    cells = []
    for index, grid in enumerate((grid_1, grid_2), start=1):
        config = CellConfig(
            pci=130 + index,
            bandwidth_hz=40_000_000,
            center_frequency_hz=grid.center_frequency_hz,
        )
        cells.append(
            DeployedCell(
                f"mno{index}",
                config,
                list(rus),
                [4] * len(rus),
                mode="das",
                profile=profile,
            )
        )

    walk = list(WalkPath(floor=0).points(step_m))
    mno1_series: List[float] = []
    mno2_series: List[float] = []
    for index, position in enumerate(walk):
        ue1 = UserEquipment(f"0010100000081{index:02d}", position,
                            channel=channel)
        ue2 = UserEquipment(f"0010100000082{index:02d}", position,
                            channel=channel)
        result = evaluate_network(
            cells,
            [
                UePlacement(ue1, "mno1", SATURATING_LOAD_MBPS),
                UePlacement(ue2, "mno2", SATURATING_LOAD_MBPS),
            ],
        )
        mno1_series.append(result.ue(ue1.imsi).dl_mbps)
        mno2_series.append(result.ue(ue2.imsi).dl_mbps)
    return Fig12Result(mno1_walk_mbps=mno1_series, mno2_walk_mbps=mno2_series)
