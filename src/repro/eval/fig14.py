"""Figure 14: energy savings from middlebox chaining (Section 6.3.2).

Two ways to cover the five-floor building:

- **(a)** one dMIMO cell per floor (5 cells, frequency reuse across
  floors): two servers, ~400 W, ~650 Mbps per floor with all 20 UEs
  active.
- **(b)** one cell across all five floors via a DAS+dMIMO chain: a single
  half-loaded server, ~180 W, ~150 Mbps per floor when all UEs are active
  (instantaneous per-floor traffic can still reach the full cell rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.eval.report import format_table
from repro.eval.throughput import DeployedCell, UePlacement, evaluate_network
from repro.phy.channel import ChannelModel, LinkBudget
from repro.phy.geometry import FloorPlan, Position
from repro.ran.cell import CellConfig
from repro.ran.stacks import SRSRAN, VendorProfile
from repro.ran.ue import UserEquipment
from repro.sim.power import (
    CORES_PER_CELL,
    CORES_PER_MIDDLEBOX,
    ServerLoad,
    ServerPowerModel,
    deployment_power_w,
)

SATURATING_LOAD_MBPS = 2_000.0
UES_PER_FLOOR = 4
ONE_ANTENNA_RU_BUDGET = LinkBudget(tx_power_dbm=21.0, antenna_gain_db=3.0)


@dataclass
class Fig14Config:
    label: str
    power_w: float
    per_floor_dl_mbps: List[float]
    per_floor_peak_mbps: List[float]


@dataclass
class Fig14Result:
    per_floor_cells: Fig14Config
    single_cell_chain: Fig14Config

    def format(self) -> str:
        rows = []
        for config in (self.per_floor_cells, self.single_cell_chain):
            rows.append(
                (
                    config.label,
                    config.power_w,
                    sum(config.per_floor_dl_mbps) / len(config.per_floor_dl_mbps),
                    sum(config.per_floor_peak_mbps)
                    / len(config.per_floor_peak_mbps),
                )
            )
        return format_table(
            "Figure 14: power vs per-floor downlink (all-UEs avg / peak Mbps)",
            ("configuration", "power W", "per-floor Mbps", "peak Mbps"),
            rows,
        )


def _floor_ues(plan: FloorPlan, floor: int, channel: ChannelModel):
    positions = [
        Position(x, y, floor)
        for x, y in (
            (8.0, 6.0),
            (20.0, 14.0),
            (33.0, 6.0),
            (45.0, 14.0),
        )
    ]
    return [
        UserEquipment(f"0010100001{floor}{i:03d}", position, channel=channel)
        for i, position in enumerate(positions)
    ]


def run_fig14(
    profile: VendorProfile = SRSRAN, seed: int = 23
) -> Fig14Result:
    plan = FloorPlan()
    channel = ChannelModel(seed=seed)
    power_model = ServerPowerModel()

    # -- (a) one dMIMO cell per floor ----------------------------------------
    cells_a = [
        DeployedCell(
            f"floor{floor}",
            CellConfig(pci=150 + floor, n_antennas=4, max_dl_layers=4),
            plan.ru_positions(floor),
            [1] * 4,
            mode="dmimo",
            profile=profile,
            budget=ONE_ANTENNA_RU_BUDGET,
        )
        for floor in range(plan.floors)
    ]
    placements_a = []
    ues_by_floor = {}
    for floor in range(plan.floors):
        ues = _floor_ues(plan, floor, channel)
        ues_by_floor[floor] = ues
        placements_a.extend(
            UePlacement(ue, f"floor{floor}", SATURATING_LOAD_MBPS) for ue in ues
        )
    result_a = evaluate_network(cells_a, placements_a)
    per_floor_a = [
        sum(
            result_a.ue(ue.imsi).dl_mbps for ue in ues_by_floor[floor]
        )
        for floor in range(plan.floors)
    ]
    # Peak = one floor's UEs alone on their cell.
    peak_a = per_floor_a  # each floor has its own cell: peak == sustained
    cores_a = plan.floors * (CORES_PER_CELL + CORES_PER_MIDDLEBOX) + 5
    server_capacity = power_model.total_cores
    servers_a = []
    remaining = cores_a
    while remaining > 0:
        servers_a.append(ServerLoad(active_cores=min(remaining, server_capacity)))
        remaining -= server_capacity
    power_a = deployment_power_w(servers_a, power_model)

    # -- (b) one cell over all floors: DAS + per-floor dMIMO chain -------------
    all_rus = [
        position
        for floor in range(plan.floors)
        for position in plan.ru_positions(floor)
    ]
    # The DAS stage replicates the 4-port cell across floors and each
    # floor's dMIMO stage maps the ports onto its four RUs; for any UE the
    # four same-floor RUs dominate (45 dB/floor isolation), which the
    # distributed-MIMO link model captures by selecting the strongest
    # antenna groups.
    cell_b = DeployedCell(
        "building",
        CellConfig(pci=160, n_antennas=4, max_dl_layers=4),
        all_rus,
        [1] * len(all_rus),
        mode="dmimo",
        profile=profile,
        budget=ONE_ANTENNA_RU_BUDGET,
    )
    placements_b = []
    for floor in range(plan.floors):
        placements_b.extend(
            UePlacement(ue, "building", SATURATING_LOAD_MBPS)
            for ue in ues_by_floor[floor]
        )
    result_b = evaluate_network([cell_b], placements_b)
    per_floor_b = [
        sum(result_b.ue(ue.imsi).dl_mbps for ue in ues_by_floor[floor])
        for floor in range(plan.floors)
    ]
    peak_b = []
    for floor in range(plan.floors):
        alone = evaluate_network(
            [cell_b],
            [
                UePlacement(ue, "building", SATURATING_LOAD_MBPS)
                for ue in ues_by_floor[floor]
            ],
        )
        peak_b.append(alone.total_dl_mbps())
    # One cell + (1 DAS + 5 dMIMO) middleboxes on a single server; the
    # second server shuts down and half the first's cores run low-freq.
    cores_b = CORES_PER_CELL + 6 * CORES_PER_MIDDLEBOX + 1
    power_b = deployment_power_w(
        [
            ServerLoad(
                active_cores=cores_b,
                low_freq_cores=power_model.total_cores // 2,
            ),
            ServerLoad(active_cores=0, powered=False),
        ],
        power_model,
    )
    return Fig14Result(
        per_floor_cells=Fig14Config(
            label="(a) one dMIMO cell per floor, 2 servers",
            power_w=power_a,
            per_floor_dl_mbps=per_floor_a,
            per_floor_peak_mbps=peak_a,
        ),
        single_cell_chain=Fig14Config(
            label="(b) single cell, DAS+dMIMO chain, 1 server",
            power_w=power_b,
            per_floor_dl_mbps=per_floor_b,
            per_floor_peak_mbps=peak_b,
        ),
    )
