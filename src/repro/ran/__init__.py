"""RAN network functions: the substrate the middleboxes sit between.

- :mod:`repro.ran.cell` -- cell configuration (bandwidth, SCS, TDD, MIMO).
- :mod:`repro.ran.stacks` -- vendor stack profiles (srsRAN, CapGemini,
  Radisys) capturing the configuration differences the paper mentions.
- :mod:`repro.ran.scheduler` -- MAC scheduler allocating PRBs per slot,
  with the MAC log used as ground truth in Figure 10c.
- :mod:`repro.ran.du` -- the Distributed Unit: C/U-plane generation and
  uplink consumption.
- :mod:`repro.ran.ru` -- a Cat-A O-RAN Radio Unit model.
- :mod:`repro.ran.ue` -- UEs: attach, CQI/rank reporting, traffic.
- :mod:`repro.ran.traffic` -- iperf-like constant-bitrate flows.
- :mod:`repro.ran.sync` -- PTP grandmaster clock and deadline budgets.
- :mod:`repro.ran.ptp` -- S-plane: the two-step PTP message exchange and
  servo that produce those clock offsets.
- :mod:`repro.ran.mplane` -- M-plane: RU capability validation and
  candidate/commit configuration sessions.
- :mod:`repro.ran.core_network` -- minimal 5G core (attach/PDU sessions).
"""

from repro.ran.cell import CellConfig
from repro.ran.stacks import CAPGEMINI, RADISYS, SRSRAN, VendorProfile
from repro.ran.scheduler import MacScheduler, PrbAllocation, SlotLog
from repro.ran.du import DistributedUnit
from repro.ran.ru import RadioUnit
from repro.ran.ue import UserEquipment
from repro.ran.traffic import ConstantBitrateFlow, PoissonFlow
from repro.ran.sync import PtpClock, SyncStatus
from repro.ran.ptp import PtpPath, PtpSession
from repro.ran.mplane import MPlaneSession, RuCapabilities
from repro.ran.core_network import CoreNetwork, Subscriber

__all__ = [
    "CellConfig",
    "VendorProfile",
    "SRSRAN",
    "CAPGEMINI",
    "RADISYS",
    "MacScheduler",
    "PrbAllocation",
    "SlotLog",
    "DistributedUnit",
    "RadioUnit",
    "UserEquipment",
    "ConstantBitrateFlow",
    "PoissonFlow",
    "PtpClock",
    "SyncStatus",
    "PtpPath",
    "PtpSession",
    "MPlaneSession",
    "RuCapabilities",
    "CoreNetwork",
    "Subscriber",
]
