"""User equipment: attach, channel quality reporting, traffic endpoints.

A UE scans candidate cells by per-RE RSRP, attaches to the strongest one
above the decode threshold, and reports rank/CQI derived from the MIMO
link model.  The experiments' smartphones and Quectel-modem Raspberry Pis
are all instances of this class at different positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.phy.channel import (
    ATTACH_RSRP_THRESHOLD_DBM,
    ChannelModel,
    LinkBudget,
    UE_LINK_BUDGET,
)
from repro.phy.geometry import Position
from repro.phy.mimo import MimoLink
from repro.ran.core_network import CoreNetwork, Subscriber


@dataclass
class CellView:
    """What a UE can see of one candidate cell: its radiating RUs."""

    pci: int
    plmn: str
    ru_positions: Sequence[Position]
    ru_antennas: Sequence[int]
    n_subcarriers: int
    ru_budget: LinkBudget = field(default_factory=LinkBudget)

    def __post_init__(self) -> None:
        if len(self.ru_positions) != len(self.ru_antennas):
            raise ValueError("one antenna count per RU position required")
        if not self.ru_positions:
            raise ValueError("a cell must radiate from at least one RU")


@dataclass
class UeMeasurement:
    """One measurement report: serving RSRP, SINR, rank."""

    pci: int
    rsrp_dbm: float
    sinr_db: float
    rank: int
    aggregate_se: float


class AttachError(Exception):
    """No cell above the attach threshold (the paper's upper-floor UEs)."""


class UserEquipment:
    """A 5G UE: position, radio measurements, attach state, IQ endpoints."""

    def __init__(
        self,
        imsi: str,
        position: Position,
        n_antennas: int = 4,
        channel: Optional[ChannelModel] = None,
        plmn: str = "00101",
    ):
        self.subscriber = Subscriber(imsi=imsi, plmn=plmn)
        self.position = position
        self.n_antennas = n_antennas
        self.channel = channel or ChannelModel()
        self.serving_pci: Optional[int] = None
        self.serving_core: Optional[CoreNetwork] = None
        self.measurements: List[UeMeasurement] = []
        self.dl_bits_received = 0
        self.ul_bits_sent = 0

    @property
    def imsi(self) -> str:
        return self.subscriber.imsi

    # -- measurements ---------------------------------------------------------

    def rsrp_dbm(self, cell: CellView) -> float:
        """Best per-RE RSRP across the cell's RUs (SSB measurement).

        For DAS cells all RUs transmit the same SSB, so powers combine;
        the UE reports the combined level.
        """
        powers_mw = [
            10.0
            ** (
                self.channel.rsrp_per_re_dbm(
                    cell.ru_budget, ru, self.position, cell.n_subcarriers
                )
                / 10.0
            )
            for ru in cell.ru_positions
        ]
        return 10.0 * np.log10(sum(powers_mw))

    def can_attach(self, cell: CellView) -> bool:
        return self.rsrp_dbm(cell) > ATTACH_RSRP_THRESHOLD_DBM

    def mimo_link(
        self,
        cell: CellView,
        bandwidth_hz: float,
        interferers: Sequence[Tuple[Position, float]] = (),
        max_layers: int = 4,
        **link_kwargs,
    ) -> MimoLink:
        """Per-antenna-port link quality towards this cell.

        Each RU contributes its antenna ports at the SINR set by its own
        path to the UE — the distributed-MIMO geometry of Section 4.2.
        """
        groups = [
            (
                self.channel.sinr_db(
                    cell.ru_budget, [ru], self.position, bandwidth_hz, interferers
                ),
                antennas,
            )
            for ru, antennas in zip(cell.ru_positions, cell.ru_antennas)
        ]
        return MimoLink.distributed(
            groups, max_layers=min(max_layers, self.n_antennas), **link_kwargs
        )

    def das_link(
        self,
        cell: CellView,
        bandwidth_hz: float,
        interferers: Sequence[Tuple[Position, float]] = (),
        max_layers: int = 4,
        **link_kwargs,
    ) -> MimoLink:
        """Link quality when all RUs transmit the *same* signal (DAS).

        Powers combine into a single effective transmission whose layer
        count is the per-RU antenna count, not the RU count.
        """
        sinr = self.channel.sinr_db(
            cell.ru_budget,
            list(cell.ru_positions),
            self.position,
            bandwidth_hz,
            interferers,
        )
        n_antennas = min(cell.ru_antennas)
        return MimoLink.colocated(
            sinr,
            n_antennas,
            max_layers=min(max_layers, self.n_antennas),
            **link_kwargs,
        )

    def uplink_sinr_db(
        self,
        cell: CellView,
        bandwidth_hz: float,
        combining: bool = True,
    ) -> float:
        """Uplink SINR at the cell's RU(s) from this UE.

        With ``combining`` the per-RU received powers add (the DAS uplink
        merge); otherwise only the strongest RU counts.
        """
        powers = self.channel.received_powers_mw(
            UE_LINK_BUDGET, list(cell.ru_positions), self.position
        )
        from repro.phy.channel import db_to_linear, linear_to_db, noise_power_dbm

        noise = db_to_linear(noise_power_dbm(bandwidth_hz))
        signal = powers.sum() if combining else powers.max()
        return linear_to_db(signal / noise)

    def measure(
        self,
        cell: CellView,
        bandwidth_hz: float,
        interferers: Sequence[Tuple[Position, float]] = (),
        das: bool = False,
        max_layers: int = 4,
    ) -> UeMeasurement:
        link = (
            self.das_link(cell, bandwidth_hz, interferers, max_layers)
            if das
            else self.mimo_link(cell, bandwidth_hz, interferers, max_layers)
        )
        rank = link.best_rank()
        measurement = UeMeasurement(
            pci=cell.pci,
            rsrp_dbm=self.rsrp_dbm(cell),
            sinr_db=max(link.antenna_sinrs_db),
            rank=rank,
            aggregate_se=link.aggregate_se(),
        )
        self.measurements.append(measurement)
        return measurement

    # -- attach ---------------------------------------------------------------

    def scan_and_attach(
        self,
        cells: Sequence[CellView],
        cores: Optional[Dict[int, CoreNetwork]] = None,
        forced_pci: Optional[int] = None,
    ) -> CellView:
        """Attach to the strongest eligible cell (optionally forced by PCI,
        as in the RU-sharing experiment of Section 6.2.3)."""
        candidates = [
            cell
            for cell in cells
            if (forced_pci is None or cell.pci == forced_pci)
            and cell.plmn == self.subscriber.plmn
            and self.can_attach(cell)
        ]
        if not candidates:
            raise AttachError(
                f"UE {self.imsi} found no attachable cell "
                f"(forced_pci={forced_pci})"
            )
        best = max(candidates, key=self.rsrp_dbm)
        self.serving_pci = best.pci
        if cores is not None:
            core = cores[best.pci]
            core.provision(self.subscriber)
            core.register(self.imsi)
            core.establish_session(self.imsi)
            self.serving_core = core
        return best

    def detach(self) -> None:
        if self.serving_core is not None:
            self.serving_core.deregister(self.imsi)
        self.serving_pci = None
        self.serving_core = None
