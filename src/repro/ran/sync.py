"""Time synchronization: PTP grandmaster clock and deadline budgets.

Fronthaul messages must arrive within strict transmit/receive windows
(Section 2.2); PTP/SyncE keeps DU, RUs and middlebox hosts aligned to
nanoseconds.  dMIMO additionally requires tight *phase* sync across RUs
(Section 4.2).  The model tracks per-device offsets from a grandmaster and
provides the slot-processing deadline accounting used by the scalability
experiments (Section 6.4.1: exceeding ~30 us of added processing per slot
causes deadline violations and packet drops).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

import numpy as np


class SyncStatus(enum.Enum):
    LOCKED = "locked"
    HOLDOVER = "holdover"
    FREE_RUNNING = "free_running"


@dataclass
class PtpClock:
    """A PTP grandmaster (e.g. the testbed's Qulsar QG2) and its clients.

    Client clocks track the GM with a small residual offset drawn once per
    client; ``max_pairwise_offset_ns`` quantifies the sync quality bound
    that dMIMO feasibility rests on.
    """

    jitter_ns: float = 20.0
    seed: int = 0
    status: SyncStatus = SyncStatus.LOCKED
    _offsets: Dict[str, float] = field(default_factory=dict, repr=False)

    def register(self, device: str) -> float:
        """Register a device; returns its residual offset from the GM."""
        if device not in self._offsets:
            rng = np.random.default_rng((hash(device) ^ self.seed) & 0x7FFFFFFF)
            scale = {
                SyncStatus.LOCKED: 1.0,
                SyncStatus.HOLDOVER: 50.0,
                SyncStatus.FREE_RUNNING: 10_000.0,
            }[self.status]
            self._offsets[device] = float(rng.normal(0.0, self.jitter_ns * scale))
        return self._offsets[device]

    def offset_ns(self, device: str) -> float:
        return self.register(device)

    def max_pairwise_offset_ns(self) -> float:
        """Worst-case offset between any two registered devices."""
        if len(self._offsets) < 2:
            return 0.0
        values = list(self._offsets.values())
        return max(values) - min(values)

    def supports_dmimo(self, budget_ns: float = 65.0) -> bool:
        """Whether phase sync is tight enough for distributed MIMO.

        The paper cites a few-ns to tens-of-ns requirement [12, 66]; we use
        the 3GPP TAE budget of 65 ns for intra-band contiguous MIMO.
        """
        return (
            self.status is SyncStatus.LOCKED
            and self.max_pairwise_offset_ns() <= budget_ns
        )


@dataclass
class DeadlineBudget:
    """Slot-processing deadline accounting (Section 6.4.1).

    The vRAN pipeline has a total slot budget; middleboxes add processing
    latency.  The paper measures that the DAS middlebox may add up to
    ~30 us before deadlines are violated.
    """

    slot_budget_ns: float = 30_000.0

    def violated(self, added_processing_ns: float) -> bool:
        return added_processing_ns > self.slot_budget_ns

    def headroom_ns(self, added_processing_ns: float) -> float:
        return self.slot_budget_ns - added_processing_ns
