"""Traffic generators: the iperf-equivalents of the evaluation.

Flows produce bits per slot which the MAC scheduler drains; downlink flows
fill the DU's per-UE queues, uplink flows fill the UE's buffer status
reports.  ``ConstantBitrateFlow`` reproduces ``iperf -u -b <rate>``;
``PoissonFlow`` adds burstiness for the ablation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class ConstantBitrateFlow:
    """A UDP CBR flow at ``rate_mbps``, like the paper's iperf tests."""

    rate_mbps: float
    name: str = "cbr"

    def __post_init__(self) -> None:
        if self.rate_mbps < 0:
            raise ValueError("rate must be non-negative")
        self._credit_bits = 0.0

    def bits_in_slot(self, slot_duration_ns: int) -> int:
        """Bits arriving during one slot (credit-based, no drift)."""
        self._credit_bits += self.rate_mbps * 1e6 * slot_duration_ns / 1e9
        whole = int(self._credit_bits)
        self._credit_bits -= whole
        return whole

    def reset(self) -> None:
        self._credit_bits = 0.0


@dataclass
class PoissonFlow:
    """Poisson packet arrivals at an average rate (burstier than CBR)."""

    rate_mbps: float
    packet_bits: int = 12_000  # 1500-byte packets
    seed: int = 0
    name: str = "poisson"
    _rng: Optional[np.random.Generator] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.rate_mbps < 0:
            raise ValueError("rate must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    def bits_in_slot(self, slot_duration_ns: int) -> int:
        mean_packets = (
            self.rate_mbps * 1e6 * slot_duration_ns / 1e9 / self.packet_bits
        )
        return int(self._rng.poisson(mean_packets)) * self.packet_bits

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)
