"""M-plane: RU management and configuration (Section 2.2).

The fronthaul's M-plane carries management: operators use it to read an
RU's hardware capabilities and to (re)configure its carrier — center
frequency, bandwidth, transmit power, compression.  The RU-sharing
deployments of Sections 4.3/6.3.2 depend on exactly this: the shared
100 MHz RU is "configured for a specific center frequency and bandwidth"
before the middlebox carves it up.

The model follows NETCONF's datastore discipline: edits accumulate in a
candidate configuration, are validated against the RU's capabilities, and
take effect only on commit — with a supervision watchdog that mirrors the
O-RAN M-plane's session keepalive.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.fronthaul.compression import (
    BFP_COMP_METH,
    MOD_COMP_METH,
    NO_COMP_METH,
    CompressionConfig,
)
from repro.ran.ru import RuConfig


@dataclass(frozen=True)
class RuCapabilities:
    """What the hardware can do (the read-only capability model)."""

    min_frequency_hz: float = 3.3e9
    max_frequency_hz: float = 3.8e9  # 5G band n78
    max_bandwidth_prbs: int = 273
    max_antennas: int = 4
    max_tx_power_dbm: float = 24.0
    supported_iq_widths: Tuple[int, ...] = (8, 9, 12, 14, 16)
    #: udCompMeth codes the radio advertises over M-plane; codec
    #: negotiation (:func:`repro.ran.stacks.negotiate_compression`)
    #: refuses anything outside this set.
    supported_comp_meths: Tuple[int, ...] = (
        NO_COMP_METH,
        BFP_COMP_METH,
        MOD_COMP_METH,
    )
    #: Mantissa widths accepted for modulation compression (distinct
    #: from the BFP widths — constellation axes are much narrower).
    supported_modcomp_widths: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 8)

    def validate_compression(self, config: CompressionConfig) -> List[str]:
        """Constraint violations of a proposed wire codec config."""
        errors: List[str] = []
        if config.comp_meth not in self.supported_comp_meths:
            errors.append(
                f"comp_meth {config.comp_meth} unsupported (advertised: "
                f"{self.supported_comp_meths})"
            )
        elif config.comp_meth == MOD_COMP_METH:
            if config.iq_width not in self.supported_modcomp_widths:
                errors.append(
                    f"modcomp iq_width {config.iq_width} unsupported"
                )
        elif config.iq_width not in self.supported_iq_widths:
            errors.append(f"iq_width {config.iq_width} unsupported")
        return errors

    def validate(self, config: RuConfig) -> List[str]:
        """All constraint violations of a candidate configuration."""
        errors = []
        grid = config.grid
        low = grid.prb0_frequency_hz
        high = grid.prb_start_frequency_hz(grid.num_prb)
        if low < self.min_frequency_hz or high > self.max_frequency_hz:
            errors.append(
                f"carrier {low / 1e9:.4f}-{high / 1e9:.4f} GHz outside "
                f"band {self.min_frequency_hz / 1e9}-"
                f"{self.max_frequency_hz / 1e9} GHz"
            )
        if config.num_prb > self.max_bandwidth_prbs:
            errors.append(
                f"{config.num_prb} PRBs exceed the hardware's "
                f"{self.max_bandwidth_prbs}"
            )
        if config.n_antennas > self.max_antennas:
            errors.append(
                f"{config.n_antennas} antennas exceed the hardware's "
                f"{self.max_antennas}"
            )
        if config.tx_power_dbm_per_port > self.max_tx_power_dbm:
            errors.append(
                f"{config.tx_power_dbm_per_port} dBm exceeds the rated "
                f"{self.max_tx_power_dbm} dBm"
            )
        errors.extend(self.validate_compression(config.compression))
        return errors


class CommitError(Exception):
    """A candidate configuration failed capability validation."""


class SupervisionLost(Exception):
    """The M-plane watchdog expired: the manager stopped supervising."""


class MPlaneSession:
    """One management session to an RU.

    ``edit(**fields)`` stages changes into the candidate datastore;
    ``commit()`` validates and applies them atomically; ``rollback()``
    discards the candidate.  ``supervise(now_s)`` feeds the watchdog —
    if it starves past ``supervision_timeout_s``, the RU falls back to
    its last committed configuration and rejects further edits until a
    new session is established (the O-RAN supervision model).
    """

    def __init__(
        self,
        running: RuConfig,
        capabilities: RuCapabilities = RuCapabilities(),
        supervision_timeout_s: float = 60.0,
    ):
        errors = capabilities.validate(running)
        if errors:
            raise CommitError(
                "initial configuration invalid: " + "; ".join(errors)
            )
        self.capabilities = capabilities
        self.supervision_timeout_s = supervision_timeout_s
        self._running = running
        self._candidate: Optional[RuConfig] = None
        self._last_supervision_s = 0.0
        self._alive = True
        self.commit_history: List[RuConfig] = [running]

    # -- datastores ----------------------------------------------------------

    @property
    def running(self) -> RuConfig:
        return self._running

    @property
    def candidate(self) -> Optional[RuConfig]:
        return self._candidate

    def edit(self, **fields) -> RuConfig:
        """Stage changes; returns the candidate after the edit."""
        self._require_alive()
        base = self._candidate or self._running
        unknown = [
            name for name in fields if not hasattr(base, name)
        ]
        if unknown:
            raise AttributeError(
                f"RuConfig has no fields {', '.join(unknown)}"
            )
        self._candidate = replace(base, **fields)
        return self._candidate

    def edit_compression(
        self, iq_width: int, comp_meth: int = BFP_COMP_METH
    ) -> RuConfig:
        return self.edit(
            compression=CompressionConfig(
                iq_width=iq_width, comp_meth=comp_meth
            )
        )

    def validate(self) -> List[str]:
        """Errors the current candidate would fail commit with."""
        if self._candidate is None:
            return []
        return self.capabilities.validate(self._candidate)

    def commit(self) -> RuConfig:
        """Apply the candidate atomically (all-or-nothing)."""
        self._require_alive()
        if self._candidate is None:
            return self._running
        errors = self.capabilities.validate(self._candidate)
        if errors:
            raise CommitError("; ".join(errors))
        self._running = self._candidate
        self._candidate = None
        self.commit_history.append(self._running)
        return self._running

    def rollback(self) -> None:
        self._candidate = None

    # -- supervision ----------------------------------------------------------

    def supervise(self, now_s: float) -> None:
        """Watchdog feed.  Call at least every ``supervision_timeout_s``."""
        if now_s < self._last_supervision_s:
            raise ValueError("supervision time went backwards")
        if (
            self._alive
            and now_s - self._last_supervision_s > self.supervision_timeout_s
        ):
            # Starved: the RU drops the session and any staged candidate.
            self._alive = False
            self._candidate = None
            raise SupervisionLost(
                f"no supervision for {now_s - self._last_supervision_s:.0f}s"
            )
        self._last_supervision_s = now_s

    @property
    def alive(self) -> bool:
        return self._alive

    def _require_alive(self) -> None:
        if not self._alive:
            raise SupervisionLost(
                "session lost; re-establish before editing"
            )
