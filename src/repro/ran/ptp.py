"""S-plane: PTP (IEEE 1588) two-step synchronization message exchange.

Section 2.2: the fronthaul's S-plane carries synchronization; "strict
nanosecond-level synchronization protocols, like PTP and SyncE" keep DU
and RUs inside their transmit/receive windows, and dMIMO needs tight
phase alignment on top (Section 4.2).

This module implements the two-step delay request-response mechanism at
message level: Sync/Follow_Up stamped at the grandmaster, Delay_Req /
Delay_Resp from the client, the standard offset computation, and an EWMA
servo that converges the client clock.  :class:`repro.ran.sync.PtpClock`
models the *steady state*; this models *how it gets there*, including the
path-asymmetry error PTP famously cannot observe.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

import numpy as np


class PtpMessageType(enum.Enum):
    SYNC = "sync"
    FOLLOW_UP = "follow_up"
    DELAY_REQ = "delay_req"
    DELAY_RESP = "delay_resp"


@dataclass(frozen=True)
class PtpMessage:
    """One PTP event/general message with its origin timestamp."""

    kind: PtpMessageType
    sequence: int
    timestamp_ns: float  # t1 for FOLLOW_UP, t4 for DELAY_RESP


@dataclass
class PtpPath:
    """The network between GM and client: delay, asymmetry, jitter."""

    mean_delay_ns: float = 5_000.0  # a few switch hops
    asymmetry_ns: float = 0.0  # forward minus reverse extra delay
    jitter_ns: float = 30.0
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mean_delay_ns < 0:
            raise ValueError("path delay cannot be negative")
        self._rng = np.random.default_rng(self.seed)

    def forward_ns(self) -> float:
        return max(
            self.mean_delay_ns
            + self.asymmetry_ns / 2
            + self._rng.normal(0, self.jitter_ns),
            0.0,
        )

    def reverse_ns(self) -> float:
        return max(
            self.mean_delay_ns
            - self.asymmetry_ns / 2
            + self._rng.normal(0, self.jitter_ns),
            0.0,
        )


@dataclass
class OffsetSample:
    """One completed two-step exchange."""

    sequence: int
    offset_ns: float  # measured client-minus-master offset
    mean_path_delay_ns: float


class PtpSession:
    """A GM <-> client session over one path.

    ``exchange()`` runs one full two-step round (Sync, Follow_Up,
    Delay_Req, Delay_Resp) and applies the textbook estimators::

        offset     = ((t2 - t1) - (t4 - t3)) / 2
        path_delay = ((t2 - t1) + (t4 - t3)) / 2

    then steps the client's correction through an EWMA servo.  The
    residual after convergence is the jitter-limited noise floor plus
    half the path asymmetry — the error PTP cannot see, and the reason
    fronthaul deployments engineer symmetric paths.
    """

    def __init__(
        self,
        path: PtpPath,
        true_client_offset_ns: float = 0.0,
        servo_gain: float = 0.25,
    ):
        if not 0 < servo_gain <= 1:
            raise ValueError("servo gain must be in (0, 1]")
        self.path = path
        self.true_client_offset_ns = true_client_offset_ns
        self.servo_gain = servo_gain
        self.correction_ns = 0.0
        self.samples: List[OffsetSample] = []
        self.log: List[PtpMessage] = []
        self._sequence = 0
        self._master_time_ns = 0.0

    # -- clocks -----------------------------------------------------------

    def _master_now(self) -> float:
        return self._master_time_ns

    def _client_now(self) -> float:
        """Client reading: true offset minus the servo's correction."""
        return (
            self._master_time_ns
            + self.true_client_offset_ns
            - self.correction_ns
        )

    def _advance(self, delta_ns: float) -> None:
        self._master_time_ns += delta_ns

    # -- protocol -----------------------------------------------------------

    def exchange(self) -> OffsetSample:
        """One two-step round; returns the measured offset sample."""
        sequence = self._sequence
        self._sequence += 1
        # Sync leaves the GM at t1 (hardware timestamp sent in Follow_Up).
        t1 = self._master_now()
        self.log.append(PtpMessage(PtpMessageType.SYNC, sequence, 0.0))
        self._advance(self.path.forward_ns())
        t2 = self._client_now()
        self.log.append(PtpMessage(PtpMessageType.FOLLOW_UP, sequence, t1))
        # Client initiates the reverse measurement at t3.
        self._advance(1_000.0)  # processing gap
        t3 = self._client_now()
        self.log.append(PtpMessage(PtpMessageType.DELAY_REQ, sequence, 0.0))
        self._advance(self.path.reverse_ns())
        t4 = self._master_now()
        self.log.append(PtpMessage(PtpMessageType.DELAY_RESP, sequence, t4))

        offset = ((t2 - t1) - (t4 - t3)) / 2
        delay = ((t2 - t1) + (t4 - t3)) / 2
        self.correction_ns += self.servo_gain * offset
        sample = OffsetSample(
            sequence=sequence, offset_ns=offset, mean_path_delay_ns=delay
        )
        self.samples.append(sample)
        self._advance(125_000_000.0)  # 8 exchanges/s cadence
        return sample

    def converge(self, rounds: int = 32) -> float:
        """Run exchanges; returns the residual true offset after servo."""
        for _ in range(max(rounds, 1)):
            self.exchange()
        return self.residual_ns()

    def residual_ns(self) -> float:
        """True remaining client offset (what the middlebox cares about)."""
        return self.true_client_offset_ns - self.correction_ns

    def estimated_path_delay_ns(self) -> float:
        if not self.samples:
            raise RuntimeError("no exchanges completed")
        recent = self.samples[-8:]
        return float(np.mean([s.mean_path_delay_ns for s in recent]))


def converge_deployment(
    n_clients: int,
    initial_offsets_ns,
    path_factory,
    rounds: int = 32,
) -> List[float]:
    """Converge every RU/DU clock against the GM; returns residuals.

    The max pairwise spread of the result is the deployment's time
    alignment error — compare against the 65 ns dMIMO budget of
    :meth:`repro.ran.sync.PtpClock.supports_dmimo`.
    """
    if n_clients < 1:
        raise ValueError("at least one client required")
    residuals = []
    for index in range(n_clients):
        session = PtpSession(
            path=path_factory(index),
            true_client_offset_ns=initial_offsets_ns[index],
        )
        residuals.append(session.converge(rounds))
    return residuals
