"""Cell configuration: the parameters shared by a DU and its RU(s)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fronthaul.compression import CompressionConfig
from repro.fronthaul.spectrum import PrbGrid, prbs_for_bandwidth
from repro.fronthaul.timing import Numerology, TddPattern


@dataclass(frozen=True)
class CellConfig:
    """Static configuration of one 5G NR TDD cell.

    Matches the testbed cells of Section 6: band n78, 30 kHz SCS, up to
    100 MHz and 4x4 MIMO, BFP-9 compression on the fronthaul.
    """

    pci: int
    bandwidth_hz: int = 100_000_000
    center_frequency_hz: float = 3.46e9
    n_antennas: int = 4
    max_dl_layers: int = 4
    numerology: Numerology = field(default_factory=lambda: Numerology(mu=1))
    tdd: TddPattern = field(default_factory=TddPattern)
    compression: CompressionConfig = field(default_factory=CompressionConfig)
    ssb_period_slots: int = 40  # 20 ms at 30 kHz SCS
    prach_period_slots: int = 40
    #: Offset within the PRACH period so occasions land on uplink slots
    #: (slot 4 is the U slot of both DDDSU and DDDSUDDSUU).
    prach_slot_offset: int = 4
    prach_num_prb: int = 12
    prach_freq_offset: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.pci < 1008:
            raise ValueError(f"PCI out of range: {self.pci}")
        if self.n_antennas < 1:
            raise ValueError("cell needs at least one antenna")
        if self.max_dl_layers > self.n_antennas:
            raise ValueError("layers cannot exceed antenna count")

    @property
    def num_prb(self) -> int:
        return prbs_for_bandwidth(self.bandwidth_hz, self.numerology.scs_hz)

    @property
    def grid(self) -> PrbGrid:
        return PrbGrid(
            center_frequency_hz=self.center_frequency_hz,
            num_prb=self.num_prb,
            scs_hz=self.numerology.scs_hz,
        )

    @property
    def occupied_bandwidth_hz(self) -> int:
        return self.grid.occupied_bandwidth_hz

    def is_ssb_slot(self, absolute_slot: int) -> bool:
        """SSB transmission slots (every ``ssb_period_slots``).

        The SSB is a periodic broadcast in well-known symbols/PRBs of the
        cell, transmitted on the first antenna port only — the property
        the dMIMO middlebox exploits to replicate it (Section 4.2).
        """
        return absolute_slot % self.ssb_period_slots == 0

    def is_prach_slot(self, absolute_slot: int) -> bool:
        return (
            absolute_slot % self.prach_period_slots == self.prach_slot_offset
        )

    #: PRB range of the SSB within the grid: 20 PRBs centred in the band.
    @property
    def ssb_prb_range(self) -> "tuple[int, int]":
        start = max((self.num_prb - 20) // 2, 0)
        return (start, min(start + 20, self.num_prb))

    @property
    def ssb_symbols(self) -> "tuple[int, ...]":
        """Symbols of an SSB slot carrying SSB blocks (case C pattern)."""
        return (2, 3, 4, 5)
