"""A Cat-A O-RAN Radio Unit model.

The RU is deliberately simple (Cat-A: all MIMO processing happens at the
DU, Section 4.2): it obeys C-plane instructions, converts downlink U-plane
IQ to air samples, and digitizes air samples back into uplink U-plane
packets covering exactly the PRB ranges the C-plane requested — including
the full-spectrum requests the RU-sharing middlebox widens ``numPrb`` to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fronthaul.compression import SAMPLES_PER_PRB, CompressionConfig
from repro.fronthaul.cplane import CPlaneMessage, Direction, SectionType
from repro.fronthaul.ecpri import EAxCId
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import FronthaulPacket, make_packet
from repro.fronthaul.spectrum import PrbGrid
from repro.fronthaul.timing import SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection
from repro.phy.iq import int16_to_iq, iq_to_int16


@dataclass(frozen=True)
class RuConfig:
    """RU hardware parameters (a Foxconn RPQN-7800 equivalent)."""

    num_prb: int = 273
    center_frequency_hz: float = 3.46e9
    n_antennas: int = 4
    scs_hz: int = 30_000
    compression: CompressionConfig = field(default_factory=CompressionConfig)
    tx_power_dbm_per_port: float = 24.0

    @property
    def grid(self) -> PrbGrid:
        return PrbGrid(self.center_frequency_hz, self.num_prb, self.scs_hz)


@dataclass
class _UplinkRequest:
    """A pending C-plane request the RU must satisfy with U-plane data."""

    sections: List[Tuple[int, int, int]]  # (section_id, start_prb, num_prb)
    is_prach: bool = False
    start_symbol: int = 0
    num_symbols: int = 1


@dataclass
class RuCounters:
    cplane_received: int = 0
    uplane_received: int = 0
    uplane_sent: int = 0
    unsolicited_uplane: int = 0


class RadioUnit:
    """One physical RU on the fronthaul.

    Downlink: C-plane messages open transmission windows; U-plane packets
    fill the transmit grid (only PRBs covered by a C-plane section are
    accepted — unsolicited data is dropped, as real RUs do).

    Uplink: ``build_uplink(time, port, air_iq)`` converts received air
    samples into U-plane packets answering the recorded C-plane requests.
    """

    def __init__(
        self,
        ru_id: int,
        config: RuConfig = RuConfig(),
        mac: Optional[MacAddress] = None,
        du_mac: Optional[MacAddress] = None,
        seed: int = 0,
    ):
        self.ru_id = ru_id
        self.config = config
        self.mac = mac or MacAddress.from_int(0x02_00_00_00_20_00 + ru_id)
        self.du_mac = du_mac or MacAddress.from_int(0x02_00_00_00_00_00)
        self.counters = RuCounters()
        self.rng = np.random.default_rng(seed ^ (ru_id * 7919))
        #: DL transmit grids: {(time, port): int16 samples (num_prb, 24)}.
        self._tx_grids: Dict[Tuple[SymbolTime, int], np.ndarray] = {}
        #: DL C-plane windows: {(slot_key, port): [(start, end) PRB ranges]}.
        self._dl_windows: Dict[Tuple, List[Tuple[int, int]]] = {}
        #: Pending UL requests: {(slot_key, port, is_prach): _UplinkRequest}.
        #: Data and PRACH requests are distinct: they cover different
        #: channels and the RU answers each with its own U-plane stream.
        self._ul_requests: Dict[Tuple, _UplinkRequest] = {}
        self._seq: Dict[int, int] = {}

    # -- fronthaul reception -----------------------------------------------

    def receive(self, packet: FronthaulPacket) -> None:
        if packet.eth.dst != self.mac:
            raise ValueError(
                f"RU {self.ru_id} received packet for {packet.eth.dst}"
            )
        if packet.is_cplane:
            self._receive_cplane(packet)
        else:
            self._receive_dl_uplane(packet)

    def _receive_cplane(self, packet: FronthaulPacket) -> None:
        self.counters.cplane_received += 1
        message: CPlaneMessage = packet.message
        port = packet.eaxc.ru_port
        key = (message.time.slot_key(), port)
        if message.direction is Direction.DOWNLINK:
            windows = self._dl_windows.setdefault(key, [])
            for section in message.sections:
                windows.append(section.prb_range)
        else:
            is_prach = message.section_type is SectionType.PRACH
            request = self._ul_requests.setdefault(
                key + (is_prach,),
                _UplinkRequest(sections=[], is_prach=is_prach),
            )
            request.start_symbol = message.time.symbol
            for section in message.sections:
                request.sections.append(
                    (section.section_id, section.start_prb, section.num_prb)
                )
                request.num_symbols = max(request.num_symbols, section.num_symbols)

    def _receive_dl_uplane(self, packet: FronthaulPacket) -> None:
        message: UPlaneMessage = packet.message
        if message.direction is not Direction.DOWNLINK:
            raise ValueError("RU received uplink U-plane on downlink path")
        port = packet.eaxc.ru_port
        if port >= self.config.n_antennas:
            self.counters.unsolicited_uplane += 1
            return
        windows = self._dl_windows.get((message.time.slot_key(), port))
        if not windows:
            self.counters.unsolicited_uplane += 1
            return
        self.counters.uplane_received += 1
        grid = self._tx_grids.setdefault(
            (message.time, port),
            np.zeros((self.config.num_prb, 2 * SAMPLES_PER_PRB), np.int16),
        )
        for section in message.sections:
            start, end = section.prb_range
            end = min(end, self.config.num_prb)
            if end <= start:
                continue
            if not any(w_start <= start and end <= w_end for w_start, w_end in windows):
                # PRBs outside every C-plane window are ignored.
                continue
            grid[start:end] = section.iq_samples()[: end - start]

    # -- air interface -------------------------------------------------------

    def transmit_grid(self, time: SymbolTime, port: int) -> Optional[np.ndarray]:
        """Complex air samples for one symbol/port (None if idle)."""
        samples = self._tx_grids.get((time, port))
        if samples is None:
            return None
        return int16_to_iq(samples)

    def transmitted_symbols(self) -> List[Tuple[SymbolTime, int]]:
        return sorted(self._tx_grids, key=lambda k: (k[0], k[1]))

    def build_uplink(
        self,
        time: SymbolTime,
        port: int,
        air_iq: Optional[np.ndarray] = None,
        noise_amplitude: float = 2.0e-4,
    ) -> List[FronthaulPacket]:
        """Digitize air samples into U-plane packets for one symbol/port.

        ``air_iq`` is the complex full-band signal arriving at this
        antenna (None means only receiver noise).  Only PRB ranges with a
        recorded C-plane request are emitted, honoring O-RAN semantics.
        """
        requests = [
            request
            for is_prach in (False, True)
            if (request := self._ul_requests.get(
                (time.slot_key(), port, is_prach)
            )) is not None
            and request.start_symbol
            <= time.symbol
            < request.start_symbol + request.num_symbols
        ]
        if not requests:
            return []
        n_sc = self.config.num_prb * SAMPLES_PER_PRB
        signal = np.zeros(n_sc, dtype=np.complex128)
        if air_iq is not None:
            if len(air_iq) != n_sc:
                raise ValueError(
                    f"air IQ has {len(air_iq)} subcarriers, RU grid has {n_sc}"
                )
            signal += air_iq
        signal += self.rng.normal(0, noise_amplitude, n_sc) + 1j * self.rng.normal(
            0, noise_amplitude, n_sc
        )
        full_grid = iq_to_int16(signal)
        packets = []
        for request in requests:
            sections = []
            for section_id, start_prb, num_prb in request.sections:
                end = min(start_prb + num_prb, self.config.num_prb)
                samples = full_grid[start_prb:end]
                sections.append(
                    UPlaneSection.from_samples(
                        section_id=section_id,
                        start_prb=start_prb,
                        samples=samples,
                        compression=self.config.compression,
                    )
                )
            message = UPlaneMessage(
                direction=Direction.UPLINK,
                time=time,
                sections=sections,
                filter_index=1 if request.is_prach else 0,
            )
            packets.append(
                make_packet(
                    src=self.mac,
                    dst=self.du_mac,
                    message=message,
                    seq_id=self._next_seq(port),
                    eaxc=EAxCId(du_port=0, ru_port=port),
                )
            )
        self.counters.uplane_sent += len(packets)
        return packets

    def pending_uplink_symbols(self) -> List[Tuple[SymbolTime, int]]:
        """(time, port) pairs the RU owes uplink U-plane packets for.

        One entry per requested symbol; the sim layer feeds each to
        :meth:`build_uplink` with the corresponding air samples.
        """
        result = set()
        for (slot_key, port, _), request in self._ul_requests.items():
            frame, subframe, slot = slot_key
            last = min(request.start_symbol + request.num_symbols, 14)
            for symbol in range(request.start_symbol, last):
                result.add((SymbolTime(frame, subframe, slot, symbol), port))
        return sorted(result, key=lambda item: (item[0], item[1]))

    def clear_uplink_requests(self, slot_key: Tuple) -> None:
        """Drop satisfied requests for a slot (after packets were built)."""
        for key in [k for k in self._ul_requests if k[0] == slot_key]:
            del self._ul_requests[key]

    def _next_seq(self, port: int) -> int:
        seq = self._seq.get(port, 0)
        self._seq[port] = (seq + 1) % 256
        return seq

    # -- housekeeping ---------------------------------------------------------

    def flush_before(self, absolute_slot_exclusive: int, numerology) -> None:
        """Drop state older than a slot index (bounded memory in long runs)."""
        def slot_of(key_time: SymbolTime) -> int:
            return key_time.absolute_slot(numerology)

        self._tx_grids = {
            key: value
            for key, value in self._tx_grids.items()
            if slot_of(key[0]) >= absolute_slot_exclusive
        }
