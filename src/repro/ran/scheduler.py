"""MAC scheduler: per-slot PRB allocation.

The DU's scheduler allocates frequency-domain resources (PRBs) to UEs each
slot.  Two properties of this layer matter to the paper:

- A *single* scheduler allocates non-overlapping PRBs to all UEs under a
  DAS cell, which is why summing per-RU uplink IQ is interference-free
  (Section 4.1).
- The scheduler's allocation log is the ground truth that the PRB
  monitoring middlebox's estimates are compared against (Figure 10c: "we
  record the MAC scheduling logs emitted by the RAN stack").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.fronthaul.cplane import Direction
from repro.fronthaul.timing import SYMBOLS_PER_SLOT
from repro.ran.cell import CellConfig
from repro.ran.stacks import SRSRAN, VendorProfile

SUBCARRIERS_PER_PRB = 12


@dataclass
class UeContext:
    """Scheduler-side state for one attached UE."""

    ue_id: str
    dl_queue_bits: int = 0
    ul_queue_bits: int = 0
    #: Aggregate spectral efficiency (summed over layers) from CQI/RI.
    dl_aggregate_se: float = 4.0
    ul_se: float = 2.0
    dl_layers: int = 1

    def dl_bits_per_prb(self, data_symbols: int, overhead: float) -> float:
        return (
            self.dl_aggregate_se
            * SUBCARRIERS_PER_PRB
            * data_symbols
            * (1.0 - overhead)
        )

    def ul_bits_per_prb(self, data_symbols: int, overhead: float) -> float:
        return self.ul_se * SUBCARRIERS_PER_PRB * data_symbols * (1.0 - overhead)


@dataclass(frozen=True)
class PrbAllocation:
    """One scheduling grant: a UE's PRB range in one slot direction."""

    ue_id: str
    direction: Direction
    start_prb: int
    num_prb: int
    layers: int
    bits: int

    @property
    def prb_range(self) -> Tuple[int, int]:
        return (self.start_prb, self.start_prb + self.num_prb)


@dataclass(frozen=True)
class SlotLog:
    """MAC log entry: ground truth utilization for one slot direction."""

    absolute_slot: int
    direction: Direction
    allocated_prbs: int
    total_prbs: int

    @property
    def utilization(self) -> float:
        return self.allocated_prbs / self.total_prbs if self.total_prbs else 0.0


class MacScheduler:
    """A greedy full-buffer scheduler with round-robin fairness.

    UEs are served in rotating order each slot; each UE receives enough
    contiguous PRBs to drain its queue at its current spectral efficiency,
    subject to the cell's PRB budget scaled by the vendor profile's
    scheduler efficiency.
    """

    def __init__(
        self,
        cell: CellConfig,
        profile: VendorProfile = SRSRAN,
    ):
        self.cell = cell
        self.profile = profile
        self.ues: Dict[str, UeContext] = {}
        self.mac_log: List[SlotLog] = []
        self._rr_offset = 0

    # -- UE management -------------------------------------------------------

    def add_ue(self, ue_id: str, dl_layers: int = 1) -> UeContext:
        if ue_id in self.ues:
            raise ValueError(f"UE {ue_id} already attached to scheduler")
        context = UeContext(ue_id=ue_id, dl_layers=dl_layers)
        self.ues[ue_id] = context
        return context

    def remove_ue(self, ue_id: str) -> None:
        self.ues.pop(ue_id, None)

    def update_ue_quality(
        self,
        ue_id: str,
        dl_aggregate_se: Optional[float] = None,
        ul_se: Optional[float] = None,
        dl_layers: Optional[int] = None,
    ) -> None:
        """Apply a CQI/RI report (clamped to the vendor's MCS ceilings)."""
        context = self.ues[ue_id]
        if dl_layers is not None:
            context.dl_layers = dl_layers
        if dl_aggregate_se is not None:
            layers = max(context.dl_layers, 1)
            per_layer = min(dl_aggregate_se / layers, self.profile.dl_max_se)
            context.dl_aggregate_se = per_layer * layers
        if ul_se is not None:
            context.ul_se = min(ul_se, self.profile.ul_max_se)

    def enqueue_dl(self, ue_id: str, bits: int) -> None:
        self.ues[ue_id].dl_queue_bits += bits

    def enqueue_ul(self, ue_id: str, bits: int) -> None:
        self.ues[ue_id].ul_queue_bits += bits

    # -- scheduling ----------------------------------------------------------

    def _data_symbols(self, direction: Direction, absolute_slot: int) -> int:
        tdd = self.profile.tdd
        counter = 0
        for symbol in range(SYMBOLS_PER_SLOT):
            if direction is Direction.DOWNLINK and tdd.is_downlink_symbol(
                absolute_slot, symbol
            ):
                counter += 1
            if direction is Direction.UPLINK and tdd.is_uplink_symbol(
                absolute_slot, symbol
            ):
                counter += 1
        return counter

    def schedule_slot(self, absolute_slot: int) -> List[PrbAllocation]:
        """Allocate PRBs for one slot; appends ground truth to the MAC log."""
        allocations: List[PrbAllocation] = []
        for direction in (Direction.DOWNLINK, Direction.UPLINK):
            data_symbols = self._data_symbols(direction, absolute_slot)
            if data_symbols == 0:
                continue
            allocations.extend(
                self._schedule_direction(absolute_slot, direction, data_symbols)
            )
        self._rr_offset += 1
        return allocations

    def _schedule_direction(
        self, absolute_slot: int, direction: Direction, data_symbols: int
    ) -> List[PrbAllocation]:
        budget = int(self.cell.num_prb * self.profile.scheduler_efficiency)
        overhead = (
            self.profile.dl_overhead
            if direction is Direction.DOWNLINK
            else self.profile.ul_overhead
        )
        next_prb = 0
        allocations: List[PrbAllocation] = []
        ue_ids = sorted(self.ues)
        order = ue_ids[self._rr_offset % max(len(ue_ids), 1) :] + ue_ids[
            : self._rr_offset % max(len(ue_ids), 1)
        ]
        for ue_id in order:
            context = self.ues[ue_id]
            if direction is Direction.DOWNLINK:
                queue = context.dl_queue_bits
                bits_per_prb = context.dl_bits_per_prb(data_symbols, overhead)
                layers = context.dl_layers
            else:
                queue = context.ul_queue_bits
                bits_per_prb = context.ul_bits_per_prb(data_symbols, overhead)
                layers = 1
            if queue <= 0 or bits_per_prb <= 0 or next_prb >= budget:
                continue
            wanted = -(-queue // int(max(bits_per_prb, 1)))  # ceil division
            granted = min(wanted, budget - next_prb)
            bits = min(int(granted * bits_per_prb), queue)
            allocation = PrbAllocation(
                ue_id=ue_id,
                direction=direction,
                start_prb=next_prb,
                num_prb=granted,
                layers=layers,
                bits=bits,
            )
            allocations.append(allocation)
            next_prb += granted
            if direction is Direction.DOWNLINK:
                context.dl_queue_bits -= bits
            else:
                context.ul_queue_bits -= bits
        self.mac_log.append(
            SlotLog(
                absolute_slot=absolute_slot,
                direction=direction,
                allocated_prbs=sum(a.num_prb for a in allocations),
                total_prbs=self.cell.num_prb,
            )
        )
        return allocations

    # -- ground truth for Figure 10c ----------------------------------------

    def average_utilization(self, direction: Direction) -> float:
        """Mean PRB utilization across logged slots of one direction."""
        entries = [e for e in self.mac_log if e.direction is direction]
        if not entries:
            return 0.0
        return sum(e.utilization for e in entries) / len(entries)
