"""The Distributed Unit: fronthaul packet generation and consumption.

The DU model drives one cell: each slot it runs the MAC scheduler, then
emits the C-plane scheduling messages and downlink U-plane IQ packets the
paper's middleboxes intercept, and consumes the uplink U-plane packets the
RU (or a middlebox acting on its behalf) returns.

The packet stream is standards-shaped: C-plane section type 1 for data,
type 3 for PRACH, per-antenna-port eAxC flows with sequence numbers, BFP
compressed U-plane payloads, and an SSB transmitted on the first antenna
port only (the property the dMIMO middlebox's SSB replication fixes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fronthaul.compression import SAMPLES_PER_PRB
from repro.fronthaul.cplane import CPlaneMessage, CPlaneSection, Direction, SectionType
from repro.fronthaul.ecpri import EAxCId
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import FronthaulPacket, make_packet
from repro.fronthaul.timing import SYMBOLS_PER_SLOT, SlotClock, SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection
from repro.phy.iq import QamModulator, iq_to_int16
from repro.ran.cell import CellConfig
from repro.ran.scheduler import MacScheduler, PrbAllocation
from repro.ran.stacks import SRSRAN, VendorProfile

#: Amplitude of the near-zero noise the DU emits on idle PRBs (relative to
#: full scale).  Idle PRBs therefore compress with BFP exponent 0 — the
#: contrast Algorithm 1 thresholds on.
IDLE_PRB_AMPLITUDE = 2.0e-4

#: QAM order used to synthesize data PRBs (16QAM keeps decode robust under
#: the channel noise of the end-to-end tests).
DATA_QAM_ORDER = 16

#: Fixed-point drive level of the DL transmit grid.  Real L1s run a few dB
#: below full scale, which is what makes BFP exponents discriminate
#: data from idle even at wide mantissas (Radisys' 14-bit profile).
DL_FIXED_POINT_BACKOFF = 0.7


@dataclass
class UplinkReception:
    """Bookkeeping for one received uplink U-plane packet."""

    time: SymbolTime
    ru_port: int
    sections: List[UPlaneSection]


@dataclass
class DuCounters:
    """Throughput accounting for the experiments."""

    dl_bits: int = 0
    ul_bits: int = 0
    dl_packets: int = 0
    ul_packets: int = 0
    cplane_packets: int = 0
    prach_detections: int = 0


class DistributedUnit:
    """One DU instance driving one cell over the fronthaul.

    Parameters
    ----------
    du_id:
        Stable identifier; also used as the eAxC DU-port id and section id
        base in the RU-sharing scenarios.
    cell, profile:
        Cell configuration and vendor stack profile.
    mac, ru_mac:
        Fronthaul Ethernet addresses of this DU and its (virtual) RU.
    symbols_per_slot:
        How many data symbols per slot to emit U-plane packets for.  The
        protocol content is identical for every symbol, so tests and
        packet-level experiments keep this small; ``None`` emits all.
    """

    def __init__(
        self,
        du_id: int,
        cell: CellConfig,
        profile: VendorProfile = SRSRAN,
        mac: Optional[MacAddress] = None,
        ru_mac: Optional[MacAddress] = None,
        symbols_per_slot: Optional[int] = 2,
        record_reference: bool = False,
        seed: int = 0,
        compression=None,
    ):
        self.du_id = du_id
        self.cell = cell
        self.profile = profile
        #: Negotiated wire codec for this cell's eAxC streams; defaults
        #: to the stack's BFP parameters when no negotiation happened.
        self.compression = (
            profile.compression if compression is None else compression
        )
        self.mac = mac or MacAddress.from_int(0x02_00_00_00_00_00 + du_id)
        self.ru_mac = ru_mac or MacAddress.from_int(0x02_00_00_00_10_00 + du_id)
        self.scheduler = MacScheduler(cell, profile)
        self.clock = SlotClock(cell.numerology)
        self.symbols_per_slot = symbols_per_slot
        self.record_reference = record_reference
        self.counters = DuCounters()
        self.rng = np.random.default_rng(seed)
        self.modulator = QamModulator(DATA_QAM_ORDER)
        self.flows: Dict[str, Tuple[object, Direction]] = {}
        self.uplink_receptions: List[UplinkReception] = []
        self.prach_receptions: List[UplinkReception] = []
        #: Reference DL int16 grids for tests: {(time, port): samples}.
        self.dl_reference: Dict[Tuple, np.ndarray] = {}
        #: UL allocations awaiting U-plane data: {slot_key: [allocations]}.
        self._pending_ul: Dict[Tuple, List[PrbAllocation]] = {}
        self._seq: Dict[int, int] = {}

    # -- traffic -------------------------------------------------------------

    def attach_flow(self, ue_id: str, flow, direction: Direction) -> None:
        """Bind a traffic generator to an attached UE."""
        if ue_id not in self.scheduler.ues:
            raise KeyError(f"UE {ue_id} is not attached")
        self.flows[f"{ue_id}/{flow.name}/{direction.name}"] = (flow, direction, ue_id)

    def detach_flows(self, ue_id: str) -> None:
        self.flows = {
            key: value for key, value in self.flows.items() if value[2] != ue_id
        }

    def _enqueue_traffic(self) -> None:
        slot_ns = self.cell.numerology.slot_duration_ns
        for flow, direction, ue_id in self.flows.values():
            bits = flow.bits_in_slot(slot_ns)
            if bits <= 0:
                continue
            if direction is Direction.DOWNLINK:
                self.scheduler.enqueue_dl(ue_id, bits)
            else:
                self.scheduler.enqueue_ul(ue_id, bits)

    # -- slot processing -------------------------------------------------------

    def advance_slot(self) -> List[FronthaulPacket]:
        """Run one slot: schedule, emit C-plane and DL U-plane packets."""
        absolute_slot = self.clock.current_slot
        slot_time = self.clock.advance()
        self._enqueue_traffic()
        allocations = self.scheduler.schedule_slot(absolute_slot)
        dl_allocs = [a for a in allocations if a.direction is Direction.DOWNLINK]
        ul_allocs = [a for a in allocations if a.direction is Direction.UPLINK]
        packets: List[FronthaulPacket] = []
        packets.extend(self._build_dl_cplane(slot_time, absolute_slot, dl_allocs))
        packets.extend(self._build_ul_cplane(slot_time, absolute_slot, ul_allocs))
        packets.extend(self._build_prach_cplane(slot_time, absolute_slot))
        packets.extend(self._build_dl_uplane(slot_time, absolute_slot, dl_allocs))
        if ul_allocs:
            self._pending_ul[slot_time.slot_key()] = ul_allocs
        for allocation in dl_allocs:
            self.counters.dl_bits += allocation.bits
        return packets

    # -- C-plane construction --------------------------------------------------

    def _next_seq(self, eaxc_int: int) -> int:
        seq = self._seq.get(eaxc_int, 0)
        self._seq[eaxc_int] = (seq + 1) % 256
        return seq

    def _dl_symbols(self, absolute_slot: int) -> List[int]:
        tdd = self.profile.tdd
        return [
            s
            for s in range(SYMBOLS_PER_SLOT)
            if tdd.is_downlink_symbol(absolute_slot, s)
        ]

    def _ul_symbols(self, absolute_slot: int) -> List[int]:
        tdd = self.profile.tdd
        return [
            s
            for s in range(SYMBOLS_PER_SLOT)
            if tdd.is_uplink_symbol(absolute_slot, s)
        ]

    def _build_dl_cplane(
        self,
        slot_time: SymbolTime,
        absolute_slot: int,
        allocations: List[PrbAllocation],
    ) -> List[FronthaulPacket]:
        symbols = self._dl_symbols(absolute_slot)
        if not symbols:
            return []
        if not allocations and not self.cell.is_ssb_slot(absolute_slot):
            # Nothing to transmit this slot: no C-plane, no U-plane.  The
            # fronthaul goes quiet on idle cells, which is what makes the
            # XDP datapath's CPU utilization traffic-proportional (Fig 16).
            return []
        # When transmitting, the stacks we model send full-band U-plane
        # messages (Figure 2 shows PRB 0-105 in one section) with
        # near-zero samples on idle PRBs.  Which PRBs hold user data is
        # *not* visible from the C-plane — the property that makes
        # Algorithm 1's exponent-based utilization estimate necessary.
        packets = []
        for port in range(self.cell.n_antennas):
            message = CPlaneMessage(
                direction=Direction.DOWNLINK,
                time=SymbolTime(
                    slot_time.frame, slot_time.subframe, slot_time.slot, symbols[0]
                ),
                sections=[
                    CPlaneSection(
                        section_id=(self.du_id * 256) % 4096,
                        start_prb=0,
                        num_prb=self.cell.num_prb,
                        num_symbols=len(symbols),
                    )
                ],
                compression=self.compression,
            )
            eaxc = EAxCId(du_port=self.du_id, ru_port=port)
            packets.append(self._emit(message, eaxc))
        return packets

    def _build_ul_cplane(
        self,
        slot_time: SymbolTime,
        absolute_slot: int,
        allocations: List[PrbAllocation],
    ) -> List[FronthaulPacket]:
        symbols = self._ul_symbols(absolute_slot)
        if not symbols or not allocations:
            # No uplink grants, no C-plane: a DU with no traffic stays
            # silent — the uncertainty the RU-sharing middlebox's numPrb
            # widening works around (Section 4.3).
            return []
        packets = []
        for port in range(self.cell.n_antennas):
            message = CPlaneMessage(
                direction=Direction.UPLINK,
                time=SymbolTime(
                    slot_time.frame, slot_time.subframe, slot_time.slot, symbols[0]
                ),
                sections=[
                    CPlaneSection(
                        section_id=(self.du_id * 256) % 4096,
                        start_prb=0,
                        num_prb=self.cell.num_prb,
                        num_symbols=len(symbols),
                    )
                ],
                compression=self.compression,
            )
            eaxc = EAxCId(du_port=self.du_id, ru_port=port)
            packets.append(self._emit(message, eaxc))
        return packets

    def _build_prach_cplane(
        self, slot_time: SymbolTime, absolute_slot: int
    ) -> List[FronthaulPacket]:
        if not self.cell.is_prach_slot(absolute_slot):
            return []
        symbols = self._ul_symbols(absolute_slot)
        if not symbols:
            return []
        section = CPlaneSection(
            section_id=self.du_id % 4096,
            start_prb=0,
            num_prb=self.cell.prach_num_prb,
            num_symbols=min(len(symbols), 4),
            freq_offset=self.cell.prach_freq_offset,
        )
        message = CPlaneMessage(
            direction=Direction.UPLINK,
            time=SymbolTime(
                slot_time.frame, slot_time.subframe, slot_time.slot, symbols[0]
            ),
            sections=[section],
            section_type=SectionType.PRACH,
            compression=self.compression,
            filter_index=1,  # PRACH filter
        )
        eaxc = EAxCId(du_port=self.du_id, ru_port=0)
        return [self._emit(message, eaxc)]

    # -- DL U-plane construction ----------------------------------------------

    def _build_dl_uplane(
        self,
        slot_time: SymbolTime,
        absolute_slot: int,
        allocations: List[PrbAllocation],
    ) -> List[FronthaulPacket]:
        symbols = self._dl_symbols(absolute_slot)
        is_ssb_slot = self.cell.is_ssb_slot(absolute_slot)
        if self.symbols_per_slot is not None:
            if is_ssb_slot:
                # Keep SSB symbols in the simulated subset so SSB-dependent
                # behaviour (dMIMO replication) is exercised.
                preferred = [s for s in self.cell.ssb_symbols if s in symbols]
                others = [s for s in symbols if s not in preferred]
                symbols = sorted(
                    (preferred + others)[: self.symbols_per_slot]
                )
            else:
                symbols = symbols[: self.symbols_per_slot]
        if not allocations and not is_ssb_slot:
            return []
        packets = []
        for symbol in symbols:
            time = SymbolTime(
                slot_time.frame, slot_time.subframe, slot_time.slot, symbol
            )
            for port in range(self.cell.n_antennas):
                grid = self._symbol_grid(allocations, port, symbol, is_ssb_slot)
                section = UPlaneSection.from_samples(
                    section_id=self.du_id % 4096,
                    start_prb=0,
                    samples=grid,
                    compression=self.compression,
                )
                message = UPlaneMessage(
                    direction=Direction.DOWNLINK, time=time, sections=[section]
                )
                eaxc = EAxCId(du_port=self.du_id, ru_port=port)
                packet = self._emit(message, eaxc, uplane=True)
                if self.record_reference:
                    self.dl_reference[(time, port)] = grid
                packets.append(packet)
        return packets

    def _symbol_grid(
        self,
        allocations: List[PrbAllocation],
        port: int,
        symbol: int,
        is_ssb_slot: bool,
    ) -> np.ndarray:
        """Build one symbol's int16 grid for one antenna port."""
        n_prb = self.cell.num_prb
        n_sc = n_prb * SAMPLES_PER_PRB
        complex_grid = (
            self.rng.normal(0, IDLE_PRB_AMPLITUDE, n_sc)
            + 1j * self.rng.normal(0, IDLE_PRB_AMPLITUDE, n_sc)
        )
        for allocation in allocations:
            if port >= allocation.layers:
                continue
            start = allocation.start_prb * SAMPLES_PER_PRB
            count = allocation.num_prb * SAMPLES_PER_PRB
            data_symbols = self.rng.integers(0, DATA_QAM_ORDER, count)
            complex_grid[start : start + count] = self.modulator.modulate(
                data_symbols
            )
        if is_ssb_slot and port == 0 and symbol in self.cell.ssb_symbols:
            ssb_start, ssb_end = self.cell.ssb_prb_range
            start = ssb_start * SAMPLES_PER_PRB
            count = (ssb_end - ssb_start) * SAMPLES_PER_PRB
            complex_grid[start : start + count] = self._ssb_waveform(count)
        return iq_to_int16(complex_grid, backoff=DL_FIXED_POINT_BACKOFF)

    def _ssb_waveform(self, n_samples: int) -> np.ndarray:
        """Deterministic PSS/SSS-like sequence derived from the PCI.

        Real SSBs encode the cell id in their sequences; a PCI-seeded QPSK
        sequence preserves the property the dMIMO middlebox needs (the SSB
        is recognisable, constant, and distinct per cell).
        """
        rng = np.random.default_rng(self.cell.pci)
        qpsk = QamModulator(4)
        return qpsk.modulate(rng.integers(0, 4, n_samples))

    def ssb_reference(self) -> np.ndarray:
        """The cell's SSB waveform (used by tests to locate SSB copies)."""
        ssb_start, ssb_end = self.cell.ssb_prb_range
        return self._ssb_waveform((ssb_end - ssb_start) * SAMPLES_PER_PRB)

    def _emit(self, message, eaxc: EAxCId, uplane: bool = False) -> FronthaulPacket:
        packet = make_packet(
            src=self.mac,
            dst=self.ru_mac,
            message=message,
            seq_id=self._next_seq(eaxc.to_int()),
            eaxc=eaxc,
        )
        if uplane:
            self.counters.dl_packets += 1
        else:
            self.counters.cplane_packets += 1
        return packet

    # -- uplink consumption ----------------------------------------------------

    def receive(self, packet: FronthaulPacket) -> None:
        """Consume an uplink U-plane packet (from the RU or a middlebox)."""
        if not packet.is_uplane or packet.direction is not Direction.UPLINK:
            raise ValueError("DU only receives uplink U-plane packets")
        reception = UplinkReception(
            time=packet.time,
            ru_port=packet.eaxc.ru_port,
            sections=list(packet.message.sections),
        )
        if packet.message.filter_index == 1:
            self.prach_receptions.append(reception)
            self.counters.prach_detections += 1
            return
        self.uplink_receptions.append(reception)
        self.counters.ul_packets += 1
        self._account_uplink(reception)

    def _account_uplink(self, reception: UplinkReception) -> None:
        """Credit UL bits for allocations covered by a received packet.

        Bits are credited once per slot (on the first antenna port's
        arrival) per allocation, pro-rated over the slot's UL symbols.
        """
        if reception.ru_port != 0:
            return
        key = reception.time.slot_key()
        pending = self._pending_ul.get(key)
        if not pending:
            return
        symbols = max(
            len(self._ul_symbols(reception.time.absolute_slot(self.cell.numerology))),
            1,
        )
        covered = []
        for allocation in pending:
            for section in reception.sections:
                a_start, a_end = allocation.prb_range
                s_start, s_end = section.prb_range
                if s_start <= a_start and s_end >= a_end:
                    covered.append(allocation)
                    break
        for allocation in covered:
            self.counters.ul_bits += allocation.bits // symbols

    def uplink_iq(self, time: SymbolTime, ru_port: int) -> Optional[np.ndarray]:
        """Recover the full-band int16 uplink grid for a symbol/port."""
        for reception in self.uplink_receptions:
            if reception.time == time and reception.ru_port == ru_port:
                grid = np.zeros((self.cell.num_prb, 2 * SAMPLES_PER_PRB), np.int16)
                for section in reception.sections:
                    grid[
                        section.start_prb : section.start_prb + section.num_prb
                    ] = section.iq_samples()
                return grid
        return None


