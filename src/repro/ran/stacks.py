"""Vendor RAN stack profiles.

The paper validated the middleboxes against three O-RAN stacks -- srsRAN
(open source), CapGemini and Radisys (commercial, on Intel FlexRAN L1) --
"without any source code modification, and with only small configuration
parameter changes (e.g., TDD pattern)", observing throughput differences
"caused by the variations in the implementation quality and cell
configurations provided by each vendor" (Section 6.2).

A profile captures exactly those variations: the TDD pattern, control
overhead, scheduler efficiency, uplink MCS ceiling, and fronthaul packing
conventions.  The middlebox implementations take no vendor-specific code
paths; interop tests run the same middlebox against all three profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fronthaul.compression import CompressionConfig
from repro.fronthaul.timing import TddPattern


@dataclass(frozen=True)
class VendorProfile:
    """Behavioural fingerprint of one vendor's DU/L1 implementation."""

    name: str
    tdd: TddPattern
    #: Fraction of REs lost to control channels / reference signals.
    dl_overhead: float
    ul_overhead: float
    #: Scheduler efficiency: fraction of theoretically schedulable PRBs
    #: the implementation actually fills under saturation.
    scheduler_efficiency: float
    #: Uplink spectral-efficiency ceiling (conservative UL MCS tables).
    ul_max_se: float
    #: Downlink per-layer SE ceiling.
    dl_max_se: float
    #: SE ceiling for single-layer (SISO) cells; some stacks cap rank-1
    #: throughput well below the MCS table (srsRAN's 100 MHz SISO tops out
    #: around 250 Mbps — the "implementation quality" variation of §6.2).
    dl_max_se_rank1: float = 7.4
    compression: CompressionConfig = field(default_factory=CompressionConfig)
    #: Max PRBs per U-plane section before the DU splits messages.
    uplane_section_max_prbs: int = 273
    #: Whether C-plane messages cover a whole slot or go per-symbol.
    cplane_per_symbol: bool = False


SRSRAN = VendorProfile(
    name="srsRAN",
    tdd=TddPattern("DDDSU", 6, 4, 4),
    dl_overhead=0.14,
    ul_overhead=0.16,
    scheduler_efficiency=0.97,
    ul_max_se=3.0,
    dl_max_se=7.4,
    dl_max_se_rank1=4.6,
    compression=CompressionConfig(iq_width=9),
)

CAPGEMINI = VendorProfile(
    name="CapGemini",
    tdd=TddPattern("DDDSUDDSUU", 10, 2, 2),
    dl_overhead=0.12,
    ul_overhead=0.15,
    scheduler_efficiency=0.98,
    ul_max_se=4.4,
    dl_max_se=7.4,
    compression=CompressionConfig(iq_width=9),
    cplane_per_symbol=True,
)

RADISYS = VendorProfile(
    name="Radisys",
    tdd=TddPattern("DDDSU", 10, 2, 2),
    dl_overhead=0.13,
    ul_overhead=0.15,
    scheduler_efficiency=0.96,
    ul_max_se=4.0,
    dl_max_se=7.2,
    compression=CompressionConfig(iq_width=14),
    uplane_section_max_prbs=136,
)

ALL_PROFILES = (SRSRAN, CAPGEMINI, RADISYS)


def profile_by_name(name: str) -> VendorProfile:
    for profile in ALL_PROFILES:
        if profile.name.lower() == name.lower():
            return profile
    raise KeyError(f"unknown vendor profile: {name}")
