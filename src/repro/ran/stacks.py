"""Vendor RAN stack profiles.

The paper validated the middleboxes against three O-RAN stacks -- srsRAN
(open source), CapGemini and Radisys (commercial, on Intel FlexRAN L1) --
"without any source code modification, and with only small configuration
parameter changes (e.g., TDD pattern)", observing throughput differences
"caused by the variations in the implementation quality and cell
configurations provided by each vendor" (Section 6.2).

A profile captures exactly those variations: the TDD pattern, control
overhead, scheduler efficiency, uplink MCS ceiling, and fronthaul packing
conventions.  The middlebox implementations take no vendor-specific code
paths; interop tests run the same middlebox against all three profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.fronthaul.compression import MOD_COMP_METH, CompressionConfig
from repro.fronthaul.timing import TddPattern

#: The negotiable wire codecs, by spec-level name.
CODEC_BFP = "bfp"
CODEC_MODCOMP = "modcomp"
CODEC_NAMES = (CODEC_BFP, CODEC_MODCOMP)


class CodecNegotiationError(ValueError):
    """DU and RU could not agree on a wire codec for a stream."""


@dataclass(frozen=True)
class VendorProfile:
    """Behavioural fingerprint of one vendor's DU/L1 implementation."""

    name: str
    tdd: TddPattern
    #: Fraction of REs lost to control channels / reference signals.
    dl_overhead: float
    ul_overhead: float
    #: Scheduler efficiency: fraction of theoretically schedulable PRBs
    #: the implementation actually fills under saturation.
    scheduler_efficiency: float
    #: Uplink spectral-efficiency ceiling (conservative UL MCS tables).
    ul_max_se: float
    #: Downlink per-layer SE ceiling.
    dl_max_se: float
    #: SE ceiling for single-layer (SISO) cells; some stacks cap rank-1
    #: throughput well below the MCS table (srsRAN's 100 MHz SISO tops out
    #: around 250 Mbps — the "implementation quality" variation of §6.2).
    dl_max_se_rank1: float = 7.4
    compression: CompressionConfig = field(default_factory=CompressionConfig)
    #: The vendor's modulation-compression wire parameters, if its L1
    #: implements the second codec (None = BFP only).  The mantissa width
    #: reflects the densest constellation the stack schedules.
    modcomp: Optional[CompressionConfig] = None
    #: Codec a DU of this stack proposes when the spec does not pin one.
    preferred_codec: str = CODEC_BFP
    #: Max PRBs per U-plane section before the DU splits messages.
    uplane_section_max_prbs: int = 273
    #: Whether C-plane messages cover a whole slot or go per-symbol.
    cplane_per_symbol: bool = False

    def supported_codecs(self) -> Tuple[str, ...]:
        """Codec names this stack can put on the wire, preference first."""
        codecs = [CODEC_BFP]
        if self.modcomp is not None:
            codecs.append(CODEC_MODCOMP)
        if self.preferred_codec in codecs:
            codecs.remove(self.preferred_codec)
            codecs.insert(0, self.preferred_codec)
        return tuple(codecs)

    def codec_config(self, codec: Optional[str] = None) -> CompressionConfig:
        """The wire parameters for a named codec (None = preference)."""
        name = codec or self.preferred_codec
        if name == CODEC_BFP:
            return self.compression
        if name == CODEC_MODCOMP:
            if self.modcomp is None:
                raise CodecNegotiationError(
                    f"{self.name} does not implement modulation compression"
                )
            return self.modcomp
        raise CodecNegotiationError(
            f"unknown codec {name!r}; expected one of {CODEC_NAMES}"
        )


SRSRAN = VendorProfile(
    name="srsRAN",
    tdd=TddPattern("DDDSU", 6, 4, 4),
    dl_overhead=0.14,
    ul_overhead=0.16,
    scheduler_efficiency=0.97,
    ul_max_se=3.0,
    dl_max_se=7.4,
    dl_max_se_rank1=4.6,
    compression=CompressionConfig(iq_width=9),
    # 16-QAM-dominated scheduling: 3-bit constellation axes.
    modcomp=CompressionConfig(iq_width=3, comp_meth=MOD_COMP_METH),
)

CAPGEMINI = VendorProfile(
    name="CapGemini",
    tdd=TddPattern("DDDSUDDSUU", 10, 2, 2),
    dl_overhead=0.12,
    ul_overhead=0.15,
    scheduler_efficiency=0.98,
    ul_max_se=4.4,
    dl_max_se=7.4,
    compression=CompressionConfig(iq_width=9),
    # 256-QAM plus beamforming headroom: 4-bit constellation axes.
    modcomp=CompressionConfig(iq_width=4, comp_meth=MOD_COMP_METH),
    cplane_per_symbol=True,
)

RADISYS = VendorProfile(
    name="Radisys",
    tdd=TddPattern("DDDSU", 10, 2, 2),
    dl_overhead=0.13,
    ul_overhead=0.15,
    scheduler_efficiency=0.96,
    ul_max_se=4.0,
    dl_max_se=7.2,
    compression=CompressionConfig(iq_width=14),
    # Conservative FlexRAN L1 port: wide 6-bit axes with EVM margin.
    modcomp=CompressionConfig(iq_width=6, comp_meth=MOD_COMP_METH),
    uplane_section_max_prbs=136,
)

ALL_PROFILES = (SRSRAN, CAPGEMINI, RADISYS)


def profile_by_name(name: str) -> VendorProfile:
    for profile in ALL_PROFILES:
        if profile.name.lower() == name.lower():
            return profile
    raise KeyError(f"unknown vendor profile: {name}")


def negotiate_compression(
    profile: VendorProfile,
    codec: Optional[str] = None,
    capabilities=None,
) -> CompressionConfig:
    """Pick the wire config for one cell's eAxC streams.

    The M-plane handshake in miniature: the DU proposes the stack's
    parameters for ``codec`` (spec-pinned, or the stack's preference when
    None) and the RU's advertised :class:`~repro.ran.mplane.
    RuCapabilities` must accept them.  Raises
    :class:`CodecNegotiationError` when the stack lacks the codec or the
    radio rejects the parameters — a deployment-time failure, never a
    silent fallback.
    """
    config = profile.codec_config(codec)
    if capabilities is not None:
        errors = capabilities.validate_compression(config)
        if errors:
            raise CodecNegotiationError(
                f"{profile.name} proposed {config} but the RU refused: "
                + "; ".join(errors)
            )
    return config
