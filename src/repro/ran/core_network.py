"""A minimal 5G core (the testbed uses Open5GS).

The middleboxes never see the core, but the end-to-end experiments do:
UEs must register before traffic flows, and the RU-sharing scenario runs
one core per MNO.  This model provides subscriber identity, registration
(attach), and PDU session establishment with per-session counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class Subscriber:
    """A provisioned SIM: IMSI plus the PLMN it belongs to."""

    imsi: str
    plmn: str = "00101"

    def __post_init__(self) -> None:
        if not self.imsi.isdigit() or not 14 <= len(self.imsi) <= 15:
            raise ValueError(f"malformed IMSI: {self.imsi!r}")


@dataclass
class PduSession:
    """An established data session; counters feed throughput accounting."""

    session_id: int
    imsi: str
    dl_bits: int = 0
    ul_bits: int = 0

    def account_downlink(self, bits: int) -> None:
        self.dl_bits += bits

    def account_uplink(self, bits: int) -> None:
        self.ul_bits += bits


class RegistrationError(Exception):
    """UE attempted to register with a core that does not know it."""


@dataclass
class CoreNetwork:
    """One MNO's core: subscriber database, AMF (registration), SMF (PDU).

    In the RU-sharing experiments each MNO runs its own instance, and UE
    association is forced by PLMN/PCI as in Section 6.2.3.
    """

    plmn: str = "00101"
    name: str = "open5gs"
    _subscribers: Dict[str, Subscriber] = field(default_factory=dict)
    _registered: Dict[str, bool] = field(default_factory=dict)
    _sessions: Dict[int, PduSession] = field(default_factory=dict)
    _next_session_id: int = 1

    def provision(self, subscriber: Subscriber) -> None:
        if subscriber.plmn != self.plmn:
            raise ValueError(
                f"subscriber PLMN {subscriber.plmn} does not match core "
                f"PLMN {self.plmn}"
            )
        self._subscribers[subscriber.imsi] = subscriber

    def register(self, imsi: str) -> None:
        """AMF registration (the 'attach' of the experiments)."""
        if imsi not in self._subscribers:
            raise RegistrationError(f"unknown IMSI {imsi}")
        self._registered[imsi] = True

    def deregister(self, imsi: str) -> None:
        self._registered.pop(imsi, None)
        for session in list(self._sessions.values()):
            if session.imsi == imsi:
                del self._sessions[session.session_id]

    def is_registered(self, imsi: str) -> bool:
        return self._registered.get(imsi, False)

    def establish_session(self, imsi: str) -> PduSession:
        if not self.is_registered(imsi):
            raise RegistrationError(f"IMSI {imsi} is not registered")
        session = PduSession(self._next_session_id, imsi)
        self._sessions[session.session_id] = session
        self._next_session_id += 1
        return session

    def sessions_for(self, imsi: str) -> List[PduSession]:
        return [s for s in self._sessions.values() if s.imsi == imsi]

    def total_dl_bits(self) -> int:
        return sum(s.dl_bits for s in self._sessions.values())

    def total_ul_bits(self) -> int:
        return sum(s.ul_bits for s in self._sessions.values())
