"""Simulation layer: event engine, testbed builder, power and cost models.

- :mod:`repro.sim.engine` -- a nanosecond-resolution discrete-event core.
- :mod:`repro.sim.network_sim` -- the packet-level testbed: DUs,
  middlebox chains, RUs, the radio environment and UEs wired together.
- :mod:`repro.sim.power` -- server/CPU power model (Figure 14).
- :mod:`repro.sim.cost` -- CapEx model (Appendix A.2).
"""

from repro.sim.engine import Event, EventEngine
from repro.sim.network_sim import FronthaulNetwork, RadioEnvironment
from repro.sim.power import ServerPowerModel, deployment_power_w
from repro.sim.cost import CostModel, DeploymentCost

__all__ = [
    "Event",
    "EventEngine",
    "FronthaulNetwork",
    "RadioEnvironment",
    "ServerPowerModel",
    "deployment_power_w",
    "CostModel",
    "DeploymentCost",
]
