"""A minimal discrete-event engine with nanosecond timestamps.

The slot-synchronous experiments drive DU/RU/middlebox interactions
directly; the engine exists for latency-sensitive scenarios (deadline
checks, chained-middlebox delays) and for tests that need out-of-order
packet arrival (e.g. a secondary RU's uplink arriving before the
primary's).

When an :class:`~repro.obs.Observability` handle is attached and
enabled, the engine exports queue-depth and event-lag series (how long
events sat in the queue in simulated time) to the metrics registry.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

from repro import obs as obs_module
from repro.obs import Observability

#: One executed event of a shard's timeline: ``(time_ns, shard, seq,
#: label)``.  The tuple order IS the deterministic merge order — time
#: first, then shard id, then the shard-local FIFO sequence — so merging
#: timelines from any number of shards always yields the same interleaving
#: regardless of worker scheduling.
TimelineEntry = Tuple[float, str, int, str]


@dataclass(order=True)
class Event:
    time_ns: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    #: Engine time when the event was scheduled (for queue-lag metrics).
    created_ns: float = field(compare=False, default=0.0)


class EventEngine:
    """Priority-queue event loop; deterministic FIFO tie-breaking.

    ``shard`` names the execution shard this engine drives (empty for
    single-process runs).  With ``record_timeline`` on, every executed
    event leaves a :data:`TimelineEntry`; the per-shard timelines of a
    sharded run merge deterministically via :func:`merge_timelines`, so
    the scale-out runner can reconstruct one global event order from
    workers that never synchronized.
    """

    def __init__(
        self,
        obs: Optional[Observability] = None,
        shard: str = "",
        record_timeline: bool = False,
    ):
        self.obs = obs if obs is not None else obs_module.DEFAULT_OBSERVABILITY
        self.shard = shard
        self.record_timeline = record_timeline
        self.timeline: List[TimelineEntry] = []
        self._queue: List[Event] = []
        self._counter = itertools.count()
        self.now_ns: float = 0.0
        self.processed = 0

    def schedule(
        self, delay_ns: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` at ``now + delay_ns``."""
        if delay_ns < 0:
            raise ValueError("cannot schedule into the past")
        return self._push(self.now_ns + delay_ns, action, label)

    def schedule_at(
        self, time_ns: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        if time_ns < self.now_ns:
            raise ValueError("cannot schedule into the past")
        return self._push(time_ns, action, label)

    def _push(
        self, time_ns: float, action: Callable[[], None], label: str
    ) -> Event:
        event = Event(
            time_ns=time_ns,
            sequence=next(self._counter),
            action=action,
            label=label,
            created_ns=self.now_ns,
        )
        heapq.heappush(self._queue, event)
        if self.obs.enabled:
            self.obs.registry.gauge(
                "engine_queue_depth", "pending events in the event engine"
            ).set(len(self._queue))
        return event

    def run(self, until_ns: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Run until the queue drains, the horizon passes, or the event cap.

        Returns the number of events processed.
        """
        obs = self.obs
        processed = 0
        while self._queue and processed < max_events:
            if until_ns is not None and self._queue[0].time_ns > until_ns:
                break
            event = heapq.heappop(self._queue)
            self.now_ns = event.time_ns
            if obs.enabled:
                registry = obs.registry
                registry.counter(
                    "engine_events_total", "events executed by the engine"
                ).inc()
                registry.histogram(
                    "engine_event_lag_ns",
                    "simulated time events waited between scheduling and "
                    "execution",
                ).observe(event.time_ns - event.created_ns)
                registry.gauge(
                    "engine_queue_depth", "pending events in the event engine"
                ).set(len(self._queue))
            if self.record_timeline:
                self.timeline.append(
                    (event.time_ns, self.shard, event.sequence, event.label)
                )
            event.action()
            processed += 1
        self.processed += processed
        if until_ns is not None and self.now_ns < until_ns and not self._queue:
            self.now_ns = until_ns
        return processed

    def pending(self) -> int:
        return len(self._queue)


def merge_timelines(
    timelines: Iterable[Iterable[TimelineEntry]],
) -> List[TimelineEntry]:
    """Deterministically merge per-shard event timelines.

    Entries sort by ``(time_ns, shard, seq)``: simulated time first, then
    shard id as the tie-break (so simultaneous events from different
    shards interleave by name, not by worker completion order), then the
    shard-local FIFO sequence.  The result is independent of how the run
    was partitioned — the property the sharded-equals-single-process
    check relies on.
    """
    merged: List[TimelineEntry] = []
    for timeline in timelines:
        merged.extend(tuple(entry) for entry in timeline)
    merged.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
    return merged
