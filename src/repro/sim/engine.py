"""A minimal discrete-event engine with nanosecond timestamps.

The slot-synchronous experiments drive DU/RU/middlebox interactions
directly; the engine exists for latency-sensitive scenarios (deadline
checks, chained-middlebox delays) and for tests that need out-of-order
packet arrival (e.g. a secondary RU's uplink arriving before the
primary's).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass(order=True)
class Event:
    time_ns: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")


class EventEngine:
    """Priority-queue event loop; deterministic FIFO tie-breaking."""

    def __init__(self):
        self._queue: List[Event] = []
        self._counter = itertools.count()
        self.now_ns: float = 0.0
        self.processed = 0

    def schedule(
        self, delay_ns: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` at ``now + delay_ns``."""
        if delay_ns < 0:
            raise ValueError("cannot schedule into the past")
        event = Event(
            time_ns=self.now_ns + delay_ns,
            sequence=next(self._counter),
            action=action,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self, time_ns: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        if time_ns < self.now_ns:
            raise ValueError("cannot schedule into the past")
        event = Event(
            time_ns=time_ns,
            sequence=next(self._counter),
            action=action,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return event

    def run(self, until_ns: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Run until the queue drains, the horizon passes, or the event cap.

        Returns the number of events processed.
        """
        processed = 0
        while self._queue and processed < max_events:
            if until_ns is not None and self._queue[0].time_ns > until_ns:
                break
            event = heapq.heappop(self._queue)
            self.now_ns = event.time_ns
            event.action()
            processed += 1
        self.processed += processed
        if until_ns is not None and self.now_ns < until_ns and not self._queue:
            self.now_ns = until_ns
        return processed

    def pending(self) -> int:
        return len(self._queue)
