"""Server power model (the Figure 14 energy-savings analysis).

The testbed measures HPE DL110 servers via their out-of-band management
interface.  The model splits power into chassis idle, per-active-core
power (frequency dependent), and lets whole servers be shut down — which
is how the single-cell DAS+dMIMO configuration drops from ~400 W on two
servers to ~180 W on half of one (Section 6.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class ServerPowerModel:
    """One server's power as a function of core activity.

    Calibrated so two servers running 5 cells' worth of vRAN + middlebox
    cores draw ~400 W, and a single server with half its cores at low
    frequency draws ~180 W, matching the paper's measurements.
    """

    idle_w: float = 95.0
    core_active_w: float = 5.5
    core_low_freq_w: float = 1.8
    total_cores: int = 32

    def power_w(self, active_cores: int, low_freq_cores: int = 0) -> float:
        if active_cores < 0 or low_freq_cores < 0:
            raise ValueError("core counts must be non-negative")
        if active_cores + low_freq_cores > self.total_cores:
            raise ValueError(
                f"{active_cores}+{low_freq_cores} cores exceed the server's "
                f"{self.total_cores}"
            )
        return (
            self.idle_w
            + active_cores * self.core_active_w
            + low_freq_cores * self.core_low_freq_w
        )


@dataclass(frozen=True)
class ServerLoad:
    """Planned load of one server (powered off if ``powered`` is False)."""

    active_cores: int
    low_freq_cores: int = 0
    powered: bool = True


def deployment_power_w(
    servers: Sequence[ServerLoad],
    model: ServerPowerModel = ServerPowerModel(),
) -> float:
    """Total power of a set of servers; powered-off servers draw nothing."""
    return sum(
        model.power_w(s.active_cores, s.low_freq_cores)
        for s in servers
        if s.powered
    )


#: Cores one 100 MHz 4x4 vRAN cell occupies on the testbed servers
#: (L1 + L2/L3 processing).
CORES_PER_CELL = 5
#: Cores per DPDK middlebox instance (one polling core).
CORES_PER_MIDDLEBOX = 1
