"""The packet-level testbed: DUs, middleboxes, RUs and the air interface.

``FronthaulNetwork`` runs slot-synchronous packet exchange: every slot the
DUs emit their C-/U-plane packets, the middlebox chain processes them,
RUs accept scheduled downlink IQ and answer uplink C-plane requests with
digitized air samples, and the chain processes the uplink back to the DUs.

``RadioEnvironment`` models the air: downlink, each UE position receives
the gain-weighted sum of all RU transmissions plus noise; uplink, each RU
antenna receives the gain-weighted sum of all UE transmissions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.faults.link import ImpairedLink
    from repro.obs.deadline import DeadlineAccountant

import numpy as np

from repro.core.chain import MiddleboxChain
from repro.core.middlebox import Middlebox
from repro.fronthaul.compression import SAMPLES_PER_PRB
from repro.fronthaul.packet import FronthaulPacket
from repro.fronthaul.timing import SymbolTime
from repro.phy.channel import ChannelModel, db_to_linear
from repro.phy.geometry import Position
from repro.ran.du import DistributedUnit
from repro.ran.ru import RadioUnit

#: Normalized fronthaul amplitude corresponding to the RU's rated power.
#: Air-domain gains are relative: what matters to decode correctness is
#: the signal-to-noise contrast, which the channel model sets.
REFERENCE_GAIN_DB = 0.0


@dataclass
class UeTransmission:
    """One UE's uplink air signal for a symbol: full-band complex grid."""

    position: Position
    iq: np.ndarray  # complex, full RU band (n_prb * 12 subcarriers)


class RadioEnvironment:
    """Air combining between RU antennas and UE positions."""

    def __init__(
        self,
        channel: Optional[ChannelModel] = None,
        reference_distance_m: float = 5.0,
    ):
        self.channel = channel or ChannelModel()
        # Gains are normalized to the path loss at a reference distance so
        # fronthaul fixed-point amplitudes stay in a sane range.
        self._reference_loss_db = self.channel.params.path_loss_db(
            reference_distance_m
        )

    def relative_gain(self, tx: Position, rx: Position) -> float:
        """Linear amplitude gain relative to the reference distance."""
        gain_db = self.channel.path_gain_db(tx, rx) + self._reference_loss_db
        return math.sqrt(db_to_linear(gain_db))

    def combine_downlink(
        self,
        ue_position: Position,
        transmissions: Sequence[Tuple[Position, np.ndarray]],
        noise_amplitude: float = 1.0e-3,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """What a UE receives: gain-weighted sum of RU signals + noise."""
        rng = rng or np.random.default_rng()
        if not transmissions:
            raise ValueError("no transmissions to combine")
        n_sc = len(transmissions[0][1])
        out = np.zeros(n_sc, dtype=np.complex128)
        for ru_position, iq in transmissions:
            out += self.relative_gain(ru_position, ue_position) * np.asarray(iq)
        out += rng.normal(0, noise_amplitude, n_sc) + 1j * rng.normal(
            0, noise_amplitude, n_sc
        )
        return out

    def combine_uplink(
        self,
        ru_position: Position,
        transmissions: Sequence[UeTransmission],
        n_subcarriers: int,
    ) -> Optional[np.ndarray]:
        """What one RU antenna receives from all transmitting UEs."""
        if not transmissions:
            return None
        out = np.zeros(n_subcarriers, dtype=np.complex128)
        for tx in transmissions:
            if len(tx.iq) != n_subcarriers:
                raise ValueError("UE transmission grid size mismatch")
            out += self.relative_gain(tx.position, ru_position) * tx.iq
        return out


@dataclass
class SlotReport:
    """Per-slot accounting from :meth:`FronthaulNetwork.run_slot`."""

    absolute_slot: int
    dl_packets: int = 0
    ul_packets: int = 0
    undeliverable: int = 0
    #: Frames an endpoint's parser rejected (contained, not propagated).
    malformed: int = 0
    #: Frames the impaired wire absorbed this slot (loss/corruption).
    wire_dropped: int = 0
    #: Partial (degraded) merges delivered at the slot deadline.
    degraded_merges: int = 0
    #: Symbols abandoned at the slot deadline (nothing mergeable arrived).
    abandoned_merges: int = 0


UplinkSignalFn = Callable[[RadioUnit, Position, SymbolTime, int], Optional[np.ndarray]]


class FronthaulNetwork:
    """Slot-synchronous fronthaul between DUs, a middlebox chain, and RUs.

    The chain is an ordered middlebox list applied downlink in order and
    uplink in reverse.  Packets are delivered by destination MAC; frames
    addressed to unknown MACs are counted as undeliverable (the fate of
    packets a middlebox forgot to redirect).
    """

    def __init__(
        self,
        middleboxes: Sequence[Middlebox] = (),
        environment: Optional[RadioEnvironment] = None,
        deadline_accountant: Optional["DeadlineAccountant"] = None,
        wire: Optional["ImpairedLink"] = None,
        deadline_flush: bool = False,
        isolate_faults: bool = True,
        breaker_threshold: int = 5,
        breaker_probation: int = 16,
        obs=None,
        name: str = "network",
        validator=None,
    ):
        self.name = name
        self.middleboxes = list(middleboxes)
        self.environment = environment or RadioEnvironment()
        self._dus: Dict[int, DistributedUnit] = {}
        self._rus: Dict[int, Tuple[RadioUnit, Position]] = {}
        self.reports: List[SlotReport] = []
        #: Optional per-slot latency budget checker (repro.obs.deadline):
        #: fed every slot's per-stage modelled processing time.
        self.deadline_accountant = deadline_accountant
        #: Optional impaired access wire (repro.faults.ImpairedLink): all
        #: traffic entering the middlebox chain passes through it, in
        #: both directions.
        self.wire = wire
        #: When set, every slot ends with a deadline sweep: middleboxes
        #: exposing ``flush_deadline`` (the DAS) merge-or-abandon symbols
        #: still waiting once their slot has passed.
        self.deadline_flush = deadline_flush
        #: Optional conformance validator
        #: (:class:`repro.conformance.WireValidator`): observes every
        #: post-chain burst at RU ingress (downlink) and DU ingress
        #: (uplink) — a pure observer, never drops or mutates frames.
        self.validator = validator
        #: The middleboxes run inside a fault-isolating chain: a raising
        #: stage is a counted drop guarded by a circuit breaker, never a
        #: crashed slot.
        self.chain: Optional[MiddleboxChain] = None
        if self.middleboxes:
            self.chain = MiddleboxChain(
                self.middleboxes,
                name=name,
                obs=obs,
                isolate_faults=isolate_faults,
                breaker_threshold=breaker_threshold,
                breaker_probation=breaker_probation,
            )

    def add_du(self, du: DistributedUnit) -> None:
        self._dus[du.mac.to_int()] = du

    def add_ru(self, ru: RadioUnit, position: Position = Position(0, 0)) -> None:
        self._rus[ru.mac.to_int()] = (ru, position)

    @property
    def dus(self) -> List[DistributedUnit]:
        return list(self._dus.values())

    @property
    def rus(self) -> List[RadioUnit]:
        return [ru for ru, _ in self._rus.values()]

    def ru_position(self, ru: RadioUnit) -> Position:
        return self._rus[ru.mac.to_int()][1]

    # -- chain application ---------------------------------------------------

    def _through_chain(
        self, packets: List[FronthaulPacket], uplink: bool
    ) -> List[FronthaulPacket]:
        if self.chain is None:
            return packets
        if uplink:
            return self.chain.process_uplink(packets)
        return self.chain.process_downlink(packets)

    def _carry(
        self, packets: List[FronthaulPacket], report: SlotReport
    ) -> List[FronthaulPacket]:
        """Pass a burst over the impaired access wire, if one is set."""
        if self.wire is None:
            return packets
        absorbed_before = self.wire.injector.stats.absorbed
        survivors = self.wire.carry(packets)
        report.wire_dropped += (
            self.wire.injector.stats.absorbed - absorbed_before
        )
        return survivors

    # -- slot loop ----------------------------------------------------------------

    def run_slot(
        self, uplink_signal_fn: Optional[UplinkSignalFn] = None
    ) -> SlotReport:
        """Advance every DU one slot and exchange all fronthaul packets."""
        if not self._dus:
            raise RuntimeError("no DUs in the network")
        absolute_slot = next(iter(self._dus.values())).clock.current_slot
        report = SlotReport(absolute_slot=absolute_slot)
        processing_before = [
            m.stats.processing_ns_total for m in self.middleboxes
        ]

        downlink: List[FronthaulPacket] = []
        for du in self._dus.values():
            downlink.extend(du.advance_slot())
        # Fronthaul timing windows close C-plane transmission before
        # U-plane transmission for a symbol, so across *all* DUs every
        # C-plane message precedes the U-plane data — the ordering the
        # RU-sharing middlebox's Algorithm 2 relies on.  Stable sort keeps
        # per-DU sequence numbers in order.
        downlink.sort(key=lambda packet: packet.is_uplane)
        downlink = self._carry(downlink, report)
        for packet in self._through_chain(downlink, uplink=False):
            if self.validator is not None:
                self.validator.observe(packet, tap=f"{self.name}:ru-ingress")
            entry = self._rus.get(packet.eth.dst.to_int())
            if entry is None:
                report.undeliverable += 1
                continue
            try:
                entry[0].receive(packet)
            except ValueError:
                # Damaged frame rejected at the RU: contained drop.
                report.malformed += 1
                continue
            report.dl_packets += 1

        uplink: List[FronthaulPacket] = []
        for ru, position in self._rus.values():
            n_sc = ru.config.num_prb * SAMPLES_PER_PRB
            for time, port in ru.pending_uplink_symbols():
                air = None
                if uplink_signal_fn is not None:
                    air = uplink_signal_fn(ru, position, time, port)
                uplink.extend(ru.build_uplink(time, port, air_iq=air))
            ru._ul_requests.clear()
        uplink = self._carry(uplink, report)
        for packet in self._through_chain(uplink, uplink=True):
            self._deliver_uplink(packet, report)

        if self.deadline_flush and self.chain is not None:
            self._flush_deadlines(absolute_slot, report)

        if self.deadline_accountant is not None:
            from repro.obs.deadline import account_middleboxes

            self.deadline_accountant.observe_slot(
                absolute_slot,
                account_middleboxes(self.middleboxes, processing_before),
            )
        self.reports.append(report)
        return report

    def _deliver_uplink(
        self, packet: FronthaulPacket, report: SlotReport
    ) -> None:
        if self.validator is not None:
            self.validator.observe(packet, tap=f"{self.name}:du-ingress")
        du = self._dus.get(packet.eth.dst.to_int())
        if du is None:
            report.undeliverable += 1
            return
        try:
            du.receive(packet)
        except ValueError:
            # Damaged frame rejected at the DU: contained drop.
            report.malformed += 1
            return
        report.ul_packets += 1

    def _flush_deadlines(
        self, absolute_slot: int, report: SlotReport
    ) -> None:
        """End-of-slot deadline sweep: partial-merge or abandon symbols
        still cached once their slot boundary has passed."""
        numerology = next(iter(self._dus.values())).cell.numerology
        boundary = SymbolTime.from_absolute_slot(
            absolute_slot + 1, numerology
        ).slot_key()
        for stage, middlebox in enumerate(self.middleboxes):
            flush = getattr(middlebox, "flush_deadline", None)
            if flush is None:
                continue
            flushed, abandoned = flush(boundary)
            report.abandoned_merges += abandoned
            if not flushed:
                continue
            report.degraded_merges += len(flushed)
            # A degraded merge leaves the DAS mid-chain: it still has to
            # traverse the uplink tail of the chain towards the DUs.
            # deadline_flush=False keeps lower hold-capable stages from
            # re-capturing a merge already forced out at the boundary.
            for packet in self.chain.process_uplink(
                flushed, source=stage, deadline_flush=False
            ):
                self._deliver_uplink(packet, report)

    def run(
        self,
        n_slots: int,
        uplink_signal_fn: Optional[UplinkSignalFn] = None,
    ) -> List[SlotReport]:
        return [self.run_slot(uplink_signal_fn) for _ in range(n_slots)]
