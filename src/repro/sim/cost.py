"""CapEx cost model (Appendix A.2).

Reproduces the paper's best-effort cost comparison: a commodity
RANBooster deployment (RUs, cabling, switches, GM clock, NICs, CPU cores)
against a conventional proprietary DAS priced per square foot.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostModel:
    """Unit prices (USD), following the Appendix A.2 accounting."""

    commodity_ru_usd: float = 1_700.0
    cabling_per_ru_usd: float = 470.0
    switch_usd: float = 9_000.0
    gm_clock_usd: float = 4_500.0
    nic_usd: float = 1_800.0
    cpu_core_usd: float = 450.0
    conventional_das_usd_per_sqft: float = 2.0

    def ranbooster_deployment_usd(
        self,
        n_rus: int,
        n_switches: int = 1,
        n_gm_clocks: int = 1,
        n_nics: int = 1,
        middlebox_cpu_cores: int = 8,
        building_work_usd: float = 0.0,
    ) -> float:
        """Commodity infrastructure cost of a RANBooster deployment."""
        if n_rus < 1:
            raise ValueError("a deployment needs at least one RU")
        return (
            n_rus * (self.commodity_ru_usd + self.cabling_per_ru_usd)
            + n_switches * self.switch_usd
            + n_gm_clocks * self.gm_clock_usd
            + n_nics * self.nic_usd
            + middlebox_cpu_cores * self.cpu_core_usd
            + building_work_usd
        )

    def conventional_das_usd(self, area_sqft: float) -> float:
        if area_sqft <= 0:
            raise ValueError("area must be positive")
        return area_sqft * self.conventional_das_usd_per_sqft


@dataclass
class DeploymentCost:
    """The Appendix A.2 comparison for a concrete deployment."""

    model: CostModel = field(default_factory=CostModel)
    #: The Cambridge deployment: 5 floors x 15,403 sqft.
    area_sqft: float = 77_015.0
    n_rus: int = 16
    middlebox_cpu_cores: int = 8
    building_work_usd: float = 6_400.0
    vendor_margin: float = 0.5

    def ranbooster_usd(self) -> float:
        base = self.model.ranbooster_deployment_usd(
            n_rus=self.n_rus,
            middlebox_cpu_cores=self.middlebox_cpu_cores,
            building_work_usd=self.building_work_usd,
        )
        return base * (1.0 + self.vendor_margin)

    def conventional_usd(self) -> float:
        return self.model.conventional_das_usd(self.area_sqft)

    def savings_fraction(self) -> float:
        """Relative CapEx saving of RANBooster vs the conventional DAS.

        The paper reports ~41% cheaper even with a 50% vendor margin.
        """
        conventional = self.conventional_usd()
        return (conventional - self.ranbooster_usd()) / conventional
