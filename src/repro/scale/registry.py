"""The middlebox stage registry: scenario specs name stages, not classes.

Every ``repro.apps`` middlebox registers a factory here under its
``app_name``, so a :class:`~repro.scale.spec.StageSpec` like::

    {"stage": "das", "params": {"partial_merge": true}}

can be materialized without the spec ever holding a live object.  A
factory receives the stage's plain-data ``params`` and a
:class:`StageBuildContext` giving it the built topology of its coupling
group (DUs, RUs, cell configs, vendor profiles) plus the observability
handle, and returns a ready middlebox.

Factories resolve cells and RUs by their spec names; defaults fall back
to the cell the stage was declared on, so the common single-cell case
needs no parameters at all.  Custom stages register with
:func:`register_stage`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.apps.das import DasMiddlebox
from repro.apps.dmimo import DmimoMiddlebox, RuPortMap, SsbSchedule
from repro.apps.prb_monitor import PrbMonitorMiddlebox
from repro.apps.resilience import ResilienceMiddlebox
from repro.apps.ru_sharing import RuSharingMiddlebox, SharedDuConfig
from repro.apps.security import FronthaulGuardMiddlebox
from repro.apps.sensing import SpectrumSensorMiddlebox
from repro.core.middlebox import Middlebox
from repro.faults.middlebox import FaultInjectorMiddlebox
from repro.faults.registry import injector_from_spec

if TYPE_CHECKING:
    from repro.scale.build import BuiltCell
    from repro.scale.spec import StageSpec

#: stage name -> factory(params, ctx) -> Middlebox
STAGE_REGISTRY: Dict[str, Callable[..., Middlebox]] = {}


def register_stage(name: str):
    """Register a stage factory under ``name``; returns the target."""

    def decorator(factory: Callable[..., Middlebox]):
        if name in STAGE_REGISTRY:
            raise ValueError(f"stage {name!r} already registered")
        STAGE_REGISTRY[name] = factory
        return factory

    return decorator


def stage_names() -> List[str]:
    """All registered stage names, sorted."""
    return sorted(STAGE_REGISTRY)


class StageBuildContext:
    """What a stage factory may see: its group's built topology.

    ``current_cell`` is the cell the stage was declared on — the default
    target when params omit an explicit ``"cell"``.
    """

    def __init__(
        self,
        group: str,
        cells: "List[BuiltCell]",
        current_cell: "BuiltCell",
        obs=None,
    ):
        self.group = group
        self._cells = {built.spec.name: built for built in cells}
        self.current_cell = current_cell
        self.obs = obs

    def cell(self, name: Optional[str] = None) -> "BuiltCell":
        if name is None:
            return self.current_cell
        built = self._cells.get(name)
        if built is None:
            raise KeyError(
                f"stage references cell {name!r}, not in group "
                f"{self.group!r} ({sorted(self._cells)})"
            )
        return built

    def cells(self) -> "List[BuiltCell]":
        return list(self._cells.values())

    def ru(self, name: str):
        """The built (RadioUnit, Position) pair for a group-wide RU name."""
        for built in self._cells.values():
            if name in built.rus:
                return built.rus[name]
        raise KeyError(
            f"stage references RU {name!r}, not in group {self.group!r}"
        )

    def base_kwargs(self, stage: "StageSpec", cell: "BuiltCell") -> dict:
        """The normalized (name, obs, stack_profile) middlebox keywords."""
        return {
            "name": stage.name or "",
            "obs": self.obs,
            "stack_profile": cell.profile,
        }


def build_stage(stage: "StageSpec", ctx: StageBuildContext) -> Middlebox:
    """Materialize one chain stage through the registry."""
    factory = STAGE_REGISTRY.get(stage.stage)
    if factory is None:
        raise KeyError(
            f"unknown stage {stage.stage!r}; registered: {stage_names()}"
        )
    return factory(stage, ctx)


# -- built-in stages ----------------------------------------------------------


@register_stage("das")
def _build_das(stage: "StageSpec", ctx: StageBuildContext) -> Middlebox:
    """Params: ``cell`` (default: declaring cell), ``rus`` (names,
    default: all of the cell's RUs), ``partial_merge``."""
    params = dict(stage.params)
    cell = ctx.cell(params.pop("cell", None))
    ru_names = params.pop("rus", None) or [ru.name for ru in cell.spec.rus]
    return DasMiddlebox(
        du_mac=cell.du.mac,
        ru_macs=[ctx.ru(name)[0].mac for name in ru_names],
        partial_merge=bool(params.pop("partial_merge", False)),
        **ctx.base_kwargs(stage, cell),
        **params,
    )


@register_stage("dmimo")
def _build_dmimo(stage: "StageSpec", ctx: StageBuildContext) -> Middlebox:
    """Params: ``cell``, ``rus`` (global-port order, default: the cell's
    RUs in spec order), ``ssb`` ({period_slots, symbols, prb_start,
    num_prb}, optional)."""
    params = dict(stage.params)
    cell = ctx.cell(params.pop("cell", None))
    ru_names = params.pop("rus", None) or [ru.name for ru in cell.spec.rus]
    groups = tuple(
        (ctx.ru(name)[0].mac, ctx.ru(name)[0].config.n_antennas)
        for name in ru_names
    )
    ssb_params = params.pop("ssb", None)
    ssb = None
    if ssb_params is not None:
        ssb = SsbSchedule(
            period_slots=ssb_params["period_slots"],
            symbols=tuple(ssb_params["symbols"]),
            prb_start=ssb_params["prb_start"],
            num_prb=ssb_params["num_prb"],
        )
    numerology = cell.config.numerology
    return DmimoMiddlebox(
        du_mac=cell.du.mac,
        port_map=RuPortMap(groups=groups),
        ssb=ssb,
        slots_per_frame=numerology.slots_per_frame,
        slots_per_subframe=numerology.slots_per_subframe,
        **ctx.base_kwargs(stage, cell),
        **params,
    )


@register_stage("ru_sharing")
def _build_ru_sharing(stage: "StageSpec", ctx: StageBuildContext) -> Middlebox:
    """Params: ``ru`` (the shared RU's name, default: the declaring
    cell's first RU), ``cells`` (DU cells muxed onto it, default: every
    cell in the group).  Each DU's spectrum slice is its cell grid, so
    shared cells set explicit ``center_frequency_hz`` slices."""
    params = dict(stage.params)
    host = ctx.cell(params.pop("cell", None))
    ru_name = params.pop("ru", None) or host.spec.rus[0].name
    ru, _ = ctx.ru(ru_name)
    cell_names = params.pop("cells", None) or [
        built.spec.name for built in ctx.cells()
    ]
    dus = []
    for cell_name in cell_names:
        built = ctx.cell(cell_name)
        dus.append(
            SharedDuConfig(
                du_id=built.du.du_id,
                mac=built.du.mac,
                grid=built.config.grid,
            )
        )
    sharing = RuSharingMiddlebox(
        ru_mac=ru.mac,
        ru_grid=ru.config.grid,
        dus=dus,
        **ctx.base_kwargs(stage, host),
        **params,
    )
    # The shared RU answers to the mux, not to any one DU.
    ru.du_mac = sharing.mac
    return sharing


@register_stage("prb_monitor")
def _build_prb_monitor(stage: "StageSpec", ctx: StageBuildContext) -> Middlebox:
    """Params: ``cell``, ``thr_dl``, ``thr_ul``, ``monitor_port``."""
    params = dict(stage.params)
    cell = ctx.cell(params.pop("cell", None))
    return PrbMonitorMiddlebox(
        carrier_num_prb=cell.config.num_prb,
        numerology=cell.config.numerology,
        **ctx.base_kwargs(stage, cell),
        **params,
    )


@register_stage("resilience")
def _build_resilience(stage: "StageSpec", ctx: StageBuildContext) -> Middlebox:
    """Params: ``primary`` + ``standby`` (cell names; default: declaring
    cell and the group's next cell), ``ru``, ``silence_threshold_ns``."""
    params = dict(stage.params)
    primary = ctx.cell(params.pop("primary", None))
    standby_name = params.pop("standby", None)
    if standby_name is None:
        others = [
            built for built in ctx.cells()
            if built.spec.name != primary.spec.name
        ]
        if not others:
            raise KeyError(
                "resilience stage needs a 'standby' cell (no other cell "
                f"in group {ctx.group!r})"
            )
        standby = others[0]
    else:
        standby = ctx.cell(standby_name)
    ru_name = params.pop("ru", None) or primary.spec.rus[0].name
    return ResilienceMiddlebox(
        primary_du=primary.du.mac,
        standby_du=standby.du.mac,
        ru_mac=ctx.ru(ru_name)[0].mac,
        numerology=primary.config.numerology,
        **ctx.base_kwargs(stage, primary),
        **params,
    )


@register_stage("fronthaul_guard")
def _build_guard(stage: "StageSpec", ctx: StageBuildContext) -> Middlebox:
    """Params: ``cell``, ``allow`` (extra MAC ints), ``max_slot_skew``.
    All the group's DUs and RUs are allowed by default."""
    params = dict(stage.params)
    cell = ctx.cell(params.pop("cell", None))
    allowed = [built.du.mac for built in ctx.cells()]
    for built in ctx.cells():
        allowed.extend(ru.mac for ru, _ in built.rus.values())
    from repro.fronthaul.ethernet import MacAddress

    allowed.extend(
        MacAddress.from_int(value) for value in params.pop("allow", ())
    )
    return FronthaulGuardMiddlebox(
        allowed_sources=allowed,
        numerology=cell.config.numerology,
        **ctx.base_kwargs(stage, cell),
        **params,
    )


@register_stage("spectrum_sensor")
def _build_sensor(stage: "StageSpec", ctx: StageBuildContext) -> Middlebox:
    """Params: ``cell``, ``noise_exponent_threshold``."""
    params = dict(stage.params)
    cell = ctx.cell(params.pop("cell", None))
    return SpectrumSensorMiddlebox(
        carrier_num_prb=cell.config.num_prb,
        numerology=cell.config.numerology,
        **ctx.base_kwargs(stage, cell),
        **params,
    )


@register_stage("passthrough")
def _build_passthrough(stage: "StageSpec", ctx: StageBuildContext) -> Middlebox:
    """A transparent stage (useful to measure chain overhead)."""
    cell = ctx.cell(dict(stage.params).pop("cell", None))
    return Middlebox(**ctx.base_kwargs(stage, cell))


@register_stage("impaired_wire")
def _build_impaired_wire(stage: "StageSpec", ctx: StageBuildContext) -> Middlebox:
    """Params: ``fault`` (a repro.faults.registry spec), ``cell``."""
    params = dict(stage.params)
    cell = ctx.cell(params.pop("cell", None))
    fault = params.pop("fault", None)
    if fault is None:
        raise KeyError("impaired_wire stage needs a 'fault' spec")
    base = ctx.base_kwargs(stage, cell)
    if not base["name"]:
        del base["name"]  # keep FaultInjectorMiddlebox's derived default
    return FaultInjectorMiddlebox(
        injector=injector_from_spec(fault), **base, **params
    )
