"""Self-healing worker pool: deadline barriers, respawn, exact replay.

The plain :class:`~repro.scale.pool.WorkerPool` is fail-fast: a worker
that crashes, hangs or talks garbage closes the whole pool and the run
dies — and before this module, a *hung* worker was worse, blocking the
coordinator's ``recv`` forever.  A middlebox-as-a-service deployment
(ROADMAP north star) cannot ship that: a process serving dozens of
cells must survive the failure of any one shard.

:class:`SupervisedWorkerPool` keeps the pool's protocol and digest
contract and adds three guarantees:

**No barrier blocks forever.**  Every reply is awaited with a poll
loop bounded by :attr:`~repro.scale.spec.SupervisorSpec.
barrier_timeout_s`, interleaved with ``Process.is_alive()`` checks, and
every accepted reply must carry a heartbeat whose pid matches the
process being barriered on.  Crash, hang, protocol violation and arena
frame corruption each become a typed :class:`WorkerFailure` instead of
a deadlock or an unpickled lie.

**Recovery is exact, not approximate.**  On failure the supervisor
kills only the affected worker, resets its arena ring, and respawns it
with ``replay_slots`` = the number of slots every shard had confirmed
at the last successful barrier.  The replacement rebuilds its coupling
groups from the deterministic :class:`~repro.scale.spec.ScenarioSpec`
and replays the confirmed prefix epoch by epoch — generating and
*discarding* the telemetry payloads the coordinator already folded, so
the per-group delta baselines advance without double counting.
Determinism makes the replayed state bit-identical to the lost one:
the digest oracle (sharded == single-process at 1/2/4/8 workers) holds
across recoveries, and ``live_snapshot() == collect()`` still holds
byte for byte because the final epoch's cumulative snapshots come out
of the replayed groups exactly as they would have from the originals.

**Failure is bounded, never silent.**  Respawns back off geometrically
and each worker has a restart budget
(:attr:`~repro.scale.spec.SupervisorSpec.max_restarts_per_worker`).
Exhausting it raises :class:`ShardRecoveryExhausted` — carrying the
partial per-group results scavenged from the surviving workers — after
the normal teardown path has joined every process and unlinked the
shared-memory segment.  No hang, no leak.

Recovery events surface in the obs plane: the coordinator-side
:attr:`SupervisedWorkerPool.metrics` registry counts
``scale_worker_restarts_total`` and
``scale_recovery_replayed_slots_total`` per worker (kept out of the
telemetry stream's registry on purpose — the final cumulative rebuild
would wipe them and break live == collect), and each restart rides the
next :class:`~repro.obs.slo.EpochSample` as ``worker_restarts``, where
an SLO objective can window and alert on it.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.scale.arena import ArenaFrameError
from repro.scale.pool import WorkerPool, _stop_process
from repro.scale.spec import ScenarioSpec, SupervisorSpec

#: Respawns performed by the supervisor, labelled by worker index.
RESTARTS_METRIC = "scale_worker_restarts_total"

#: Group-slots replayed to fast-forward replacement workers (slots x
#: groups on the respawned shard), labelled by worker index.
REPLAYED_SLOTS_METRIC = "scale_recovery_replayed_slots_total"

#: The failure classes the supervisor distinguishes.
FAILURE_KINDS = ("crash", "hang", "poisoned", "frame")


class WorkerFailure(Exception):
    """One recoverable worker fault, classified.

    Internal to the supervision loop: every instance is either consumed
    by a successful respawn or folded into the
    :class:`ShardRecoveryExhausted` that ends the run.
    """

    def __init__(self, kind: str, worker: int, detail: str):
        if kind not in FAILURE_KINDS:
            raise ValueError(f"unknown failure kind {kind!r}")
        super().__init__(f"worker {worker} {kind}: {detail}")
        self.kind = kind
        self.worker = worker
        self.detail = detail


class ShardRecoveryExhausted(RuntimeError):
    """A worker burned through its restart budget; the run is over.

    Carries everything an operator needs: the shard that kept dying,
    its failure log, and ``partial`` — the per-group results scavenged
    best-effort from the workers that were still healthy, so a
    majority-healthy run's data is not thrown away with the error.
    Raised only after full pool teardown (processes joined, segment
    unlinked).
    """

    def __init__(
        self,
        worker: int,
        shard_groups: List[str],
        restarts: int,
        failures: List[Dict[str, Any]],
        partial: Dict[str, Any],
    ):
        super().__init__(
            f"shard recovery exhausted: worker {worker} "
            f"(groups {shard_groups}) failed "
            f"{len(failures)} time(s) with {restarts} restart(s) spent; "
            f"partial results for {sorted(partial)}"
        )
        self.worker = worker
        self.shard_groups = shard_groups
        self.restarts = restarts
        self.failures = failures
        self.partial = partial


class SupervisedWorkerPool(WorkerPool):
    """A :class:`WorkerPool` that survives worker failure.

    Drop-in: same constructor plus an optional ``supervisor`` policy
    (defaulting to the spec's, then to :class:`SupervisorSpec`'s
    defaults), same ``run()`` result — with ``result.recovery``
    describing any self-healing that happened (empty when none did).
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        workers: int,
        arena_bytes_per_worker: Optional[int] = None,
        bus=None,
        tail=None,
        supervisor: Optional[SupervisorSpec] = None,
    ):
        super().__init__(
            spec,
            workers,
            arena_bytes_per_worker=arena_bytes_per_worker,
            bus=bus,
            tail=tail,
        )
        self.supervisor = supervisor or spec.supervisor or SupervisorSpec()
        #: Coordinator-side recovery metrics (NOT the stream registry,
        #: which the final cumulative fold rebuilds from worker
        #: snapshots — restarts are coordinator events and live here).
        self.metrics = MetricsRegistry()
        self.restarts: List[int] = []
        self.recovery: Dict[str, Any] = self._fresh_recovery()

    @staticmethod
    def _fresh_recovery() -> Dict[str, Any]:
        return {"restarts": {}, "replayed_slots": 0, "failures": []}

    # -- supervision primitives ---------------------------------------------

    def _begin_run(self) -> None:
        super()._begin_run()
        self.restarts = [0] * len(self._connections)
        self.recovery = self._fresh_recovery()

    def _barrier_timeout(self, done: int) -> float:
        """The reply deadline, scaled for post-respawn replay time.

        A replacement worker replays ``done`` confirmed slots before it
        can answer the re-issued command, so the allowance grows with
        the confirmed prefix — one base timeout per completed epoch.
        """
        epochs_done = done // self.spec.effective_epoch_slots()
        return self.supervisor.barrier_timeout_s * (1 + epochs_done)

    def _issue(
        self,
        index: int,
        make_command: Callable[[int], Tuple],
        done: int,
    ) -> None:
        """Send a command, recovering (then resending) on a dead pipe.

        ``make_command`` rebuilds the tuple from current state so a
        post-respawn resend carries the reset ack watermark.
        """
        while True:
            try:
                self._connections[index].send(make_command(index))
                return
            except (BrokenPipeError, OSError) as exc:
                self._recover(
                    index,
                    WorkerFailure(
                        "crash", index, f"control-pipe send failed: {exc}"
                    ),
                    done,
                )

    def _recv_deadline(self, index: int, timeout: float) -> Tuple:
        """Await one reply; classify silence as crash or hang, bounded."""
        conn = self._connections[index]
        process = self._processes[index]
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerFailure(
                    "hang",
                    index,
                    f"no barrier reply within {timeout:.1f}s "
                    f"(pid {process.pid} still alive)",
                )
            try:
                ready = conn.poll(
                    min(self.supervisor.poll_interval_s, remaining)
                )
            except (OSError, EOFError) as exc:
                raise WorkerFailure(
                    "crash", index, f"control pipe broke: {exc}"
                )
            if ready:
                try:
                    return conn.recv()
                except (EOFError, OSError) as exc:
                    raise WorkerFailure(
                        "crash",
                        index,
                        f"worker died mid-reply "
                        f"(exitcode {process.exitcode}): {exc}",
                    )
            if not process.is_alive() and not conn.poll(0):
                raise WorkerFailure(
                    "crash",
                    index,
                    f"worker exited (exitcode {process.exitcode}) "
                    f"with no reply in flight",
                )

    def _check_reply(
        self, index: int, reply: Any, expect: str, length: int
    ) -> None:
        """Reject replies the live worker cannot have produced.

        A worker-side ``("error", traceback)`` reply is a deterministic
        application error: replaying it would fail identically, so it
        propagates like the plain pool's — recovery is for *process*
        faults, not for bugs.
        """
        if (
            isinstance(reply, tuple)
            and len(reply) == 2
            and reply[0] == "error"
        ):
            raise RuntimeError(f"scale worker failed:\n{reply[1]}")
        if (
            not isinstance(reply, tuple)
            or len(reply) != length
            or reply[0] != expect
        ):
            raise WorkerFailure(
                "poisoned", index, f"protocol-violating reply: {reply!r}"
            )
        heartbeat = reply[-1]
        if (
            not isinstance(heartbeat, dict)
            or heartbeat.get("pid") != self._processes[index].pid
        ):
            raise WorkerFailure(
                "poisoned",
                index,
                f"heartbeat {heartbeat!r} does not match worker "
                f"pid {self._processes[index].pid}",
            )

    def _read_bulk_guarded(self, index: int, descriptor: Any) -> Any:
        try:
            return self._read_bulk(index, descriptor)
        except ArenaFrameError as exc:
            raise WorkerFailure("frame", index, str(exc))

    # -- recovery ------------------------------------------------------------

    def _recover(
        self, index: int, failure: WorkerFailure, done: int
    ) -> None:
        """Kill, back off, respawn, fast-forward — or declare exhaustion."""
        self.recovery["failures"].append(
            {
                "worker": index,
                "kind": failure.kind,
                "confirmed_slots": done,
                "detail": failure.detail,
            }
        )
        budget = self.supervisor.max_restarts_per_worker
        if self.restarts[index] >= budget:
            self._exhausted(index)
        backoff = (
            self.supervisor.backoff_base_s
            * self.supervisor.backoff_factor ** self.restarts[index]
        )
        if backoff:
            time.sleep(backoff)
        self._respawn(index, replay_slots=done)

    def _respawn(self, index: int, replay_slots: int) -> None:
        """Replace worker ``index`` with a fast-forwarded twin."""
        try:
            self._connections[index].close()
        except OSError:  # pragma: no cover - already broken
            pass
        _stop_process(self._processes[index], graceful=False)
        self._rings[index].reset()
        self._acked[index] = 0
        parent, process = self._spawn_worker(
            index, replay_slots=replay_slots, chaos_armed=False
        )
        # In-place replacement: the weakref finalizer holds this very
        # list, so the backstop always sees the current processes.
        self._connections[index] = parent
        self._processes[index] = process
        self.restarts[index] += 1
        replayed = replay_slots * len(self.plan.shards[index])
        self.recovery["restarts"][str(index)] = self.restarts[index]
        self.recovery["replayed_slots"] += replayed
        worker_label = str(index)
        self.metrics.counter(
            RESTARTS_METRIC,
            "pool workers respawned by the scale-out supervisor",
            labels=("worker",),
        ).labels(worker_label).inc()
        if replayed:
            self.metrics.counter(
                REPLAYED_SLOTS_METRIC,
                "group-slots replayed to fast-forward replacement workers",
                labels=("worker",),
            ).labels(worker_label).inc(replayed)
        self.telemetry.note_worker_restart(index)

    def _exhausted(self, index: int) -> None:
        partial = self._partial_collect(exclude=index)
        failures = [
            entry
            for entry in self.recovery["failures"]
            if entry["worker"] == index
        ]
        error = ShardRecoveryExhausted(
            worker=index,
            shard_groups=list(self.plan.shards[index]),
            restarts=self.restarts[index],
            failures=failures,
            partial=partial,
        )
        raise error

    def _partial_collect(self, exclude: int) -> Dict[str, Any]:
        """Scavenge group results from the still-healthy workers.

        Best-effort and bounded: survivors may have an in-flight epoch
        reply queued ahead of the collect answer (they may even be a
        partial epoch *ahead* of the last confirmed barrier — stated
        as-is in the result's ``slots``); anything that fails or times
        out is simply skipped.
        """
        partial: Dict[str, Any] = {}
        for index in range(len(self._connections)):
            if index == exclude or not self._processes[index].is_alive():
                continue
            try:
                self._connections[index].send(
                    ("collect", self._acked[index])
                )
                deadline = (
                    time.monotonic() + self.supervisor.barrier_timeout_s
                )
                while True:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    reply = self._recv_deadline(index, remaining)
                    if (
                        isinstance(reply, tuple)
                        and len(reply) == 3
                        and reply[0] == "result"
                    ):
                        for result in self._read_bulk_guarded(
                            index, reply[1]
                        ):
                            partial[result.name] = result
                        break
                    # Anything else is a stale in-flight epoch reply;
                    # drop it and keep waiting for the collect answer.
            except (WorkerFailure, RuntimeError, OSError, BrokenPipeError):
                continue
        return partial

    # -- supervised execution hooks -----------------------------------------

    def _epoch_barrier(self, step: int, final: bool, done: int) -> List[Any]:
        for index in range(len(self._connections)):
            self._issue(
                index,
                lambda i: ("epoch", step, final, self._acked[i]),
                done,
            )
        payloads: List[Any] = []
        for index in range(len(self._connections)):
            payloads.extend(self._await_epoch(index, step, final, done))
        return payloads

    def _await_epoch(
        self, index: int, step: int, final: bool, done: int
    ) -> List[Any]:
        """One worker's barrier reply, retried across recoveries.

        A respawned worker replays the confirmed prefix and then runs
        this same epoch from the re-issued command, so whatever payload
        finally comes back is the one the lost worker would have sent.
        """
        while True:
            try:
                reply = self._recv_deadline(
                    index, self._barrier_timeout(done)
                )
                self._check_reply(index, reply, expect="ok", length=5)
                if reply[1] != step:
                    raise WorkerFailure(
                        "poisoned",
                        index,
                        f"acked {reply[1]} slots for a {step}-slot epoch",
                    )
                if reply[3] is None:
                    return []
                return self._read_bulk_guarded(index, reply[3])
            except WorkerFailure as failure:
                self._recover(index, failure, done)
                self._issue(
                    index,
                    lambda i: ("epoch", step, final, self._acked[i]),
                    done,
                )

    def _collect_results(self) -> Dict[str, Any]:
        # The confirmed prefix, not the horizon: a mid-run collect from
        # the live control plane must not make a recovery replay slots
        # nobody has run yet.
        done = self._done
        for index in range(len(self._connections)):
            self._issue(
                index, lambda i: ("collect", self._acked[i]), done
            )
        groups: Dict[str, Any] = {}
        for index in range(len(self._connections)):
            groups.update(self._await_collect(index, done))
        return groups

    def _await_collect(self, index: int, done: int) -> Dict[str, Any]:
        while True:
            try:
                reply = self._recv_deadline(
                    index, self._barrier_timeout(done)
                )
                self._check_reply(index, reply, expect="result", length=3)
                results = self._read_bulk_guarded(index, reply[1])
                return {result.name: result for result in results}
            except WorkerFailure as failure:
                # Collect-phase recovery replays the whole horizon.
                self._recover(index, failure, done)
                self._issue(
                    index, lambda i: ("collect", self._acked[i]), done
                )

    def _mutate_exchange(self, rebuild: List[str]) -> None:
        """Deadline-guarded mutate barrier.

        The coordinator commits the mutated spec and plan *before* this
        exchange, so a worker that fails here is simply recovered: the
        respawn rebuilds every local group from the already-mutated
        spec and fast-forwards the confirmed prefix — it needs no
        mutate command of its own.
        """
        done = self._done
        for index in range(len(self._connections)):
            self._issue(
                index, lambda i: self._mutate_command(i, rebuild), done
            )
        for index in range(len(self._connections)):
            try:
                reply = self._recv_deadline(
                    index, self._barrier_timeout(done)
                )
                self._check_reply(index, reply, expect="ok", length=5)
            except WorkerFailure as failure:
                self._recover(index, failure, done)

    def _result(self, wall: float, groups: Dict[str, Any], epoch: int):
        result = super()._result(wall, groups, epoch)
        result.recovery = {
            "restarts": dict(self.recovery["restarts"]),
            "total_restarts": sum(self.restarts),
            "replayed_slots": self.recovery["replayed_slots"],
            "failures": list(self.recovery["failures"]),
        }
        return result


__all__ = [
    "FAILURE_KINDS",
    "REPLAYED_SLOTS_METRIC",
    "RESTARTS_METRIC",
    "ShardRecoveryExhausted",
    "SupervisedWorkerPool",
    "WorkerFailure",
]
