"""The scale-out engine: declarative scenarios, sharded execution.

Describe a multi-cell deployment once as plain data, then run it either
single-process (exact legacy semantics) or sharded across workers — same
spec, byte-identical results::

    from repro.scale import Scenario

    scenario = Scenario.from_json(open("deployment.json").read())
    result = scenario.run(workers=4)
    print(result.digest, result.cell_slots_per_second)

See :mod:`repro.scale.spec` for the spec schema,
:mod:`repro.scale.registry` for the middlebox stage names a spec may
reference, and :mod:`repro.scale.shard` for the placement rules (cells
sharing a ``group`` are never split across workers).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.scale.arena import (
    ArenaFrameError,
    ArenaFullError,
    RingBuffer,
    SharedArena,
    read_payload,
    validate_descriptor,
    write_payload,
)
from repro.scale.build import BuiltCell, BuiltGroup, build_groups
from repro.scale.pool import DEFAULT_ARENA_BYTES, JOIN_TIMEOUT_S, WorkerPool
from repro.scale.registry import (
    STAGE_REGISTRY,
    StageBuildContext,
    build_stage,
    register_stage,
    stage_names,
)
from repro.scale.runner import (
    GroupResult,
    ScenarioResult,
    run_groups_inline,
    run_scenario,
)
from repro.scale.shard import ShardPlan, plan_shards
from repro.scale.spec import (
    SPEC_VERSION,
    CellSpec,
    FlowSpec,
    ObsSpec,
    RuSpec,
    ScenarioSpec,
    StageSpec,
    SupervisorSpec,
    UeSpec,
)
from repro.scale.supervisor import (
    ShardRecoveryExhausted,
    SupervisedWorkerPool,
)


class Scenario:
    """Convenience wrapper pairing a :class:`ScenarioSpec` with execution.

    Constructible from a spec, a dict, a JSON string, or a JSON file; the
    underlying plain-data spec stays reachable as ``.spec``.
    """

    def __init__(self, spec: ScenarioSpec):
        self.spec = spec

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        return cls(ScenarioSpec.from_dict(data))

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls(ScenarioSpec.from_json(text))

    @classmethod
    def from_file(cls, path) -> "Scenario":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    @property
    def name(self) -> str:
        return self.spec.name

    def to_dict(self) -> Dict[str, Any]:
        return self.spec.to_dict()

    def to_json(self, indent: int = 2) -> str:
        return self.spec.to_json(indent=indent)

    def build(self, groups: Optional[List[str]] = None) -> List[BuiltGroup]:
        """Materialize the live objects without running anything."""
        return build_groups(self.spec, groups)

    def plan(self, workers: int) -> ShardPlan:
        return plan_shards(self.spec, workers)

    def run(self, workers: int = 1, bus=None, tail=None) -> ScenarioResult:
        """Execute the scenario; ``workers=1`` is exact single-process.

        ``bus``/``tail`` stream live telemetry (epoch summaries, SLO
        alerts) while the run executes; see
        :func:`~repro.scale.runner.run_scenario`.
        """
        return run_scenario(self.spec, workers=workers, bus=bus, tail=tail)


def run(scenario, workers: int = 1) -> ScenarioResult:
    """Run a scenario given as a Scenario, ScenarioSpec, dict, or JSON."""
    if isinstance(scenario, Scenario):
        spec = scenario.spec
    elif isinstance(scenario, ScenarioSpec):
        spec = scenario
    elif isinstance(scenario, dict):
        spec = ScenarioSpec.from_dict(scenario)
    elif isinstance(scenario, str):
        spec = ScenarioSpec.from_json(scenario)
    else:
        raise TypeError(
            "run() wants a Scenario, ScenarioSpec, dict, or JSON string; "
            f"got {type(scenario).__name__}"
        )
    return run_scenario(spec, workers=workers)


__all__ = [
    "DEFAULT_ARENA_BYTES",
    "JOIN_TIMEOUT_S",
    "SPEC_VERSION",
    "STAGE_REGISTRY",
    "ArenaFrameError",
    "ArenaFullError",
    "BuiltCell",
    "BuiltGroup",
    "CellSpec",
    "FlowSpec",
    "GroupResult",
    "ObsSpec",
    "RingBuffer",
    "RuSpec",
    "Scenario",
    "ScenarioResult",
    "ScenarioSpec",
    "SharedArena",
    "ShardPlan",
    "ShardRecoveryExhausted",
    "StageBuildContext",
    "StageSpec",
    "SupervisedWorkerPool",
    "SupervisorSpec",
    "UeSpec",
    "WorkerPool",
    "build_groups",
    "build_stage",
    "plan_shards",
    "read_payload",
    "register_stage",
    "run",
    "run_groups_inline",
    "run_scenario",
    "stage_names",
    "validate_descriptor",
    "write_payload",
]
