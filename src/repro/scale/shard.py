"""Deterministic shard planning over atomic coupling groups.

The planner never splits a coupling group: cells that share a middlebox
touchpoint (a cross-cell DAS merge, a shared RU) always land on one
shard, so every packet-level interaction stays worker-local and the only
coordination a sharded run ever needs is the per-batch barrier at the
coordinator.  Placement is greedy LPT (heaviest group first onto the
lightest shard) with name tie-breaks, so the same spec always yields the
same plan — a precondition for the sharded-equals-single-process check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.scale.spec import ScenarioSpec


@dataclass
class ShardPlan:
    """Which coupling groups run on which worker."""

    #: shard index -> group names, in execution order.
    shards: List[List[str]] = field(default_factory=list)
    #: Cross-cell touchpoints: multi-cell group name -> its cell names.
    #: These are exactly the couplings that force atomic placement.
    touchpoints: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def workers(self) -> int:
        return len(self.shards)

    def shard_of(self, group: str) -> int:
        for index, names in enumerate(self.shards):
            if group in names:
                return index
        raise KeyError(f"group {group!r} not in plan")


def plan_shards(spec: ScenarioSpec, workers: int) -> ShardPlan:
    """Partition the spec's coupling groups across ``workers`` shards.

    Groups are weighed by cell count (the slot loop cost scales with the
    number of DUs driven).  More workers than groups would idle, so the
    shard count is capped at the group count.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    grouped = spec.groups()
    workers = min(workers, len(grouped))
    # Heaviest first; name breaks ties so the plan is reproducible.
    ordered = sorted(
        grouped.items(), key=lambda item: (-len(item[1]), item[0])
    )
    plan = ShardPlan(shards=[[] for _ in range(workers)])
    loads = [0] * workers
    for name, members in ordered:
        lightest = loads.index(min(loads))
        plan.shards[lightest].append(name)
        loads[lightest] += len(members)
        if len(members) > 1:
            plan.touchpoints[name] = [cell.name for cell in members]
    # Execution order inside a shard follows spec declaration order.
    declaration = {name: i for i, name in enumerate(grouped)}
    for names in plan.shards:
        names.sort(key=declaration.__getitem__)
    return plan


def rebalance_plan(plan: ShardPlan, spec: ScenarioSpec) -> ShardPlan:
    """Adapt ``plan`` to a mutated ``spec`` without moving live groups.

    The live control plane mutates a *running* scenario, and a running
    group is warm state on a specific worker — moving it would force a
    rebuild-and-replay for a group the delta never touched.  So unlike
    :func:`plan_shards` this keeps every surviving group exactly where
    it is, drops evicted groups, and places only the *new* groups
    (heaviest first onto the lightest shard, name tie-breaks).  The
    worker count is fixed: the pool's processes already exist.

    Deterministic like everything else in the shard layer: the same
    (plan, spec) pair always yields the same rebalanced plan.
    """
    grouped = spec.groups()
    shards = [
        [name for name in names if name in grouped]
        for names in plan.shards
    ]
    placed = {name for names in shards for name in names}
    loads = [
        sum(len(grouped[name]) for name in names) for names in shards
    ]
    fresh = sorted(
        (name for name in grouped if name not in placed),
        key=lambda name: (-len(grouped[name]), name),
    )
    for name in fresh:
        lightest = loads.index(min(loads))
        shards[lightest].append(name)
        loads[lightest] += len(grouped[name])
    declaration = {name: i for i, name in enumerate(grouped)}
    for names in shards:
        names.sort(key=declaration.__getitem__)
    rebalanced = ShardPlan(shards=shards)
    for name, members in grouped.items():
        if len(members) > 1:
            rebalanced.touchpoints[name] = [cell.name for cell in members]
    return rebalanced
