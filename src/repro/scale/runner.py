"""Scenario execution: one process or a sharded worker pool, same results.

Both execution modes funnel through :func:`run_groups_inline`: each
coupling group is built fresh from the spec (never pickled live), driven
by its own :class:`~repro.sim.engine.EventEngine` whose ``shard`` id is
the *group name* — so merged timelines sort identically no matter which
worker ran which group — and summarized into a :class:`GroupResult` of
plain data: slot reports, DU/RU counters, middlebox stats, uplink IQ
hashes, and a canonical-JSON sha256 digest over all of it.

The sharded path runs on the persistent shared-memory worker pool
(:class:`~repro.scale.pool.WorkerPool`): one long-lived worker per shard
of the :func:`~repro.scale.shard.plan_shards` plan, barrier *epochs* of
:meth:`~repro.scale.spec.ScenarioSpec.effective_epoch_slots` slots
instead of per-batch-slot round-trips, and bulk results moving through a
preallocated :class:`~repro.scale.arena.SharedArena` ring with only tiny
descriptors on the control pipe — sound because coupling groups are
atomic, so no packet ever crosses a shard boundary.  Workers ship back
GroupResults (plain data) which merge into one :class:`ScenarioResult`:
digests combine order-independently, metrics snapshots fold additively
via :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`, timelines
merge deterministically via :func:`~repro.sim.engine.merge_timelines`.

Wall-clock-dependent series (``middlebox_wall_ns`` etc.) stay out of the
digest on purpose: the digest certifies *simulation* results, which must
be byte-identical across worker counts; wall time legitimately differs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.conformance import ConformanceReport
from repro.obs.exposition import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.stream import GroupStreamSource, TelemetryStream
from repro.scale.build import BuiltGroup, build_groups
from repro.scale.shard import ShardPlan
from repro.scale.spec import ScenarioSpec
from repro.sim.engine import EventEngine, TimelineEntry, merge_timelines


@dataclass
class GroupResult:
    """Plain-data summary of one coupling group's run (picklable)."""

    name: str
    cells: int
    slots: int
    events: int
    reports: List[Dict[str, Any]]
    cell_counters: Dict[str, Dict[str, Any]]
    middlebox_stats: List[Dict[str, Any]]
    timeline: List[TimelineEntry]
    metrics: Dict[str, Dict[str, Any]]
    #: Serialized ConformanceReport of the group's validator (empty when
    #: the spec did not request conformance).  Ships as plain data over
    #: the worker pipe like everything else here.
    conformance: Dict[str, Any] = field(default_factory=dict)
    digest: str = ""

    def __post_init__(self) -> None:
        if not self.digest:
            self.digest = self._compute_digest()

    def _compute_digest(self) -> str:
        """Canonical sha256 over the simulation-visible results only."""
        payload = {
            "group": self.name,
            "slots": self.slots,
            "reports": self.reports,
            "cells": self.cell_counters,
            "middleboxes": self.middlebox_stats,
        }
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class ScenarioResult:
    """The merged outcome of a scenario run (any worker count)."""

    name: str
    workers: int
    wall_seconds: float
    groups: Dict[str, GroupResult] = field(default_factory=dict)
    plan: Optional[ShardPlan] = None
    #: Sharded-run IPC accounting from the worker pool: epochs run,
    #: bytes moved through the shared-memory arena, pipe fallbacks.
    #: Empty for single-process runs; never part of the digest.
    transport: Dict[str, int] = field(default_factory=dict)
    #: The run's live :class:`~repro.obs.stream.TelemetryStream` fold
    #: (``None`` when the spec's obs is disabled).  After the final
    #: epoch its registry snapshot equals :meth:`metrics`' snapshot bit
    #: for bit — ``collect()`` is a consumer of the stream, not a second
    #: source of truth.  Never part of the digest.
    telemetry: Optional[TelemetryStream] = None
    #: Supervised-pool recovery accounting: worker restart counts,
    #: replayed slots, and the failure log (empty for unsupervised or
    #: healthy runs).  Wall-clock territory — never part of the digest.
    recovery: Dict[str, Any] = field(default_factory=dict)

    @property
    def cells(self) -> int:
        return sum(result.cells for result in self.groups.values())

    @property
    def slots(self) -> int:
        return max(
            (result.slots for result in self.groups.values()), default=0
        )

    @property
    def cell_slots_per_second(self) -> float:
        """Throughput: cell-slots simulated per wall second."""
        if not self.wall_seconds:
            return 0.0
        return self.cells * self.slots / self.wall_seconds

    @property
    def digest(self) -> str:
        """Order-independent combination of the group digests.

        Identical across any shard plan if and only if every group
        produced byte-identical results.
        """
        combined = hashlib.sha256()
        for name in sorted(self.groups):
            combined.update(name.encode())
            combined.update(self.groups[name].digest.encode())
        return combined.hexdigest()

    def timeline(self) -> List[TimelineEntry]:
        """One deterministic global event order across all groups."""
        return merge_timelines(
            result.timeline for result in self.groups.values()
        )

    def metrics(self) -> MetricsRegistry:
        """All shards' metric snapshots folded into one registry."""
        registry = MetricsRegistry()
        for name in sorted(self.groups):
            registry.merge_snapshot(self.groups[name].metrics)
        return registry

    def exposition(self) -> str:
        """The merged metrics as Prometheus text."""
        return render_prometheus(self.metrics())

    def conformance_report(self) -> ConformanceReport:
        """Every shard's validator report merged into one.

        Empty (zero frames, zero violations) when the spec did not set
        ``obs.conformance``.
        """
        merged = ConformanceReport()
        for name in sorted(self.groups):
            data = self.groups[name].conformance
            if data:
                merged.merge(ConformanceReport.from_dict(data))
        return merged


# -- single-group execution (both modes call this) ---------------------------


def _uplink_sha256(du) -> str:
    """Hash every uplink reception's wire-level IQ (order-sensitive)."""
    digest = hashlib.sha256()
    for reception in du.uplink_receptions:
        digest.update(
            f"{reception.time.frame},{reception.time.subframe},"
            f"{reception.time.slot},{reception.time.symbol},"
            f"{reception.ru_port}".encode()
        )
        for section in reception.sections:
            digest.update(
                f"{section.section_id},{section.start_prb},"
                f"{section.num_prb}".encode()
            )
            digest.update(section.payload_bytes())
    return digest.hexdigest()


def _summarize_group(group: BuiltGroup) -> GroupResult:
    """Freeze one group into plain data.

    ``slots``/``events`` come from the group's own execution accounting
    (:attr:`~repro.scale.build.BuiltGroup.slots_run`), not from the spec
    or the report count, so a result always states what actually ran.
    """
    cell_counters: Dict[str, Dict[str, Any]] = {}
    for built in group.cells:
        cell_counters[built.spec.name] = {
            "du": dataclasses.asdict(built.du.counters),
            "rus": {
                name: dataclasses.asdict(radio.counters)
                for name, (radio, _) in built.rus.items()
            },
            "uplink_sha256": _uplink_sha256(built.du),
        }
    middlebox_stats = [
        {
            "name": box.name,
            "kind": type(box).__name__,
            **dataclasses.asdict(box.stats),
        }
        for box in group.middleboxes
    ]
    return GroupResult(
        name=group.name,
        cells=len(group.cells),
        slots=group.slots_run,
        events=group.events_run,
        reports=[
            dataclasses.asdict(report) for report in group.network.reports
        ],
        cell_counters=cell_counters,
        middlebox_stats=middlebox_stats,
        timeline=list(group.engine.timeline) if group.engine else [],
        metrics=group.obs.registry.snapshot() if group.obs.enabled else {},
        conformance=(
            group.validator.report.to_dict() if group.validator else {}
        ),
    )


def _attach_engines(groups: List[BuiltGroup]) -> None:
    """Give every group an engine keyed by its *group name* (not worker)."""
    for group in groups:
        group.engine = EventEngine(
            obs=group.obs, shard=group.name, record_timeline=True
        )


def _step_groups(groups: List[BuiltGroup], n_slots: int) -> int:
    """Advance every group ``n_slots`` slots through its event engine.

    Slots are scheduled at their nominal nanosecond start so the recorded
    timeline carries real fronthaul timestamps, then the engine drains —
    per-group, so one group's backlog never delays another's slots.
    """
    events = 0
    for group in groups:
        engine = group.engine
        numerology = group.cells[0].config.numerology
        slot_ns = numerology.slot_duration_ns
        first = group.slots_run
        group_events = 0
        for offset in range(n_slots):
            slot_index = first + offset

            def _run_slot(network=group.network):
                network.run_slot()

            engine.schedule_at(
                max(slot_index * slot_ns, engine.now_ns),
                _run_slot,
                label=f"{group.name}/slot{slot_index}",
            )
            group_events += engine.run()
        group.slots_run += n_slots
        group.events_run += group_events
        events += group_events
    return events


def run_groups_inline(
    spec: ScenarioSpec,
    names: Optional[List[str]] = None,
    telemetry: Optional[TelemetryStream] = None,
) -> List[GroupResult]:
    """Build and run a subset of groups to completion in this process.

    With a ``telemetry`` stream the single-process path folds exactly
    what a pool coordinator folds: every group's epoch payload at every
    barrier, cumulative snapshots at the final one.  (Pool *workers*
    pass ``None`` — their payloads cross the arena to the coordinator's
    stream instead.)
    """
    groups = build_groups(spec, names)
    _attach_engines(groups)
    sources: List[GroupStreamSource] = []
    if telemetry is not None and spec.obs.enabled:
        sources = [
            GroupStreamSource(group, shard=0, stream=spec.obs.stream)
            for group in groups
        ]
    epoch = spec.effective_epoch_slots()
    done = 0
    while done < spec.slots:
        step = min(epoch, spec.slots - done)
        _step_groups(groups, step)
        done += step
        if sources:
            telemetry.fold_epoch(
                [
                    source.epoch_payload(final=done >= spec.slots)
                    for source in sources
                ]
            )
    return [_summarize_group(group) for group in groups]


# -- sharded execution --------------------------------------------------------


def run_scenario(
    spec: ScenarioSpec, workers: int = 1, bus=None, tail=None
) -> ScenarioResult:
    """Run a scenario single-process (``workers=1``) or sharded.

    Identical results either way: same builds, same seeds, same per-group
    engines.  Only wall time differs.

    ``bus``/``tail`` feed the run's live telemetry stream (epoch
    summaries and SLO alerts on the
    :class:`~repro.core.telemetry.TelemetryBus`, one JSON line per epoch
    to the ``tail`` file); both are optional and obs-gated.

    The sharded path spins up a one-shot persistent pool
    (:class:`~repro.scale.pool.WorkerPool`); ``wall_seconds`` covers the
    whole thing — fork, parallel worker-side builds, epochs, collect —
    so single-shot numbers stay comparable with earlier benchmarks.
    Keep a pool of your own when running the same spec repeatedly; that
    is what it is for.
    """
    if workers <= 1:
        telemetry = None
        if spec.obs.enabled:
            obs = spec.obs
            telemetry = TelemetryStream(
                bus=bus,
                slo_specs=obs.slo_specs(),
                max_spans=(
                    obs.max_spans if obs.max_spans is not None else 4096
                ),
                sketch_accuracy=obs.sketch_accuracy,
                tail=tail,
                source=f"inline:{spec.name}",
            )
        started = time.perf_counter()
        results = run_groups_inline(spec, telemetry=telemetry)
        wall = time.perf_counter() - started
        return ScenarioResult(
            name=spec.name,
            workers=1,
            wall_seconds=wall,
            groups={result.name: result for result in results},
            telemetry=telemetry,
        )

    if spec.supervised():
        from repro.scale.supervisor import SupervisedWorkerPool as pool_cls
    else:
        from repro.scale.pool import WorkerPool as pool_cls

    started = time.perf_counter()
    with pool_cls(spec, workers, bus=bus, tail=tail) as pool:
        result = pool.run()
    result.wall_seconds = time.perf_counter() - started
    return result
