"""The declarative Scenario API: plain-data deployment descriptions.

A :class:`ScenarioSpec` describes a multi-cell RANBooster deployment —
cells (DU + RUs + UE population + traffic), vendor stack profiles, chain
stages by registered name, fault and observability configuration, seeds —
as a dict/JSON-serializable value.  ``ScenarioSpec.build()`` (in
:mod:`repro.scale.build`) materializes today's live objects from it, so
the exact same JSON drives a single-process run and a sharded
multiprocessing run with no code changes.

Coupling model: cells that share a middlebox touchpoint (a DAS merge
group spanning cells, a shared RU muxed among several DUs) declare the
same ``group``.  A group is the atomic unit of placement — the shard
planner never splits one, so DAS merges and shared-RU muxing always
execute at full packet fidelity inside one worker, and no packet ever
crosses a shard boundary.

Everything here is deliberately dumb data: no live objects, no numpy, no
callables.  ``to_dict``/``from_dict`` round-trip exactly; unknown keys
are rejected so stale specs fail loudly instead of silently dropping
configuration.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Spec format version; bumped on incompatible layout changes.
SPEC_VERSION = 1

_FLOW_KINDS = ("cbr", "poisson")
_DIRECTIONS = ("dl", "ul")


def _check_keys(kind: str, data: Dict[str, Any], allowed: Sequence[str]) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        raise KeyError(f"{kind} spec has unknown keys: {sorted(unknown)}")


@dataclass(frozen=True)
class FlowSpec:
    """One traffic generator bound to a UE (an iperf equivalent)."""

    kind: str = "cbr"
    rate_mbps: float = 50.0
    direction: str = "dl"
    name: str = ""
    packet_bits: int = 12_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _FLOW_KINDS:
            raise ValueError(f"flow kind must be one of {_FLOW_KINDS}")
        if self.direction not in _DIRECTIONS:
            raise ValueError(f"flow direction must be one of {_DIRECTIONS}")
        if self.rate_mbps < 0:
            raise ValueError("flow rate must be non-negative")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FlowSpec":
        _check_keys("flow", data, cls.__dataclass_fields__)
        return cls(**data)


@dataclass(frozen=True)
class UeSpec:
    """One UE of a cell's population: link quality plus traffic flows."""

    ue_id: str
    dl_layers: int = 2
    dl_aggregate_se: float = 10.0
    ul_se: float = 3.0
    flows: Tuple[FlowSpec, ...] = ()

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "UeSpec":
        _check_keys("ue", data, cls.__dataclass_fields__)
        data = dict(data)
        data["flows"] = tuple(
            FlowSpec.from_dict(flow) for flow in data.get("flows", ())
        )
        return cls(**data)


@dataclass(frozen=True)
class RuSpec:
    """One radio unit: antennas, placement, and its noise seed."""

    name: str
    n_antennas: int = 2
    #: PRBs of the RU grid; ``None`` inherits the cell's grid size.  A
    #: shared RU hosting several cells sets this wide enough to span
    #: every guest's spectrum slice.
    num_prb: Optional[int] = None
    #: RU grid center; ``None`` inherits the cell's center frequency.
    center_frequency_hz: Optional[float] = None
    #: (x metres, y metres, floor, height metres).
    position: Tuple[float, float, int, float] = (0.0, 0.0, 0, 3.0)
    seed: Optional[int] = None

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RuSpec":
        _check_keys("ru", data, cls.__dataclass_fields__)
        data = dict(data)
        if "position" in data:
            data["position"] = tuple(data["position"])
        return cls(**data)


@dataclass(frozen=True)
class StageSpec:
    """One middlebox chain stage, by registered factory name.

    ``stage`` names a factory in the stage registry
    (:mod:`repro.scale.registry`); ``params`` is the factory's plain-data
    configuration, resolving cells and RUs by spec name.
    """

    stage: str
    params: Dict[str, Any] = field(default_factory=dict)
    name: str = ""

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StageSpec":
        _check_keys("stage", data, cls.__dataclass_fields__)
        data = dict(data)
        data["params"] = dict(data.get("params", {}))
        return cls(**data)


@dataclass(frozen=True)
class CellSpec:
    """One cell: a DU, its RUs, its UE population, and its chain."""

    name: str
    pci: int
    bandwidth_hz: int = 40_000_000
    #: ``None`` keeps the CellConfig default (3.46 GHz); shared-RU cells
    #: set explicit slice centers inside the host RU's grid.
    center_frequency_hz: Optional[float] = None
    n_antennas: int = 2
    max_dl_layers: int = 2
    #: Vendor stack profile name (``repro.ran.stacks.profile_by_name``).
    profile: str = "srsRAN"
    #: Wire codec for this cell's eAxC streams: ``"bfp"``, ``"modcomp"``,
    #: or ``None`` to let the stack's preference win the negotiation
    #: (:func:`repro.ran.stacks.negotiate_compression`).
    codec: Optional[str] = None
    symbols_per_slot: int = 1
    seed: Optional[int] = None
    #: Coupling group: cells naming the same group run in one network on
    #: one shard (their chains concatenate in spec order).  ``None`` puts
    #: the cell in its own singleton group.
    group: Optional[str] = None
    deadline_flush: bool = False
    #: Declarative fault spec for the access wire (repro.faults.registry).
    wire: Optional[Dict[str, Any]] = None
    rus: Tuple[RuSpec, ...] = ()
    ues: Tuple[UeSpec, ...] = ()
    chain: Tuple[StageSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.rus:
            raise ValueError(f"cell {self.name!r} needs at least one RU")
        if self.codec is not None and self.codec not in ("bfp", "modcomp"):
            raise ValueError(
                f"cell {self.name!r} names unknown codec {self.codec!r}; "
                "expected 'bfp' or 'modcomp'"
            )

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellSpec":
        _check_keys("cell", data, cls.__dataclass_fields__)
        data = dict(data)
        data["rus"] = tuple(RuSpec.from_dict(ru) for ru in data.get("rus", ()))
        data["ues"] = tuple(UeSpec.from_dict(ue) for ue in data.get("ues", ()))
        data["chain"] = tuple(
            StageSpec.from_dict(stage) for stage in data.get("chain", ())
        )
        if data.get("wire") is not None:
            data["wire"] = dict(data["wire"])
        return cls(**data)


@dataclass(frozen=True)
class ObsSpec:
    """Observability configuration of a scenario run."""

    enabled: bool = False
    sample_every: int = 1
    #: Attach a per-group DeadlineAccountant (30 us slot budget).
    deadline_accounting: bool = False
    #: Attach a per-group wire-level conformance validator at RU/DU
    #: ingress; per-shard reports merge in the ScenarioResult.
    conformance: bool = False
    #: Stream the full telemetry plane at every barrier epoch: sampled
    #: spans, deadline accounts and conformance deltas ride the arena
    #: lane beside the metric deltas, and the coordinator folds them
    #: live (see :mod:`repro.obs.stream`).  Implies nothing when
    #: ``enabled`` is False.
    stream: bool = False
    #: Relative accuracy of every quantile sketch the run creates
    #: (slot-latency percentiles, eval CDFs).
    sketch_accuracy: float = 0.01
    #: Flight-recorder ring size per group (and for the coordinator's
    #: stream fold); ``None`` keeps the recorder default (4096).
    max_spans: Optional[int] = None
    #: Override the deadline budget (ns); ``None`` keeps the paper's
    #: 30 us allowance.  Chaos/SLO tests pin a tiny budget here to make
    #: burn-rate alerts deterministic.
    deadline_budget_ns: Optional[float] = None
    #: Declarative SLO specs evaluated over the stream (plain dicts,
    #: see :class:`repro.obs.slo.SloSpec`).  Empty means no engine.
    slo: Tuple[Dict[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 < self.sketch_accuracy < 1.0:
            raise ValueError("sketch_accuracy must be in (0, 1)")
        if self.max_spans is not None and self.max_spans < 1:
            raise ValueError("max_spans must be >= 1 when set")
        if self.deadline_budget_ns is not None and self.deadline_budget_ns <= 0:
            raise ValueError("deadline_budget_ns must be positive when set")

    def slo_specs(self):
        """The parsed :class:`~repro.obs.slo.SloSpec` objects."""
        from repro.obs.slo import SloSpec

        return tuple(SloSpec.from_dict(dict(entry)) for entry in self.slo)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ObsSpec":
        _check_keys("obs", data, cls.__dataclass_fields__)
        data = dict(data)
        if "slo" in data:
            data["slo"] = tuple(dict(entry) for entry in data["slo"])
        return cls(**data)


@dataclass(frozen=True)
class SupervisorSpec:
    """Self-healing policy for the supervised worker pool.

    ``barrier_timeout_s`` bounds how long the coordinator waits on any
    one worker's barrier reply before declaring it hung (the poll loop
    also notices a crashed worker much sooner, via ``is_alive``).
    ``max_restarts_per_worker`` caps recovery attempts per shard within
    one run; exceeding it raises
    :class:`~repro.scale.supervisor.ShardRecoveryExhausted` instead of
    retrying forever.  Respawn attempts back off geometrically
    (``backoff_base_s * backoff_factor ** restarts_so_far``).
    """

    barrier_timeout_s: float = 30.0
    poll_interval_s: float = 0.05
    max_restarts_per_worker: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.barrier_timeout_s <= 0:
            raise ValueError("barrier_timeout_s must be positive")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if self.max_restarts_per_worker < 0:
            raise ValueError("max_restarts_per_worker must be >= 0")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SupervisorSpec":
        _check_keys("supervisor", data, cls.__dataclass_fields__)
        return cls(**data)


def assert_same_run_shape(old: "ScenarioSpec", new: "ScenarioSpec") -> None:
    """Reject mutations that change anything but the cell population.

    Live delta application (:meth:`~repro.scale.pool.WorkerPool.mutate`)
    rebases *cells* onto a running horizon; the run's own shape — slots,
    seeds, barrier cadence, observability plane, supervision policy —
    must stay fixed, because epochs already confirmed were produced
    under it.  Raises ``ValueError`` naming the offending fields.
    """
    old_data = old.to_dict()
    new_data = new.to_dict()
    old_data.pop("cells")
    new_data.pop("cells")
    changed = sorted(
        key
        for key in set(old_data) | set(new_data)
        if old_data.get(key) != new_data.get(key)
    )
    if changed:
        raise ValueError(
            f"live mutation may only change cells; these differ: {changed}"
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete multi-cell deployment description."""

    name: str
    cells: Tuple[CellSpec, ...]
    slots: int = 20
    seed: int = 0
    #: Barrier cadence for sharded runs: workers synchronize with the
    #: coordinator every ``batch_slots`` slots.  ``None`` lets shards
    #: free-run the whole horizon — sound because coupled cells are
    #: always co-scheduled, so there are no cross-shard touchpoints.
    batch_slots: Optional[int] = None
    #: Barrier-epoch length for the persistent worker pool: workers
    #: free-run ``epoch_slots`` slots between coordinator barriers,
    #: shipping only tiny per-epoch deltas at each boundary.  Takes
    #: precedence over ``batch_slots``; ``None`` falls back to
    #: ``batch_slots``, and with both unset shards free-run the whole
    #: horizon (the coarsest — and fastest — epoch).
    epoch_slots: Optional[int] = None
    #: Shared-memory ring bytes preallocated per pool worker for epoch
    #: deltas and collected results.  ``None`` uses the pool default
    #: (4 MiB); payloads that outgrow the ring fall back to the control
    #: pipe, so undersizing costs speed, never correctness.
    arena_bytes_per_worker: Optional[int] = None
    obs: ObsSpec = field(default_factory=ObsSpec)
    #: Self-healing policy for sharded runs; ``None`` keeps the plain
    #: fail-fast pool unless ``process_chaos`` forces supervision.
    supervisor: Optional[SupervisorSpec] = None
    #: Declarative process-level failure injections (plain dicts, see
    #: :class:`repro.faults.process.ProcessChaosSpec`).  Ignored by the
    #: inline (workers <= 1) path — there is no process to kill.
    process_chaos: Tuple[Dict[str, Any], ...] = ()
    version: int = SPEC_VERSION

    def __post_init__(self) -> None:
        if not self.cells:
            raise ValueError("a scenario needs at least one cell")
        if self.slots < 1:
            raise ValueError("slots must be >= 1")
        if self.batch_slots is not None and self.batch_slots < 1:
            raise ValueError("batch_slots must be >= 1 when set")
        if self.epoch_slots is not None and self.epoch_slots < 1:
            raise ValueError("epoch_slots must be >= 1 when set")
        if (
            self.arena_bytes_per_worker is not None
            and self.arena_bytes_per_worker < 4096
        ):
            raise ValueError("arena_bytes_per_worker must be >= 4096 when set")
        names = [cell.name for cell in self.cells]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate cell names: {names}")
        ru_names = [ru.name for cell in self.cells for ru in cell.rus]
        if len(set(ru_names)) != len(ru_names):
            raise ValueError(f"duplicate RU names: {ru_names}")
        if self.version != SPEC_VERSION:
            raise ValueError(
                f"spec version {self.version} != supported {SPEC_VERSION}"
            )

    # -- derived structure ---------------------------------------------------

    def groups(self) -> Dict[str, List[CellSpec]]:
        """Coupling groups in declaration order: group name -> cells."""
        grouped: Dict[str, List[CellSpec]] = {}
        for cell in self.cells:
            grouped.setdefault(cell.group or cell.name, []).append(cell)
        return grouped

    def cell_index(self, name: str) -> int:
        for index, cell in enumerate(self.cells):
            if cell.name == name:
                return index
        raise KeyError(f"unknown cell {name!r}")

    def cell_seed(self, cell: CellSpec) -> int:
        """Deterministic per-cell seed, stable under any sharding."""
        if cell.seed is not None:
            return cell.seed
        return self.seed * 1000 + self.cell_index(cell.name)

    def effective_epoch_slots(self) -> int:
        """The barrier cadence a run actually uses: ``epoch_slots``,
        else ``batch_slots``, else the whole horizon (free-run)."""
        return self.epoch_slots or self.batch_slots or self.slots

    def ru_id_base(self, cell_name: str) -> int:
        """Global 1-based RU id of the cell's first RU (spec-order stable)."""
        base = 1
        for candidate in self.cells:
            if candidate.name == cell_name:
                return base
            base += len(candidate.rus)
        raise KeyError(f"unknown cell {cell_name!r}")

    def group_fingerprints(self) -> Dict[str, str]:
        """Build-identity fingerprint of every coupling group.

        Two specs whose fingerprints agree for a group build
        byte-identical live objects for it: the fingerprint covers each
        member cell's full plain-data description *and* every derived
        identity the builder consumes — global cell index (du_id),
        global RU id base, and the effective per-cell seed.  Live
        mutation (:mod:`repro.serve.delta`) uses this to decide which
        groups a delta actually disturbs: only groups whose fingerprint
        changed are rebuilt and replayed, everything else keeps running
        untouched.
        """
        fingerprints: Dict[str, str] = {}
        for name, members in self.groups().items():
            payload = [
                {
                    "cell": asdict(cell),
                    "index": self.cell_index(cell.name),
                    "ru_id_base": self.ru_id_base(cell.name),
                    "seed": self.cell_seed(cell),
                }
                for cell in members
            ]
            canonical = json.dumps(payload, sort_keys=True)
            fingerprints[name] = hashlib.sha256(canonical.encode()).hexdigest()
        return fingerprints

    def chaos_specs(self):
        """The parsed process-chaos injections (deferred import, like
        :meth:`ObsSpec.slo_specs`, to keep the spec layer standalone)."""
        from repro.faults.process import ProcessChaosSpec

        return tuple(
            ProcessChaosSpec.from_dict(dict(entry))
            for entry in self.process_chaos
        )

    def supervised(self) -> bool:
        """Should a sharded run use the self-healing pool?  Explicitly
        configured supervision, or any chaos injection (an unsupervised
        chaos run would just crash)."""
        return self.supervisor is not None or bool(self.process_chaos)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe; tuples become lists), chosen so
        ``to_dict`` output compares equal to ``json.loads(to_json())``."""
        return json.loads(json.dumps(asdict(self)))

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        _check_keys("scenario", data, cls.__dataclass_fields__)
        data = dict(data)
        data["cells"] = tuple(
            CellSpec.from_dict(cell) for cell in data.get("cells", ())
        )
        if "obs" in data:
            data["obs"] = ObsSpec.from_dict(data["obs"])
        if data.get("supervisor") is not None:
            data["supervisor"] = SupervisorSpec.from_dict(data["supervisor"])
        if "process_chaos" in data:
            data["process_chaos"] = tuple(
                dict(entry) for entry in data["process_chaos"]
            )
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    # -- live objects -----------------------------------------------------------

    def build(self):
        """Materialize every coupling group as live objects.

        Returns ``List[BuiltGroup]`` (see :mod:`repro.scale.build`); the
        import is deferred so the spec layer stays dependency-free.
        """
        from repro.scale.build import build_groups

        return build_groups(self)
