"""The persistent shared-memory worker pool behind sharded execution.

PR 4's runner forked a fresh set of workers for every run, synchronized
them every ``batch_slots`` batch, and shipped all results back as one
pipe pickle — which BENCH_4.json showed *losing* to single-process.
This pool keeps the same sharding contract (byte-identical digests at
any worker count) while removing all three overheads:

1. **Workers outlive a run.**  ``start()`` forks one worker per shard of
   the :func:`~repro.scale.shard.plan_shards` plan; each builds its
   coupling groups once and then serves commands.  A later ``run()``
   rebuilds worker-side state with a ``reset`` command instead of
   re-forking, so a service, a benchmark sweep, or a parameter study
   amortizes process creation and module state across runs.
2. **Barrier epochs, not batch slots.**  The coordinator barriers every
   :meth:`~repro.scale.spec.ScenarioSpec.effective_epoch_slots` slots
   (default: the whole horizon — the coarsest epoch) and each ack
   carries only ``(slots, events, telemetry-payload descriptor)``.
   Telemetry accumulates worker-side between barriers (metric deltas
   always; spans, deadline accounts and conformance deltas when the
   spec streams) and folds into the coordinator's
   :attr:`WorkerPool.telemetry` stream at each epoch boundary, so long
   runs expose progressing telemetry without per-slot chatter.
3. **Shared-memory transport.**  Bulk payloads (epoch metric deltas and
   the collected :class:`~repro.scale.runner.GroupResult` lists) travel
   through a preallocated :class:`~repro.scale.arena.SharedArena` ring
   per worker; only tiny ``(offset, nbytes, watermark)`` tuples cross
   the control pipe.  A payload that outgrows its ring falls back to
   the pipe for that payload — slower, never wrong.

Teardown is unconditional: normal exit, a coordinator exception mid-run
and a crashed worker all funnel through :meth:`WorkerPool.close`, which
drains workers (``exit`` then join, terminate, kill), closes the control
pipes and unlinks the shared-memory segment.  A ``weakref.finalize``
backstop covers even a dropped, never-closed pool.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
import weakref
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.stream import GroupStreamSource, TelemetryStream
from repro.scale.arena import (
    ArenaFullError,
    SharedArena,
    payload_nbytes,
    payload_watermark,
    read_payload,
    unlink_segment,
    validate_descriptor,
    write_payload,
)
from repro.scale.build import BuiltGroup, build_groups
from repro.scale.shard import plan_shards, rebalance_plan
from repro.scale.spec import ScenarioSpec, assert_same_run_shape

#: Default ring size per worker; collected results that outgrow it fall
#: back to the control pipe, so this trades speed, not correctness.
DEFAULT_ARENA_BYTES = 4 * 1024 * 1024

#: Sentinel marking a payload that had to travel over the control pipe
#: because its ring was full.
_INLINE = "inline"


def _env_join_timeout(default: float = 10.0) -> float:
    """Worker join allowance from ``REPRO_SCALE_JOIN_TIMEOUT`` (seconds)."""
    raw = os.environ.get("REPRO_SCALE_JOIN_TIMEOUT")
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else default


#: How long any teardown path waits for a worker to exit before
#: escalating (graceful join -> SIGTERM -> SIGKILL, each bounded).
#: Override with REPRO_SCALE_JOIN_TIMEOUT for slow CI machines.
JOIN_TIMEOUT_S = _env_join_timeout()


def _stop_process(process, graceful: bool = True) -> None:
    """Bounded-time stop: join, escalate to terminate, escalate to kill.

    ``graceful=True`` first gives the worker ``JOIN_TIMEOUT_S`` to exit
    on its own (it was sent ``exit``); crash/finalizer paths skip
    straight to SIGTERM.  A worker that ignores SIGTERM gets SIGKILL —
    teardown never hangs on an unkillable child.
    """
    if graceful:
        process.join(timeout=JOIN_TIMEOUT_S)
    if process.is_alive():
        process.terminate()
        process.join(timeout=JOIN_TIMEOUT_S / 2)
    if process.is_alive():
        process.kill()
        process.join(timeout=JOIN_TIMEOUT_S / 2)


def _worker_loop(
    conn,
    spec_dict: Dict[str, Any],
    names: List[str],
    arena_name: str,
    region: int,
    regions: int,
    bytes_per_worker: int,
    replay_slots: int = 0,
    chaos_armed: bool = True,
) -> None:
    """Serve pool commands until ``exit``; control pipe carries tuples only.

    Protocol (coordinator -> worker; every command but ``exit`` ends
    with the coordinator's ack watermark, releasing ring space):

    - ``("epoch", n_slots, final, ack)`` advances every local group
      ``n_slots`` and replies ``("ok", n_slots, events,
      payload_descriptor|None, heartbeat)`` where the payload is the
      list of the local groups' telemetry epoch payloads
      (:meth:`~repro.obs.stream.GroupStreamSource.epoch_payload`) —
      metric deltas always, plus spans/deadline/conformance lanes when
      the spec streams.  ``final`` marks the horizon's last epoch, whose
      payloads carry cumulative snapshots.
    - ``("collect", ack)`` summarizes the groups and replies
      ``("result", descriptor, heartbeat)`` — descriptor is
      ``(_INLINE, results)`` when the payload cannot fit the ring.
    - ``("reset", ack)`` rebuilds the groups from the spec (fresh state,
      same bytes as a new fork) and replies ``("ok", 0, 0, None,
      heartbeat)``.
    - ``("mutate", spec_dict, names, rebuild, replay_slots, ack)``
      rebases the worker onto a mutated spec mid-run: groups named in
      ``rebuild`` (plus any newly assigned to this shard) are built
      fresh from the new spec and deterministically fast-forwarded over
      the ``replay_slots`` confirmed prefix (payloads discarded, exactly
      like a respawn), while every other local group keeps its warm
      state untouched.  Replies ``("ok", 0, 0, None, heartbeat)``.
      Nothing is rebound until the new groups are built, so a build
      failure answers ``error`` and leaves the run as it was.
    - ``("exit",)`` leaves the loop; the worker closes its mapping.

    The trailing heartbeat (``{"pid", "clock"}``) lets the supervised
    pool reject replies that cannot have come from the process it is
    barriering on.

    ``replay_slots`` is the respawn fast-forward: a worker replacing a
    failed one replays that many already-completed slots *before*
    serving — stepping its groups and generating-then-discarding each
    epoch's telemetry payloads, so determinism leaves it in exactly the
    state its predecessor confirmed at the last successful barrier (the
    coordinator folded those payloads already; regenerating advances the
    delta baselines without double-counting).  ``chaos_armed=False``
    (the respawn default) disarms one-shot fault injections so recovery
    converges; ``rearm`` injections stay live.

    A build failure is remembered and answered to every command instead
    of closing the pipe, so the coordinator surfaces the traceback
    rather than a BrokenPipeError.
    """
    from repro.faults.process import ProcessChaosAgent, corrupt_descriptor
    from repro.scale.runner import _attach_engines, _step_groups, _summarize_group

    failure: Optional[str] = None
    groups: List[BuiltGroup] = []
    sources: List[GroupStreamSource] = []
    spec: Optional[ScenarioSpec] = None
    arena: Optional[SharedArena] = None
    ring = None
    chaos_agent: Optional[ProcessChaosAgent] = None
    epoch_index = 0

    def _make_sources() -> List[GroupStreamSource]:
        if not spec.obs.enabled:
            return []
        return [
            GroupStreamSource(group, shard=region, stream=spec.obs.stream)
            for group in groups
        ]

    def _heartbeat() -> Dict[str, float]:
        return {"pid": os.getpid(), "clock": time.monotonic()}

    try:
        spec = ScenarioSpec.from_dict(spec_dict)
        groups = build_groups(spec, names)
        _attach_engines(groups)
        sources = _make_sources()
        chaos_agent = ProcessChaosAgent(
            spec.chaos_specs(), region, names, armed=chaos_armed
        )
        # Respawn fast-forward: replay the confirmed prefix of the
        # horizon at the run's epoch cadence.  Payloads are discarded —
        # the coordinator already folded the originals.
        cadence = spec.effective_epoch_slots()
        replayed = 0
        while replayed < replay_slots:
            step = min(cadence, replay_slots - replayed)
            _step_groups(groups, step)
            replayed += step
            for source in sources:
                source.epoch_payload(final=replayed >= spec.slots)
            epoch_index += 1
        arena = SharedArena.attach(arena_name, regions, bytes_per_worker)
        ring = arena.ring(region)
    except Exception:
        failure = traceback.format_exc()

    def ship(obj) -> Any:
        """Frame a bulk payload via the ring, inline over the pipe if full."""
        if ring is not None:
            try:
                return write_payload(ring, obj)
            except ArenaFullError:
                pass
        return (_INLINE, obj)

    while True:
        try:
            command = conn.recv()
        except (EOFError, OSError):  # coordinator vanished: stop serving
            break
        op = command[0]
        if op == "exit":
            break
        try:
            if failure is not None:
                conn.send(("error", failure))
                continue
            if ring is not None:
                ring.release_until(command[-1])
            if op == "epoch":
                chaos = chaos_agent.take(epoch_index)
                epoch_index += 1
                if chaos is not None and chaos.kind == "kill":
                    # Crash mid-epoch: half the slots stepped, no reply,
                    # no cleanup — the harshest failure shape.
                    _step_groups(groups, command[1] // 2)
                    os.kill(os.getpid(), signal.SIGKILL)
                if chaos is not None and chaos.kind == "stall":
                    # Hang through the barrier deadline; if the
                    # supervisor has not killed us by the time the nap
                    # ends we proceed as a merely slow worker.
                    time.sleep(chaos.stall_s)
                if chaos is not None and chaos.kind == "poison":
                    # Protocol-violating reply: alien heartbeat, wrong
                    # slot count, no work done.
                    conn.send(
                        ("ok", command[1], -1, None, {"pid": -1, "clock": 0.0})
                    )
                    continue
                events = _step_groups(groups, command[1])
                descriptor = None
                if sources:
                    descriptor = ship(
                        [
                            source.epoch_payload(final=command[2])
                            for source in sources
                        ]
                    )
                if chaos is not None and chaos.kind == "corrupt_frame":
                    descriptor = corrupt_descriptor(descriptor)
                conn.send(("ok", command[1], events, descriptor, _heartbeat()))
            elif op == "collect":
                results = [_summarize_group(group) for group in groups]
                conn.send(("result", ship(results), _heartbeat()))
            elif op == "reset":
                groups = build_groups(spec, names)
                _attach_engines(groups)
                sources = _make_sources()
                chaos_agent = ProcessChaosAgent(
                    spec.chaos_specs(), region, names, armed=True
                )
                epoch_index = 0
                if ring is not None:
                    ring.reset()
                conn.send(("ok", 0, 0, None, _heartbeat()))
            elif op == "mutate":
                new_spec = ScenarioSpec.from_dict(command[1])
                new_names = list(command[2])
                rebuild = set(command[3])
                replay = command[4]
                kept = {
                    group.name: (group, source)
                    for group, source in zip(
                        groups, sources or [None] * len(groups)
                    )
                    if group.name in new_names and group.name not in rebuild
                }
                fresh_names = [
                    name for name in new_names if name not in kept
                ]
                fresh = build_groups(new_spec, fresh_names)
                _attach_engines(fresh)
                fresh_sources = (
                    [
                        GroupStreamSource(
                            group, shard=region, stream=new_spec.obs.stream
                        )
                        for group in fresh
                    ]
                    if new_spec.obs.enabled
                    else [None] * len(fresh)
                )
                # Fast-forward only the rebuilt groups over the
                # confirmed prefix, at the run's epoch cadence; the
                # generated payloads are discarded — they describe
                # epochs the coordinator already folded.
                cadence = new_spec.effective_epoch_slots()
                replayed = 0
                while replayed < replay:
                    step_slots = min(cadence, replay - replayed)
                    _step_groups(fresh, step_slots)
                    replayed += step_slots
                    for source in fresh_sources:
                        if source is not None:
                            source.epoch_payload(
                                final=replayed >= new_spec.slots
                            )
                by_name = dict(kept)
                by_name.update(
                    {
                        group.name: (group, source)
                        for group, source in zip(fresh, fresh_sources)
                    }
                )
                spec = new_spec
                names = new_names
                groups = [by_name[name][0] for name in new_names]
                sources = (
                    [by_name[name][1] for name in new_names]
                    if spec.obs.enabled
                    else []
                )
                conn.send(("ok", 0, 0, None, _heartbeat()))
            else:
                conn.send(("error", f"unknown command {command!r}"))
        except Exception:
            conn.send(("error", traceback.format_exc()))
    if arena is not None:
        arena.close()
    conn.close()


def _finalize_pool(arena: SharedArena, processes: List) -> None:
    """Last-resort cleanup for a pool dropped without ``close()``."""
    for process in processes:
        if process.is_alive():
            _stop_process(process, graceful=False)
    name = arena.name
    arena.close()
    arena.unlink()
    unlink_segment(name)


def _mp_context():
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


class WorkerPool:
    """Persistent sharded executor for one :class:`ScenarioSpec`.

    Use as a context manager (or call :meth:`close` yourself)::

        with WorkerPool(spec, workers=8) as pool:
            first = pool.run()     # forks + builds once
            second = pool.run()    # reuses live workers (reset + rerun)
            assert first.digest == second.digest

    ``run()`` returns the same :class:`~repro.scale.runner.
    ScenarioResult` the single-process path produces, with
    ``result.transport`` describing how many bytes moved through shared
    memory versus pipe fallbacks.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        workers: int,
        arena_bytes_per_worker: Optional[int] = None,
        bus=None,
        tail=None,
    ):
        self.spec = spec
        self.plan = plan_shards(spec, workers)
        self.workers = self.plan.workers
        self.arena_bytes = (
            arena_bytes_per_worker
            or spec.arena_bytes_per_worker
            or DEFAULT_ARENA_BYTES
        )
        self.bus = bus
        self.tail = tail
        #: The live coordinator fold of every epoch's telemetry payloads
        #: (fresh per run; see :mod:`repro.obs.stream`).
        self.telemetry: TelemetryStream = self._new_stream()
        self._arena: Optional[SharedArena] = None
        self._spec_dict: Dict[str, Any] = {}
        self._connections: List = []
        self._processes: List = []
        self._rings: List = []
        self._acked: List[int] = []
        self._finalizer = None
        self._started = False
        self._closed = False
        self._dirty = False
        self._transport: Dict[str, int] = {}
        self._done = 0
        self._run_started = 0.0

    # -- lifecycle -----------------------------------------------------------

    def _new_stream(self) -> TelemetryStream:
        obs = self.spec.obs
        return TelemetryStream(
            bus=self.bus,
            slo_specs=obs.slo_specs(),
            max_spans=obs.max_spans if obs.max_spans is not None else 4096,
            sketch_accuracy=obs.sketch_accuracy,
            tail=self.tail,
            source=f"pool:{self.spec.name}",
        )

    @property
    def live_metrics(self):
        """The live metric fold (the telemetry stream's registry)."""
        return self.telemetry.registry

    @property
    def arena_name(self) -> Optional[str]:
        """The shared segment's name (``None`` before start/after close)."""
        return self._arena.name if self._arena is not None else None

    def start(self) -> "WorkerPool":
        """Fork the workers and let them build their groups (idempotent)."""
        if self._started:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            return self
        self._started = True
        self._arena = SharedArena.create(self.workers, self.arena_bytes)
        self._finalizer = weakref.finalize(
            self, _finalize_pool, self._arena, self._processes
        )
        self._spec_dict = self.spec.to_dict()
        try:
            for index, names in enumerate(self.plan.shards):
                parent, process = self._spawn_worker(index)
                self._connections.append(parent)
                self._processes.append(process)
                self._rings.append(self._arena.ring(index))
                self._acked.append(0)
        except Exception:
            self.close()
            raise
        return self

    def _spawn_worker(
        self,
        index: int,
        replay_slots: int = 0,
        chaos_armed: bool = True,
    ) -> Tuple[Any, Any]:
        """Fork one worker for shard ``index``; return (pipe, process)."""
        context = _mp_context()
        parent, child = context.Pipe()
        process = context.Process(
            target=_worker_loop,
            args=(
                child,
                self._spec_dict,
                self.plan.shards[index],
                self._arena.name,
                index,
                self.workers,
                self.arena_bytes,
                replay_slots,
                chaos_armed,
            ),
            daemon=True,
        )
        process.start()
        child.close()
        return parent, process

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Tear everything down; safe on every path, safe to call twice."""
        if self._closed:
            return
        self._closed = True
        for conn in self._connections:
            try:
                conn.send(("exit",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for conn in self._connections:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for process in self._processes:
            _stop_process(process, graceful=True)
        if self._arena is not None:
            self._arena.close()
            self._arena.unlink()
        if self._finalizer is not None:
            self._finalizer.detach()

    # -- protocol helpers ----------------------------------------------------

    def _recv(self, index: int):
        try:
            reply = self._connections[index].recv()
        except (EOFError, OSError) as exc:
            code = self._processes[index].exitcode
            raise RuntimeError(
                f"scale worker {index} died mid-command "
                f"(exitcode {code}); shard groups: "
                f"{self.plan.shards[index]}"
            ) from exc
        if reply[0] == "error":
            raise RuntimeError(f"scale worker failed:\n{reply[1]}")
        return reply

    def _read_bulk(self, index: int, descriptor) -> Any:
        """Decode one shipped payload: arena descriptor or inline tuple."""
        if (
            isinstance(descriptor, tuple)
            and len(descriptor) == 2
            and descriptor[0] == _INLINE
        ):
            self._transport["pipe_fallback_payloads"] += 1
            return descriptor[1]
        validate_descriptor(
            self._rings[index], descriptor, released=self._acked[index]
        )
        payload = read_payload(self._rings[index], descriptor)
        self._acked[index] = payload_watermark(descriptor)
        self._transport["arena_payloads"] += 1
        self._transport["arena_bytes"] += payload_nbytes(descriptor)
        return payload

    def _reset(self) -> None:
        for index, conn in enumerate(self._connections):
            conn.send(("reset", self._acked[index]))
        for index in range(len(self._connections)):
            self._recv(index)
            self._acked[index] = 0

    # -- execution -----------------------------------------------------------

    def _begin_run(self) -> None:
        """Per-run state reset (the supervised pool adds its budgets)."""
        if self._dirty:
            self._reset()
        self._dirty = True
        self.telemetry = self._new_stream()
        self._transport = {
            "arena_payloads": 0,
            "arena_bytes": 0,
            "pipe_fallback_payloads": 0,
            "epochs": 0,
        }

    def _epoch_barrier(self, step: int, final: bool, done: int) -> List[Any]:
        """One barrier: every shard runs ``step`` slots, acks collected.

        ``done`` is the count of slots already confirmed before this
        epoch — the fast-forward point a supervised recovery would
        replay to.  Returns the epoch's telemetry payloads flattened in
        worker-index order.
        """
        for index, conn in enumerate(self._connections):
            conn.send(("epoch", step, final, self._acked[index]))
        # Barrier: every shard finishes the epoch before any proceeds;
        # acks are tiny (slots, events, payload descriptor, heartbeat).
        payloads = []
        for index in range(len(self._connections)):
            reply = self._recv(index)
            if reply[0] != "ok":
                raise RuntimeError(
                    f"scale worker protocol error: {reply!r}"
                )
            if reply[3] is not None:
                payloads.extend(self._read_bulk(index, reply[3]))
        return payloads

    def _collect_results(self) -> Dict[str, Any]:
        """Gather every group's summary after the horizon completes."""
        groups = {}
        for index, conn in enumerate(self._connections):
            conn.send(("collect", self._acked[index]))
        for index in range(len(self._connections)):
            reply = self._recv(index)
            if reply[0] != "result":
                raise RuntimeError(
                    f"scale worker protocol error: {reply!r}"
                )
            for result in self._read_bulk(index, reply[1]):
                groups[result.name] = result
        return groups

    def _result(self, wall: float, groups: Dict[str, Any], epoch: int):
        from repro.scale.runner import ScenarioResult

        return ScenarioResult(
            name=self.spec.name,
            workers=self.plan.workers,
            wall_seconds=wall,
            groups=groups,
            plan=self.plan,
            transport=dict(self._transport, epoch_slots=epoch),
            telemetry=self.telemetry if self.spec.obs.enabled else None,
        )

    # -- incremental drive (the live control plane's view of a run) ----------

    @property
    def done(self) -> int:
        """Slots confirmed by every shard so far in the current run."""
        return self._done

    def begin(self) -> "WorkerPool":
        """Open an incrementally-driven run (fork/reset, fresh stream).

        ``run()`` is ``begin()`` + ``advance_epoch()`` to the horizon +
        ``collect()``; a live service drives the same three stages
        itself so it can interleave barriers with control traffic —
        :meth:`mutate` between epochs, :meth:`collect` mid-run.
        """
        self.start()
        self._begin_run()
        self._done = 0
        self._run_started = time.perf_counter()
        return self

    def advance_epoch(self) -> bool:
        """Run one epoch barrier; ``True`` once the horizon is done.

        Telemetry payloads fold into :attr:`telemetry` exactly as in a
        batch run — an incrementally-driven, unmutated run is
        byte-identical to ``run()``.
        """
        if self._done >= self.spec.slots:
            return True
        epoch = self.spec.effective_epoch_slots()
        step = min(epoch, self.spec.slots - self._done)
        final = self._done + step >= self.spec.slots
        payloads = self._epoch_barrier(step, final, self._done)
        if payloads:
            self.telemetry.fold_epoch(payloads)
        self._done += step
        self._transport["epochs"] += 1
        return self._done >= self.spec.slots

    def collect(self):
        """Summarize every group as of the last barrier (mid-run safe).

        Workers summarize without disturbing state, so a mid-run
        collect observes the confirmed prefix — its digest matches a
        from-scratch run of the same spec truncated to :attr:`done`
        slots — and the run then continues to the horizon.
        """
        groups = self._collect_results()
        wall = time.perf_counter() - self._run_started
        return self._result(wall, groups, self.spec.effective_epoch_slots())

    # -- live mutation -------------------------------------------------------

    def _mutate_command(self, index: int, rebuild: List[str]) -> Tuple:
        return (
            "mutate",
            self._spec_dict,
            list(self.plan.shards[index]),
            list(rebuild),
            self._done,
            self._acked[index],
        )

    def _mutate_exchange(self, rebuild: List[str]) -> None:
        for index, conn in enumerate(self._connections):
            conn.send(self._mutate_command(index, rebuild))
        for index in range(len(self._connections)):
            reply = self._recv(index)
            if reply[0] != "ok":
                raise RuntimeError(
                    f"scale worker protocol error: {reply!r}"
                )

    def mutate(self, new_spec: ScenarioSpec) -> Dict[str, Any]:
        """Rebase the live run onto a mutated spec (rebase semantics).

        Only groups whose build fingerprint changed
        (:meth:`~repro.scale.spec.ScenarioSpec.group_fingerprints`) are
        rebuilt and deterministically fast-forwarded over the
        :attr:`done` confirmed slots; untouched groups keep their warm
        worker state, and no process restarts.  The run's results from
        here on are byte-identical to a from-scratch run of the mutated
        spec — the digest oracle survives mutation.

        All validation (run-shape equality, a coordinator-side trial
        build of every disturbed group) happens *before* any worker is
        told anything, so a rejected mutation raises with the run
        untouched.  Call between epochs only — the mutation lands at
        the next barrier.
        """
        if not self._started or self._closed:
            raise RuntimeError("mutate() needs a started, open pool")
        assert_same_run_shape(self.spec, new_spec)
        old_fp = self.spec.group_fingerprints()
        new_fp = new_spec.group_fingerprints()
        rebuild = [
            name for name, fp in new_fp.items() if old_fp.get(name) != fp
        ]
        removed = [name for name in old_fp if name not in new_fp]
        outcome = {
            "rebuilt": list(rebuild),
            "removed": list(removed),
            "replayed_slots": self._done if rebuild else 0,
        }
        if rebuild:
            # Trial build: user-level build errors (a stage factory
            # rejecting its params, say) surface here as a clean
            # rejection instead of as a poisoned shard mid-run.
            build_groups(new_spec, rebuild)
        if not rebuild and not removed:
            self.spec = new_spec
            self._spec_dict = new_spec.to_dict()
            return outcome
        self.plan = rebalance_plan(self.plan, new_spec)
        self.spec = new_spec
        self._spec_dict = new_spec.to_dict()
        self._mutate_exchange(rebuild)
        return outcome

    # -- batch execution -----------------------------------------------------

    def run(self):
        """Execute the spec's horizon once; see module docstring.

        Any error — a worker crash, a protocol violation, a coordinator
        exception between barriers — closes the pool (workers joined,
        segment unlinked) before propagating.
        """
        try:
            self.begin()
            while not self.advance_epoch():
                pass
            result = self.collect()
        except Exception:
            self.close()
            raise
        return result


__all__ = ["DEFAULT_ARENA_BYTES", "JOIN_TIMEOUT_S", "WorkerPool"]
