"""Materialize a :class:`~repro.scale.spec.ScenarioSpec` into live objects.

One *coupling group* (cells sharing a ``group`` name) becomes one
:class:`~repro.sim.network_sim.FronthaulNetwork`: all the group's DUs and
RUs attach to it, and the member cells' chain stages concatenate (in cell
declaration order) into the group's middlebox chain.  Cross-cell
touchpoints — a shared RU, a DAS spanning cells — therefore execute at
full packet fidelity inside the group, which is exactly why the shard
planner treats groups as atomic.

Identifiers are derived deterministically from spec order alone (global
cell index -> du_id, global RU index -> ru_id, scenario seed -> per-cell
seeds), so the same spec builds byte-identical deployments regardless of
which worker builds them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs as obs_module
from repro.conformance import WireValidator
from repro.faults import ImpairedLink, injector_from_spec
from repro.fronthaul.cplane import Direction
from repro.obs import DeadlineAccountant, Observability
from repro.phy.geometry import Position
from repro.ran.cell import CellConfig
from repro.ran.du import DistributedUnit
from repro.ran.ru import RadioUnit, RuConfig
from repro.ran.mplane import RuCapabilities
from repro.ran.stacks import (
    VendorProfile,
    negotiate_compression,
    profile_by_name,
)
from repro.ran.traffic import ConstantBitrateFlow, PoissonFlow
from repro.scale.spec import CellSpec, ScenarioSpec, UeSpec
from repro.sim.network_sim import FronthaulNetwork


@dataclass
class BuiltCell:
    """Live objects of one cell: config, profile, DU, RUs by name."""

    spec: CellSpec
    config: CellConfig
    profile: VendorProfile
    du: DistributedUnit
    rus: Dict[str, Tuple[RadioUnit, Position]] = field(default_factory=dict)


@dataclass
class BuiltGroup:
    """One coupling group, ready to run."""

    name: str
    cells: List[BuiltCell]
    network: FronthaulNetwork
    obs: Observability
    accountant: Optional[DeadlineAccountant] = None
    #: Wire-level conformance validator observing RU/DU ingress (set
    #: when the spec's ``obs.conformance`` is on).
    validator: Optional[WireValidator] = None
    #: Attached by the runner: the group's slot-driving event engine.
    engine: Optional[object] = None
    #: Runner-side accounting: slots this group has actually executed
    #: and events its engine processed — what GroupResult reports, so a
    #: partially-driven group never claims the full horizon.
    slots_run: int = 0
    events_run: int = 0

    @property
    def middleboxes(self):
        return self.network.middleboxes


def _cell_config(cell: CellSpec) -> CellConfig:
    profile = profile_by_name(cell.profile)
    kwargs = dict(
        pci=cell.pci,
        bandwidth_hz=cell.bandwidth_hz,
        n_antennas=cell.n_antennas,
        max_dl_layers=cell.max_dl_layers,
        tdd=profile.tdd,
        # Per-stream codec negotiation: the spec's codec (or the stack's
        # preference) against the model RU's M-plane advertisement.
        compression=negotiate_compression(
            profile, cell.codec, RuCapabilities()
        ),
    )
    if cell.center_frequency_hz is not None:
        kwargs["center_frequency_hz"] = cell.center_frequency_hz
    return CellConfig(**kwargs)


def _attach_ues(du: DistributedUnit, ues: Tuple[UeSpec, ...]) -> None:
    for ue in ues:
        du.scheduler.add_ue(ue.ue_id, dl_layers=ue.dl_layers)
        du.scheduler.update_ue_quality(
            ue.ue_id, dl_aggregate_se=ue.dl_aggregate_se, ul_se=ue.ul_se
        )
        for flow in ue.flows:
            direction = (
                Direction.DOWNLINK if flow.direction == "dl"
                else Direction.UPLINK
            )
            name = flow.name or f"{flow.kind}-{flow.direction}"
            if flow.kind == "cbr":
                generator = ConstantBitrateFlow(flow.rate_mbps, name)
            else:
                generator = PoissonFlow(
                    flow.rate_mbps,
                    packet_bits=flow.packet_bits,
                    seed=flow.seed,
                    name=name,
                )
            du.attach_flow(ue.ue_id, generator, direction)


def build_cell(
    spec: ScenarioSpec,
    cell: CellSpec,
    du_id: int,
    ru_id_base: int,
) -> BuiltCell:
    """Build one cell's DU and RUs (no network wiring yet)."""
    config = _cell_config(cell)
    profile = profile_by_name(cell.profile)
    cell_seed = spec.cell_seed(cell)
    du = DistributedUnit(
        du_id=du_id,
        cell=config,
        profile=profile,
        symbols_per_slot=cell.symbols_per_slot,
        seed=cell_seed,
        compression=config.compression,
    )
    built = BuiltCell(spec=cell, config=config, profile=profile, du=du)
    _attach_ues(du, cell.ues)
    for offset, ru in enumerate(cell.rus):
        radio = RadioUnit(
            ru_id=ru_id_base + offset,
            config=RuConfig(
                num_prb=ru.num_prb or config.num_prb,
                center_frequency_hz=(
                    ru.center_frequency_hz
                    if ru.center_frequency_hz is not None
                    else config.center_frequency_hz
                ),
                n_antennas=ru.n_antennas,
                scs_hz=config.numerology.scs_hz,
                compression=config.compression,
            ),
            du_mac=du.mac,
            seed=ru.seed if ru.seed is not None else cell_seed + offset + 1,
        )
        x, y, floor, height = ru.position
        built.rus[ru.name] = (radio, Position(x, y, int(floor), height=height))
    return built


def build_group(
    spec: ScenarioSpec, group_name: str, members: List[CellSpec]
) -> BuiltGroup:
    """Build one coupling group: cells, chain, network."""
    from repro.scale.registry import StageBuildContext, build_stage

    obs = (
        Observability(
            enabled=True,
            sample_every=spec.obs.sample_every,
            max_spans=spec.obs.max_spans,
            sketch_accuracy=spec.obs.sketch_accuracy,
        )
        if spec.obs.enabled
        else obs_module.DEFAULT_OBSERVABILITY
    )
    built_cells = [
        build_cell(
            spec,
            cell,
            du_id=spec.cell_index(cell.name) + 1,
            ru_id_base=spec.ru_id_base(cell.name),
        )
        for cell in members
    ]
    middleboxes = []
    for built in built_cells:
        ctx = StageBuildContext(
            group=group_name,
            cells=built_cells,
            current_cell=built,
            obs=obs,
        )
        for stage in built.spec.chain:
            middleboxes.append(build_stage(stage, ctx))
    wires = [cell for cell in members if cell.wire is not None]
    if len(wires) > 1:
        raise ValueError(
            f"group {group_name!r} declares {len(wires)} wire specs; "
            "a group has one access wire"
        )
    wire = None
    if wires:
        wire_spec = dict(wires[0].wire)
        wire_spec.setdefault("seed", spec.cell_seed(wires[0]))
        wire = ImpairedLink(injector_from_spec(wire_spec))
    accountant = None
    if spec.obs.deadline_accounting:
        accountant = DeadlineAccountant(
            numerology=built_cells[0].config.numerology,
            budget_ns=spec.obs.deadline_budget_ns,
            obs=obs if spec.obs.enabled else None,
            sketch_accuracy=spec.obs.sketch_accuracy,
        )
    validator = None
    if spec.obs.conformance:
        # Mixed-profile groups skip the profile-specific checks (a single
        # udCompHdr expectation would false-positive on the other cells).
        profiles = {built.profile.name for built in built_cells}
        validator = WireValidator(
            name=group_name,
            profile=built_cells[0].profile if len(profiles) == 1 else None,
            carrier_num_prb=max(
                radio.config.num_prb
                for built in built_cells
                for radio, _ in built.rus.values()
            ),
            numerology=built_cells[0].config.numerology,
            obs=obs,
            # The negotiated wire configs of the member cells: in a
            # mixed-codec group every stream must still use one of them.
            allowed_compressions=frozenset(
                built.config.compression for built in built_cells
            ),
        )
    network = FronthaulNetwork(
        middleboxes=middleboxes,
        deadline_accountant=accountant,
        wire=wire,
        deadline_flush=any(cell.deadline_flush for cell in members),
        obs=obs,
        name=group_name,
        validator=validator,
    )
    for built in built_cells:
        network.add_du(built.du)
        for radio, position in built.rus.values():
            network.add_ru(radio, position)
    return BuiltGroup(
        name=group_name,
        cells=built_cells,
        network=network,
        obs=obs,
        accountant=accountant,
        validator=validator,
    )


def build_groups(
    spec: ScenarioSpec, names: Optional[List[str]] = None
) -> List[BuiltGroup]:
    """Build every coupling group (or the named subset, for one shard)."""
    grouped = spec.groups()
    if names is None:
        names = list(grouped)
    missing = [name for name in names if name not in grouped]
    if missing:
        raise KeyError(f"unknown groups: {missing}")
    return [build_group(spec, name, grouped[name]) for name in names]
