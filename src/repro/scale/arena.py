"""Shared-memory IQ/result transport for the persistent worker pool.

The fork-per-run runner of PR 4 moved every result over a pipe as one
big pickle: the worker serialized into a private buffer, the kernel
copied it through the pipe in 64 KiB chunks, and the coordinator copied
it again into a bytes object before unpickling.  For timeline- and
report-heavy scenarios that triple copy dominated the useful work
(BENCH_4.json: 8 workers at 0.59x the single-process rate).

This module replaces the bulk path with a preallocated **arena**: one
``multiprocessing.shared_memory`` segment partitioned into per-worker
:class:`RingBuffer` regions.  Workers write payload bytes straight into
their ring and send only a tiny ``(offset, nbytes, watermark)``
descriptor over the control pipe; the coordinator reads the bytes as a
``memoryview`` of the same physical pages — zero copies on the read
side, one on the write side.

Payloads are framed with pickle protocol 5: picklable containers travel
in-band while contiguous numpy arrays are exported **out-of-band** via
``buffer_callback``, so packet batches land in the arena as raw array
bytes and reconstruct on the coordinator side as views over shared
memory (:func:`write_payload` / :func:`read_payload`).

Ring discipline: allocations are contiguous (wrapping past the end of
the region when the tail has moved on) and tracked by *absolute*
monotonic watermarks.  The reader acknowledges consumption by echoing
the highest watermark it has finished with (:meth:`RingBuffer.
release_until`), which the strict request/response protocol of the pool
makes race-free: a worker only ever writes after receiving the
coordinator's ack for everything previously sent.  A payload that cannot
fit raises :class:`ArenaFullError` — never silent corruption — and the
pool falls back to the pipe for that payload.
"""

from __future__ import annotations

import pickle
from multiprocessing import shared_memory
from typing import Any, List, Optional, Tuple

#: One contiguous allocation: ``(offset, nbytes, watermark)``.  The
#: watermark is the ring's absolute head after the write; acking it
#: releases this extent and any wrap padding that preceded it.
Extent = Tuple[int, int, int]

#: A framed payload: the in-band pickle extent plus one extent per
#: out-of-band (numpy) buffer.  Tiny tuples of ints — this is all that
#: ever crosses the control pipe.
PayloadDescriptor = Tuple[Extent, Tuple[Extent, ...]]


class ArenaFullError(RuntimeError):
    """A payload does not fit in the ring's free space.

    Raised *before* any byte of the failed allocation is written, so the
    ring's committed contents stay intact — callers may retry later or
    fall back to another transport.
    """


class ArenaFrameError(RuntimeError):
    """A payload descriptor fails its watermark/length bounds check.

    A corrupted (or maliciously poisoned) descriptor must never reach
    ``pickle.loads`` — unpickling attacker-shaped garbage is the exact
    failure class shared-memory transports are infamous for.
    :func:`validate_descriptor` raises this instead, and the supervised
    pool routes it to the recovery path like any other worker fault.
    """


class RingBuffer:
    """A single-producer/single-consumer byte ring over a memoryview.

    Positions are **absolute** (monotonically increasing); the physical
    offset of an allocation is ``position % capacity``.  Allocations are
    always contiguous: when a request does not fit between the head and
    the end of the region, the head skips the remainder (wrap padding)
    and the allocation starts at offset 0.  ``release_until(watermark)``
    frees everything up to an acked watermark, padding included.
    """

    def __init__(self, buffer: memoryview):
        self._buffer = buffer
        self.capacity = len(buffer)
        #: Absolute write head: next byte to be allocated.
        self.head = 0
        #: Absolute tail: oldest byte not yet released by the reader.
        self.tail = 0

    @property
    def used(self) -> int:
        return self.head - self.tail

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def alloc(self, nbytes: int) -> Extent:
        """Reserve ``nbytes`` contiguous bytes; raise when they don't fit."""
        if nbytes < 0:
            raise ValueError("cannot allocate a negative extent")
        if nbytes > self.capacity:
            raise ArenaFullError(
                f"payload of {nbytes} B exceeds the ring capacity "
                f"({self.capacity} B); raise arena_bytes_per_worker"
            )
        head = self.head
        offset = head % self.capacity
        if offset + nbytes > self.capacity:
            # Wrap: pad out the end of the region, start at offset 0.
            # Padding ahead of a fully-drained ring frees immediately;
            # otherwise it is released when the reader acks past it.
            padding = self.capacity - offset
            if self.tail == head:
                self.tail = head + padding
            head += padding
            offset = 0
        if head + nbytes - self.tail > self.capacity:
            raise ArenaFullError(
                f"ring full: {nbytes} B requested, "
                f"{self.capacity - (head - self.tail)} B free after wrap "
                f"(capacity {self.capacity} B, unreleased {self.used} B)"
            )
        self.head = head + nbytes
        return (offset, nbytes, self.head)

    def write(self, data) -> Extent:
        """Copy ``data`` (bytes-like) into the ring; return its extent."""
        view = memoryview(data).cast("B")
        extent = self.alloc(view.nbytes)
        offset, nbytes, _ = extent
        self._buffer[offset:offset + nbytes] = view
        return extent

    def view(self, offset: int, nbytes: int) -> memoryview:
        """Zero-copy read of one extent."""
        if offset < 0 or offset + nbytes > self.capacity:
            raise ValueError(
                f"extent ({offset}, {nbytes}) outside ring of "
                f"{self.capacity} B"
            )
        return self._buffer[offset:offset + nbytes]

    def release_until(self, watermark: int) -> None:
        """Free every byte up to an acked absolute watermark."""
        if watermark > self.head:
            raise ValueError(
                f"ack watermark {watermark} ahead of head {self.head}"
            )
        self.tail = max(self.tail, watermark)

    def reset(self) -> None:
        """Forget all content (both sides must agree — e.g. on rebuild)."""
        self.head = 0
        self.tail = 0


def write_payload(ring: RingBuffer, obj: Any) -> PayloadDescriptor:
    """Frame ``obj`` into the ring: in-band pickle + out-of-band buffers.

    Contiguous numpy arrays (and anything else exposing the pickle-5
    buffer protocol) are written as raw bytes, so a batch of IQ arrays
    moves as array views rather than re-serialized copies.  The whole
    frame takes **one** ring allocation — per-buffer costs are a single
    memcpy each, not an alloc round — and raises :class:`ArenaFullError`
    (ring untouched) when the payload does not fit.
    """
    buffers: List[pickle.PickleBuffer] = []
    data = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    raws = [b.raw().cast("B") for b in buffers]
    total = len(data) + sum(raw.nbytes for raw in raws)
    if total > ring.free:
        raise ArenaFullError(
            f"payload of {total} B exceeds free ring space ({ring.free} B)"
        )
    offset, _, mark = ring.alloc(total)
    region = ring.view(offset, total)
    position = 0
    region[position:position + len(data)] = data
    main = (offset, len(data), mark)
    position += len(data)
    extents = []
    for raw in raws:
        region[position:position + raw.nbytes] = raw
        extents.append((offset + position, raw.nbytes, mark))
        position += raw.nbytes
    return (main, tuple(extents))


def _valid_extent_shape(extent: Any) -> bool:
    return (
        isinstance(extent, tuple)
        and len(extent) == 3
        and all(
            isinstance(part, int) and not isinstance(part, bool)
            for part in extent
        )
    )


def validate_descriptor(
    ring: RingBuffer,
    descriptor: Any,
    released: int = 0,
) -> PayloadDescriptor:
    """Bounds-check a payload descriptor before any byte of it is read.

    ``released`` is the highest watermark the reader has already acked
    for this ring: every extent of a *fresh* payload must lie strictly
    beyond it and within one ring capacity of it, or the descriptor
    points at bytes the protocol can never have written.  (The check is
    against the reader's acked watermark, not the local ring head — the
    coordinator's ring twin never writes, so its head stays 0.)

    Returns the descriptor (now known well-shaped) on success and raises
    :class:`ArenaFrameError` on any structural or bounds violation, so
    corrupted shared memory surfaces as a typed, recoverable fault
    instead of a pickle of garbage.
    """
    if (
        not isinstance(descriptor, tuple)
        or len(descriptor) != 2
        or not _valid_extent_shape(descriptor[0])
        or not isinstance(descriptor[1], tuple)
        or not all(_valid_extent_shape(extent) for extent in descriptor[1])
    ):
        raise ArenaFrameError(
            f"malformed payload descriptor: {descriptor!r}"
        )
    main, extents = descriptor
    if main[1] < 1:
        raise ArenaFrameError(
            f"payload descriptor has an empty in-band frame: {main!r}"
        )
    for offset, nbytes, mark in (main, *extents):
        if offset < 0 or nbytes < 0 or offset + nbytes > ring.capacity:
            raise ArenaFrameError(
                f"extent ({offset}, {nbytes}) outside ring of "
                f"{ring.capacity} B"
            )
        # A frame written after ack `released` starts from a drained
        # ring, so its watermark advances by at most wrap padding
        # (< capacity) plus the frame itself (<= capacity).
        if mark <= released or mark - released >= 2 * ring.capacity:
            raise ArenaFrameError(
                f"extent watermark {mark} outside the live window "
                f"({released}, {released + 2 * ring.capacity})"
            )
    return descriptor


def read_payload(ring: RingBuffer, descriptor: PayloadDescriptor) -> Any:
    """Reconstruct a payload from its descriptor, zero-copy.

    Out-of-band buffers come back as memoryviews into the ring, so numpy
    arrays in the payload alias shared memory until the descriptor's
    watermark is released — copy anything that must outlive the ack.
    """
    (offset, nbytes, _), extents = descriptor
    views = [ring.view(o, n) for (o, n, _) in extents]
    return pickle.loads(ring.view(offset, nbytes), buffers=views)


def payload_watermark(descriptor: PayloadDescriptor) -> int:
    """The highest absolute watermark of a framed payload (the ack value)."""
    (_, _, mark), extents = descriptor
    for _, _, extent_mark in extents:
        mark = max(mark, extent_mark)
    return mark


def payload_nbytes(descriptor: PayloadDescriptor) -> int:
    """Total payload bytes described (transport accounting)."""
    (_, nbytes, _), extents = descriptor
    return nbytes + sum(n for _, n, _ in extents)


class SharedArena:
    """One shared-memory segment partitioned into per-worker rings.

    The coordinator :meth:`create`\\ s the arena (and owns the unlink);
    each worker :meth:`attach`\\ es by name and uses only its own region,
    so rings are strictly single-producer/single-consumer.  Both sides
    ``close()`` their mapping; ``unlink()`` is idempotent and safe to
    call from cleanup paths that may run twice.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        workers: int,
        bytes_per_worker: int,
        owner: bool,
    ):
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self._name = shm.name
        self.workers = workers
        self.bytes_per_worker = bytes_per_worker
        self._owner = owner
        self._unlinked = False
        #: Region views handed to rings; released in close() so the
        #: underlying mmap can actually unmap (no exported pointers).
        self._views: List[memoryview] = []

    @classmethod
    def create(cls, workers: int, bytes_per_worker: int) -> "SharedArena":
        if workers < 1:
            raise ValueError("arena needs at least one worker region")
        if bytes_per_worker < 4096:
            raise ValueError("arena regions below 4 KiB are useless")
        shm = shared_memory.SharedMemory(
            create=True, size=workers * bytes_per_worker
        )
        return cls(shm, workers, bytes_per_worker, owner=True)

    @classmethod
    def attach(
        cls, name: str, workers: int, bytes_per_worker: int
    ) -> "SharedArena":
        # Fork workers share the coordinator's resource tracker, whose
        # name cache dedupes the attach-side registration — so the
        # coordinator's single unlink() leaves the tracker clean, and a
        # crashed run still gets the segment reaped by the tracker.
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, workers, bytes_per_worker, owner=False)

    @property
    def name(self) -> str:
        return self._name

    def ring(self, index: int) -> RingBuffer:
        """The ring over worker ``index``'s region of the segment."""
        if self._shm is None:
            raise RuntimeError("arena is closed")
        if not 0 <= index < self.workers:
            raise IndexError(
                f"worker index {index} outside arena of {self.workers}"
            )
        start = index * self.bytes_per_worker
        base = memoryview(self._shm.buf)
        region = base[start:start + self.bytes_per_worker]
        base.release()  # the slice exports its own buffer
        self._views.append(region)
        return RingBuffer(region)

    def close(self) -> None:
        """Drop this process's mapping (ring views become invalid)."""
        for view in self._views:
            view.release()
        self._views.clear()
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - a caller still holds
                pass             # a view; the mapping dies with the process
            else:
                self._shm = None

    def unlink(self) -> None:
        """Remove the segment from the system (owner side, idempotent)."""
        if not self._owner or self._unlinked:
            return
        self._unlinked = True
        if self._shm is not None:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        else:
            unlink_segment(self._name)


def unlink_segment(name: str) -> None:
    """Best-effort unlink of a segment by name (crash-path cleanup)."""
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - lost a benign race
        pass


__all__ = [
    "ArenaFrameError",
    "ArenaFullError",
    "Extent",
    "PayloadDescriptor",
    "RingBuffer",
    "SharedArena",
    "payload_nbytes",
    "payload_watermark",
    "read_payload",
    "unlink_segment",
    "validate_descriptor",
    "write_payload",
]
