"""O-RAN modulation compression of U-plane IQ payloads.

The second standard fronthaul codec (O-RAN CUS Annex A.4, udCompMeth 4;
Lagén et al., *Modulation Compression in Next Generation RAN*): instead
of a per-PRB exponent over near-full-width mantissas, the DU transmits
the constellation points themselves — each I/Q component quantized to an
``iq_width``-bit signed value plus a per-PRB power-of-two scaler that
maps the points back onto the fixed-point grid.  Because a QAM
constellation needs only a handful of bits per axis (16-QAM fits in 3),
modulation compression cuts wire bytes another ~2–3x below 9-bit BFP,
which directly raises the cell-slots/s a fronthaul switch can carry.

Per-PRB wire layout (mirroring BFP's ``exponent || mantissas`` grid):

- 2-byte big-endian ``udCompParam``: bit 15 is ``csf`` (constellation
  shift flag, set exactly when the scaler is non-zero), bits 14..0 the
  power-of-two ``scaler`` ``s``.
- ``3 * iq_width`` bytes of 24 MSB-first two's-complement mantissas
  (``24 * width`` is always a multiple of 8).

Compression picks the smallest ``s`` such that every ``x >> s`` fits a
signed ``iq_width``-bit mantissa; decompression reconstructs mid-rise:
``x' = (m << s) + 2**(s-1)`` (offset 0 when ``s == 0``, which is then
lossless).  The reconstruction error is at most half the quantization
step ``2**s``, and re-compressing a decompressed payload reproduces the
wire bytes exactly — the "lossy once, stable forever" property the DAS
merge and the differential harness rely on.

The codec is vectorized with the same bit-tensor technique as the BFP
fast path: one ``np.packbits``/``np.unpackbits`` pass over a
``(n_prbs, 24, width)`` tensor, one strided store per payload, and the
shared LRU memos for the DAS-replicate / RU-sharing-demux patterns.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.fronthaul.compression import (
    MOD_COMP_METH,
    SAMPLES_PER_PRB,
    CompressionConfig,
    _bit_shifts,
    _COMPRESS_MEMO,
    _exact_bits_needed,
    _freeze,
    _PARSE_MEMO,
)

def max_scaler(iq_width: int) -> int:
    """Largest legal scaler for a mantissa width.

    int16 sources never need more than ``16 - width`` right-shifts, so
    anything above is an illegal parameter the
    :class:`~repro.conformance.validator.WireValidator` flags.
    """
    return max(0, 16 - iq_width)


class ModCompressor:
    """Modulation-compression codec over int16 IQ samples.

    Mirrors :class:`~repro.fronthaul.compression.BfpCompressor` exactly:
    samples are interleaved I/Q int16 arrays of shape ``(n_prbs, 24)``,
    ``compress`` yields per-PRB ``csf``/``scaler`` params plus packed
    mantissas, and ``read_exponents`` returns the scalers — the same
    per-PRB energy indicator Algorithm 1's utilization estimator reads
    from BFP exponents, so the PRB-monitoring path is codec-agnostic.
    """

    def __init__(self, config: CompressionConfig):
        if config.comp_meth != MOD_COMP_METH:
            raise ValueError(
                f"ModCompressor requires comp_meth {MOD_COMP_METH}, "
                f"got {config.comp_meth}"
            )
        self.config = config

    # -- array-level API ---------------------------------------------------

    def scalers_for(self, samples: np.ndarray) -> np.ndarray:
        """Per-PRB scalers for int16 samples of shape (n_prbs, 24).

        The smallest power-of-two right shift after which every sample in
        the PRB fits a signed ``iq_width``-bit mantissa.  Idle PRBs get
        scaler 0.
        """
        samples = np.asarray(samples, dtype=np.int64)
        if samples.ndim != 2 or samples.shape[1] != 2 * SAMPLES_PER_PRB:
            raise ValueError(f"expected shape (n, 24), got {samples.shape}")
        width = self.config.iq_width
        bits_needed = _exact_bits_needed(samples)
        return np.maximum(bits_needed - width, 0).astype(np.uint16)

    def compress_array(self, samples: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Compress to (scalers, mantissas) arrays.

        Returns scalers of shape (n_prbs,) and mantissas of shape
        (n_prbs, 24) as signed integers already shifted.  Raises
        :class:`ValueError` when a PRB would need a scaler above the
        legal ``16 - width`` bound — int16 input can never trigger this,
        but callers feeding wider accumulators must saturate first.
        """
        samples = np.asarray(samples, dtype=np.int64)
        scalers = self.scalers_for(samples).astype(np.int64)
        overflow = int(scalers.max(initial=0))
        legal = max_scaler(self.config.iq_width)
        if overflow > legal:
            raise ValueError(
                f"modcomp scaler {overflow} exceeds the legal bound "
                f"{legal} for width {self.config.iq_width}; saturate "
                "samples to int16 before compressing"
            )
        mantissas = samples >> scalers[:, None]
        return scalers.astype(np.uint16), mantissas

    def decompress_array(
        self, scalers: np.ndarray, mantissas: np.ndarray
    ) -> np.ndarray:
        """Restore int16 samples from (scalers, mantissas).

        Mid-rise reconstruction: each mantissa maps to the centre of its
        quantization cell, ``(m << s) + 2**(s-1)``, so the error is at
        most half a step and the scaler-0 path is exact.
        """
        # Clamp the shift so illegal wire scalers (the validator's
        # problem) cannot overflow the int64 accumulator here.
        shifts = np.minimum(np.asarray(scalers, dtype=np.int64), 32)
        mants = np.asarray(mantissas, dtype=np.int64)
        half = (np.int64(1) << shifts) >> 1
        restored = (mants << shifts[:, None]) + half[:, None]
        return np.clip(restored, -32768, 32767).astype(np.int16)

    # -- wire-level API ----------------------------------------------------

    def compress(self, samples: np.ndarray) -> bytes:
        """Serialize samples of shape (n_prbs, 24) to the wire format.

        Each PRB is emitted as ``csf/scaler halfword || packed
        mantissas``; all PRBs are packed in one ``np.packbits`` call over
        the ``(n_prbs, 24, width)`` bit tensor and written with a single
        strided store.
        """
        samples = np.ascontiguousarray(samples, dtype=np.int64)
        memo_key = (self.config.to_byte(), samples.tobytes())
        cached = _COMPRESS_MEMO.get(memo_key)
        if cached is not None:
            return cached
        scalers, mantissas = self.compress_array(samples)
        width = self.config.iq_width
        n_prbs = len(scalers)
        mask = np.int64((1 << width) - 1)
        unsigned = (mantissas & mask).astype(np.uint32)
        shifts = _bit_shifts(width)
        bits = ((unsigned[:, :, None] >> shifts[None, None, :]) & 1).astype(
            np.uint8
        )
        blocks = np.packbits(bits.reshape(n_prbs, 24 * width), axis=1)
        params = scalers.astype(np.uint16)
        params |= (scalers > 0).astype(np.uint16) << 15  # csf bit
        out = np.empty((n_prbs, 2 + 3 * width), dtype=np.uint8)
        out[:, 0] = (params >> 8).astype(np.uint8)
        out[:, 1] = (params & 0xFF).astype(np.uint8)
        out[:, 2:] = blocks
        wire = out.tobytes()
        _COMPRESS_MEMO.put(memo_key, wire)
        return wire

    def decompress(self, payload: bytes, n_prbs: int) -> np.ndarray:
        """Parse a wire payload back to int16 samples of shape (n_prbs, 24)."""
        scalers, mantissas = self.parse_wire(payload, n_prbs)
        return self.decompress_array(scalers, mantissas)

    def decompress_stack(self, payloads, n_prbs: int) -> np.ndarray:
        """Decompress N equal-length payloads in one codec pass.

        Returns int16 samples of shape ``(len(payloads), n_prbs, 24)`` —
        the batched substrate of the DAS uplink merge, identical in shape
        and contract to the BFP fast path.
        """
        n_ops = len(payloads)
        if n_ops == 0:
            return np.zeros((0, n_prbs, 2 * SAMPLES_PER_PRB), dtype=np.int16)
        per_payload = n_prbs * self.config.prb_payload_bytes()
        for payload in payloads:
            if len(payload) < per_payload:
                raise ValueError("truncated payload in decompress_stack")
        combined = b"".join(bytes(p[:per_payload]) for p in payloads)
        stacked = self.decompress(combined, n_ops * n_prbs)
        return stacked.reshape(n_ops, n_prbs, 2 * SAMPLES_PER_PRB)

    def parse_wire(self, payload: bytes, n_prbs: int) -> Tuple[np.ndarray, np.ndarray]:
        """Parse wire payload to (scalers, signed mantissas).

        Returned arrays are read-only: identical payloads share one memo
        entry, so callers that mutate must ``.copy()`` first.
        """
        width = self.config.iq_width
        prb_bytes = self.config.prb_payload_bytes()
        if len(payload) < n_prbs * prb_bytes:
            raise ValueError(
                f"truncated modcomp payload: need {n_prbs * prb_bytes}, "
                f"got {len(payload)}"
            )
        payload_bytes = bytes(payload[: n_prbs * prb_bytes])
        memo_key = (self.config.to_byte(), payload_bytes)
        cached = _PARSE_MEMO.get(memo_key)
        if cached is not None:
            return cached
        grid = np.frombuffer(payload_bytes, dtype=np.uint8).reshape(
            n_prbs, prb_bytes
        )
        params = (grid[:, 0].astype(np.uint16) << 8) | grid[:, 1]
        scalers = (params & 0x7FFF).astype(np.uint16)
        bits = np.unpackbits(
            np.ascontiguousarray(grid[:, 2:]), axis=1
        ).reshape(n_prbs, 2 * SAMPLES_PER_PRB, width)
        weights = (np.int64(1) << _bit_shifts(width).astype(np.int64))
        unsigned = bits.astype(np.int64) @ weights
        sign_bit = np.int64(1) << np.int64(width - 1)
        mantissas = unsigned - ((unsigned & sign_bit) << 1)
        result = (_freeze(scalers), _freeze(mantissas))
        _PARSE_MEMO.put(memo_key, result)
        return result

    def read_params(self, payload: bytes, n_prbs: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-PRB (csf, scaler) arrays without unpacking mantissas.

        A pure strided view over the param halfwords — the validator's
        legality fast path.
        """
        prb_bytes = self.config.prb_payload_bytes()
        if len(payload) < n_prbs * prb_bytes:
            raise ValueError("truncated modcomp payload")
        raw = np.frombuffer(payload, dtype=np.uint8, count=n_prbs * prb_bytes)
        hi = raw[0::prb_bytes].astype(np.uint16)
        lo = raw[1::prb_bytes].astype(np.uint16)
        params = (hi << 8) | lo
        return (params >> 15).astype(np.uint8), (params & 0x7FFF)

    def read_exponents(self, payload: bytes, n_prbs: int) -> np.ndarray:
        """Per-PRB scalers, the modcomp analogue of BFP exponents.

        Idle PRBs carry scaler 0 and loaded PRBs a positive scaler —
        exactly the utilization signal Algorithm 1 thresholds on, so the
        PRB monitor works unmodified over either codec.
        """
        _csf, scalers = self.read_params(payload, n_prbs)
        return scalers


__all__ = ["ModCompressor", "max_scaler"]
