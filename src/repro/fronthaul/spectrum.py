"""PRB spectrum grids and the RU-sharing frequency-alignment math.

Implements the Appendix A.1.1 formulas: given a shared RU's center
frequency and bandwidth, compute DU center frequencies whose PRB grids
align with the RU's grid (Figure 6), and map DU PRB indices into RU PRB
indices for the multiplexing done by the RU-sharing middlebox.
"""

from __future__ import annotations

from dataclasses import dataclass

SUBCARRIERS_PER_PRB = 12

#: PRB counts for common 5G NR channel bandwidths at 30 kHz SCS (3GPP 38.104).
PRBS_FOR_BANDWIDTH_30KHZ = {
    20_000_000: 51,
    25_000_000: 65,
    40_000_000: 106,
    50_000_000: 133,
    60_000_000: 162,
    80_000_000: 217,
    100_000_000: 273,
}


def prbs_for_bandwidth(bandwidth_hz: int, scs_hz: int = 30_000) -> int:
    """Number of PRBs for a channel bandwidth.

    Uses the 3GPP table for 30 kHz SCS; other spacings fall back to a 90%
    spectral-occupancy approximation (adequate for synthetic cells).
    """
    if scs_hz == 30_000 and bandwidth_hz in PRBS_FOR_BANDWIDTH_30KHZ:
        return PRBS_FOR_BANDWIDTH_30KHZ[bandwidth_hz]
    return int(bandwidth_hz * 0.9 // (SUBCARRIERS_PER_PRB * scs_hz))


@dataclass(frozen=True)
class PrbGrid:
    """The frequency grid of a cell or RU.

    A grid is ``num_prb`` PRBs of 12 subcarriers centred on
    ``center_frequency_hz``.  PRB 0 starts at the low edge of the occupied
    spectrum, mirroring the wire encoding (startPrbu counts from 0).
    """

    center_frequency_hz: float
    num_prb: int
    scs_hz: int = 30_000

    def __post_init__(self) -> None:
        if self.num_prb <= 0:
            raise ValueError(f"num_prb must be positive: {self.num_prb}")
        if self.scs_hz <= 0:
            raise ValueError(f"scs must be positive: {self.scs_hz}")

    @property
    def prb_bandwidth_hz(self) -> int:
        return SUBCARRIERS_PER_PRB * self.scs_hz

    @property
    def occupied_bandwidth_hz(self) -> int:
        return self.num_prb * self.prb_bandwidth_hz

    @property
    def prb0_frequency_hz(self) -> float:
        """Equation (1)-(2): low edge of PRB 0."""
        return self.center_frequency_hz - self.prb_bandwidth_hz * self.num_prb / 2

    def prb_start_frequency_hz(self, prb: int) -> float:
        """Low-edge frequency of a PRB index on this grid."""
        return self.prb0_frequency_hz + prb * self.prb_bandwidth_hz

    def contains(self, other: "PrbGrid") -> bool:
        """True if ``other``'s occupied spectrum fits inside this grid's."""
        return (
            other.prb0_frequency_hz >= self.prb0_frequency_hz - 1e-6
            and other.prb_start_frequency_hz(other.num_prb)
            <= self.prb_start_frequency_hz(self.num_prb) + 1e-6
        )

    def offset_of(self, other: "PrbGrid") -> float:
        """Offset of ``other``'s PRB 0 from this grid's PRB 0, in PRBs.

        An integral result means the two grids are aligned (left side of
        Figure 6); a fractional result means misaligned PRBs that force the
        middlebox to decompress/copy/recompress.
        """
        if self.scs_hz != other.scs_hz:
            raise ValueError("grids with different SCS cannot be aligned")
        delta_hz = other.prb0_frequency_hz - self.prb0_frequency_hz
        return delta_hz / self.prb_bandwidth_hz

    def is_aligned_with(self, other: "PrbGrid", tolerance: float = 1e-6) -> bool:
        offset = self.offset_of(other)
        return abs(offset - round(offset)) < tolerance

    def aligned_prb_offset(self, other: "PrbGrid") -> int:
        """Integer PRB offset of ``other`` within this grid.

        Raises if the grids are misaligned or ``other`` does not fit.
        """
        if not self.is_aligned_with(other):
            raise ValueError("PRB grids are misaligned")
        if not self.contains(other):
            raise ValueError("inner grid does not fit in outer grid")
        return round(self.offset_of(other))


def aligned_du_center_frequency(
    ru_grid: PrbGrid, du_num_prb: int, prb_offset: int
) -> float:
    """Appendix A.1.1, equations (1)-(4): DU center frequency that aligns
    the DU's PRB grid to the RU grid at ``prb_offset``.

    ``prb_offset`` is the RU PRB index where the DU's PRB 0 lands.
    """
    if prb_offset < 0 or prb_offset + du_num_prb > ru_grid.num_prb:
        raise ValueError(
            f"DU grid ({du_num_prb} PRBs at offset {prb_offset}) exceeds RU "
            f"grid of {ru_grid.num_prb} PRBs"
        )
    prb0 = ru_grid.prb0_frequency_hz
    return prb0 + SUBCARRIERS_PER_PRB * ru_grid.scs_hz * (prb_offset + du_num_prb / 2)


def split_ru_spectrum(ru_grid: PrbGrid, du_num_prbs: "list[int]") -> "list[PrbGrid]":
    """Carve a shared RU's spectrum into aligned, non-overlapping DU grids.

    Used by the RU-sharing experiments (Figure 10b, Figure 12): each DU gets
    a contiguous aligned block, packed from PRB 0 upward.
    """
    total = sum(du_num_prbs)
    if total > ru_grid.num_prb:
        raise ValueError(
            f"DU grids need {total} PRBs but RU only has {ru_grid.num_prb}"
        )
    grids = []
    offset = 0
    for num_prb in du_num_prbs:
        center = aligned_du_center_frequency(ru_grid, num_prb, offset)
        grids.append(PrbGrid(center, num_prb, ru_grid.scs_hz))
        offset += num_prb
    return grids
