"""eCPRI transport header and eAxC (antenna-carrier) identifiers.

The O-RAN fronthaul rides on eCPRI over Ethernet.  Each message carries a
4-byte eCPRI common header followed by a 2-byte eAxC id (``ecpriPcid`` for
U-plane, ``ecpriRtcid`` for C-plane) and a 2-byte sequence id.

The eAxC id is the field the dMIMO middlebox rewrites: its ``ru_port``
sub-field identifies the logical antenna stream, and remapping it gives the
DU the illusion of a single large virtual RU (Section 4.2 of the paper).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, replace
from typing import Tuple

from repro.fronthaul.errors import MalformedFrame, TruncatedFrame

ECPRI_VERSION = 1

_COMMON = struct.Struct("!BBH")
_IDS = struct.Struct("!HH")

ECPRI_HEADER_SIZE = _COMMON.size + _IDS.size


class EcpriMessageType(enum.IntEnum):
    """eCPRI message types used by the O-RAN fronthaul."""

    IQ_DATA = 0  # U-plane
    RT_CONTROL = 2  # C-plane


@dataclass(frozen=True)
class EAxCId:
    """A 16-bit eAxC id split into DU port / band-sector / CC / RU port.

    The bit widths of the four sub-fields are deployment-configurable in
    O-RAN; the widths used here (and by our testbed captures, Figure 2)
    are 4/4/4/4 by default.
    """

    du_port: int
    band_sector: int = 0
    cc: int = 0
    ru_port: int = 0
    widths: Tuple[int, int, int, int] = (4, 4, 4, 4)

    def __post_init__(self) -> None:
        if sum(self.widths) != 16:
            raise ValueError(f"eAxC field widths must sum to 16: {self.widths}")
        for name, value, width in zip(
            ("du_port", "band_sector", "cc", "ru_port"),
            (self.du_port, self.band_sector, self.cc, self.ru_port),
            self.widths,
        ):
            if not 0 <= value < (1 << width):
                raise ValueError(f"eAxC {name}={value} exceeds {width} bits")

    def to_int(self) -> int:
        w_du, w_bs, w_cc, w_ru = self.widths
        value = self.du_port
        value = (value << w_bs) | self.band_sector
        value = (value << w_cc) | self.cc
        value = (value << w_ru) | self.ru_port
        return value

    @classmethod
    def from_int(
        cls, value: int, widths: Tuple[int, int, int, int] = (4, 4, 4, 4)
    ) -> "EAxCId":
        if not 0 <= value < (1 << 16):
            raise ValueError(f"eAxC id out of range: {value}")
        w_du, w_bs, w_cc, w_ru = widths
        ru_port = value & ((1 << w_ru) - 1)
        value >>= w_ru
        cc = value & ((1 << w_cc) - 1)
        value >>= w_cc
        band_sector = value & ((1 << w_bs) - 1)
        value >>= w_bs
        du_port = value
        return cls(du_port, band_sector, cc, ru_port, widths)

    def with_ru_port(self, ru_port: int) -> "EAxCId":
        """Return a copy with a different RU port (dMIMO's A4 remap)."""
        return replace(self, ru_port=ru_port)


@dataclass
class EcpriHeader:
    """eCPRI common header + eAxC id + sequence id.

    ``seq_id`` increments per eAxC flow; ``e_bit`` marks the last fragment
    of a message (always set here: the simulator does not fragment) and
    ``sub_seq_id`` numbers fragments within a message.
    """

    message_type: EcpriMessageType
    payload_size: int
    eaxc: EAxCId
    seq_id: int = 0
    e_bit: bool = True
    sub_seq_id: int = 0

    def pack(self) -> bytes:
        first = (ECPRI_VERSION << 4) & 0xF0  # reserved and C bits zero
        seq_byte = (int(self.e_bit) << 7) | (self.sub_seq_id & 0x7F)
        return _COMMON.pack(first, int(self.message_type), self.payload_size) + _IDS.pack(
            self.eaxc.to_int(), ((self.seq_id & 0xFF) << 8) | seq_byte
        )

    @classmethod
    def unpack(
        cls, data: bytes, widths: Tuple[int, int, int, int] = (4, 4, 4, 4)
    ) -> Tuple["EcpriHeader", int]:
        if len(data) < ECPRI_HEADER_SIZE:
            raise TruncatedFrame("truncated eCPRI header")
        first, msg_type, payload_size = _COMMON.unpack_from(data)
        version = (first >> 4) & 0xF
        if version != ECPRI_VERSION:
            raise MalformedFrame(f"unsupported eCPRI version: {version}")
        try:
            message_type = EcpriMessageType(msg_type)
        except ValueError:
            raise MalformedFrame(
                f"unknown eCPRI message type: {msg_type}"
            ) from None
        eaxc_raw, seq_raw = _IDS.unpack_from(data, _COMMON.size)
        header = cls(
            message_type=message_type,
            payload_size=payload_size,
            eaxc=EAxCId.from_int(eaxc_raw, widths),
            seq_id=(seq_raw >> 8) & 0xFF,
            e_bit=bool((seq_raw >> 7) & 0x1),
            sub_seq_id=seq_raw & 0x7F,
        )
        return header, ECPRI_HEADER_SIZE
