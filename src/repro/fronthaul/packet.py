"""Top-level fronthaul packets: Ethernet + eCPRI + C/U-plane message.

:class:`FronthaulPacket` is the unit of work RANBooster middleboxes
receive, inspect, and rewrite.  It serializes to the full on-wire byte
sequence and parses back, so middlebox logic can be validated against
byte-exact round trips.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.fronthaul.cplane import CPlaneMessage, Direction
from repro.fronthaul.ecpri import (
    ECPRI_HEADER_SIZE,
    EcpriHeader,
    EcpriMessageType,
)
from repro.fronthaul.errors import EcpriLengthError, MalformedFrame
from repro.fronthaul.ethernet import ETHERTYPE_ECPRI, EthernetHeader, MacAddress
from repro.fronthaul.uplane import UPlaneMessage

Message = Union[CPlaneMessage, UPlaneMessage]


@dataclass
class FronthaulPacket:
    """One fronthaul Ethernet frame carrying a C-plane or U-plane message.

    ``eth`` addresses identify the DU/RU endpoints (rewritten by action
    A1); ``ecpri.eaxc`` identifies the antenna stream (rewritten by the
    dMIMO middlebox); ``message`` is the O-RAN payload (rewritten by A4).
    """

    eth: EthernetHeader
    ecpri: EcpriHeader
    message: Message

    @property
    def is_cplane(self) -> bool:
        return isinstance(self.message, CPlaneMessage)

    @property
    def is_uplane(self) -> bool:
        return isinstance(self.message, UPlaneMessage)

    @property
    def direction(self) -> Direction:
        return self.message.direction

    @property
    def time(self):
        return self.message.time

    @property
    def eaxc(self):
        return self.ecpri.eaxc

    def flow_key(self) -> Tuple:
        """(time, direction, ru_port): the key middlebox caches use."""
        return (self.message.time, self.message.direction, self.ecpri.eaxc.ru_port)

    def clone(self) -> "FronthaulPacket":
        """Deep copy — the substrate of the A2 (replicate) action."""
        return copy.deepcopy(self)

    def pack(self) -> bytes:
        body = self.message.pack()
        ecpri = EcpriHeader(
            message_type=self.ecpri.message_type,
            payload_size=len(body) + 4,  # eAxC id + seq id count as payload
            eaxc=self.ecpri.eaxc,
            seq_id=self.ecpri.seq_id,
            e_bit=self.ecpri.e_bit,
            sub_seq_id=self.ecpri.sub_seq_id,
        )
        return self.eth.pack() + ecpri.pack() + body

    @property
    def wire_size(self) -> int:
        """Serialized frame length in bytes (used for bandwidth accounting)."""
        return len(self.pack())


def make_packet(
    src: MacAddress,
    dst: MacAddress,
    message: Message,
    seq_id: int = 0,
    eaxc=None,
    vlan=None,
) -> FronthaulPacket:
    """Convenience constructor used by the DU/RU models."""
    from repro.fronthaul.ecpri import EAxCId

    if eaxc is None:
        eaxc = EAxCId(du_port=0)
    message_type = (
        EcpriMessageType.RT_CONTROL
        if isinstance(message, CPlaneMessage)
        else EcpriMessageType.IQ_DATA
    )
    eth = EthernetHeader(dst=dst, src=src, ethertype=ETHERTYPE_ECPRI, vlan=vlan)
    ecpri = EcpriHeader(
        message_type=message_type, payload_size=0, eaxc=eaxc, seq_id=seq_id
    )
    return FronthaulPacket(eth=eth, ecpri=ecpri, message=message)


def parse_packet(
    data: bytes, carrier_num_prb: Optional[int] = None
) -> FronthaulPacket:
    """Parse a full on-wire frame back into a :class:`FronthaulPacket`.

    Strict: the eCPRI ``payloadSize`` field must account for every byte
    after the common header.  A truncated frame — even one cut exactly at
    a section boundary, which would otherwise parse as a shorter message
    — therefore raises :class:`EcpriLengthError` instead of silently
    decoding garbage IQ.
    """
    eth, offset = EthernetHeader.unpack(data)
    if eth.ethertype != ETHERTYPE_ECPRI:
        raise MalformedFrame(
            f"not an eCPRI frame: ethertype 0x{eth.ethertype:04x}"
        )
    ecpri, consumed = EcpriHeader.unpack(data[offset:])
    # payloadSize counts the eAxC id + seq id words (4 bytes) + the body.
    declared = ecpri.payload_size
    actual = len(data) - offset - ECPRI_HEADER_SIZE + 4
    if declared != actual:
        raise EcpriLengthError(
            f"eCPRI payloadSize {declared} != {actual} bytes on the wire"
        )
    if ecpri.message_type is EcpriMessageType.RT_CONTROL:
        message: Message = CPlaneMessage.unpack(
            data[offset + consumed :], carrier_num_prb
        )
    else:
        # Zero-copy: U-plane sections hold views into the frame buffer.
        body = memoryview(data)[offset + consumed :]
        message = UPlaneMessage.unpack(body, carrier_num_prb)
    return FronthaulPacket(eth=eth, ecpri=ecpri, message=message)
