"""Block Floating Point (BFP) compression of U-plane IQ payloads.

Every RAN implementation the paper studied compresses U-plane IQ samples
with BFP at PRB granularity (Section 2.2, Figure 2): the 12 complex samples
of a PRB share one exponent byte, and each I/Q component is stored as an
``iq_width``-bit two's-complement mantissa.  The PRB monitoring middlebox
(Algorithm 1) reads exactly these exponents, and the DAS / RU-sharing
middleboxes must decompress, combine, and recompress them, so this module
implements real bit-accurate BFP with arbitrary mantissa widths.

The wire codec is fully vectorized: all PRBs of a payload are packed and
unpacked through a single ``np.packbits``/``np.unpackbits`` call over a
``(n_prbs, 24, width)`` bit tensor, which is what lets the Python
middleboxes approach the per-packet constant cost of the paper's C
implementation (Figure 15b).  Because a PRB holds 24 mantissas and
``24 * width`` is always a multiple of 8, every PRB's mantissa block is
exactly ``3 * width`` bytes and the whole payload is one strided
``(n_prbs, 1 + 3 * width)`` byte grid — no per-PRB Python loop anywhere.

Repeated identical payloads (the DAS downlink replicates the same symbol
to N RUs; RU sharing re-parses the same full-band uplink packet once per
DU) hit a small LRU memo instead of re-running the codec.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Tuple

import numpy as np

SAMPLES_PER_PRB = 12

#: O-RAN udCompMeth code for block floating point.
BFP_COMP_METH = 1
#: udCompMeth code for uncompressed 16-bit fixed point.
NO_COMP_METH = 0
#: udCompMeth code for modulation compression (O-RAN CUS Annex A.4).
MOD_COMP_METH = 4

#: Largest exponent the 4-bit wire nibble can carry (Figure 2).
MAX_WIRE_EXPONENT = 15


class _LruMemo:
    """Tiny bounded LRU cache for codec results.

    Values must be immutable (bytes, or ndarrays with ``writeable=False``)
    because they are shared between all callers that present the same
    payload — exactly the DAS replicate / RU-sharing demux pattern.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._store: "OrderedDict[Hashable, object]" = OrderedDict()

    def get(self, key: Hashable):
        try:
            value = self._store[key]
        except KeyError:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: object) -> None:
        self._store[key] = value
        self._store.move_to_end(key)
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)


#: Compress memo: (config byte, samples bytes) -> wire bytes.
_COMPRESS_MEMO = _LruMemo(capacity=128)
#: Parse memo: (config byte, payload bytes) -> (exponents, mantissas).
_PARSE_MEMO = _LruMemo(capacity=128)


def codec_memo_stats() -> Dict[str, int]:
    """Hit/miss counters of the codec memos (observability + tests)."""
    return {
        "compress_hits": _COMPRESS_MEMO.hits,
        "compress_misses": _COMPRESS_MEMO.misses,
        "parse_hits": _PARSE_MEMO.hits,
        "parse_misses": _PARSE_MEMO.misses,
        "compress_entries": len(_COMPRESS_MEMO),
        "parse_entries": len(_PARSE_MEMO),
    }


def clear_codec_memo() -> None:
    """Reset both memos (used by benchmarks to measure cold paths)."""
    _COMPRESS_MEMO.clear()
    _PARSE_MEMO.clear()


@dataclass(frozen=True)
class CompressionConfig:
    """Parameters carried in the O-RAN ``udCompHdr`` field.

    ``iq_width`` is the mantissa width in bits (Figure 2 shows width 9);
    ``comp_meth`` selects the scheme.  BFP, modulation compression, and
    uncompressed are implemented — the three wire formats the vendor
    stacks negotiate over M-plane.
    """

    iq_width: int = 9
    comp_meth: int = BFP_COMP_METH

    def __post_init__(self) -> None:
        if self.comp_meth == NO_COMP_METH:
            if self.iq_width not in (0, 16):
                raise ValueError("uncompressed payloads use 16-bit samples")
        elif self.comp_meth == BFP_COMP_METH:
            if not 2 <= self.iq_width <= 16:
                raise ValueError(f"BFP iq_width out of range: {self.iq_width}")
        elif self.comp_meth == MOD_COMP_METH:
            if not 1 <= self.iq_width <= 14:
                raise ValueError(
                    f"modcomp iq_width out of range: {self.iq_width}"
                )
        else:
            raise ValueError(f"unsupported compression method: {self.comp_meth}")

    def to_byte(self) -> int:
        width = 0 if self.iq_width == 16 else self.iq_width
        return ((width & 0xF) << 4) | (self.comp_meth & 0xF)

    @classmethod
    def from_byte(cls, value: int) -> "CompressionConfig":
        width = (value >> 4) & 0xF
        meth = value & 0xF
        if width == 0:
            width = 16
        return cls(iq_width=width, comp_meth=meth)

    def to_dict(self) -> Dict[str, int]:
        """Plain-data form, the exact inverse of :meth:`from_dict`."""
        return {"iq_width": self.iq_width, "comp_meth": self.comp_meth}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CompressionConfig":
        """Strict constructor from plain data.

        Unknown keys raise :class:`KeyError` — the same strictness as
        ``ScenarioSpec.from_dict`` — so a typoed ``iq_widht`` in a spec
        fails loudly instead of silently negotiating the default codec.
        """
        unknown = set(data) - {"iq_width", "comp_meth"}
        if unknown:
            raise KeyError(
                f"compression config has unknown keys: {sorted(unknown)}"
            )
        return cls(
            iq_width=int(data.get("iq_width", 9)),
            comp_meth=int(data.get("comp_meth", BFP_COMP_METH)),
        )

    def prb_payload_bytes(self) -> int:
        """Serialized size of one PRB: param byte(s) + packed mantissas."""
        mantissa_bits = 2 * SAMPLES_PER_PRB * self.iq_width
        packed = (mantissa_bits + 7) // 8
        if self.comp_meth == NO_COMP_METH:
            return 2 * SAMPLES_PER_PRB * 2  # int16 I and Q, no exponent
        if self.comp_meth == MOD_COMP_METH:
            return 2 + packed  # csf/scaler param halfword + mantissas
        return 1 + packed


def _bit_shifts(width: int) -> np.ndarray:
    """MSB-first bit positions of an ``width``-bit mantissa."""
    return np.arange(width - 1, -1, -1, dtype=np.uint32)


def _pack_bits(values: np.ndarray, width: int) -> bytes:
    """Pack unsigned integers < 2**width into a big-endian bitstream."""
    shifts = _bit_shifts(width)
    # Each row holds the bits of one value, MSB first.
    bits = ((values[:, None] >> shifts[None, :]) & 1).astype(np.uint8)
    return np.packbits(bits.reshape(-1)).tobytes()


def _unpack_bits(data: bytes, count: int, width: int) -> np.ndarray:
    """Inverse of :func:`_pack_bits`; returns unsigned integers."""
    needed_bits = count * width
    raw = np.frombuffer(data, dtype=np.uint8)
    bits = np.unpackbits(raw)[:needed_bits]
    bits = bits.reshape(count, width).astype(np.uint32)
    shifts = _bit_shifts(width)
    return (bits << shifts[None, :]).sum(axis=1)


def _sign_extend(values: np.ndarray, width: int) -> np.ndarray:
    sign_bit = np.uint32(1) << np.uint32(width - 1)
    signed = values.astype(np.int64)
    signed -= (values & sign_bit).astype(np.int64) << 1
    return signed


def _freeze(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


class BfpCompressor:
    """Block Floating Point codec over int16 IQ samples.

    Samples are represented as interleaved I/Q int16 arrays of shape
    ``(n_prbs, 24)`` (12 complex samples per PRB).  ``compress`` yields one
    exponent per PRB plus the packed mantissas; ``decompress`` restores
    samples up to quantization.
    """

    def __init__(self, config: CompressionConfig = CompressionConfig()):
        self.config = config

    # -- array-level API ---------------------------------------------------

    def exponents_for(self, samples: np.ndarray) -> np.ndarray:
        """Per-PRB BFP exponents for int16 samples of shape (n_prbs, 24).

        The exponent is the number of right-shifts needed so the largest
        magnitude in the PRB fits the mantissa width.  Idle PRBs (all
        near-zero samples) get exponent 0 — the property Algorithm 1's
        utilization estimator relies on.
        """
        samples = np.asarray(samples, dtype=np.int64)
        if samples.ndim != 2 or samples.shape[1] != 2 * SAMPLES_PER_PRB:
            raise ValueError(f"expected shape (n, 24), got {samples.shape}")
        width = self.config.iq_width
        bits_needed = _exact_bits_needed(samples)
        exponents = np.maximum(bits_needed - width, 0)
        return exponents.astype(np.uint8)

    def compress_array(self, samples: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Compress to (exponents, mantissas) arrays.

        Returns exponents of shape (n_prbs,) and mantissas of shape
        (n_prbs, 24) as signed integers already shifted.  Raises
        :class:`ValueError` when a PRB would need an exponent above 15 —
        the wire nibble cannot represent it, and silently masking it (as a
        naive implementation might) corrupts every sample in the PRB.
        int16 input can never trigger this (worst case 16 - 2 = 14), but
        callers feeding wider accumulators must saturate first.
        """
        samples = np.asarray(samples, dtype=np.int64)
        exponents = self.exponents_for(samples).astype(np.int64)
        overflow = int(exponents.max(initial=0))
        if overflow > MAX_WIRE_EXPONENT:
            raise ValueError(
                f"BFP exponent {overflow} exceeds the 4-bit wire field "
                f"(max {MAX_WIRE_EXPONENT}); saturate samples to int16 "
                "before compressing"
            )
        mantissas = samples >> exponents[:, None]
        return exponents.astype(np.uint8), mantissas

    def decompress_array(
        self, exponents: np.ndarray, mantissas: np.ndarray
    ) -> np.ndarray:
        """Restore int16 samples from (exponents, mantissas)."""
        exps = np.asarray(exponents, dtype=np.int64)
        mants = np.asarray(mantissas, dtype=np.int64)
        restored = mants << exps[:, None]
        return np.clip(restored, -32768, 32767).astype(np.int16)

    # -- wire-level API ----------------------------------------------------

    def compress(self, samples: np.ndarray) -> bytes:
        """Serialize samples of shape (n_prbs, 24) to the wire format.

        Each PRB is emitted as ``exponent byte || packed mantissas``
        exactly as in Figure 2 of the paper.  All PRBs are packed in one
        ``np.packbits`` call over the ``(n_prbs, 24, width)`` bit tensor
        and written with a single strided store of exponent bytes +
        mantissa blocks.
        """
        samples = np.ascontiguousarray(samples, dtype=np.int64)
        if self.config.comp_meth == NO_COMP_METH:
            return samples.astype(">i2").tobytes()
        memo_key = (self.config.to_byte(), samples.tobytes())
        cached = _COMPRESS_MEMO.get(memo_key)
        if cached is not None:
            return cached
        exponents, mantissas = self.compress_array(samples)
        width = self.config.iq_width
        n_prbs = len(exponents)
        mask = np.int64((1 << width) - 1)
        unsigned = (mantissas & mask).astype(np.uint32)
        shifts = _bit_shifts(width)
        # (n_prbs, 24, width) bit tensor, MSB first; 24 * width is always a
        # multiple of 8, so each PRB packs to exactly 3 * width bytes.
        bits = ((unsigned[:, :, None] >> shifts[None, None, :]) & 1).astype(
            np.uint8
        )
        blocks = np.packbits(bits.reshape(n_prbs, 24 * width), axis=1)
        out = np.empty((n_prbs, 1 + 3 * width), dtype=np.uint8)
        out[:, 0] = exponents
        out[:, 1:] = blocks
        wire = out.tobytes()
        _COMPRESS_MEMO.put(memo_key, wire)
        return wire

    def decompress(self, payload: bytes, n_prbs: int) -> np.ndarray:
        """Parse a wire payload back to int16 samples of shape (n_prbs, 24)."""
        if self.config.comp_meth == NO_COMP_METH:
            expected = n_prbs * 2 * SAMPLES_PER_PRB * 2
            if len(payload) < expected:
                raise ValueError("truncated uncompressed payload")
            flat = np.frombuffer(payload[:expected], dtype=">i2")
            return flat.reshape(n_prbs, 2 * SAMPLES_PER_PRB).astype(np.int16)
        exponents, mantissas = self.parse_wire(payload, n_prbs)
        return self.decompress_array(exponents, mantissas)

    def decompress_stack(self, payloads, n_prbs: int) -> np.ndarray:
        """Decompress N equal-length payloads in one codec pass.

        Returns int16 samples of shape ``(len(payloads), n_prbs, 24)``.
        This is the batched substrate of the DAS uplink merge: the N
        per-RU payloads are concatenated and parsed as one ``N * n_prbs``
        PRB grid, so the bit-unpacking runs once instead of N times.
        """
        n_ops = len(payloads)
        if n_ops == 0:
            return np.zeros((0, n_prbs, 2 * SAMPLES_PER_PRB), dtype=np.int16)
        per_payload = n_prbs * self.config.prb_payload_bytes()
        for payload in payloads:
            if len(payload) < per_payload:
                raise ValueError("truncated payload in decompress_stack")
        combined = b"".join(bytes(p[:per_payload]) for p in payloads)
        stacked = self.decompress(combined, n_ops * n_prbs)
        return stacked.reshape(n_ops, n_prbs, 2 * SAMPLES_PER_PRB)

    def parse_wire(self, payload: bytes, n_prbs: int) -> Tuple[np.ndarray, np.ndarray]:
        """Parse wire payload to (exponents, signed mantissas) without
        expanding to full int16 — used where only exponents are needed.

        Returned arrays are read-only: identical payloads share one memo
        entry (the DAS/RU-sharing replicate pattern), so callers that
        mutate must ``.copy()`` first.
        """
        width = self.config.iq_width
        prb_bytes = self.config.prb_payload_bytes()
        if len(payload) < n_prbs * prb_bytes:
            raise ValueError(
                f"truncated BFP payload: need {n_prbs * prb_bytes}, got {len(payload)}"
            )
        payload_bytes = bytes(payload[: n_prbs * prb_bytes])
        memo_key = (self.config.to_byte(), payload_bytes)
        cached = _PARSE_MEMO.get(memo_key)
        if cached is not None:
            return cached
        grid = np.frombuffer(payload_bytes, dtype=np.uint8).reshape(
            n_prbs, prb_bytes
        )
        exponents = grid[:, 0] & 0x0F
        # One unpackbits over every mantissa block, then a weighted sum
        # across the (n_prbs, 24, width) bit tensor.
        bits = np.unpackbits(
            np.ascontiguousarray(grid[:, 1:]), axis=1
        ).reshape(n_prbs, 2 * SAMPLES_PER_PRB, width)
        weights = (np.int64(1) << _bit_shifts(width).astype(np.int64))
        unsigned = bits.astype(np.int64) @ weights
        sign_bit = np.int64(1) << np.int64(width - 1)
        mantissas = unsigned - ((unsigned & sign_bit) << 1)
        result = (_freeze(exponents), _freeze(mantissas))
        _PARSE_MEMO.put(memo_key, result)
        return result

    def read_exponents(self, payload: bytes, n_prbs: int) -> np.ndarray:
        """Read only the per-PRB exponent bytes (Algorithm 1's fast path).

        A pure strided view over the wire bytes — no bit unpacking.
        """
        if self.config.comp_meth == NO_COMP_METH:
            raise ValueError("uncompressed payloads carry no BFP exponents")
        prb_bytes = self.config.prb_payload_bytes()
        if len(payload) < n_prbs * prb_bytes:
            raise ValueError("truncated BFP payload")
        raw = np.frombuffer(payload, dtype=np.uint8, count=n_prbs * prb_bytes)
        return raw[::prb_bytes] & 0x0F


def codec_for(config: CompressionConfig):
    """The wire codec implementing ``config.comp_meth``.

    The dispatch point of the two-codec fronthaul: BFP and uncompressed
    payloads go through :class:`BfpCompressor`, modulation compression
    through :class:`~repro.fronthaul.modcomp.ModCompressor`.  Both expose
    the same compress/decompress/decompress_stack/parse_wire/
    read_exponents surface, so everything above this line (U-plane
    sections, DAS merge, PRB monitoring) is codec-agnostic.
    """
    if config.comp_meth == MOD_COMP_METH:
        from repro.fronthaul.modcomp import ModCompressor

        return ModCompressor(config)
    return BfpCompressor(config)


def merge_payloads(
    payloads, n_prbs: int, config: CompressionConfig
) -> bytes:
    """Batched A4 merge: sum N compressed payloads, recompress once.

    Decompresses the operands into one ``(n_ops, n_prbs, 24)`` stack with a
    single codec pass, sums across operands with int64 accumulation and
    int16 saturation, and compresses the result in one pass — the DAS
    uplink combine without any per-section round-trips.  Works for any
    negotiated codec via :func:`codec_for`.
    """
    compressor = codec_for(config)
    stack = compressor.decompress_stack(payloads, n_prbs)
    total = stack.sum(axis=0, dtype=np.int64)
    merged = np.clip(total, -32768, 32767).astype(np.int16)
    return compressor.compress(merged)


def _exact_bits_needed(samples: np.ndarray) -> np.ndarray:
    """Exact two's-complement bit count per PRB row."""
    pos = np.maximum(samples.max(axis=1), 0)
    neg = np.minimum(samples.min(axis=1), 0)
    # A positive v needs bit_length(v)+1 bits; a negative v needs
    # bit_length(-v-1)+1 bits (e.g. -256 fits in 9 bits).
    pos_bits = np.zeros(len(samples), dtype=np.int64)
    nz = pos > 0
    pos_bits[nz] = np.floor(np.log2(pos[nz])).astype(np.int64) + 2
    neg_bits = np.ones(len(samples), dtype=np.int64)
    nn = neg < -1
    neg_bits[nn] = np.floor(np.log2(-neg[nn] - 1)).astype(np.int64) + 2
    neg_bits[neg == -1] = 1
    return np.maximum(np.maximum(pos_bits, neg_bits), 1)
