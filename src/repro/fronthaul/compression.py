"""Block Floating Point (BFP) compression of U-plane IQ payloads.

Every RAN implementation the paper studied compresses U-plane IQ samples
with BFP at PRB granularity (Section 2.2, Figure 2): the 12 complex samples
of a PRB share one exponent byte, and each I/Q component is stored as an
``iq_width``-bit two's-complement mantissa.  The PRB monitoring middlebox
(Algorithm 1) reads exactly these exponents, and the DAS / RU-sharing
middleboxes must decompress, combine, and recompress them, so this module
implements real bit-accurate BFP with arbitrary mantissa widths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

SAMPLES_PER_PRB = 12

#: O-RAN udCompMeth code for block floating point.
BFP_COMP_METH = 1
#: udCompMeth code for uncompressed 16-bit fixed point.
NO_COMP_METH = 0


@dataclass(frozen=True)
class CompressionConfig:
    """Parameters carried in the O-RAN ``udCompHdr`` field.

    ``iq_width`` is the mantissa width in bits (Figure 2 shows width 9);
    ``comp_meth`` selects the scheme.  Only BFP and uncompressed are
    implemented, matching the stacks studied in the paper.
    """

    iq_width: int = 9
    comp_meth: int = BFP_COMP_METH

    def __post_init__(self) -> None:
        if self.comp_meth == NO_COMP_METH:
            if self.iq_width not in (0, 16):
                raise ValueError("uncompressed payloads use 16-bit samples")
        elif self.comp_meth == BFP_COMP_METH:
            if not 2 <= self.iq_width <= 16:
                raise ValueError(f"BFP iq_width out of range: {self.iq_width}")
        else:
            raise ValueError(f"unsupported compression method: {self.comp_meth}")

    def to_byte(self) -> int:
        width = 0 if self.iq_width == 16 else self.iq_width
        return ((width & 0xF) << 4) | (self.comp_meth & 0xF)

    @classmethod
    def from_byte(cls, value: int) -> "CompressionConfig":
        width = (value >> 4) & 0xF
        meth = value & 0xF
        if width == 0:
            width = 16
        return cls(iq_width=width, comp_meth=meth)

    def prb_payload_bytes(self) -> int:
        """Serialized size of one PRB: exponent byte + packed mantissas."""
        mantissa_bits = 2 * SAMPLES_PER_PRB * self.iq_width
        packed = (mantissa_bits + 7) // 8
        if self.comp_meth == NO_COMP_METH:
            return 2 * SAMPLES_PER_PRB * 2  # int16 I and Q, no exponent
        return 1 + packed


def _pack_bits(values: np.ndarray, width: int) -> bytes:
    """Pack unsigned integers < 2**width into a big-endian bitstream."""
    shifts = np.arange(width - 1, -1, -1)
    # Each row holds the bits of one value, MSB first.
    bits = ((values[:, None] >> shifts[None, :]) & 1).astype(np.uint8)
    return np.packbits(bits.reshape(-1)).tobytes()


def _unpack_bits(data: bytes, count: int, width: int) -> np.ndarray:
    """Inverse of :func:`_pack_bits`; returns unsigned integers."""
    needed_bits = count * width
    raw = np.frombuffer(data, dtype=np.uint8)
    bits = np.unpackbits(raw)[:needed_bits]
    bits = bits.reshape(count, width).astype(np.uint32)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint32)
    return (bits << shifts[None, :]).sum(axis=1)


def _sign_extend(values: np.ndarray, width: int) -> np.ndarray:
    sign_bit = np.uint32(1) << np.uint32(width - 1)
    signed = values.astype(np.int64)
    signed -= (values & sign_bit).astype(np.int64) << 1
    return signed


class BfpCompressor:
    """Block Floating Point codec over int16 IQ samples.

    Samples are represented as interleaved I/Q int16 arrays of shape
    ``(n_prbs, 24)`` (12 complex samples per PRB).  ``compress`` yields one
    exponent per PRB plus the packed mantissas; ``decompress`` restores
    samples up to quantization.
    """

    def __init__(self, config: CompressionConfig = CompressionConfig()):
        self.config = config

    # -- array-level API ---------------------------------------------------

    def exponents_for(self, samples: np.ndarray) -> np.ndarray:
        """Per-PRB BFP exponents for int16 samples of shape (n_prbs, 24).

        The exponent is the number of right-shifts needed so the largest
        magnitude in the PRB fits the mantissa width.  Idle PRBs (all
        near-zero samples) get exponent 0 — the property Algorithm 1's
        utilization estimator relies on.
        """
        samples = np.asarray(samples, dtype=np.int64)
        if samples.ndim != 2 or samples.shape[1] != 2 * SAMPLES_PER_PRB:
            raise ValueError(f"expected shape (n, 24), got {samples.shape}")
        width = self.config.iq_width
        bits_needed = _exact_bits_needed(samples)
        exponents = np.maximum(bits_needed - width, 0)
        return exponents.astype(np.uint8)

    def compress_array(self, samples: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Compress to (exponents, mantissas) arrays.

        Returns exponents of shape (n_prbs,) and mantissas of shape
        (n_prbs, 24) as signed integers already shifted.
        """
        samples = np.asarray(samples, dtype=np.int64)
        exponents = self.exponents_for(samples).astype(np.int64)
        mantissas = samples >> exponents[:, None]
        return exponents.astype(np.uint8), mantissas

    def decompress_array(
        self, exponents: np.ndarray, mantissas: np.ndarray
    ) -> np.ndarray:
        """Restore int16 samples from (exponents, mantissas)."""
        exps = np.asarray(exponents, dtype=np.int64)
        mants = np.asarray(mantissas, dtype=np.int64)
        restored = mants << exps[:, None]
        return np.clip(restored, -32768, 32767).astype(np.int16)

    # -- wire-level API ----------------------------------------------------

    def compress(self, samples: np.ndarray) -> bytes:
        """Serialize samples of shape (n_prbs, 24) to the wire format.

        Each PRB is emitted as ``exponent byte || packed mantissas``
        exactly as in Figure 2 of the paper.
        """
        if self.config.comp_meth == NO_COMP_METH:
            return np.asarray(samples, dtype=">i2").tobytes()
        exponents, mantissas = self.compress_array(samples)
        width = self.config.iq_width
        mask = (1 << width) - 1
        out = bytearray()
        unsigned = (mantissas & mask).astype(np.uint32)
        for prb_index in range(unsigned.shape[0]):
            out.append(int(exponents[prb_index]) & 0x0F)
            out.extend(_pack_bits(unsigned[prb_index], width))
        return bytes(out)

    def decompress(self, payload: bytes, n_prbs: int) -> np.ndarray:
        """Parse a wire payload back to int16 samples of shape (n_prbs, 24)."""
        if self.config.comp_meth == NO_COMP_METH:
            expected = n_prbs * 2 * SAMPLES_PER_PRB * 2
            if len(payload) < expected:
                raise ValueError("truncated uncompressed payload")
            flat = np.frombuffer(payload[:expected], dtype=">i2")
            return flat.reshape(n_prbs, 2 * SAMPLES_PER_PRB).astype(np.int16)
        exponents, mantissas = self.parse_wire(payload, n_prbs)
        return self.decompress_array(exponents, mantissas)

    def parse_wire(self, payload: bytes, n_prbs: int) -> Tuple[np.ndarray, np.ndarray]:
        """Parse wire payload to (exponents, signed mantissas) without
        expanding to full int16 — used where only exponents are needed."""
        width = self.config.iq_width
        prb_bytes = self.config.prb_payload_bytes()
        if len(payload) < n_prbs * prb_bytes:
            raise ValueError(
                f"truncated BFP payload: need {n_prbs * prb_bytes}, got {len(payload)}"
            )
        exponents = np.empty(n_prbs, dtype=np.uint8)
        mantissas = np.empty((n_prbs, 2 * SAMPLES_PER_PRB), dtype=np.int64)
        for prb_index in range(n_prbs):
            offset = prb_index * prb_bytes
            exponents[prb_index] = payload[offset] & 0x0F
            packed = payload[offset + 1 : offset + prb_bytes]
            unsigned = _unpack_bits(packed, 2 * SAMPLES_PER_PRB, width)
            mantissas[prb_index] = _sign_extend(unsigned, width)
        return exponents, mantissas

    def read_exponents(self, payload: bytes, n_prbs: int) -> np.ndarray:
        """Read only the per-PRB exponent bytes (Algorithm 1's fast path)."""
        if self.config.comp_meth == NO_COMP_METH:
            raise ValueError("uncompressed payloads carry no BFP exponents")
        prb_bytes = self.config.prb_payload_bytes()
        if len(payload) < n_prbs * prb_bytes:
            raise ValueError("truncated BFP payload")
        raw = np.frombuffer(payload[: n_prbs * prb_bytes], dtype=np.uint8)
        return raw[::prb_bytes] & 0x0F


def _exact_bits_needed(samples: np.ndarray) -> np.ndarray:
    """Exact two's-complement bit count per PRB row."""
    pos = np.maximum(samples.max(axis=1), 0)
    neg = np.minimum(samples.min(axis=1), 0)
    # A positive v needs bit_length(v)+1 bits; a negative v needs
    # bit_length(-v-1)+1 bits (e.g. -256 fits in 9 bits).
    pos_bits = np.zeros(len(samples), dtype=np.int64)
    nz = pos > 0
    pos_bits[nz] = np.floor(np.log2(pos[nz])).astype(np.int64) + 2
    neg_bits = np.ones(len(samples), dtype=np.int64)
    nn = neg < -1
    neg_bits[nn] = np.floor(np.log2(-neg[nn] - 1)).astype(np.int64) + 2
    neg_bits[neg == -1] = 1
    return np.maximum(np.maximum(pos_bits, neg_bits), 1)
