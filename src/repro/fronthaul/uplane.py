"""O-RAN U-plane messages: IQ sample transport.

U-plane messages carry the modulated radio waveform between DU and RU as
per-subcarrier IQ samples, BFP-compressed per PRB (Section 2.2, Figure 2).
These are the packets the DAS middlebox sums element-wise, the RU-sharing
middlebox multiplexes/demultiplexes, and the PRB monitor inspects.

Payloads are stored as raw wire bytes so that middleboxes can exercise the
same fast paths as the C implementation: reading an exponent byte does not
decompress the PRB, and aligned PRB copies are byte-range copies.  Parsing
is zero-copy — sections hold :class:`memoryview` slices into the received
frame rather than copied bytes — and IQ decodes are computed lazily and
cached per section, so a pass-through middlebox never touches the codec.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.fronthaul.compression import CompressionConfig, codec_for
from repro.fronthaul.cplane import ALL_PRBS, Direction
from repro.fronthaul.errors import TruncatedFrame
from repro.fronthaul.timing import SymbolTime

_HDR = struct.Struct("!BBH")
_SECTION_HDR = struct.Struct("!3sBBB")

#: Wire payloads may be owned bytes or zero-copy views into a frame.
PayloadBytes = Union[bytes, memoryview]


@dataclass
class UPlaneSection:
    """One U-plane section: a PRB range plus its compressed IQ payload.

    ``payload`` may be a :class:`memoryview` into the original frame (the
    zero-copy parse path) — use :meth:`payload_bytes` when owned bytes are
    required.  Decoded IQ samples are cached on the section (read-only
    arrays); :meth:`replace_payload` recognises an unmodified cached decode
    and reuses the original wire bytes instead of recompressing.
    """

    section_id: int
    start_prb: int
    num_prb: int
    payload: PayloadBytes
    compression: CompressionConfig = field(default_factory=CompressionConfig)
    rb: int = 0
    sym_inc: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.section_id < (1 << 12):
            raise ValueError(f"sectionId out of range: {self.section_id}")
        if not 0 <= self.start_prb < (1 << 10):
            raise ValueError(f"startPrbu out of range: {self.start_prb}")
        expected = self.num_prb * self.compression.prb_payload_bytes()
        if len(self.payload) != expected:
            raise ValueError(
                f"payload size {len(self.payload)} does not match "
                f"{self.num_prb} PRBs ({expected} bytes)"
            )
        # Lazy decode cache: filled by iq_samples(), consumed by
        # replace_payload()'s zero-copy fast path.
        self._iq_cache: Optional[np.ndarray] = None

    def __deepcopy__(self, memo) -> "UPlaneSection":
        # memoryview payloads cannot be deep-copied; materialize to bytes.
        clone = UPlaneSection(
            section_id=self.section_id,
            start_prb=self.start_prb,
            num_prb=self.num_prb,
            payload=self.payload_bytes(),
            compression=self.compression,
            rb=self.rb,
            sym_inc=self.sym_inc,
        )
        clone._iq_cache = self._iq_cache  # read-only, safe to share
        return clone

    @property
    def prb_range(self) -> Tuple[int, int]:
        return (self.start_prb, self.start_prb + self.num_prb)

    def payload_bytes(self) -> bytes:
        """The payload as owned ``bytes`` (copies only if zero-copy view)."""
        if isinstance(self.payload, bytes):
            return self.payload
        return bytes(self.payload)

    # -- IQ helpers (action A4 building blocks) -----------------------------

    def iq_samples(self) -> np.ndarray:
        """Decompress to int16 samples of shape (num_prb, 24).

        The decode is lazy and cached; the returned array is read-only
        (``.copy()`` before mutating).  Passing the cached array back to
        :meth:`replace_payload` untouched skips recompression entirely.
        """
        if self._iq_cache is None:
            decoded = codec_for(self.compression).decompress(
                self.payload, self.num_prb
            )
            decoded.setflags(write=False)
            self._iq_cache = decoded
        return self._iq_cache

    def exponents(self) -> np.ndarray:
        """Per-PRB compression params without decompressing (Algorithm 1).

        BFP exponents for BFP payloads, modcomp scalers for modulation
        compression — either way a per-PRB energy indicator whose zero
        value marks an idle PRB, which is all the PRB monitor needs.
        """
        return codec_for(self.compression).read_exponents(
            self.payload, self.num_prb
        )

    def prb_payload(self, prb: int) -> bytes:
        """Raw wire bytes of one PRB relative to this section's range."""
        size = self.compression.prb_payload_bytes()
        index = prb - self.start_prb
        if not 0 <= index < self.num_prb:
            raise ValueError(f"PRB {prb} outside section range {self.prb_range}")
        return bytes(self.payload[index * size : (index + 1) * size])

    def prb_payload_view(self, start_prb: int, num_prb: int) -> PayloadBytes:
        """Zero-copy view over a contiguous PRB range of the payload."""
        size = self.compression.prb_payload_bytes()
        index = start_prb - self.start_prb
        if not (0 <= index and index + num_prb <= self.num_prb):
            raise ValueError(
                f"PRB range [{start_prb}, {start_prb + num_prb}) outside "
                f"section range {self.prb_range}"
            )
        view = memoryview(self.payload)[
            index * size : (index + num_prb) * size
        ]
        return view

    def subsection(
        self, start_prb: int, num_prb: int, section_id: Optional[int] = None
    ) -> "UPlaneSection":
        """A new section over a PRB sub-range, sharing payload bytes."""
        return UPlaneSection(
            section_id=self.section_id if section_id is None else section_id,
            start_prb=start_prb,
            num_prb=num_prb,
            payload=self.prb_payload_view(start_prb, num_prb),
            compression=self.compression,
            rb=self.rb,
            sym_inc=self.sym_inc,
        )

    def replace_payload(self, samples: np.ndarray) -> "UPlaneSection":
        """Return a copy with recompressed IQ samples.

        Fast path: when ``samples`` is this section's own cached decode
        (obtained from :meth:`iq_samples` and never modified), the original
        payload bytes are reused verbatim — zero codec work, zero copies.
        """
        if samples is self._iq_cache and self._iq_cache is not None:
            payload: PayloadBytes = self.payload
        else:
            payload = codec_for(self.compression).compress(samples)
        return UPlaneSection(
            section_id=self.section_id,
            start_prb=self.start_prb,
            num_prb=self.num_prb,
            payload=payload,
            compression=self.compression,
            rb=self.rb,
            sym_inc=self.sym_inc,
        )

    @classmethod
    def from_samples(
        cls,
        section_id: int,
        start_prb: int,
        samples: np.ndarray,
        compression: CompressionConfig = CompressionConfig(),
    ) -> "UPlaneSection":
        """Build a section by compressing int16 samples of shape (n, 24)."""
        payload = codec_for(compression).compress(samples)
        return cls(
            section_id=section_id,
            start_prb=start_prb,
            num_prb=len(samples),
            payload=payload,
            compression=compression,
        )

    def pack(self) -> bytes:
        word = (
            ((self.section_id & 0xFFF) << 12)
            | ((self.rb & 0x1) << 11)
            | ((self.sym_inc & 0x1) << 10)
            | (self.start_prb & 0x3FF)
        )
        num_prb_byte = self.num_prb if 0 < self.num_prb <= 255 else ALL_PRBS
        header = _SECTION_HDR.pack(
            word.to_bytes(3, "big"),
            num_prb_byte,
            self.compression.to_byte(),
            0,
        )
        # join() accepts the zero-copy memoryview payload directly.
        return b"".join((header, self.payload))

    @classmethod
    def unpack(
        cls, data: PayloadBytes, offset: int, carrier_num_prb: Optional[int] = None
    ) -> Tuple["UPlaneSection", int]:
        if len(data) - offset < _SECTION_HDR.size:
            raise TruncatedFrame("truncated U-plane section header")
        head, num_prb, comp_byte, _ = _SECTION_HDR.unpack_from(data, offset)
        head = int.from_bytes(head, "big")
        offset += _SECTION_HDR.size
        if num_prb == ALL_PRBS:
            if carrier_num_prb is None:
                raise ValueError("numPrbu=0 (all PRBs) needs carrier_num_prb")
            num_prb = carrier_num_prb
        compression = CompressionConfig.from_byte(comp_byte)
        payload_size = num_prb * compression.prb_payload_bytes()
        if len(data) - offset < payload_size:
            raise TruncatedFrame("truncated U-plane payload")
        # Zero-copy: the section references the original frame buffer.
        section = cls(
            section_id=(head >> 12) & 0xFFF,
            rb=(head >> 11) & 0x1,
            sym_inc=(head >> 10) & 0x1,
            start_prb=head & 0x3FF,
            num_prb=num_prb,
            payload=memoryview(data)[offset : offset + payload_size],
            compression=compression,
        )
        return section, offset + payload_size


@dataclass
class UPlaneMessage:
    """A full U-plane message: timing header plus IQ sections."""

    direction: Direction
    time: SymbolTime
    sections: List[UPlaneSection] = field(default_factory=list)
    filter_index: int = 0

    def pack(self) -> bytes:
        first = (
            ((int(self.direction) & 0x1) << 7)
            | ((1 & 0x7) << 4)
            | (self.filter_index & 0xF)
        )
        timing = (
            ((self.time.subframe & 0xF) << 12)
            | ((self.time.slot & 0x3F) << 6)
            | (self.time.symbol & 0x3F)
        )
        parts = [_HDR.pack(first, self.time.frame & 0xFF, timing)]
        parts.extend(section.pack() for section in self.sections)
        return b"".join(parts)

    @classmethod
    def unpack(
        cls, data: PayloadBytes, carrier_num_prb: Optional[int] = None
    ) -> "UPlaneMessage":
        if len(data) < _HDR.size:
            raise TruncatedFrame("truncated U-plane header")
        first, frame, timing = _HDR.unpack_from(data)
        message = cls(
            direction=Direction((first >> 7) & 0x1),
            time=SymbolTime(
                frame,
                (timing >> 12) & 0xF,
                (timing >> 6) & 0x3F,
                timing & 0x3F,
            ),
            filter_index=first & 0xF,
        )
        offset = _HDR.size
        while offset < len(data):
            section, offset = UPlaneSection.unpack(data, offset, carrier_num_prb)
            message.sections.append(section)
        return message

    def total_prbs(self) -> int:
        return sum(section.num_prb for section in self.sections)
