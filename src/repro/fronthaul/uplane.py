"""O-RAN U-plane messages: IQ sample transport.

U-plane messages carry the modulated radio waveform between DU and RU as
per-subcarrier IQ samples, BFP-compressed per PRB (Section 2.2, Figure 2).
These are the packets the DAS middlebox sums element-wise, the RU-sharing
middlebox multiplexes/demultiplexes, and the PRB monitor inspects.

Payloads are stored as raw wire bytes so that middleboxes can exercise the
same fast paths as the C implementation: reading an exponent byte does not
decompress the PRB, and aligned PRB copies are byte-range copies.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.fronthaul.compression import BfpCompressor, CompressionConfig
from repro.fronthaul.cplane import ALL_PRBS, Direction
from repro.fronthaul.timing import SymbolTime

_HDR = struct.Struct("!BBH")
_SECTION_HDR = struct.Struct("!3sBBB")


@dataclass
class UPlaneSection:
    """One U-plane section: a PRB range plus its compressed IQ payload."""

    section_id: int
    start_prb: int
    num_prb: int
    payload: bytes
    compression: CompressionConfig = field(default_factory=CompressionConfig)
    rb: int = 0
    sym_inc: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.section_id < (1 << 12):
            raise ValueError(f"sectionId out of range: {self.section_id}")
        if not 0 <= self.start_prb < (1 << 10):
            raise ValueError(f"startPrbu out of range: {self.start_prb}")
        expected = self.num_prb * self.compression.prb_payload_bytes()
        if len(self.payload) != expected:
            raise ValueError(
                f"payload size {len(self.payload)} does not match "
                f"{self.num_prb} PRBs ({expected} bytes)"
            )

    @property
    def prb_range(self) -> Tuple[int, int]:
        return (self.start_prb, self.start_prb + self.num_prb)

    # -- IQ helpers (action A4 building blocks) -----------------------------

    def iq_samples(self) -> np.ndarray:
        """Decompress to int16 samples of shape (num_prb, 24)."""
        return BfpCompressor(self.compression).decompress(self.payload, self.num_prb)

    def exponents(self) -> np.ndarray:
        """Per-PRB BFP exponents without decompressing (Algorithm 1)."""
        return BfpCompressor(self.compression).read_exponents(
            self.payload, self.num_prb
        )

    def prb_payload(self, prb: int) -> bytes:
        """Raw wire bytes of one PRB relative to this section's range."""
        size = self.compression.prb_payload_bytes()
        index = prb - self.start_prb
        if not 0 <= index < self.num_prb:
            raise ValueError(f"PRB {prb} outside section range {self.prb_range}")
        return self.payload[index * size : (index + 1) * size]

    def replace_payload(self, samples: np.ndarray) -> "UPlaneSection":
        """Return a copy with recompressed IQ samples."""
        payload = BfpCompressor(self.compression).compress(samples)
        return UPlaneSection(
            section_id=self.section_id,
            start_prb=self.start_prb,
            num_prb=self.num_prb,
            payload=payload,
            compression=self.compression,
            rb=self.rb,
            sym_inc=self.sym_inc,
        )

    @classmethod
    def from_samples(
        cls,
        section_id: int,
        start_prb: int,
        samples: np.ndarray,
        compression: CompressionConfig = CompressionConfig(),
    ) -> "UPlaneSection":
        """Build a section by compressing int16 samples of shape (n, 24)."""
        payload = BfpCompressor(compression).compress(samples)
        return cls(
            section_id=section_id,
            start_prb=start_prb,
            num_prb=len(samples),
            payload=payload,
            compression=compression,
        )

    def pack(self) -> bytes:
        word = (
            ((self.section_id & 0xFFF) << 12)
            | ((self.rb & 0x1) << 11)
            | ((self.sym_inc & 0x1) << 10)
            | (self.start_prb & 0x3FF)
        )
        num_prb_byte = self.num_prb if 0 < self.num_prb <= 255 else ALL_PRBS
        return (
            _SECTION_HDR.pack(
                word.to_bytes(3, "big"),
                num_prb_byte,
                self.compression.to_byte(),
                0,
            )
            + self.payload
        )

    @classmethod
    def unpack(
        cls, data: bytes, offset: int, carrier_num_prb: Optional[int] = None
    ) -> Tuple["UPlaneSection", int]:
        if len(data) - offset < _SECTION_HDR.size:
            raise ValueError("truncated U-plane section header")
        head, num_prb, comp_byte, _ = _SECTION_HDR.unpack_from(data, offset)
        head = int.from_bytes(head, "big")
        offset += _SECTION_HDR.size
        if num_prb == ALL_PRBS:
            if carrier_num_prb is None:
                raise ValueError("numPrbu=0 (all PRBs) needs carrier_num_prb")
            num_prb = carrier_num_prb
        compression = CompressionConfig.from_byte(comp_byte)
        payload_size = num_prb * compression.prb_payload_bytes()
        if len(data) - offset < payload_size:
            raise ValueError("truncated U-plane payload")
        section = cls(
            section_id=(head >> 12) & 0xFFF,
            rb=(head >> 11) & 0x1,
            sym_inc=(head >> 10) & 0x1,
            start_prb=head & 0x3FF,
            num_prb=num_prb,
            payload=data[offset : offset + payload_size],
            compression=compression,
        )
        return section, offset + payload_size


@dataclass
class UPlaneMessage:
    """A full U-plane message: timing header plus IQ sections."""

    direction: Direction
    time: SymbolTime
    sections: List[UPlaneSection] = field(default_factory=list)
    filter_index: int = 0

    def pack(self) -> bytes:
        first = (
            ((int(self.direction) & 0x1) << 7)
            | ((1 & 0x7) << 4)
            | (self.filter_index & 0xF)
        )
        timing = (
            ((self.time.subframe & 0xF) << 12)
            | ((self.time.slot & 0x3F) << 6)
            | (self.time.symbol & 0x3F)
        )
        out = bytearray(_HDR.pack(first, self.time.frame & 0xFF, timing))
        for section in self.sections:
            out.extend(section.pack())
        return bytes(out)

    @classmethod
    def unpack(
        cls, data: bytes, carrier_num_prb: Optional[int] = None
    ) -> "UPlaneMessage":
        if len(data) < _HDR.size:
            raise ValueError("truncated U-plane header")
        first, frame, timing = _HDR.unpack_from(data)
        message = cls(
            direction=Direction((first >> 7) & 0x1),
            time=SymbolTime(
                frame,
                (timing >> 12) & 0xF,
                (timing >> 6) & 0x3F,
                timing & 0x3F,
            ),
            filter_index=first & 0xF,
        )
        offset = _HDR.size
        while offset < len(data):
            section, offset = UPlaneSection.unpack(data, offset, carrier_num_prb)
            message.sections.append(section)
        return message

    def total_prbs(self) -> int:
        return sum(section.num_prb for section in self.sections)
