"""Typed malformed-frame errors raised by the wire parsers.

Every parser in :mod:`repro.fronthaul` raises a subclass of
:class:`MalformedFrame` when the bytes on the wire cannot be a legal
O-RAN frame.  The hierarchy subclasses :class:`ValueError` on purpose:
all existing containment points (the switch's per-delivery guard, the
network slot loop, DU/RU ingress) already catch ``ValueError``, so
strictness upgrades never turn an absorbed bad frame into a crash.

The distinct subclasses let the conformance validator classify *why* a
frame failed to parse — a truncated section and a lying eCPRI length
field are different violations even though both are unparseable.
"""

from __future__ import annotations


class MalformedFrame(ValueError):
    """A frame that violates the wire format and cannot be parsed."""


class TruncatedFrame(MalformedFrame):
    """The buffer ends before a declared header/section/payload does."""


class EcpriLengthError(MalformedFrame):
    """The eCPRI ``payloadSize`` field disagrees with the actual body."""


class TrailingBytes(MalformedFrame):
    """Bytes remain after the message's declared content was consumed."""
