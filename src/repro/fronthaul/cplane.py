"""O-RAN C-plane messages (section types 1 and 3).

The DU instructs the RU how to schedule radio resources through C-plane
messages (Section 2.2, Figure 1b).  Section type 1 describes DL/UL data
channels; section type 3 describes PRACH and other mixed-numerology
channels and carries the ``freqOffset`` field that the RU-sharing
middlebox must translate (Appendix A.1.2).

The encodings below follow the O-RAN WG4 CUS specification layouts and
round-trip byte-exactly; the middleboxes mutate these bytes in place via
the A4 action.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.fronthaul.compression import CompressionConfig
from repro.fronthaul.errors import MalformedFrame, TrailingBytes, TruncatedFrame
from repro.fronthaul.timing import SymbolTime

#: On-wire numPrb value meaning "all PRBs of the carrier" (needed because
#: the field is one byte but 100 MHz carriers have 273 PRBs).
ALL_PRBS = 0


class Direction(enum.IntEnum):
    """dataDirection bit: 0 = uplink (RU->DU), 1 = downlink (DU->RU)."""

    UPLINK = 0
    DOWNLINK = 1


class SectionType(enum.IntEnum):
    """C-plane section types implemented here."""

    DATA = 1  # DL/UL channel data (most common)
    PRACH = 3  # PRACH and mixed-numerology channels


@dataclass
class CPlaneSection:
    """One C-plane section: a rectangle of PRBs x symbols to process.

    ``num_prb`` is the logical PRB count; it serializes as 0 (ALL_PRBS)
    when it exceeds the one-byte range, and :meth:`unpack` resolves 0 back
    using the carrier size when provided.
    """

    section_id: int
    start_prb: int
    num_prb: int
    num_symbols: int = 14
    rb: int = 0  # 0 = every RB used, 1 = every other RB
    sym_inc: int = 0
    re_mask: int = 0xFFF
    beam_id: int = 0
    ef: int = 0
    # -- type 3 only --
    freq_offset: Optional[int] = None

    _TYPE1 = struct.Struct("!3sBHH")
    _TYPE3 = struct.Struct("!3sBHH3sB")

    def __post_init__(self) -> None:
        if not 0 <= self.section_id < (1 << 12):
            raise ValueError(f"sectionId out of range: {self.section_id}")
        if not 0 <= self.start_prb < (1 << 10):
            raise ValueError(f"startPrbc out of range: {self.start_prb}")
        if self.num_prb < 0:
            raise ValueError(f"numPrbc negative: {self.num_prb}")
        if not 1 <= self.num_symbols <= 14:
            raise ValueError(f"numSymbol out of range: {self.num_symbols}")

    @property
    def prb_range(self) -> Tuple[int, int]:
        """Half-open PRB interval [start, end) covered by this section."""
        return (self.start_prb, self.start_prb + self.num_prb)

    def _common_words(self) -> Tuple[bytes, int]:
        word = (
            ((self.section_id & 0xFFF) << 12)
            | ((self.rb & 0x1) << 11)
            | ((self.sym_inc & 0x1) << 10)
            | (self.start_prb & 0x3FF)
        )
        num_prb_byte = self.num_prb if 0 < self.num_prb <= 255 else ALL_PRBS
        return word.to_bytes(3, "big"), num_prb_byte

    def pack(self, section_type: SectionType) -> bytes:
        head, num_prb_byte = self._common_words()
        remask_word = ((self.re_mask & 0xFFF) << 4) | (self.num_symbols & 0xF)
        beam_word = ((self.ef & 0x1) << 15) | (self.beam_id & 0x7FFF)
        if section_type is SectionType.DATA:
            return self._TYPE1.pack(head, num_prb_byte, remask_word, beam_word)
        if self.freq_offset is None:
            raise ValueError("type 3 sections require freq_offset")
        freq = self.freq_offset & 0xFFFFFF  # 24-bit two's complement
        return self._TYPE3.pack(
            head, num_prb_byte, remask_word, beam_word, freq.to_bytes(3, "big"), 0
        )

    @classmethod
    def unpack(
        cls,
        data: bytes,
        offset: int,
        section_type: SectionType,
        carrier_num_prb: Optional[int] = None,
    ) -> Tuple["CPlaneSection", int]:
        layout = cls._TYPE1 if section_type is SectionType.DATA else cls._TYPE3
        if len(data) - offset < layout.size:
            raise TruncatedFrame("truncated C-plane section")
        fields = layout.unpack_from(data, offset)
        head = int.from_bytes(fields[0], "big")
        num_prb = fields[1]
        if num_prb == ALL_PRBS:
            if carrier_num_prb is None:
                raise ValueError(
                    "numPrbc=0 (all PRBs) needs carrier_num_prb to resolve"
                )
            num_prb = carrier_num_prb
        remask_word = fields[2]
        beam_word = fields[3]
        freq_offset = None
        if section_type is SectionType.PRACH:
            raw = int.from_bytes(fields[4], "big")
            freq_offset = raw - (1 << 24) if raw & (1 << 23) else raw
        section = cls(
            section_id=(head >> 12) & 0xFFF,
            rb=(head >> 11) & 0x1,
            sym_inc=(head >> 10) & 0x1,
            start_prb=head & 0x3FF,
            num_prb=num_prb,
            re_mask=(remask_word >> 4) & 0xFFF,
            num_symbols=remask_word & 0xF or 14,
            ef=(beam_word >> 15) & 0x1,
            beam_id=beam_word & 0x7FFF,
            freq_offset=freq_offset,
        )
        return section, offset + layout.size


@dataclass
class CPlaneMessage:
    """A full C-plane message: radio-application header plus sections."""

    direction: Direction
    time: SymbolTime
    sections: List[CPlaneSection] = field(default_factory=list)
    section_type: SectionType = SectionType.DATA
    compression: CompressionConfig = field(default_factory=CompressionConfig)
    filter_index: int = 0
    # -- type 3 only --
    time_offset: int = 0
    frame_structure: int = 0
    cp_length: int = 0

    _HDR_COMMON = struct.Struct("!BBHBB")
    _HDR_TYPE1_TAIL = struct.Struct("!BB")
    _HDR_TYPE3_TAIL = struct.Struct("!HBHB")

    def pack(self) -> bytes:
        first = (
            ((int(self.direction) & 0x1) << 7)
            | ((1 & 0x7) << 4)  # payloadVersion = 1
            | (self.filter_index & 0xF)
        )
        timing = (
            ((self.time.subframe & 0xF) << 12)
            | ((self.time.slot & 0x3F) << 6)
            | (self.time.symbol & 0x3F)
        )
        out = bytearray(
            self._HDR_COMMON.pack(
                first,
                self.time.frame & 0xFF,
                timing,
                len(self.sections),
                int(self.section_type),
            )
        )
        if self.section_type is SectionType.DATA:
            out.extend(self._HDR_TYPE1_TAIL.pack(self.compression.to_byte(), 0))
        else:
            out.extend(
                self._HDR_TYPE3_TAIL.pack(
                    self.time_offset & 0xFFFF,
                    self.frame_structure & 0xFF,
                    self.cp_length & 0xFFFF,
                    self.compression.to_byte(),
                )
            )
        for section in self.sections:
            out.extend(section.pack(self.section_type))
        return bytes(out)

    @classmethod
    def unpack(
        cls, data: bytes, carrier_num_prb: Optional[int] = None
    ) -> "CPlaneMessage":
        if len(data) < cls._HDR_COMMON.size:
            raise TruncatedFrame("truncated C-plane header")
        first, frame, timing, n_sections, stype_raw = cls._HDR_COMMON.unpack_from(data)
        try:
            section_type = SectionType(stype_raw)
        except ValueError:
            raise MalformedFrame(
                f"unknown C-plane section type: {stype_raw}"
            ) from None
        offset = cls._HDR_COMMON.size
        time_offset = frame_structure = cp_length = 0
        if section_type is SectionType.DATA:
            if len(data) < offset + cls._HDR_TYPE1_TAIL.size:
                raise TruncatedFrame("truncated C-plane type-1 header")
            comp_byte, _ = cls._HDR_TYPE1_TAIL.unpack_from(data, offset)
            offset += cls._HDR_TYPE1_TAIL.size
        else:
            if len(data) < offset + cls._HDR_TYPE3_TAIL.size:
                raise TruncatedFrame("truncated C-plane type-3 header")
            time_offset, frame_structure, cp_length, comp_byte = (
                cls._HDR_TYPE3_TAIL.unpack_from(data, offset)
            )
            offset += cls._HDR_TYPE3_TAIL.size
        message = cls(
            direction=Direction((first >> 7) & 0x1),
            time=SymbolTime(
                frame,
                (timing >> 12) & 0xF,
                (timing >> 6) & 0x3F,
                timing & 0x3F,
            ),
            section_type=section_type,
            compression=CompressionConfig.from_byte(comp_byte),
            filter_index=first & 0xF,
            time_offset=time_offset,
            frame_structure=frame_structure,
            cp_length=cp_length,
        )
        for _ in range(n_sections):
            section, offset = CPlaneSection.unpack(
                data, offset, section_type, carrier_num_prb
            )
            message.sections.append(section)
        if offset != len(data):
            raise TrailingBytes(
                f"{len(data) - offset} trailing bytes after "
                f"{n_sections} C-plane sections"
            )
        return message

    def total_prbs(self) -> int:
        """Total PRBs requested across all sections."""
        return sum(section.num_prb for section in self.sections)
