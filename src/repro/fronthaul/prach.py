"""PRACH frequency-offset translation for RU sharing.

UEs attach by sending random-access preambles on the PRACH, signalled on
the fronthaul by C-plane section type 3 messages whose ``freqOffset`` field
locates the PRACH region within the DU's spectrum in half-subcarrier units.
When a DU shares an RU whose center frequency differs, the RU-sharing
middlebox must translate this offset into the RU's spectrum (Appendix
A.1.2, equations (5)-(11)), otherwise the RU returns the wrong subcarriers
and UE attach attempts fail.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fronthaul.spectrum import PrbGrid


def freq_offset_to_hz(freq_offset: int, scs_hz: int) -> float:
    """Equation (5): freqOffset is in units of half a subcarrier spacing."""
    return freq_offset * 0.5 * scs_hz


def hz_to_freq_offset(frequency_offset_hz: float, scs_hz: int) -> int:
    """Inverse of :func:`freq_offset_to_hz` (exact for valid inputs)."""
    value = frequency_offset_hz / (0.5 * scs_hz)
    rounded = round(value)
    if abs(value - rounded) > 1e-6:
        raise ValueError(
            f"frequency offset {frequency_offset_hz} Hz is not a multiple of "
            f"half the subcarrier spacing ({scs_hz / 2} Hz)"
        )
    return rounded


def translate_freq_offset(
    freq_offset_du: int,
    du_center_frequency_hz: float,
    ru_center_frequency_hz: float,
    scs_hz: int,
) -> int:
    """Equation (11): translate a DU PRACH freqOffset to the RU spectrum.

    freqOffset_RU = freqOffset_DU +
        (RU_center_frequency - DU_center_frequency) / (0.5 * SCS)
    """
    delta = (ru_center_frequency_hz - du_center_frequency_hz) / (0.5 * scs_hz)
    rounded = round(delta)
    if abs(delta - rounded) > 1e-6:
        raise ValueError(
            "center frequency difference is not a multiple of half the "
            "subcarrier spacing; PRACH offsets cannot be translated exactly"
        )
    return freq_offset_du + rounded


def translate_freq_offset_via_re0(
    freq_offset_du: int,
    du_center_frequency_hz: float,
    ru_center_frequency_hz: float,
    scs_hz: int,
) -> int:
    """Equations (5)-(10): the long-form derivation via the frequency of
    the first resource element.  Kept as an independently-derived check of
    :func:`translate_freq_offset` (they must agree; property-tested).

    Note the paper's sign convention: a positive freqOffset places the
    PRACH region *below* the center frequency.
    """
    frequency_offset_du_hz = freq_offset_to_hz(freq_offset_du, scs_hz)  # eq. 5
    frequency_re0rb0_hz = du_center_frequency_hz - frequency_offset_du_hz  # eq. 6-7
    frequency_offset_ru_hz = ru_center_frequency_hz - frequency_re0rb0_hz  # eq. 8-9
    return hz_to_freq_offset(frequency_offset_ru_hz, scs_hz)  # eq. 10


@dataclass(frozen=True)
class PrachOccasion:
    """A PRACH transmission opportunity within a DU's grid.

    ``freq_offset`` follows the wire convention (half-subcarrier units,
    positive below center); ``num_prb`` spans the preamble format's width.
    """

    freq_offset: int
    num_prb: int
    eaxc_ru_port: int = 0

    def region_low_edge_hz(self, du_grid: PrbGrid) -> float:
        """Absolute frequency of the first RE of the PRACH region."""
        return du_grid.center_frequency_hz - freq_offset_to_hz(
            self.freq_offset, du_grid.scs_hz
        )

    def translate_to(self, du_grid: PrbGrid, ru_grid: PrbGrid) -> "PrachOccasion":
        """Return the occasion as the shared RU must see it."""
        new_offset = translate_freq_offset(
            self.freq_offset,
            du_grid.center_frequency_hz,
            ru_grid.center_frequency_hz,
            du_grid.scs_hz,
        )
        return PrachOccasion(new_offset, self.num_prb, self.eaxc_ru_port)
