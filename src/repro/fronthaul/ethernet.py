"""Ethernet II framing with optional 802.1Q VLAN tags.

The O-RAN fronthaul is Ethernet-based (Section 2.2 of the paper): every
C-plane and U-plane message is an Ethernet frame whose source/destination
addresses identify the DU and RU endpoints.  RANBooster's A1 action (route
and drop) works by rewriting exactly these fields, so the framing layer is
implemented as a real, byte-accurate codec.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.fronthaul.errors import TruncatedFrame

ETHERTYPE_ECPRI = 0xAEFE
ETHERTYPE_VLAN = 0x8100

_HDR_NO_VLAN = struct.Struct("!6s6sH")
_HDR_VLAN = struct.Struct("!6s6sHHH")


@dataclass(frozen=True, order=True)
class MacAddress:
    """A 48-bit IEEE MAC address.

    Stored canonically as 6 raw bytes; constructed from either raw bytes or
    the usual colon-separated string form.
    """

    raw: bytes

    def __post_init__(self) -> None:
        if len(self.raw) != 6:
            raise ValueError(f"MAC address must be 6 bytes, got {len(self.raw)}")

    @classmethod
    def from_string(cls, text: str) -> "MacAddress":
        """Parse ``aa:bb:cc:dd:ee:ff`` (case-insensitive)."""
        parts = text.split(":")
        if len(parts) != 6:
            raise ValueError(f"malformed MAC address: {text!r}")
        return cls(bytes(int(p, 16) for p in parts))

    @classmethod
    def from_int(cls, value: int) -> "MacAddress":
        """Build a MAC from a 48-bit integer (useful for generated fleets)."""
        if not 0 <= value < (1 << 48):
            raise ValueError(f"MAC integer out of range: {value}")
        return cls(value.to_bytes(6, "big"))

    def to_int(self) -> int:
        return int.from_bytes(self.raw, "big")

    def __str__(self) -> str:
        return ":".join(f"{b:02x}" for b in self.raw)


BROADCAST = MacAddress(b"\xff" * 6)


@dataclass(frozen=True)
class VlanTag:
    """An 802.1Q tag: priority code point, drop eligible indicator, VLAN id."""

    vlan_id: int
    priority: int = 0
    dei: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.vlan_id < 4096:
            raise ValueError(f"VLAN id out of range: {self.vlan_id}")
        if not 0 <= self.priority < 8:
            raise ValueError(f"VLAN priority out of range: {self.priority}")

    def to_tci(self) -> int:
        return (self.priority << 13) | (int(self.dei) << 12) | self.vlan_id

    @classmethod
    def from_tci(cls, tci: int) -> "VlanTag":
        return cls(
            vlan_id=tci & 0x0FFF,
            priority=(tci >> 13) & 0x7,
            dei=bool((tci >> 12) & 0x1),
        )


@dataclass
class EthernetHeader:
    """An Ethernet II header, optionally VLAN-tagged.

    ``ethertype`` is the *inner* ethertype (0xAEFE for eCPRI fronthaul
    traffic); when ``vlan`` is present the outer TPID 0x8100 is emitted
    automatically.
    """

    dst: MacAddress
    src: MacAddress
    ethertype: int = ETHERTYPE_ECPRI
    vlan: Optional[VlanTag] = None

    @property
    def size(self) -> int:
        """Serialized header length in bytes (14 untagged, 18 tagged)."""
        return _HDR_VLAN.size if self.vlan is not None else _HDR_NO_VLAN.size

    def pack(self) -> bytes:
        if self.vlan is not None:
            return _HDR_VLAN.pack(
                self.dst.raw,
                self.src.raw,
                ETHERTYPE_VLAN,
                self.vlan.to_tci(),
                self.ethertype,
            )
        return _HDR_NO_VLAN.pack(self.dst.raw, self.src.raw, self.ethertype)

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["EthernetHeader", int]:
        """Parse a header from ``data``; return (header, bytes consumed)."""
        if len(data) < _HDR_NO_VLAN.size:
            raise TruncatedFrame("truncated Ethernet header")
        dst, src, ethertype = _HDR_NO_VLAN.unpack_from(data)
        if ethertype != ETHERTYPE_VLAN:
            return (
                cls(dst=MacAddress(dst), src=MacAddress(src), ethertype=ethertype),
                _HDR_NO_VLAN.size,
            )
        if len(data) < _HDR_VLAN.size:
            raise TruncatedFrame("truncated 802.1Q header")
        dst, src, _, tci, inner = _HDR_VLAN.unpack_from(data)
        return (
            cls(
                dst=MacAddress(dst),
                src=MacAddress(src),
                ethertype=inner,
                vlan=VlanTag.from_tci(tci),
            ),
            _HDR_VLAN.size,
        )
