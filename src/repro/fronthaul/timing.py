"""5G NR frame structure: numerology, slots, symbols, TDD patterns.

Fronthaul scheduling happens per symbol (~33.3 us for the 30 kHz SCS cells
used throughout the paper).  Every C-/U-plane message carries a
frame/subframe/slot/symbol timestamp, and the middleboxes key their caches
on it, so the timing model is shared by the DU, RU, and middlebox layers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Tuple

SYMBOLS_PER_SLOT = 14
SUBFRAMES_PER_FRAME = 10
FRAME_DURATION_NS = 10_000_000  # 10 ms
MAX_FRAME_ID = 256  # frameId is one byte on the wire


class SlotType(enum.Enum):
    """Link direction of a TDD slot."""

    DOWNLINK = "D"
    UPLINK = "U"
    SPECIAL = "S"


@dataclass(frozen=True)
class Numerology:
    """3GPP numerology mu: subcarrier spacing 15 * 2**mu kHz."""

    mu: int = 1

    def __post_init__(self) -> None:
        if not 0 <= self.mu <= 4:
            raise ValueError(f"numerology mu out of range: {self.mu}")

    @property
    def scs_hz(self) -> int:
        return 15_000 * (1 << self.mu)

    @property
    def slots_per_subframe(self) -> int:
        return 1 << self.mu

    @property
    def slots_per_frame(self) -> int:
        return SUBFRAMES_PER_FRAME * self.slots_per_subframe

    @property
    def slot_duration_ns(self) -> int:
        return FRAME_DURATION_NS // self.slots_per_frame

    @property
    def symbol_duration_ns(self) -> float:
        return self.slot_duration_ns / SYMBOLS_PER_SLOT

    @property
    def slots_per_second(self) -> int:
        return 100 * self.slots_per_frame  # 100 frames per second


@dataclass(frozen=True, order=True)
class SymbolTime:
    """A fronthaul timestamp: (frame, subframe, slot, symbol).

    ``slot`` is the slot index within the subframe (0..2^mu-1) as encoded
    on the wire.
    """

    frame: int
    subframe: int
    slot: int
    symbol: int

    def __post_init__(self) -> None:
        if not 0 <= self.frame < MAX_FRAME_ID:
            raise ValueError(f"frame out of range: {self.frame}")
        if not 0 <= self.subframe < SUBFRAMES_PER_FRAME:
            raise ValueError(f"subframe out of range: {self.subframe}")
        if not 0 <= self.slot < 64:
            raise ValueError(f"slot out of range: {self.slot}")
        if not 0 <= self.symbol < SYMBOLS_PER_SLOT:
            raise ValueError(f"symbol out of range: {self.symbol}")

    def slot_key(self) -> Tuple[int, int, int]:
        """Key identifying the slot (ignoring the symbol index)."""
        return (self.frame, self.subframe, self.slot)

    def absolute_slot(self, numerology: Numerology) -> int:
        """Monotonic slot counter within the 256-frame wire epoch."""
        per_frame = numerology.slots_per_frame
        per_subframe = numerology.slots_per_subframe
        return self.frame * per_frame + self.subframe * per_subframe + self.slot

    @classmethod
    def from_absolute_slot(
        cls, index: int, numerology: Numerology, symbol: int = 0
    ) -> "SymbolTime":
        per_frame = numerology.slots_per_frame
        per_subframe = numerology.slots_per_subframe
        frame = (index // per_frame) % MAX_FRAME_ID
        rem = index % per_frame
        return cls(frame, rem // per_subframe, rem % per_subframe, symbol)

    def ns(self, numerology: Numerology) -> float:
        """Nanoseconds since epoch start for the beginning of this symbol."""
        return (
            self.absolute_slot(numerology) * numerology.slot_duration_ns
            + self.symbol * numerology.symbol_duration_ns
        )


@dataclass(frozen=True)
class TddPattern:
    """A repeating TDD slot pattern such as ``DDDSU`` or ``DDDDDDDSUU``.

    Special slots are modelled with a configurable downlink/uplink symbol
    split (guard symbols are neither).
    """

    pattern: str = "DDDSU"
    special_dl_symbols: int = 6
    special_guard_symbols: int = 4
    special_ul_symbols: int = 4

    def __post_init__(self) -> None:
        if not self.pattern or any(c not in "DSU" for c in self.pattern):
            raise ValueError(f"malformed TDD pattern: {self.pattern!r}")
        total = (
            self.special_dl_symbols
            + self.special_guard_symbols
            + self.special_ul_symbols
        )
        if total != SYMBOLS_PER_SLOT:
            raise ValueError(f"special slot symbols must sum to 14, got {total}")

    def slot_type(self, absolute_slot: int) -> SlotType:
        return SlotType(self.pattern[absolute_slot % len(self.pattern)])

    def is_downlink_symbol(self, absolute_slot: int, symbol: int) -> bool:
        kind = self.slot_type(absolute_slot)
        if kind is SlotType.DOWNLINK:
            return True
        if kind is SlotType.SPECIAL:
            return symbol < self.special_dl_symbols
        return False

    def is_uplink_symbol(self, absolute_slot: int, symbol: int) -> bool:
        kind = self.slot_type(absolute_slot)
        if kind is SlotType.UPLINK:
            return True
        if kind is SlotType.SPECIAL:
            return symbol >= SYMBOLS_PER_SLOT - self.special_ul_symbols
        return False

    def downlink_symbol_fraction(self) -> float:
        """Fraction of all symbols usable for downlink over one period."""
        dl = 0
        for slot_char in self.pattern:
            if slot_char == "D":
                dl += SYMBOLS_PER_SLOT
            elif slot_char == "S":
                dl += self.special_dl_symbols
        return dl / (len(self.pattern) * SYMBOLS_PER_SLOT)

    def uplink_symbol_fraction(self) -> float:
        """Fraction of all symbols usable for uplink over one period."""
        ul = 0
        for slot_char in self.pattern:
            if slot_char == "U":
                ul += SYMBOLS_PER_SLOT
            elif slot_char == "S":
                ul += self.special_ul_symbols
        return ul / (len(self.pattern) * SYMBOLS_PER_SLOT)


class SlotClock:
    """Iterator over consecutive slots, yielding :class:`SymbolTime` stamps.

    The DU drives its scheduler off this clock; tests use it to generate
    deterministic timestamp sequences.
    """

    def __init__(self, numerology: Numerology, start_slot: int = 0):
        self.numerology = numerology
        self._slot = start_slot

    @property
    def current_slot(self) -> int:
        return self._slot

    def advance(self) -> SymbolTime:
        """Return the stamp for the current slot and move to the next."""
        stamp = SymbolTime.from_absolute_slot(self._slot, self.numerology)
        self._slot += 1
        return stamp

    def symbols(self) -> Iterator[SymbolTime]:
        """Yield the 14 symbol stamps of the current slot (no advance)."""
        base = SymbolTime.from_absolute_slot(self._slot, self.numerology)
        for symbol in range(SYMBOLS_PER_SLOT):
            yield SymbolTime(base.frame, base.subframe, base.slot, symbol)
