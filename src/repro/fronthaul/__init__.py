"""O-RAN WG4 open fronthaul protocol substrate.

Implements the CUS-plane wire formats the paper's middleboxes operate on:

- :mod:`repro.fronthaul.ethernet` -- Ethernet II + 802.1Q VLAN framing.
- :mod:`repro.fronthaul.ecpri` -- eCPRI transport header and eAxC ids.
- :mod:`repro.fronthaul.cplane` -- C-plane section type 1 (data) and
  type 3 (PRACH) messages.
- :mod:`repro.fronthaul.uplane` -- U-plane messages carrying IQ samples.
- :mod:`repro.fronthaul.compression` -- Block Floating Point compression.
- :mod:`repro.fronthaul.timing` -- 5G NR frame structure and TDD patterns.
- :mod:`repro.fronthaul.spectrum` -- PRB grids and the Appendix A.1.1
  center-frequency alignment math.
- :mod:`repro.fronthaul.prach` -- PRACH frequency-offset translation
  (Appendix A.1.2, eqs. 5-11).
- :mod:`repro.fronthaul.packet` -- top-level parse/serialize entry points.
"""

from repro.fronthaul.errors import (
    EcpriLengthError,
    MalformedFrame,
    TrailingBytes,
    TruncatedFrame,
)
from repro.fronthaul.ethernet import EthernetHeader, MacAddress, VlanTag
from repro.fronthaul.ecpri import EAxCId, EcpriHeader, EcpriMessageType
from repro.fronthaul.compression import (
    BFP_COMP_METH,
    MOD_COMP_METH,
    BfpCompressor,
    CompressionConfig,
    codec_for,
)
from repro.fronthaul.modcomp import ModCompressor
from repro.fronthaul.timing import Numerology, SlotClock, SymbolTime, TddPattern
from repro.fronthaul.spectrum import PrbGrid, aligned_du_center_frequency
from repro.fronthaul.cplane import (
    CPlaneMessage,
    CPlaneSection,
    Direction,
    SectionType,
)
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection
from repro.fronthaul.packet import FronthaulPacket, parse_packet

__all__ = [
    "MalformedFrame",
    "TruncatedFrame",
    "EcpriLengthError",
    "TrailingBytes",
    "EthernetHeader",
    "MacAddress",
    "VlanTag",
    "EAxCId",
    "EcpriHeader",
    "EcpriMessageType",
    "BFP_COMP_METH",
    "MOD_COMP_METH",
    "BfpCompressor",
    "ModCompressor",
    "CompressionConfig",
    "codec_for",
    "Numerology",
    "SlotClock",
    "SymbolTime",
    "TddPattern",
    "PrbGrid",
    "aligned_du_center_frequency",
    "CPlaneMessage",
    "CPlaneSection",
    "Direction",
    "SectionType",
    "UPlaneMessage",
    "UPlaneSection",
    "FronthaulPacket",
    "parse_packet",
]
