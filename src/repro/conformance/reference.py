"""Scalar reference implementations for differential testing.

Deliberately naive, loop-per-PRB, pure-Python re-implementations of the
vectorized fronthaul hot paths: the BFP codec, the payload merge, and
the U-plane parser.  The differential suite runs both implementations
over generated inputs and asserts **byte-identical** output — the
property that pins the vectorized fast paths to the wire format.

Nothing here imports numpy; every value is a Python int, so the
reference cannot share a bug with the vectorized code's array handling.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional, Sequence

from repro.fronthaul.compression import (
    BFP_COMP_METH,
    MAX_WIRE_EXPONENT,
    MOD_COMP_METH,
    NO_COMP_METH,
    SAMPLES_PER_PRB,
)

_VALUES_PER_PRB = 2 * SAMPLES_PER_PRB  # 24 interleaved I/Q int16 values

_UPLANE_HDR = struct.Struct("!BBH")
_UPLANE_SECTION_HDR = struct.Struct("!3sBBB")


def scalar_bits_needed(value: int) -> int:
    """Two's-complement bits needed for one sample (including sign)."""
    if value >= 0:
        return value.bit_length() + 1
    return (-value - 1).bit_length() + 1


def scalar_exponent(row: Sequence[int], iq_width: int) -> int:
    """BFP exponent of one PRB row of 24 samples."""
    needed = max(max(scalar_bits_needed(int(v)) for v in row), 1)
    return max(needed - iq_width, 0)


def scalar_modcomp_scaler(row: Sequence[int], iq_width: int) -> int:
    """Modcomp scaler of one PRB row of 24 samples (same shift rule)."""
    return scalar_exponent(row, iq_width)


def _prb_payload_bytes(iq_width: int, comp_meth: int) -> int:
    if comp_meth == NO_COMP_METH:
        return _VALUES_PER_PRB * 2
    if comp_meth == MOD_COMP_METH:
        return 2 + (_VALUES_PER_PRB * iq_width + 7) // 8
    return 1 + (_VALUES_PER_PRB * iq_width + 7) // 8


def scalar_compress(samples, iq_width: int, comp_meth: int = BFP_COMP_METH) -> bytes:
    """Compress rows of 24 int16 samples to wire bytes, one PRB at a time."""
    out = bytearray()
    for row in samples:
        row = [int(v) for v in row]
        if len(row) != _VALUES_PER_PRB:
            raise ValueError(f"expected 24 values per PRB, got {len(row)}")
        if comp_meth == NO_COMP_METH:
            for value in row:
                out += struct.pack(">h", value)
            continue
        if comp_meth == MOD_COMP_METH:
            scaler = scalar_modcomp_scaler(row, iq_width)
            if scaler > max(0, 16 - iq_width):
                raise ValueError(
                    f"modcomp scaler {scaler} exceeds the legal bound "
                    f"{max(0, 16 - iq_width)} for width {iq_width}; "
                    "saturate samples to int16 before compressing"
                )
            param = scaler | ((1 << 15) if scaler > 0 else 0)  # csf bit
            out += param.to_bytes(2, "big")
            mask = (1 << iq_width) - 1
            accumulator = 0
            for value in row:
                accumulator = (accumulator << iq_width) | (
                    (value >> scaler) & mask
                )
            out += accumulator.to_bytes(3 * iq_width, "big")
            continue
        exponent = scalar_exponent(row, iq_width)
        if exponent > MAX_WIRE_EXPONENT:
            raise ValueError(
                f"BFP exponent {exponent} exceeds the 4-bit wire field "
                f"(max {MAX_WIRE_EXPONENT}); saturate samples to int16 "
                "before compressing"
            )
        out.append(exponent)
        mask = (1 << iq_width) - 1
        accumulator = 0
        for value in row:
            accumulator = (accumulator << iq_width) | ((value >> exponent) & mask)
        out += accumulator.to_bytes(3 * iq_width, "big")
    return bytes(out)


def scalar_decompress(
    payload: bytes, n_prbs: int, iq_width: int, comp_meth: int = BFP_COMP_METH
) -> List[List[int]]:
    """Decompress wire bytes back to rows of 24 int16 samples."""
    payload = bytes(payload)
    prb_bytes = _prb_payload_bytes(iq_width, comp_meth)
    if len(payload) < n_prbs * prb_bytes:
        raise ValueError("truncated payload in scalar_decompress")
    rows: List[List[int]] = []
    for index in range(n_prbs):
        block = payload[index * prb_bytes : (index + 1) * prb_bytes]
        if comp_meth == NO_COMP_METH:
            rows.append(
                [
                    struct.unpack_from(">h", block, 2 * i)[0]
                    for i in range(_VALUES_PER_PRB)
                ]
            )
            continue
        if comp_meth == MOD_COMP_METH:
            param = int.from_bytes(block[:2], "big")
            scaler = min(param & 0x7FFF, 32)
            half = (1 << scaler) >> 1
            accumulator = int.from_bytes(block[2:], "big")
            mask = (1 << iq_width) - 1
            sign_bit = 1 << (iq_width - 1)
            row = []
            for position in range(_VALUES_PER_PRB):
                shift = (_VALUES_PER_PRB - 1 - position) * iq_width
                mantissa = (accumulator >> shift) & mask
                if mantissa & sign_bit:
                    mantissa -= 1 << iq_width
                restored = (mantissa << scaler) + half
                row.append(max(-32768, min(32767, restored)))
            rows.append(row)
            continue
        exponent = block[0] & 0x0F
        accumulator = int.from_bytes(block[1:], "big")
        mask = (1 << iq_width) - 1
        sign_bit = 1 << (iq_width - 1)
        row: List[int] = []
        for position in range(_VALUES_PER_PRB):
            shift = (_VALUES_PER_PRB - 1 - position) * iq_width
            mantissa = (accumulator >> shift) & mask
            if mantissa & sign_bit:
                mantissa -= 1 << iq_width
            restored = mantissa << exponent
            row.append(max(-32768, min(32767, restored)))
        rows.append(row)
    return rows


def scalar_merge(
    payloads: Sequence[bytes], n_prbs: int, iq_width: int,
    comp_meth: int = BFP_COMP_METH,
) -> bytes:
    """Reference of :func:`repro.fronthaul.compression.merge_payloads`:
    decompress every operand, sum with int16 saturation, recompress."""
    stacks = [
        scalar_decompress(payload, n_prbs, iq_width, comp_meth)
        for payload in payloads
    ]
    merged: List[List[int]] = []
    for prb in range(n_prbs):
        row = []
        for position in range(_VALUES_PER_PRB):
            total = sum(stack[prb][position] for stack in stacks)
            row.append(max(-32768, min(32767, total)))
        merged.append(row)
    return scalar_compress(merged, iq_width, comp_meth)


def scalar_parse_uplane(
    data: bytes, carrier_num_prb: Optional[int] = None
) -> Dict[str, Any]:
    """Reference U-plane parser: plain dict output, byte-at-a-time."""
    data = bytes(data)
    if len(data) < _UPLANE_HDR.size:
        raise ValueError("truncated U-plane header")
    first, frame, timing = _UPLANE_HDR.unpack_from(data)
    parsed: Dict[str, Any] = {
        "direction": (first >> 7) & 0x1,
        "payload_version": (first >> 4) & 0x7,
        "filter_index": first & 0xF,
        "frame": frame,
        "subframe": (timing >> 12) & 0xF,
        "slot": (timing >> 6) & 0x3F,
        "symbol": timing & 0x3F,
        "sections": [],
    }
    offset = _UPLANE_HDR.size
    while offset < len(data):
        if len(data) - offset < _UPLANE_SECTION_HDR.size:
            raise ValueError("truncated U-plane section header")
        head, num_prb, comp_byte, _ = _UPLANE_SECTION_HDR.unpack_from(
            data, offset
        )
        head = int.from_bytes(head, "big")
        offset += _UPLANE_SECTION_HDR.size
        if num_prb == 0:
            if carrier_num_prb is None:
                raise ValueError("numPrbu=0 (all PRBs) needs carrier_num_prb")
            num_prb = carrier_num_prb
        iq_width = (comp_byte >> 4) & 0xF or 16
        comp_meth = comp_byte & 0xF
        payload_size = num_prb * _prb_payload_bytes(iq_width, comp_meth)
        if len(data) - offset < payload_size:
            raise ValueError("truncated U-plane payload")
        parsed["sections"].append(
            {
                "section_id": (head >> 12) & 0xFFF,
                "rb": (head >> 11) & 0x1,
                "sym_inc": (head >> 10) & 0x1,
                "start_prb": head & 0x3FF,
                "num_prb": num_prb,
                "comp_byte": comp_byte,
                "payload": data[offset : offset + payload_size],
            }
        )
        offset += payload_size
    return parsed


def scalar_pack_uplane(parsed: Dict[str, Any]) -> bytes:
    """Re-serialize :func:`scalar_parse_uplane` output byte-exactly."""
    first = (
        ((parsed["direction"] & 0x1) << 7)
        | ((parsed["payload_version"] & 0x7) << 4)
        | (parsed["filter_index"] & 0xF)
    )
    timing = (
        ((parsed["subframe"] & 0xF) << 12)
        | ((parsed["slot"] & 0x3F) << 6)
        | (parsed["symbol"] & 0x3F)
    )
    out = bytearray(_UPLANE_HDR.pack(first, parsed["frame"] & 0xFF, timing))
    for section in parsed["sections"]:
        head = (
            ((section["section_id"] & 0xFFF) << 12)
            | ((section["rb"] & 0x1) << 11)
            | ((section["sym_inc"] & 0x1) << 10)
            | (section["start_prb"] & 0x3FF)
        )
        num_prb_byte = (
            section["num_prb"] if 0 < section["num_prb"] <= 255 else 0
        )
        out += _UPLANE_SECTION_HDR.pack(
            head.to_bytes(3, "big"), num_prb_byte, section["comp_byte"], 0
        )
        out += section["payload"]
    return bytes(out)
