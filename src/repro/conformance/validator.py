"""The stateful wire-level conformance validator.

:class:`WireValidator` can be tapped into any point of the datapath — a
switch port, a chain stage boundary, RU/DU ingress (see
:mod:`repro.conformance.tap`) — and checks every frame it observes
against the rules the repo's fronthaul implies:

- eCPRI header well-formedness (version, message type, ``payloadSize``
  accounting for every byte on the wire);
- C/U-plane section structure (non-empty, inside the carrier,
  non-overlapping within a message, vendor section-size caps);
- PRB accounting: every U-plane section must be covered by a C-plane
  section that scheduled the same ``(slot, ru_port)`` window — the rule
  the RU itself enforces on downlink, applied symmetrically to uplink;
- BFP legality per vendor ``stack_profile``: the ``udCompHdr`` must
  match the profile, exponent bytes must fit the 4-bit wire nibble and
  the mantissa width (an exponent above ``16 - iq_width`` cannot arise
  from int16 sources and means corrupted wire bytes);
- 8-bit sequence continuity with wrap, via the fault layer's
  :class:`~repro.faults.sequence.SequenceTracker` (streams keyed by
  ``(src MAC, dst MAC, eAxC)``: DU and RU share one counter across
  planes, so message type stays out of the key, while the destination
  stays in so a DAS replicating one frame to several RUs is N distinct
  point-to-point flows, not a duplicate);
- slot-timing monotonicity per stream over the 256-frame wire epoch
  (modular half-window comparison, mirroring the sequence wrap rule).

Findings are :class:`~repro.conformance.violations.Violation` records
accumulated in a :class:`~repro.conformance.violations.ConformanceReport`
and exported through the obs metrics layer when enabled.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

import numpy as np

from repro import obs as obs_module
from repro.conformance.violations import (
    ConformanceReport,
    Violation,
    ViolationClass,
)
from repro.faults.sequence import SequenceTracker, SeqVerdict
from repro.fronthaul.compression import (
    BFP_COMP_METH,
    MAX_WIRE_EXPONENT,
    MOD_COMP_METH,
    CompressionConfig,
)
from repro.fronthaul.modcomp import ModCompressor, max_scaler
from repro.fronthaul.cplane import CPlaneMessage, Direction
from repro.fronthaul.ecpri import EcpriMessageType
from repro.fronthaul.errors import EcpriLengthError, MalformedFrame
from repro.fronthaul.packet import FronthaulPacket, parse_packet
from repro.fronthaul.timing import MAX_FRAME_ID, Numerology
from repro.fronthaul.uplane import UPlaneMessage
from repro.ran.stacks import VendorProfile

#: Scheduled C-plane windows retained per direction before eviction.
_WINDOW_CAP = 1024


def _legal_max_exponent(iq_width: int) -> int:
    """Largest BFP exponent reachable from int16 samples of this width.

    int16 needs at most 16 bits, so a legal exponent never exceeds
    ``16 - iq_width``; the 4-bit wire nibble caps it at 15 regardless.
    """
    return min(MAX_WIRE_EXPONENT, max(0, 16 - iq_width))


class WireValidator:
    """Stateful validator checking frames against the O-RAN wire rules."""

    def __init__(
        self,
        name: str = "validator",
        profile: Optional[VendorProfile] = None,
        carrier_num_prb: Optional[int] = None,
        numerology: Optional[Numerology] = None,
        obs=None,
        report: Optional[ConformanceReport] = None,
        allowed_compressions=None,
    ):
        self.name = name
        self.profile = profile
        #: The set of negotiated wire configs legal on this tap.  When
        #: given it overrides the profile-derived single expectation —
        #: mixed-codec groups list every member cell's negotiation here.
        #: ``None`` falls back to the profile's BFP config (or no
        #: udCompHdr expectation at all when the profile is None too).
        if allowed_compressions is not None:
            self.allowed_compressions: Optional[frozenset] = frozenset(
                allowed_compressions
            )
        elif profile is not None:
            self.allowed_compressions = frozenset((profile.compression,))
        else:
            self.allowed_compressions = None
        self.carrier_num_prb = carrier_num_prb
        self.numerology = numerology or Numerology()
        self.obs = obs if obs is not None else obs_module.DEFAULT_OBSERVABILITY
        self.report = report if report is not None else ConformanceReport()
        self._tracker = SequenceTracker(
            modulus=256, name=f"{name}-seq", obs=self.obs
        )
        #: direction -> {(slot_key, ru_port): [(start, end), ...]}
        self._windows = {
            Direction.DOWNLINK: OrderedDict(),
            Direction.UPLINK: OrderedDict(),
        }
        #: (src, dst, eaxc) -> last absolute slot (mod the 256-frame epoch).
        self._last_slot = {}
        #: Cached (registry, frames-counter child) for the per-packet export.
        self._frames_child = None

    # -- entry points --------------------------------------------------------

    def observe_bytes(self, data: bytes, tap: str = "") -> List[Violation]:
        """Validate a raw on-wire frame; classify parse failures too."""
        try:
            packet = parse_packet(data, carrier_num_prb=self.carrier_num_prb)
        except EcpriLengthError as exc:
            return self._parse_failure(
                ViolationClass.BAD_ECPRI_LENGTH, exc, tap
            )
        except (MalformedFrame, ValueError) as exc:
            return self._parse_failure(
                ViolationClass.MALFORMED_FRAME, exc, tap
            )
        return self.observe(packet, tap=tap)

    def observe(
        self, packet: FronthaulPacket, tap: str = ""
    ) -> List[Violation]:
        """Validate one parsed packet and update stream state."""
        self.report.frames_checked += 1
        found: List[Violation] = []
        self._check_ecpri(packet, tap, found)
        if packet.is_cplane:
            self._check_sections(packet, tap, found)
            self._check_cplane_compression(packet, tap, found)
            self._record_windows(packet)
        elif packet.is_uplane:
            self._check_sections(packet, tap, found)
            self._check_compression(packet, tap, found)
            self._check_accounting(packet, tap, found)
        stream = self._stream_key(packet)
        self._check_sequence(packet, stream, tap, found)
        self._check_timing(packet, stream, tap, found)
        for violation in found:
            self.report.record(violation)
        self._export(found)
        return found

    # -- individual checks ---------------------------------------------------

    def _violation(
        self,
        packet: Optional[FronthaulPacket],
        violation_class: ViolationClass,
        detail: str,
        tap: str,
    ) -> Violation:
        if packet is None:
            return Violation(violation_class, detail, tap=tap)
        return Violation(
            violation_class,
            detail,
            tap=tap,
            src=str(packet.eth.src),
            eaxc=packet.eaxc.to_int(),
            seq=packet.ecpri.seq_id,
            time=(
                packet.time.frame,
                packet.time.subframe,
                packet.time.slot,
                packet.time.symbol,
            ),
        )

    def _parse_failure(
        self, violation_class: ViolationClass, exc: Exception, tap: str
    ) -> List[Violation]:
        self.report.frames_checked += 1
        violation = Violation(violation_class, str(exc), tap=tap)
        self.report.record(violation)
        self._export([violation])
        return [violation]

    def _check_ecpri(
        self, packet: FronthaulPacket, tap: str, found: List[Violation]
    ) -> None:
        expected_type = (
            EcpriMessageType.RT_CONTROL
            if packet.is_cplane
            else EcpriMessageType.IQ_DATA
        )
        if packet.ecpri.message_type is not expected_type:
            found.append(
                self._violation(
                    packet,
                    ViolationClass.MALFORMED_FRAME,
                    f"eCPRI message type {packet.ecpri.message_type} does "
                    f"not match a {type(packet.message).__name__} payload",
                    tap,
                )
            )
        # In-memory packets built by make_packet() carry payload_size=0
        # ("fill in at pack time"); only a nonzero declared size can lie.
        declared = packet.ecpri.payload_size
        if declared:
            actual = len(packet.message.pack()) + 4
            if declared != actual:
                found.append(
                    self._violation(
                        packet,
                        ViolationClass.BAD_ECPRI_LENGTH,
                        f"eCPRI payloadSize {declared} != {actual} bytes "
                        "of message body",
                        tap,
                    )
                )

    def _check_sections(
        self, packet: FronthaulPacket, tap: str, found: List[Violation]
    ) -> None:
        claimed: List[Tuple[int, int]] = []
        for section in packet.message.sections:
            start, end = section.prb_range
            if section.num_prb < 1:
                found.append(
                    self._violation(
                        packet,
                        ViolationClass.SECTION_STRUCTURE,
                        f"section {section.section_id} covers no PRBs",
                        tap,
                    )
                )
                continue
            if (
                self.carrier_num_prb is not None
                and end > self.carrier_num_prb
            ):
                found.append(
                    self._violation(
                        packet,
                        ViolationClass.SECTION_STRUCTURE,
                        f"section {section.section_id} PRBs [{start}, {end})"
                        f" exceed the {self.carrier_num_prb}-PRB carrier",
                        tap,
                    )
                )
            if (
                packet.is_uplane
                and self.profile is not None
                and section.num_prb > self.profile.uplane_section_max_prbs
            ):
                found.append(
                    self._violation(
                        packet,
                        ViolationClass.SECTION_STRUCTURE,
                        f"section {section.section_id} carries "
                        f"{section.num_prb} PRBs > vendor cap "
                        f"{self.profile.uplane_section_max_prbs}",
                        tap,
                    )
                )
            for other_start, other_end in claimed:
                if start < other_end and other_start < end:
                    found.append(
                        self._violation(
                            packet,
                            ViolationClass.SECTION_STRUCTURE,
                            f"section {section.section_id} PRBs "
                            f"[{start}, {end}) overlap a sibling section",
                            tap,
                        )
                    )
                    break
            claimed.append((start, end))

    def _comphdr_mismatch(
        self,
        packet: FronthaulPacket,
        config: CompressionConfig,
        what: str,
        tap: str,
        found: List[Violation],
    ) -> bool:
        """Flag a udCompHdr outside the negotiated set; True if flagged.

        A wrong *codec* (udCompMeth no stream negotiated) is a
        ``CODEC_MISMATCH`` — the RU has no decoder armed for it.  The
        right codec with the wrong parameters (width) stays the original
        ``BFP_WIDTH_MISMATCH`` class.
        """
        allowed = self.allowed_compressions
        if allowed is None or config in allowed:
            return False
        names = ", ".join(
            f"(width {c.iq_width}, meth {c.comp_meth})" for c in sorted(
                allowed, key=lambda c: (c.comp_meth, c.iq_width)
            )
        )
        if config.comp_meth not in {c.comp_meth for c in allowed}:
            found.append(
                self._violation(
                    packet,
                    ViolationClass.CODEC_MISMATCH,
                    f"{what} udCompHdr meth {config.comp_meth} is a codec "
                    f"no stream negotiated (allowed: {names})",
                    tap,
                )
            )
        else:
            found.append(
                self._violation(
                    packet,
                    ViolationClass.BFP_WIDTH_MISMATCH,
                    f"{what} udCompHdr (width {config.iq_width}, "
                    f"meth {config.comp_meth}) outside the negotiated "
                    f"set {names}",
                    tap,
                )
            )
        return True

    def _check_cplane_compression(
        self, packet: FronthaulPacket, tap: str, found: List[Violation]
    ) -> None:
        message: CPlaneMessage = packet.message
        self._comphdr_mismatch(
            packet, message.compression, "C-plane", tap, found
        )

    def _check_compression(
        self, packet: FronthaulPacket, tap: str, found: List[Violation]
    ) -> None:
        for section in packet.message.sections:
            config = section.compression
            if self._comphdr_mismatch(
                packet, config, f"section {section.section_id}", tap, found
            ):
                continue
            if section.num_prb < 1:
                continue
            if config.comp_meth == BFP_COMP_METH:
                self._check_bfp_exponents(packet, section, config, tap, found)
            elif config.comp_meth == MOD_COMP_METH:
                self._check_modcomp_params(packet, section, config, tap, found)

    def _check_bfp_exponents(
        self, packet, section, config, tap, found: List[Violation]
    ) -> None:
        # Raw exponent bytes, unmasked: the upper nibble is reserved
        # and a legal exponent never exceeds 16 - iq_width.
        prb_bytes = config.prb_payload_bytes()
        raw = np.frombuffer(
            section.payload,
            dtype=np.uint8,
            count=section.num_prb * prb_bytes,
        )[::prb_bytes]
        worst = int(raw.max())
        legal = _legal_max_exponent(config.iq_width)
        if worst > legal:
            found.append(
                self._violation(
                    packet,
                    ViolationClass.ILLEGAL_BFP_EXPONENT,
                    f"section {section.section_id} exponent byte "
                    f"{worst} exceeds the legal max {legal} for "
                    f"width-{config.iq_width} BFP",
                    tap,
                )
            )

    def _check_modcomp_params(
        self, packet, section, config, tap, found: List[Violation]
    ) -> None:
        csf, scalers = ModCompressor(config).read_params(
            section.payload, section.num_prb
        )
        worst = int(scalers.max())
        legal = max_scaler(config.iq_width)
        if worst > legal:
            found.append(
                self._violation(
                    packet,
                    ViolationClass.ILLEGAL_MODCOMP_PARAM,
                    f"section {section.section_id} modcomp scaler "
                    f"{worst} exceeds the legal max {legal} for "
                    f"width-{config.iq_width} constellations",
                    tap,
                )
            )
            return
        inconsistent = (csf.astype(bool) != (scalers > 0))
        if bool(inconsistent.any()):
            prb = int(np.argmax(inconsistent))
            found.append(
                self._violation(
                    packet,
                    ViolationClass.ILLEGAL_MODCOMP_PARAM,
                    f"section {section.section_id} PRB {prb} csf flag "
                    f"{int(csf[prb])} inconsistent with scaler "
                    f"{int(scalers[prb])}",
                    tap,
                )
            )

    def _record_windows(self, packet: FronthaulPacket) -> None:
        message: CPlaneMessage = packet.message
        windows = self._windows[message.direction]
        key = (packet.time.slot_key(), packet.eaxc.ru_port)
        ranges = windows.get(key)
        if ranges is None:
            ranges = windows[key] = []
            while len(windows) > _WINDOW_CAP:
                windows.popitem(last=False)
        for section in message.sections:
            ranges.append(section.prb_range)

    def _check_accounting(
        self, packet: FronthaulPacket, tap: str, found: List[Violation]
    ) -> None:
        message: UPlaneMessage = packet.message
        windows = self._windows[message.direction]
        key = (packet.time.slot_key(), packet.eaxc.ru_port)
        ranges = windows.get(key)
        for section in message.sections:
            start, end = section.prb_range
            if ranges is None:
                found.append(
                    self._violation(
                        packet,
                        ViolationClass.PRB_SECTION_MISMATCH,
                        f"no C-plane scheduled slot {key[0]} ru_port "
                        f"{key[1]} for U-plane section "
                        f"{section.section_id}",
                        tap,
                    )
                )
                continue
            if not any(ws <= start and end <= we for ws, we in ranges):
                found.append(
                    self._violation(
                        packet,
                        ViolationClass.PRB_SECTION_MISMATCH,
                        f"U-plane section {section.section_id} PRBs "
                        f"[{start}, {end}) outside every scheduled "
                        f"C-plane window {ranges}",
                        tap,
                    )
                )

    @staticmethod
    def _stream_key(packet: FronthaulPacket) -> Tuple[int, int, int]:
        """Per-link stream identity: (src, dst, eAxC).

        The destination matters: a DAS replicating one downlink frame to
        several RUs reuses src/eAxC/seq on every copy, and each copy is a
        distinct point-to-point flow, not a duplicate.  Message type stays
        out because DU and RU share one seq counter across C/U-plane.
        """
        return (
            packet.eth.src.to_int(),
            packet.eth.dst.to_int(),
            packet.eaxc.to_int(),
        )

    def _check_sequence(
        self,
        packet: FronthaulPacket,
        stream: Tuple[int, int, int],
        tap: str,
        found: List[Violation],
    ) -> None:
        status = self._tracker.observe(
            stream, packet.ecpri.seq_id, context=packet.flow_key()
        )
        if status.verdict is SeqVerdict.DUPLICATE:
            found.append(
                self._violation(
                    packet,
                    ViolationClass.SEQ_DUP,
                    f"seq {packet.ecpri.seq_id} repeated on stream "
                    f"{packet.eth.src}/eaxc {packet.eaxc.to_int()}",
                    tap,
                )
            )
        elif status.gap:
            found.append(
                self._violation(
                    packet,
                    ViolationClass.SEQ_GAP,
                    f"{status.gap} sequence number(s) skipped before seq "
                    f"{packet.ecpri.seq_id} on stream {packet.eth.src}"
                    f"/eaxc {packet.eaxc.to_int()}",
                    tap,
                )
            )

    def _check_timing(
        self,
        packet: FronthaulPacket,
        stream: Tuple[int, int, int],
        tap: str,
        found: List[Violation],
    ) -> None:
        epoch = MAX_FRAME_ID * self.numerology.slots_per_frame
        current = packet.time.absolute_slot(self.numerology) % epoch
        last = self._last_slot.get(stream)
        if last is None:
            self._last_slot[stream] = current
            return
        delta = (current - last) % epoch
        if delta > epoch // 2:
            # Regressed against the stream head (modular half-window:
            # wrap at the epoch looks like small forward progress).
            found.append(
                self._violation(
                    packet,
                    ViolationClass.STALE_SLOT,
                    f"slot timestamp regressed {epoch - delta} slot(s) "
                    f"behind stream {packet.eth.src}/eaxc "
                    f"{packet.eaxc.to_int()}",
                    tap,
                )
            )
            return
        self._last_slot[stream] = current

    # -- obs export ----------------------------------------------------------

    def _export(self, found: List[Violation]) -> None:
        if not self.obs.enabled:
            return
        registry = self.obs.registry
        frames = self._frames_child
        if frames is None or frames[0] is not registry:
            frames = self._frames_child = (
                registry,
                registry.counter(
                    "conformance_frames_total",
                    "frames checked by the conformance validator",
                    labels=("validator",),
                ).labels(self.name),
            )
        frames[1].inc()
        for violation in found:
            registry.counter(
                "conformance_violations_total",
                "conformance violations by validator and class",
                labels=("validator", "class"),
            ).labels(self.name, violation.violation_class.value).inc()
