"""Structured conformance violations and the mergeable report.

A :class:`Violation` is one observed departure from the O-RAN/eCPRI
rules the repo implements, classified by :class:`ViolationClass` and
carrying enough wire coordinates (tap, source MAC, eAxC, seq, slot) to
find the offending frame in a flight-recorder trace.

:class:`ConformanceReport` accumulates violations plus per-class
counters, and merges order-independently so per-shard validators in a
sharded scenario run fold into one report (plain-data ``to_dict`` /
``from_dict`` makes it picklable across the worker pipe).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class ViolationClass(str, enum.Enum):
    """Taxonomy of wire-level conformance violations."""

    #: eCPRI ``payloadSize`` disagrees with the bytes actually on the wire.
    BAD_ECPRI_LENGTH = "bad_ecpri_length"
    #: Frame fails to parse at all (bad version, truncation, trailing junk).
    MALFORMED_FRAME = "malformed_frame"
    #: Section structure broken: overlap, empty, or outside the carrier.
    SECTION_STRUCTURE = "section_structure"
    #: U-plane PRBs not covered by any C-plane section that scheduled them.
    PRB_SECTION_MISMATCH = "prb_section_mismatch"
    #: Section compression config differs from the vendor stack profile.
    BFP_WIDTH_MISMATCH = "bfp_width_mismatch"
    #: BFP exponent byte outside the legal range for the mantissa width.
    ILLEGAL_BFP_EXPONENT = "illegal_bfp_exponent"
    #: Section carries a codec (udCompMeth) no stream of the deployment
    #: negotiated — a wrong-codec payload the RU would reject.
    CODEC_MISMATCH = "codec_mismatch"
    #: Modcomp udCompParam illegal: scaler beyond what int16 sources can
    #: produce for the width, or a csf flag inconsistent with the scaler.
    ILLEGAL_MODCOMP_PARAM = "illegal_modcomp_param"
    #: Sequence numbers skipped within a stream (loss).
    SEQ_GAP = "seq_gap"
    #: A sequence number repeated within a stream (duplicate).
    SEQ_DUP = "seq_dup"
    #: Slot timestamp regressed against the stream's progress (stale).
    STALE_SLOT = "stale_slot"


@dataclass(frozen=True)
class Violation:
    """One structured conformance finding."""

    violation_class: ViolationClass
    detail: str
    tap: str = ""
    src: str = ""
    eaxc: Optional[int] = None
    seq: Optional[int] = None
    #: ``(frame, subframe, slot, symbol)`` of the offending message.
    time: Optional[tuple] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "class": self.violation_class.value,
            "detail": self.detail,
            "tap": self.tap,
            "src": self.src,
            "eaxc": self.eaxc,
            "seq": self.seq,
            "time": list(self.time) if self.time is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Violation":
        return cls(
            violation_class=ViolationClass(data["class"]),
            detail=data["detail"],
            tap=data.get("tap", ""),
            src=data.get("src", ""),
            eaxc=data.get("eaxc"),
            seq=data.get("seq"),
            time=tuple(data["time"]) if data.get("time") else None,
        )

    def __str__(self) -> str:
        where = f" @{self.tap}" if self.tap else ""
        return f"[{self.violation_class.value}]{where} {self.detail}"


@dataclass
class ConformanceReport:
    """Violation accumulator: counters always, records up to a cap."""

    #: Retain at most this many full records (counters stay exact).
    max_records: int = 256
    frames_checked: int = 0
    counts: Dict[str, int] = field(default_factory=dict)
    records: List[Violation] = field(default_factory=list)

    @property
    def total_violations(self) -> int:
        return sum(self.counts.values())

    @property
    def ok(self) -> bool:
        return self.total_violations == 0

    def record(self, violation: Violation) -> None:
        key = violation.violation_class.value
        self.counts[key] = self.counts.get(key, 0) + 1
        if len(self.records) < self.max_records:
            self.records.append(violation)

    def count(self, violation_class: ViolationClass) -> int:
        return self.counts.get(violation_class.value, 0)

    def merge(self, other: "ConformanceReport") -> "ConformanceReport":
        """Fold another report in (per-shard reports -> one report)."""
        self.frames_checked += other.frames_checked
        for key, value in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + value
        room = self.max_records - len(self.records)
        if room > 0:
            self.records.extend(other.records[:room])
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "frames_checked": self.frames_checked,
            "counts": dict(self.counts),
            "records": [record.as_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ConformanceReport":
        report = cls(
            frames_checked=data.get("frames_checked", 0),
            counts=dict(data.get("counts", {})),
        )
        report.records = [
            Violation.from_dict(record) for record in data.get("records", ())
        ]
        return report

    def format(self) -> str:
        lines = [
            f"frames checked: {self.frames_checked}, "
            f"violations: {self.total_violations}"
        ]
        for key in sorted(self.counts):
            lines.append(f"  {key}: {self.counts[key]}")
        for record in self.records[:10]:
            lines.append(f"  - {record}")
        return "\n".join(lines)
