"""Tap points: attach a validator anywhere in the datapath.

Three attachment styles, matching the three places frames exist:

- :class:`ConformanceTap` — a pass-through middlebox; insert it at any
  chain stage boundary to validate everything flowing through that
  point (both directions, like every other middlebox).
- :func:`tap_switch_port` — wraps a :class:`SwitchPort`'s ``deliver``
  callable so every frame entering that port is validated first;
  ``wire_level=True`` re-serializes each frame and validates the actual
  on-wire bytes (exercising the strict parsers) instead of the
  in-memory object.
- ``FronthaulNetwork(validator=...)`` — the network observes every
  post-chain burst at RU ingress (downlink) and DU ingress (uplink);
  see :mod:`repro.sim.network_sim`.

Validation never mutates or drops a frame: a tap is an observer, and a
violating frame continues on its way (the report records it).
"""

from __future__ import annotations

from repro.conformance.validator import WireValidator
from repro.core.middlebox import ActionContext, Middlebox
from repro.fronthaul.packet import FronthaulPacket


class ConformanceTap(Middlebox):
    """A pass-through middlebox that validates every packet it forwards."""

    app_name = "conformance-tap"

    def __init__(self, validator: WireValidator, **kwargs):
        super().__init__(**kwargs)
        self.validator = validator

    def on_cplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        self.validator.observe(packet, tap=self.name)
        ctx.forward(packet)

    def on_uplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        self.validator.observe(packet, tap=self.name)
        ctx.forward(packet)


def tap_switch_port(
    switch, port_name: str, validator: WireValidator, wire_level: bool = False
) -> None:
    """Interpose the validator on every frame delivered into a port.

    Works with both :class:`repro.core.chain.FronthaulSwitch` ports and
    :class:`repro.net.switch.EthernetSwitch` ports (anything exposing
    ``port(name).deliver``).  With ``wire_level`` the frame is packed and
    validated as raw bytes — the strict-parser path — at the cost of one
    serialization per frame.
    """
    port = switch.port(port_name)
    inner = port.deliver
    tap_name = f"{switch.name}:{port_name}"

    def deliver(packet: FronthaulPacket) -> None:
        if wire_level:
            validator.observe_bytes(packet.pack(), tap=tap_name)
        else:
            validator.observe(packet, tap=tap_name)
        inner(packet)

    port.deliver = deliver
