"""Wire-level conformance validation for the fronthaul datapath.

The paper's interop claim (three commercial stacks accept the
middleboxes' fronthaul bytes, §6.2/Table 2) is only as strong as the
bytes themselves, so this package provides a standing correctness
oracle:

- :mod:`repro.conformance.violations` — the violation taxonomy and the
  mergeable :class:`ConformanceReport`;
- :mod:`repro.conformance.validator` — the stateful
  :class:`WireValidator` checking eCPRI well-formedness, section
  structure, C/U-plane PRB accounting, per-profile BFP legality,
  sequence continuity, and slot-timing monotonicity;
- :mod:`repro.conformance.tap` — attachment points: a pass-through
  middlebox, switch-port wrapping, and the
  ``FronthaulNetwork(validator=...)`` hook;
- :mod:`repro.conformance.reference` — scalar reference
  implementations of the vectorized hot paths for differential testing;
- :mod:`repro.conformance.generators` — Hypothesis strategies for wire
  objects and scenario specs (test-only; requires ``hypothesis``).
"""

from repro.conformance.tap import ConformanceTap, tap_switch_port
from repro.conformance.validator import WireValidator
from repro.conformance.violations import (
    ConformanceReport,
    Violation,
    ViolationClass,
)

__all__ = [
    "ConformanceReport",
    "ConformanceTap",
    "Violation",
    "ViolationClass",
    "WireValidator",
    "tap_switch_port",
]
