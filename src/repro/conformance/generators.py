"""Hypothesis strategies for fronthaul wire objects and scenario specs.

The property/differential harness draws C/U-plane packets, IQ grids,
compression configs, and whole :class:`~repro.scale.spec.ScenarioSpec`
trees from these strategies.  Sample grids are derived from a drawn RNG
seed rather than element-by-element lists — orders of magnitude faster
to generate, still deterministic and shrinkable at the seed level.

Import is gated: the module raises a clear error when Hypothesis is not
installed (it is a test-only dependency), so the runtime packages can
import :mod:`repro.conformance` without it.
"""

from __future__ import annotations

import numpy as np

try:
    from hypothesis import strategies as st
except ImportError as exc:  # pragma: no cover - CI always installs it
    raise ImportError(
        "repro.conformance.generators requires the 'hypothesis' package "
        "(a test-only dependency)"
    ) from exc

from repro.fronthaul.compression import (
    BFP_COMP_METH,
    MOD_COMP_METH,
    NO_COMP_METH,
    SAMPLES_PER_PRB,
    CompressionConfig,
)
from repro.fronthaul.cplane import (
    CPlaneMessage,
    CPlaneSection,
    Direction,
    SectionType,
)
from repro.fronthaul.ecpri import EAxCId
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import FronthaulPacket, make_packet
from repro.fronthaul.timing import (
    MAX_FRAME_ID,
    SUBFRAMES_PER_FRAME,
    SYMBOLS_PER_SLOT,
    SymbolTime,
)
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection
from repro.scale.spec import (
    CellSpec,
    FlowSpec,
    ObsSpec,
    RuSpec,
    ScenarioSpec,
    StageSpec,
    SupervisorSpec,
    UeSpec,
)
from repro.serve.delta import DeltaOp, SpecDelta

# -- wire-object strategies ---------------------------------------------------


def compression_configs() -> st.SearchStrategy[CompressionConfig]:
    """Every legal ``udCompHdr``: BFP widths 2..16, modcomp widths 1..14,
    plus uncompressed."""
    bfp = st.integers(min_value=2, max_value=16).map(
        lambda width: CompressionConfig(iq_width=width, comp_meth=BFP_COMP_METH)
    )
    modcomp = st.integers(min_value=1, max_value=14).map(
        lambda width: CompressionConfig(iq_width=width, comp_meth=MOD_COMP_METH)
    )
    raw = st.just(CompressionConfig(iq_width=16, comp_meth=NO_COMP_METH))
    return st.one_of(bfp, modcomp, raw)


def modcomp_configs() -> st.SearchStrategy[CompressionConfig]:
    """Modulation-compression configs over every legal width."""
    return st.integers(min_value=1, max_value=14).map(
        lambda width: CompressionConfig(iq_width=width, comp_meth=MOD_COMP_METH)
    )


@st.composite
def iq_samples(draw, min_prbs: int = 1, max_prbs: int = 16) -> np.ndarray:
    """An int16 IQ grid of shape (n_prbs, 24) derived from a drawn seed."""
    n_prbs = draw(st.integers(min_value=min_prbs, max_value=max_prbs))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    amplitude = draw(st.sampled_from([1, 40, 4000, 32767]))
    rng = np.random.default_rng(seed)
    grid = rng.integers(
        -amplitude - 1,
        amplitude + 1,
        size=(n_prbs, 2 * SAMPLES_PER_PRB),
        dtype=np.int64,
    )
    return np.clip(grid, -32768, 32767).astype(np.int16)


def symbol_times() -> st.SearchStrategy[SymbolTime]:
    return st.builds(
        SymbolTime,
        frame=st.integers(min_value=0, max_value=MAX_FRAME_ID - 1),
        subframe=st.integers(min_value=0, max_value=SUBFRAMES_PER_FRAME - 1),
        slot=st.integers(min_value=0, max_value=1),
        symbol=st.integers(min_value=0, max_value=SYMBOLS_PER_SLOT - 1),
    )


@st.composite
def uplane_sections(
    draw, compression: CompressionConfig = None, max_prbs: int = 16
) -> UPlaneSection:
    if compression is None:
        compression = draw(compression_configs())
    samples = draw(iq_samples(max_prbs=max_prbs))
    return UPlaneSection.from_samples(
        section_id=draw(st.integers(min_value=0, max_value=4095)),
        start_prb=draw(st.integers(min_value=0, max_value=1023 - max_prbs)),
        samples=samples,
        compression=compression,
    )


@st.composite
def uplane_messages(draw, max_sections: int = 3) -> UPlaneMessage:
    # One compression config per message keeps sections realistic (a DU
    # never mixes widths within a message), but it is drawn per message.
    compression = draw(compression_configs())
    sections = draw(
        st.lists(
            uplane_sections(compression=compression),
            min_size=1,
            max_size=max_sections,
        )
    )
    return UPlaneMessage(
        direction=draw(st.sampled_from(list(Direction))),
        time=draw(symbol_times()),
        sections=sections,
        filter_index=draw(st.sampled_from([0, 1])),
    )


@st.composite
def cplane_sections(draw, section_type: SectionType = SectionType.DATA):
    start = draw(st.integers(min_value=0, max_value=800))
    return CPlaneSection(
        section_id=draw(st.integers(min_value=0, max_value=4095)),
        start_prb=start,
        num_prb=draw(st.integers(min_value=1, max_value=200)),
        num_symbols=draw(st.integers(min_value=1, max_value=14)),
        re_mask=draw(st.integers(min_value=0, max_value=0xFFF)),
        beam_id=draw(st.integers(min_value=0, max_value=0x7FFF)),
        freq_offset=(
            draw(st.integers(min_value=-(1 << 22), max_value=(1 << 22) - 1))
            if section_type is SectionType.PRACH
            else None
        ),
    )


@st.composite
def cplane_messages(draw, max_sections: int = 3) -> CPlaneMessage:
    section_type = draw(st.sampled_from(list(SectionType)))
    message = CPlaneMessage(
        direction=draw(st.sampled_from(list(Direction))),
        time=draw(symbol_times()),
        section_type=section_type,
        compression=draw(compression_configs()),
        filter_index=draw(st.sampled_from([0, 1])),
    )
    if section_type is SectionType.PRACH:
        message.time_offset = draw(st.integers(min_value=0, max_value=0xFFFF))
        message.cp_length = draw(st.integers(min_value=0, max_value=0xFFFF))
    message.sections = draw(
        st.lists(
            cplane_sections(section_type=section_type),
            min_size=1,
            max_size=max_sections,
        )
    )
    return message


def mac_addresses() -> st.SearchStrategy[MacAddress]:
    return st.integers(min_value=0, max_value=(1 << 48) - 1).map(
        MacAddress.from_int
    )


def eaxc_ids() -> st.SearchStrategy[EAxCId]:
    return st.integers(min_value=0, max_value=(1 << 16) - 1).map(
        EAxCId.from_int
    )


@st.composite
def fronthaul_packets(draw) -> FronthaulPacket:
    message = draw(st.one_of(uplane_messages(), cplane_messages()))
    return make_packet(
        src=draw(mac_addresses()),
        dst=draw(mac_addresses()),
        message=message,
        seq_id=draw(st.integers(min_value=0, max_value=255)),
        eaxc=draw(eaxc_ids()),
    )


# -- scenario-spec strategies -------------------------------------------------

_NAMES = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
)
_SAFE_FLOATS = st.floats(
    min_value=0.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)


def flow_specs() -> st.SearchStrategy[FlowSpec]:
    return st.builds(
        FlowSpec,
        kind=st.sampled_from(["cbr", "poisson"]),
        rate_mbps=_SAFE_FLOATS,
        direction=st.sampled_from(["dl", "ul"]),
        name=_NAMES,
        packet_bits=st.integers(min_value=1000, max_value=100_000),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )


def ue_specs() -> st.SearchStrategy[UeSpec]:
    return st.builds(
        UeSpec,
        ue_id=_NAMES,
        dl_layers=st.integers(min_value=1, max_value=4),
        dl_aggregate_se=_SAFE_FLOATS,
        ul_se=_SAFE_FLOATS,
        flows=st.lists(flow_specs(), max_size=3).map(tuple),
    )


def _ru_specs(name: str) -> st.SearchStrategy[RuSpec]:
    return st.builds(
        RuSpec,
        name=st.just(name),
        n_antennas=st.integers(min_value=1, max_value=8),
        num_prb=st.one_of(
            st.none(), st.integers(min_value=24, max_value=273)
        ),
        center_frequency_hz=st.one_of(
            st.none(), st.floats(min_value=1e9, max_value=6e9, allow_nan=False)
        ),
        position=st.tuples(
            st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
            st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
            st.integers(min_value=0, max_value=10),
            st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
        ),
        seed=st.one_of(st.none(), st.integers(min_value=0, max_value=2**31 - 1)),
    )


def stage_specs() -> st.SearchStrategy[StageSpec]:
    return st.builds(
        StageSpec,
        stage=st.sampled_from(["prb_monitor", "das", "ru_sharing", "dmimo"]),
        params=st.dictionaries(
            _NAMES,
            st.one_of(
                st.integers(min_value=0, max_value=1000),
                _SAFE_FLOATS,
                st.booleans(),
                _NAMES,
            ),
            max_size=3,
        ),
        name=_NAMES,
    )


@st.composite
def cell_specs(draw, name: str = None, group=None) -> CellSpec:
    if name is None:
        name = draw(_NAMES)
    n_rus = draw(st.integers(min_value=1, max_value=3))
    rus = tuple(
        draw(_ru_specs(f"{name}-ru{index}")) for index in range(n_rus)
    )
    return CellSpec(
        name=name,
        pci=draw(st.integers(min_value=0, max_value=1007)),
        bandwidth_hz=draw(st.sampled_from([20_000_000, 40_000_000, 100_000_000])),
        center_frequency_hz=draw(
            st.one_of(
                st.none(),
                st.floats(min_value=1e9, max_value=6e9, allow_nan=False),
            )
        ),
        n_antennas=draw(st.integers(min_value=1, max_value=8)),
        max_dl_layers=draw(st.integers(min_value=1, max_value=4)),
        profile=draw(st.sampled_from(["srsRAN", "CapGemini", "Radisys"])),
        codec=draw(st.sampled_from([None, "bfp", "modcomp"])),
        symbols_per_slot=draw(st.integers(min_value=1, max_value=14)),
        seed=draw(
            st.one_of(st.none(), st.integers(min_value=0, max_value=2**31 - 1))
        ),
        group=group,
        deadline_flush=draw(st.booleans()),
        wire=draw(
            st.one_of(
                st.none(),
                st.just({"kind": "iid_loss", "rate": 0.01, "seed": 7}),
            )
        ),
        rus=rus,
        ues=tuple(draw(st.lists(ue_specs(), max_size=2))),
        chain=tuple(draw(st.lists(stage_specs(), max_size=2))),
    )


def _finite(lo: float, hi: float):
    return st.floats(
        min_value=lo, max_value=hi, allow_nan=False, allow_infinity=False
    )


@st.composite
def process_chaos_dicts(draw) -> dict:
    """Canonical process-chaos entries (the dict form a spec carries)."""
    from repro.faults.process import CHAOS_KINDS, ProcessChaosSpec

    if draw(st.booleans()):
        target = {"group": draw(st.sampled_from(["g0", "g1", "campus"]))}
    else:
        target = {"worker": draw(st.integers(min_value=0, max_value=7))}
    return ProcessChaosSpec(
        kind=draw(st.sampled_from(CHAOS_KINDS)),
        epoch=draw(st.integers(min_value=0, max_value=50)),
        rearm=draw(st.booleans()),
        stall_s=draw(_finite(0.001, 60.0)),
        name=draw(st.sampled_from(["", "inj-a", "inj-b"])),
        **target,
    ).to_dict()


@st.composite
def scenario_specs(draw, max_cells: int = 4) -> ScenarioSpec:
    n_cells = draw(st.integers(min_value=1, max_value=max_cells))
    group_names = draw(
        st.lists(
            st.one_of(st.none(), st.sampled_from(["g0", "g1"])),
            min_size=n_cells,
            max_size=n_cells,
        )
    )
    cells = tuple(
        draw(cell_specs(name=f"cell{index}", group=group_names[index]))
        for index in range(n_cells)
    )
    return ScenarioSpec(
        name=draw(_NAMES),
        cells=cells,
        slots=draw(st.integers(min_value=1, max_value=100)),
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        batch_slots=draw(
            st.one_of(st.none(), st.integers(min_value=1, max_value=20))
        ),
        epoch_slots=draw(
            st.one_of(st.none(), st.integers(min_value=1, max_value=20))
        ),
        arena_bytes_per_worker=draw(
            st.one_of(
                st.none(), st.integers(min_value=4096, max_value=1 << 20)
            )
        ),
        obs=draw(
            st.builds(
                ObsSpec,
                enabled=st.booleans(),
                sample_every=st.integers(min_value=1, max_value=16),
                deadline_accounting=st.booleans(),
                conformance=st.booleans(),
            )
        ),
        supervisor=draw(
            st.one_of(
                st.none(),
                st.builds(
                    SupervisorSpec,
                    barrier_timeout_s=_finite(0.1, 120.0),
                    poll_interval_s=_finite(0.001, 1.0),
                    max_restarts_per_worker=st.integers(
                        min_value=0, max_value=8
                    ),
                    backoff_base_s=_finite(0.0, 2.0),
                    backoff_factor=_finite(1.0, 4.0),
                ),
            )
        ),
        process_chaos=tuple(
            draw(process_chaos_dicts())
            for _ in range(draw(st.integers(min_value=0, max_value=2)))
        ),
    )


# -- live-mutation (SpecDelta) strategies -------------------------------------

#: Stages any single cell can legally carry with default params — the
#: vocabulary deltas draw rechains and admitted-cell chains from.
SAFE_DELTA_STAGES = ("passthrough", "prb_monitor")

#: Deterministic, parameter-complete wire faults a delta may inject.
SAFE_DELTA_FAULTS = (
    {"kind": "iid_loss", "rate": 0.2, "seed": 3},
    {"kind": "duplicate", "rate": 0.5},
    {"kind": "reorder", "rate": 0.3, "seed": 5},
)


def _delta_group(cell: dict) -> str:
    return cell.get("group") or cell["name"]


@st.composite
def delta_cell_dicts(draw, name: str) -> dict:
    """A small, always-buildable tenant cell for ``add_cell`` ops."""
    return {
        "name": name,
        "pci": draw(st.integers(min_value=100, max_value=503)),
        "bandwidth_hz": 20_000_000,
        "rus": [{"name": f"{name}-ru1"}],
        "ues": [
            {
                "ue_id": f"{name}-ue",
                "flows": [
                    {
                        "kind": "cbr",
                        "rate_mbps": draw(st.sampled_from([5, 10, 15])),
                        "direction": draw(st.sampled_from(["dl", "ul"])),
                    }
                ],
            }
        ],
        "chain": [{"stage": draw(st.sampled_from(SAFE_DELTA_STAGES))}],
    }


@st.composite
def delta_chains(draw) -> tuple:
    """A replacement chain for ``rechain``: 0..2 safe stages."""
    stages = draw(
        st.lists(st.sampled_from(SAFE_DELTA_STAGES), min_size=0, max_size=2)
    )
    return tuple({"stage": stage} for stage in stages)


@st.composite
def spec_deltas(draw, spec: ScenarioSpec, max_ops: int = 4) -> SpecDelta:
    """An incrementally-valid :class:`~repro.serve.delta.SpecDelta`.

    The strategy tracks the evolving cell population while drawing, so
    every op in the batch is legal *at its position* — a delta may admit
    a cell and immediately rechain or impair it.  Two deliberate
    restrictions keep drawn deltas applicable to any base spec:
    ``remove_cell`` only targets cells the same delta added (the base
    deployment stays intact for oracle replays), and ``inject_fault``
    only targets cells whose coupling group carries no access wire (the
    one-wire-per-group build invariant).
    """
    cells = {cell["name"]: dict(cell) for cell in spec.to_dict()["cells"]}
    added: list = []
    ops: list = []
    for index in range(draw(st.integers(min_value=1, max_value=max_ops))):
        wired_groups = {
            _delta_group(cell)
            for cell in cells.values()
            if cell.get("wire") is not None
        }
        injectable = [
            name
            for name, cell in cells.items()
            if _delta_group(cell) not in wired_groups
        ]
        clearable = [
            name
            for name, cell in cells.items()
            if cell.get("wire") is not None
        ]
        choices = ["add_cell", "rechain"]
        if added:
            choices.append("remove_cell")
        if injectable:
            choices.append("inject_fault")
        if clearable:
            choices.append("clear_fault")
        kind = draw(st.sampled_from(choices))
        if kind == "add_cell":
            name = f"delta-{index}-{draw(st.integers(0, 999))}"
            while name in cells:  # pragma: no cover - pci space is huge
                name += "x"
            cell = draw(delta_cell_dicts(name=name))
            ops.append(DeltaOp(op="add_cell", cell=cell))
            cells[name] = cell
            added.append(name)
        elif kind == "remove_cell":
            target = draw(st.sampled_from(added))
            ops.append(DeltaOp(op="remove_cell", target=target))
            del cells[target]
            added.remove(target)
        elif kind == "rechain":
            target = draw(st.sampled_from(sorted(cells)))
            chain = draw(delta_chains())
            ops.append(DeltaOp(op="rechain", target=target, chain=chain))
            cells[target]["chain"] = [dict(stage) for stage in chain]
        elif kind == "inject_fault":
            target = draw(st.sampled_from(injectable))
            fault = dict(draw(st.sampled_from(SAFE_DELTA_FAULTS)))
            ops.append(DeltaOp(op="inject_fault", target=target, fault=fault))
            cells[target]["wire"] = fault
        else:
            target = draw(st.sampled_from(clearable))
            ops.append(DeltaOp(op="clear_fault", target=target))
            cells[target]["wire"] = None
    name = draw(st.sampled_from(["", "drawn-delta"]))
    return SpecDelta(ops=tuple(ops), name=name)
