"""Radio-layer substrate: IQ grids, channel model, MIMO capacity, geometry.

The paper's testbed uses real radios and walking UEs; this package is the
simulated equivalent.  It provides:

- :mod:`repro.phy.iq` -- complex resource grids, QAM modulation, and the
  fixed-point conversion feeding the fronthaul BFP compressor.
- :mod:`repro.phy.geometry` -- the five-floor building of Figure 9a, RU
  placements, and UE walk paths.
- :mod:`repro.phy.channel` -- 3GPP InH-style path loss with floor
  penetration, RSRP, thermal noise, and SINR with inter-cell interference.
- :mod:`repro.phy.mimo` -- rank selection and the attenuated-Shannon
  spectral-efficiency/throughput model used by all experiments.
"""

from repro.phy.iq import ResourceGrid, QamModulator, iq_to_int16, int16_to_iq
from repro.phy.geometry import FloorPlan, Position, WalkPath
from repro.phy.channel import ChannelModel, LinkBudget, noise_power_dbm
from repro.phy.mimo import MimoLink, spectral_efficiency, throughput_mbps

__all__ = [
    "ResourceGrid",
    "QamModulator",
    "iq_to_int16",
    "int16_to_iq",
    "FloorPlan",
    "Position",
    "WalkPath",
    "ChannelModel",
    "LinkBudget",
    "noise_power_dbm",
    "MimoLink",
    "spectral_efficiency",
    "throughput_mbps",
]
