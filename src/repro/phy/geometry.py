"""Building geometry: the five-floor testbed of Figure 9a.

Each floor is 50.9 m x 20.9 m with four ceiling-mounted RUs.  Positions are
3D with the floor index folded into z; UE walk paths reproduce the
floor-walk experiments of Figures 11 and 13.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence

FLOOR_LENGTH_M = 50.9
FLOOR_WIDTH_M = 20.9
FLOOR_HEIGHT_M = 4.0
FLOORS = 5
RUS_PER_FLOOR = 4
CEILING_HEIGHT_M = 3.0
UE_HEIGHT_M = 1.5


@dataclass(frozen=True)
class Position:
    """A 3D position: x/y in metres within the floor plate, integer floor."""

    x: float
    y: float
    floor: int = 0
    height: float = UE_HEIGHT_M

    def distance_to(self, other: "Position") -> float:
        """3D euclidean distance, with floors converted to metres."""
        dz = (
            (self.floor * FLOOR_HEIGHT_M + self.height)
            - (other.floor * FLOOR_HEIGHT_M + other.height)
        )
        return math.sqrt((self.x - other.x) ** 2 + (self.y - other.y) ** 2 + dz**2)

    def floors_between(self, other: "Position") -> int:
        return abs(self.floor - other.floor)


@dataclass
class FloorPlan:
    """The testbed building: RU mounting points per floor (Figure 9a).

    The four RUs per floor are spread along the long axis at ceiling
    height, which gives full-floor coverage with no dead spots — the
    placement the paper verified empirically.
    """

    length_m: float = FLOOR_LENGTH_M
    width_m: float = FLOOR_WIDTH_M
    floors: int = FLOORS
    rus_per_floor: int = RUS_PER_FLOOR

    def ru_positions(self, floor: int) -> List[Position]:
        """Ceiling RU positions on one floor, spread along the long axis."""
        if not 0 <= floor < self.floors:
            raise ValueError(f"floor out of range: {floor}")
        spacing = self.length_m / self.rus_per_floor
        return [
            Position(
                x=spacing * (index + 0.5),
                y=self.width_m / 2,
                floor=floor,
                height=CEILING_HEIGHT_M,
            )
            for index in range(self.rus_per_floor)
        ]

    def all_ru_positions(self) -> List[Position]:
        positions: List[Position] = []
        for floor in range(self.floors):
            positions.extend(self.ru_positions(floor))
        return positions

    def grid_points(
        self, floor: int, step_m: float = 2.0, margin_m: float = 1.0
    ) -> List[Position]:
        """A measurement grid over one floor (for coverage heatmaps)."""
        points = []
        x = margin_m
        while x <= self.length_m - margin_m + 1e-9:
            y = margin_m
            while y <= self.width_m - margin_m + 1e-9:
                points.append(Position(x, y, floor))
                y += step_m
            x += step_m
        return points


@dataclass
class WalkPath:
    """A UE walk: a serpentine route across one floor (Figures 11 and 13).

    ``points(step_m)`` yields evenly spaced measurement positions along the
    path, like the throughput samples logged while walking the floor.
    """

    floor: int = 0
    plan: FloorPlan = None  # type: ignore[assignment]
    lanes: int = 3
    margin_m: float = 2.0

    def __post_init__(self) -> None:
        if self.plan is None:
            self.plan = FloorPlan()

    def waypoints(self) -> List[Position]:
        """Corner points of the serpentine."""
        plan = self.plan
        ys = [
            self.margin_m
            + lane * (plan.width_m - 2 * self.margin_m) / max(self.lanes - 1, 1)
            for lane in range(self.lanes)
        ]
        corners: List[Position] = []
        for lane, y in enumerate(ys):
            if lane % 2 == 0:
                corners.append(Position(self.margin_m, y, self.floor))
                corners.append(Position(plan.length_m - self.margin_m, y, self.floor))
            else:
                corners.append(Position(plan.length_m - self.margin_m, y, self.floor))
                corners.append(Position(self.margin_m, y, self.floor))
        return corners

    def points(self, step_m: float = 1.0) -> Iterator[Position]:
        """Evenly spaced positions along the walk."""
        corners = self.waypoints()
        for start, end in zip(corners, corners[1:]):
            segment = math.hypot(end.x - start.x, end.y - start.y)
            if segment < 1e-9:
                continue
            steps = max(int(segment / step_m), 1)
            for i in range(steps):
                t = i / steps
                yield Position(
                    start.x + t * (end.x - start.x),
                    start.y + t * (end.y - start.y),
                    self.floor,
                )
        yield corners[-1]


def nearest_index(position: Position, candidates: Sequence[Position]) -> int:
    """Index of the nearest candidate position (e.g. closest RU)."""
    if not candidates:
        raise ValueError("no candidate positions")
    distances = [position.distance_to(c) for c in candidates]
    return distances.index(min(distances))
