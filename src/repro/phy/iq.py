"""IQ resource grids, QAM modulation, and fixed-point conversion.

The DU modulates transport-block bits into complex IQ samples (one per
subcarrier), which the fronthaul carries as 16-bit fixed point before BFP
compression (Figure 2: samples are fractions in [-1, 1)).  The packet-level
experiments use these grids end-to-end: the DU modulates known payloads,
middleboxes manipulate the compressed samples, the RU/channel applies gain
and noise, and decode correctness is judged by demodulating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.fronthaul.compression import SAMPLES_PER_PRB

#: Fixed-point scale: int16 full scale maps to amplitude 1.0 (Q15).
INT16_SCALE = 32767.0


def iq_to_int16(samples: np.ndarray, backoff: float = 0.25) -> np.ndarray:
    """Convert complex IQ to interleaved int16 of shape (..., n_prbs, 24).

    ``backoff`` leaves headroom below full scale (real DUs run several dB
    below clipping); interleaving is I0,Q0,I1,Q1,... per PRB as on the wire.
    """
    complex_grid = np.asarray(samples)
    if complex_grid.shape[-1] % SAMPLES_PER_PRB:
        raise ValueError(
            f"subcarrier count {complex_grid.shape[-1]} is not a whole "
            "number of PRBs"
        )
    n_prbs = complex_grid.shape[-1] // SAMPLES_PER_PRB
    scaled = complex_grid * (INT16_SCALE * backoff)
    interleaved = np.empty(complex_grid.shape[:-1] + (n_prbs, 2 * SAMPLES_PER_PRB))
    reshaped = scaled.reshape(complex_grid.shape[:-1] + (n_prbs, SAMPLES_PER_PRB))
    interleaved[..., 0::2] = reshaped.real
    interleaved[..., 1::2] = reshaped.imag
    return np.clip(np.round(interleaved), -32768, 32767).astype(np.int16)


def int16_to_iq(samples: np.ndarray, backoff: float = 0.25) -> np.ndarray:
    """Inverse of :func:`iq_to_int16`: (..., n_prbs, 24) -> (..., n_sc)."""
    arr = np.asarray(samples, dtype=np.float64)
    i_part = arr[..., 0::2]
    q_part = arr[..., 1::2]
    complex_grid = (i_part + 1j * q_part) / (INT16_SCALE * backoff)
    return complex_grid.reshape(arr.shape[:-2] + (-1,))


class QamModulator:
    """Square-QAM modulation/demodulation with Gray mapping.

    Supports orders 4, 16, 64, 256 (QPSK through 256QAM) — the modulation
    set of the 5G downlink.  Hard-decision demodulation is sufficient for
    the correctness experiments (symbol error rate as decode proxy).
    """

    SUPPORTED_ORDERS = (4, 16, 64, 256)

    def __init__(self, order: int = 16):
        if order not in self.SUPPORTED_ORDERS:
            raise ValueError(f"unsupported QAM order: {order}")
        self.order = order
        self.bits_per_symbol = int(np.log2(order))
        side = int(np.sqrt(order))
        self._side = side
        levels = 2 * np.arange(side) - (side - 1)
        # Normalize to unit average energy.
        self._norm = np.sqrt((2 / 3) * (order - 1))
        self._levels = levels / self._norm
        self._gray = _gray_code(side)
        self._inverse_gray = np.argsort(self._gray)

    def modulate(self, symbols: np.ndarray) -> np.ndarray:
        """Map integer symbols in [0, order) to complex constellation points."""
        symbols = np.asarray(symbols)
        if symbols.size and (symbols.min() < 0 or symbols.max() >= self.order):
            raise ValueError("symbol index out of range")
        half_bits = self.bits_per_symbol // 2
        i_index = self._inverse_gray[symbols >> half_bits]
        q_index = self._inverse_gray[symbols & (self._side - 1)]
        return self._levels[i_index] + 1j * self._levels[q_index]

    def demodulate(self, points: np.ndarray) -> np.ndarray:
        """Hard-decision demap complex points back to integer symbols."""
        points = np.asarray(points)
        half_bits = self.bits_per_symbol // 2
        i_index = self._nearest_level(points.real)
        q_index = self._nearest_level(points.imag)
        return (self._gray[i_index] << half_bits) | self._gray[q_index]

    def _nearest_level(self, values: np.ndarray) -> np.ndarray:
        scaled = values * self._norm
        index = np.round((scaled + (self._side - 1)) / 2).astype(np.int64)
        return np.clip(index, 0, self._side - 1)


def _gray_code(n: int) -> np.ndarray:
    codes = np.arange(n)
    return codes ^ (codes >> 1)


@dataclass
class ResourceGrid:
    """A per-symbol frequency grid: (layers, subcarriers) complex samples.

    This is what one U-plane symbol's worth of IQ looks like before
    compression; each layer corresponds to one eAxC RU port.
    """

    layers: int
    n_prbs: int
    data: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        shape = (self.layers, self.n_prbs * SAMPLES_PER_PRB)
        if self.data is None:
            self.data = np.zeros(shape, dtype=np.complex128)
        elif self.data.shape != shape:
            raise ValueError(f"grid data must be {shape}, got {self.data.shape}")

    @property
    def n_subcarriers(self) -> int:
        return self.n_prbs * SAMPLES_PER_PRB

    def fill_prbs(
        self, layer: int, start_prb: int, values: np.ndarray
    ) -> None:
        """Write modulated samples into a PRB range of one layer."""
        n_prb = len(values) // SAMPLES_PER_PRB
        start = start_prb * SAMPLES_PER_PRB
        self.data[layer, start : start + n_prb * SAMPLES_PER_PRB] = values

    def prb_slice(self, layer: int, start_prb: int, num_prb: int) -> np.ndarray:
        start = start_prb * SAMPLES_PER_PRB
        return self.data[layer, start : start + num_prb * SAMPLES_PER_PRB]

    def to_int16(self, layer: int, backoff: float = 0.25) -> np.ndarray:
        """One layer as fronthaul fixed point, shape (n_prbs, 24)."""
        return iq_to_int16(self.data[layer], backoff)

    @classmethod
    def from_int16(
        cls, samples_per_layer: "list[np.ndarray]", backoff: float = 0.25
    ) -> "ResourceGrid":
        layers = len(samples_per_layer)
        stacked = np.stack([int16_to_iq(s, backoff) for s in samples_per_layer])
        n_prbs = stacked.shape[-1] // SAMPLES_PER_PRB
        return cls(layers=layers, n_prbs=n_prbs, data=stacked)


def random_qam_grid(
    n_prbs: int,
    layers: int = 1,
    order: int = 16,
    rng: Optional[np.random.Generator] = None,
) -> "tuple[ResourceGrid, np.ndarray]":
    """Generate a grid of random QAM symbols; returns (grid, symbol indices).

    Used by the DU model to synthesize U-plane payloads whose decode
    correctness can be checked after middlebox processing.
    """
    rng = rng or np.random.default_rng()
    modulator = QamModulator(order)
    symbols = rng.integers(0, order, size=(layers, n_prbs * SAMPLES_PER_PRB))
    grid = ResourceGrid(layers=layers, n_prbs=n_prbs)
    grid.data[:] = modulator.modulate(symbols)
    return grid, symbols
