"""MIMO link adaptation: rank selection, spectral efficiency, throughput.

The model maps per-antenna-port SINRs to a per-layer attenuated-Shannon
spectral efficiency, accounting for:

- residual inter-layer interference after equalization, which grows with
  rank (channel conditioning: rank 4 leaves no spare receive degrees of
  freedom, rank 2 leaves two), and
- the transmitter EVM floor that caps achievable SINR on real radios.

Per-antenna SINRs make distributed MIMO fall out naturally: a UE close to
one RU of a dMIMO cell sees strong layers from that RU and weaker layers
from the far RUs, which is why Figure 13 reports a 2-3x gain "depending on
the location" rather than a flat 4x.

Calibration: with the defaults, a near UE on a 100 MHz cell yields
~690 Mbps at rank 2 and ~930 Mbps at rank 4 (Table 2 measured 653.4 and
898.2), and the rank indicator matches the antenna count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.phy.channel import db_to_linear

#: Attenuation of Shannon capacity from real coding/implementation.
SHANNON_ATTENUATION = 0.75
#: Max per-layer spectral efficiency: 256QAM, rate ~0.93 (bits/s/Hz).
MAX_SE_BITS_PER_HZ = 7.4
#: Residual inter-layer leakage per interfering layer, scaled by (rank-1).
DEFAULT_LAYER_ISOLATION = 0.00265
#: Transmitter error-vector-magnitude floor (~ -28 dB effective).
DEFAULT_EVM_FLOOR = 0.00152


def spectral_efficiency(sinr_db: float, max_se: float = MAX_SE_BITS_PER_HZ) -> float:
    """Attenuated-Shannon SE in bits/s/Hz for one layer."""
    sinr = db_to_linear(sinr_db)
    return min(SHANNON_ATTENUATION * math.log2(1.0 + sinr), max_se)


@dataclass(frozen=True)
class MimoLink:
    """A MIMO downlink between a (possibly virtual) RU and one UE.

    ``antenna_sinrs_db`` holds the wideband SINR contributed by each
    transmit antenna port (noise and inter-cell interference already
    included).  For a colocated RU all entries are equal; for a dMIMO
    virtual RU each physical RU contributes its ports at its own SINR.
    """

    antenna_sinrs_db: Tuple[float, ...]
    max_layers: int = 4
    layer_isolation: float = DEFAULT_LAYER_ISOLATION
    evm_floor: float = DEFAULT_EVM_FLOOR
    max_se: float = MAX_SE_BITS_PER_HZ

    def __post_init__(self) -> None:
        if not self.antenna_sinrs_db:
            raise ValueError("at least one antenna port required")
        if self.max_layers < 1:
            raise ValueError("max_layers must be >= 1")

    @classmethod
    def colocated(
        cls, sinr_db: float, n_antennas: int, max_layers: int = 4, **kwargs
    ) -> "MimoLink":
        """All antenna ports on one RU: equal per-port SINR."""
        return cls(
            antenna_sinrs_db=(sinr_db,) * n_antennas,
            max_layers=min(max_layers, n_antennas),
            **kwargs,
        )

    @classmethod
    def distributed(
        cls,
        groups: Sequence[Tuple[float, int]],
        max_layers: int = 4,
        **kwargs,
    ) -> "MimoLink":
        """dMIMO virtual RU: ``groups`` is (sinr_db, n_antennas) per RU."""
        sinrs: list = []
        for sinr_db, n_antennas in groups:
            sinrs.extend([sinr_db] * n_antennas)
        return cls(
            antenna_sinrs_db=tuple(sinrs),
            max_layers=min(max_layers, len(sinrs)),
            **kwargs,
        )

    def _sorted_linear(self) -> "list[float]":
        return sorted((db_to_linear(s) for s in self.antenna_sinrs_db), reverse=True)

    def layer_sinrs_db(self, rank: int) -> "list[float]":
        """Post-equalization SINR per layer at a given rank.

        The strongest ``rank`` antenna ports carry the layers, and the
        transmitter redistributes the total power budget over them (a
        rank-1 transmission from a 4-port RU enjoys the full array power —
        the precoding gain).  Each layer then sees the noise floor, the
        EVM floor relative to its own power, and inter-layer leakage
        proportional to the other layers' powers scaled by (rank-1) — the
        conditioning penalty of exhausting receive degrees of freedom.
        """
        n_ports = len(self.antenna_sinrs_db)
        if not 1 <= rank <= min(self.max_layers, n_ports):
            raise ValueError(f"rank {rank} not supported by this link")
        boost = n_ports / rank
        chosen = [s * boost for s in self._sorted_linear()[:rank]]
        total = sum(chosen)
        result = []
        for s in chosen:
            leakage = self.layer_isolation * (rank - 1) * (total - s)
            evm = self.evm_floor * s
            result.append(10.0 * math.log10(s / (1.0 + leakage + evm)))
        return result

    def rank_aggregate_se(self, rank: int) -> float:
        """Aggregate SE (bits/s/Hz summed over layers) at a given rank."""
        return sum(
            spectral_efficiency(sinr, self.max_se)
            for sinr in self.layer_sinrs_db(rank)
        )

    def best_rank(self) -> int:
        """Rank indicator: the rank maximizing aggregate SE (Table 2 KPI)."""
        upper = min(self.max_layers, len(self.antenna_sinrs_db))
        best, best_se = 1, -1.0
        for rank in range(1, upper + 1):
            se = self.rank_aggregate_se(rank)
            if se > best_se + 1e-12:
                best, best_se = rank, se
        return best

    def aggregate_se(self) -> float:
        """Aggregate spectral efficiency at the best rank."""
        return self.rank_aggregate_se(self.best_rank())


def throughput_mbps(
    aggregate_se: float,
    occupied_bandwidth_hz: float,
    direction_fraction: float,
    overhead_fraction: float = 0.14,
) -> float:
    """Sustained MAC-layer throughput in Mbps.

    ``direction_fraction`` is the TDD symbol share of the link direction
    (``TddPattern.downlink_symbol_fraction()``); ``overhead_fraction``
    covers PDCCH/DMRS/SSB and other non-data REs.
    """
    if not 0 <= direction_fraction <= 1:
        raise ValueError("direction fraction must be in [0, 1]")
    if not 0 <= overhead_fraction < 1:
        raise ValueError("overhead fraction must be in [0, 1)")
    rate = (
        aggregate_se
        * occupied_bandwidth_hz
        * direction_fraction
        * (1.0 - overhead_fraction)
    )
    return rate / 1e6
