"""Indoor radio channel: path loss, RSRP, noise, SINR.

A 3GPP InH-Office style log-distance model with floor-penetration loss.
The absolute numbers are calibrated so the testbed geometry reproduces the
paper's observations: UEs near an RU see very high SNR; UEs on other floors
cannot attach to a single ground-floor cell (Section 6.2.1); co-channel
multi-cell deployments suffer inter-cell interference (Figure 11b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.phy.geometry import Position

BOLTZMANN_NOISE_DBM_HZ = -174.0


def noise_power_dbm(bandwidth_hz: float, noise_figure_db: float = 7.0) -> float:
    """Thermal noise power over a bandwidth, including receiver NF."""
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    return BOLTZMANN_NOISE_DBM_HZ + 10 * math.log10(bandwidth_hz) + noise_figure_db


def db_to_linear(db: float) -> float:
    return 10.0 ** (db / 10.0)


def linear_to_db(linear: float) -> float:
    if linear <= 0:
        return -math.inf
    return 10.0 * math.log10(linear)


@dataclass(frozen=True)
class PathLossParams:
    """Log-distance path-loss parameters (3GPP InH-Office flavoured).

    PL(d) = pl_1m + 10*n*log10(d) + floor_loss*floors + shadowing.
    ``breakpoint_m`` switches from the LOS to the NLOS exponent: past a few
    metres indoors, walls and furniture dominate.
    """

    pl_1m_db: float = 43.3  # free space at 1 m for 3.5 GHz + margin
    los_exponent: float = 1.73
    nlos_exponent: float = 3.19
    breakpoint_m: float = 8.0
    floor_penetration_db: float = 45.0
    shadowing_sigma_db: float = 3.0

    def path_loss_db(self, distance_m: float, floors: int = 0) -> float:
        distance_m = max(distance_m, 1.0)
        if distance_m <= self.breakpoint_m:
            pl = self.pl_1m_db + 10 * self.los_exponent * math.log10(distance_m)
        else:
            pl_bp = self.pl_1m_db + 10 * self.los_exponent * math.log10(
                self.breakpoint_m
            )
            pl = pl_bp + 10 * self.nlos_exponent * math.log10(
                distance_m / self.breakpoint_m
            )
        return pl + self.floor_penetration_db * floors


@dataclass(frozen=True)
class LinkBudget:
    """Transmit-side parameters of one radio link end."""

    tx_power_dbm: float = 24.0  # per antenna port, small-cell class
    antenna_gain_db: float = 3.0

    @property
    def eirp_dbm(self) -> float:
        return self.tx_power_dbm + self.antenna_gain_db


@dataclass
class ChannelModel:
    """Deterministic-plus-shadowing channel between positions.

    Shadowing is frozen per (tx, rx) pair from a seeded RNG so repeated
    queries are consistent within an experiment (a UE standing still sees a
    stable channel) while different pairs decorrelate.
    """

    params: PathLossParams = field(default_factory=PathLossParams)
    seed: int = 0
    _shadowing_cache: Dict[Tuple, float] = field(default_factory=dict, repr=False)

    def _shadowing_db(self, tx: Position, rx: Position) -> float:
        if self.params.shadowing_sigma_db <= 0:
            return 0.0
        key = (round(tx.x, 1), round(tx.y, 1), tx.floor,
               round(rx.x, 1), round(rx.y, 1), rx.floor)
        if key not in self._shadowing_cache:
            rng = np.random.default_rng((hash(key) ^ self.seed) & 0x7FFFFFFF)
            self._shadowing_cache[key] = float(
                rng.normal(0.0, self.params.shadowing_sigma_db)
            )
        return self._shadowing_cache[key]

    def path_gain_db(self, tx: Position, rx: Position) -> float:
        """Channel gain (negative of path loss) including shadowing."""
        distance = tx.distance_to(rx)
        floors = tx.floors_between(rx)
        loss = self.params.path_loss_db(distance, floors)
        return -(loss + self._shadowing_db(tx, rx))

    def rsrp_dbm(self, budget: LinkBudget, tx: Position, rx: Position) -> float:
        """Total received power from one transmit port (wideband)."""
        return budget.eirp_dbm + self.path_gain_db(tx, rx)

    def rsrp_per_re_dbm(
        self,
        budget: LinkBudget,
        tx: Position,
        rx: Position,
        n_subcarriers: int,
    ) -> float:
        """RSRP as UEs report it: received power per resource element.

        The transmit power is spread across all occupied subcarriers, so
        per-RE power is the wideband power minus 10*log10(n_subcarriers).
        Cell attach decisions compare this against
        :data:`ATTACH_RSRP_THRESHOLD_DBM`.
        """
        if n_subcarriers <= 0:
            raise ValueError("n_subcarriers must be positive")
        return self.rsrp_dbm(budget, tx, rx) - 10 * math.log10(n_subcarriers)

    def received_powers_mw(
        self, budget: LinkBudget, tx_positions: Sequence[Position], rx: Position
    ) -> np.ndarray:
        """Linear received power (mW) from each of several transmitters."""
        return np.array(
            [db_to_linear(self.rsrp_dbm(budget, tx, rx)) for tx in tx_positions]
        )

    def sinr_db(
        self,
        budget: LinkBudget,
        serving: Sequence[Position],
        rx: Position,
        bandwidth_hz: float,
        interferers: Sequence[Tuple[Position, float]] = (),
        noise_figure_db: float = 7.0,
    ) -> float:
        """Wideband SINR at ``rx``.

        ``serving`` transmitters combine coherently-enough to add power
        (the DAS case: same signal from all RUs).  ``interferers`` is a
        sequence of (position, activity factor) pairs for co-channel cells
        (Figure 11b's inter-cell interference).
        """
        signal_mw = self.received_powers_mw(budget, serving, rx).sum()
        noise_mw = db_to_linear(noise_power_dbm(bandwidth_hz, noise_figure_db))
        interference_mw = sum(
            db_to_linear(self.rsrp_dbm(budget, pos, rx)) * activity
            for pos, activity in interferers
        )
        return linear_to_db(signal_mw / (noise_mw + interference_mw))

    # -- IQ-level operations (packet-level experiments) ---------------------

    def apply_to_iq(
        self,
        iq: np.ndarray,
        gain_db: float,
        snr_db: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Apply a scalar complex gain and optional AWGN to IQ samples.

        Models one antenna path for the end-to-end decode experiments: the
        signal is attenuated and (for uplink) noise is added before the RU
        digitizes it back into fronthaul samples.
        """
        gain = math.sqrt(db_to_linear(gain_db))
        out = np.asarray(iq, dtype=np.complex128) * gain
        if snr_db is not None:
            rng = rng or np.random.default_rng()
            signal_power = float(np.mean(np.abs(out) ** 2)) or 1e-30
            noise_power = signal_power / db_to_linear(snr_db)
            noise = rng.normal(0, math.sqrt(noise_power / 2), size=(2,) + out.shape)
            out = out + noise[0] + 1j * noise[1]
        return out


#: UE uplink transmit budget (23 dBm power class 3, no antenna gain).
UE_LINK_BUDGET = LinkBudget(tx_power_dbm=23.0, antenna_gain_db=0.0)

#: Attach threshold: below this per-RE RSRP the UE cannot decode the SSB
#: and synchronize to the cell.
ATTACH_RSRP_THRESHOLD_DBM = -100.0
