"""RANBooster reproduction: fronthaul middleboxes for Open RAN.

This package reproduces the system described in "RANBooster: Democratizing
advanced cellular connectivity through fronthaul middleboxes" (SIGCOMM 2025)
on a simulated substrate:

- :mod:`repro.fronthaul` -- O-RAN WG4 CUS-plane wire formats (Ethernet,
  eCPRI, C-plane/U-plane sections, BFP compression, timing, spectrum math).
- :mod:`repro.phy` -- radio substrate (IQ grids, channel model, MIMO).
- :mod:`repro.ran` -- RAN network functions (DU, RU, UE, scheduler, core).
- :mod:`repro.core` -- the RANBooster middlebox framework (actions A1-A4,
  templated middleboxes, chaining, datapath models, telemetry).
- :mod:`repro.apps` -- the four reference middleboxes (DAS, dMIMO,
  RU sharing, PRB monitoring).
- :mod:`repro.net` -- NIC/switch/link models (SR-IOV chaining substrate).
- :mod:`repro.obs` -- the fronthaul flight recorder: metrics registry,
  per-packet span tracing, exposition, deadline accounting.
- :mod:`repro.sim` -- discrete-event engine, testbed builder, power & cost.
- :mod:`repro.eval` -- one experiment runner per paper table/figure.
"""

__version__ = "1.0.0"

__all__ = [
    "fronthaul",
    "phy",
    "ran",
    "core",
    "apps",
    "net",
    "obs",
    "sim",
    "eval",
]
