"""The distributed MIMO middlebox (Section 4.2, Figure 5b).

Several small Cat-A RUs are combined into one virtual RU with the sum of
their antennas.  The DU believes it drives a single N-antenna RU; each
physical M-antenna RU believes it talks to an M-antenna DU.  Per packet,
the middlebox:

- remaps the eAxC RU-port id from the DU's global port numbering to the
  owning RU's local numbering (A4 header modification), and
- redirects the packet to the owning RU (A1) — the reverse on uplink.

Because the SSB is transmitted only on the DU's first antenna port, a UE
far from the primary RU would stop receiving it; the middlebox therefore
copies the SSB PRBs from the primary port's U-plane packets into the
first local port of every other RU (A4 payload modification).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.actions import ActionContext, ExecLocation
from repro.core.middlebox import Middlebox
from repro.fronthaul.cplane import Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import FronthaulPacket
from repro.fronthaul.timing import SymbolTime


@dataclass(frozen=True)
class RuPortMap:
    """Global-port layout of the virtual RU.

    ``groups`` lists (ru_mac, n_antennas) in global-port order: with two
    2-antenna RUs, global ports 0-1 live on RU 1 (local 0-1) and global
    ports 2-3 on RU 2 (local 0-1) — the Figure 5b example.
    """

    groups: Tuple[Tuple[MacAddress, int], ...]

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("virtual RU needs at least one physical RU")
        if any(n < 1 for _, n in self.groups):
            raise ValueError("every RU contributes at least one antenna")

    @property
    def total_ports(self) -> int:
        return sum(n for _, n in self.groups)

    def to_local(self, global_port: int) -> Tuple[MacAddress, int]:
        """(ru_mac, local_port) owning a DU-side global port."""
        base = 0
        for mac, count in self.groups:
            if global_port < base + count:
                return mac, global_port - base
            base += count
        raise ValueError(f"global port {global_port} out of range")

    def to_global(self, ru_mac: MacAddress, local_port: int) -> int:
        base = 0
        for mac, count in self.groups:
            if mac == ru_mac:
                if local_port >= count:
                    raise ValueError(
                        f"RU {ru_mac} has no local port {local_port}"
                    )
                return base + local_port
            base += count
        raise ValueError(f"unknown RU {ru_mac}")

    def primary_ru(self) -> MacAddress:
        return self.groups[0][0]

    def secondary_first_ports(self) -> List[Tuple[MacAddress, int]]:
        """(ru_mac, global port of local port 0) for each non-primary RU."""
        result = []
        base = 0
        for index, (mac, count) in enumerate(self.groups):
            if index > 0:
                result.append((mac, base))
            base += count
        return result


@dataclass(frozen=True)
class SsbSchedule:
    """Where the SSB lives: its slots, symbols and PRB range.

    This is public cell configuration (the SSB is "transmitted
    periodically in well known symbols and PRBs of the cell").
    """

    period_slots: int
    symbols: Tuple[int, ...]
    prb_start: int
    num_prb: int

    def covers(self, time: SymbolTime, slots_per_frame: int, slots_per_subframe: int) -> bool:
        absolute = (
            time.frame * slots_per_frame
            + time.subframe * slots_per_subframe
            + time.slot
        )
        return absolute % self.period_slots == 0 and time.symbol in self.symbols


class DmimoMiddlebox(Middlebox):
    """One dMIMO virtual RU composed of several physical RUs."""

    app_name = "dmimo"
    #: Table 1: dMIMO's XDP data path runs in the kernel — its per-packet
    #: work is header remapping.  (SSB replication is periodic and handled
    #: by the userspace component.)
    nominal_xdp_location = ExecLocation.KERNEL

    def __init__(
        self,
        du_mac: MacAddress,
        port_map: RuPortMap,
        ssb: Optional[SsbSchedule] = None,
        slots_per_frame: int = 20,
        slots_per_subframe: int = 2,
        mac: Optional[MacAddress] = None,
        name: str = "",
        obs=None,
        stack_profile=None,
        **kwargs,
    ):
        super().__init__(
            name=name, obs=obs, stack_profile=stack_profile, **kwargs
        )
        self.du_mac = du_mac
        self.port_map = port_map
        self.ssb = ssb
        self.slots_per_frame = slots_per_frame
        self.slots_per_subframe = slots_per_subframe
        self.mac = mac or MacAddress.from_int(0x02_00_00_00_30_02)
        self.ssb_copies = 0
        #: Cached SSB payload bytes per symbol time, from the primary port.
        self._ssb_payload: Dict[SymbolTime, bytes] = {}
        #: Secondary-RU port-0 packets waiting for the SSB payload.
        self._pending_ssb: Dict[SymbolTime, List[FronthaulPacket]] = {}

    # -- handlers -----------------------------------------------------------

    def on_cplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        if packet.eth.src == self.du_mac:
            self._downlink_remap(ctx, packet)
        else:
            self._uplink_remap(ctx, packet)

    def on_uplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        if packet.direction is Direction.DOWNLINK:
            if self._is_ssb_packet(packet):
                self._handle_ssb(ctx, packet)
                return
            self._downlink_remap(ctx, packet)
        else:
            self._uplink_remap(ctx, packet)

    # -- port remapping ----------------------------------------------------------

    def _downlink_remap(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        """DU global port -> (RU, local port); redirect to the owner."""
        global_port = ctx.inspect(packet).eaxc.ru_port
        ru_mac, local_port = self.port_map.to_local(global_port)
        if local_port != global_port:
            ctx.set_ru_port(packet, local_port)
        self._count_remap("DL", rewritten=local_port != global_port)
        ctx.forward(packet, dst=ru_mac, src=self.mac)

    def _uplink_remap(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        """(RU, local port) -> DU global port; redirect to the DU."""
        source = packet.eth.src
        local_port = ctx.inspect(packet).eaxc.ru_port
        global_port = self.port_map.to_global(source, local_port)
        if global_port != local_port:
            ctx.set_ru_port(packet, global_port)
        self._count_remap("UL", rewritten=global_port != local_port)
        ctx.forward(packet, dst=self.du_mac, src=self.mac)

    def _count_remap(self, direction: str, rewritten: bool) -> None:
        if self.obs.enabled:
            self.obs.registry.counter(
                "dmimo_remaps_total",
                "antenna-port remaps through the combining middlebox",
                labels=("middlebox", "direction", "rewritten"),
            ).labels(
                self.name, direction, "yes" if rewritten else "no"
            ).inc()

    # -- SSB replication ------------------------------------------------------------

    def _is_ssb_packet(self, packet: FronthaulPacket) -> bool:
        if self.ssb is None or packet.is_cplane:
            return False
        if not self.ssb.covers(
            packet.time, self.slots_per_frame, self.slots_per_subframe
        ):
            return False
        port = packet.eaxc.ru_port
        if port == 0:
            return True
        return any(
            port == global_port
            for _, global_port in self.port_map.secondary_first_ports()
        )

    def _handle_ssb(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        """Copy the primary port's SSB PRBs into each secondary RU's
        first antenna port for the same symbol (A4)."""
        time = packet.time
        port = packet.eaxc.ru_port
        if port == 0:
            # Primary port: extract and retain the SSB PRB payload.
            section = packet.message.sections[0]
            ssb_section = self._extract_ssb(ctx, packet)
            self._ssb_payload[time] = ssb_section
            # Release any secondary packets that arrived first.
            for pending in self._pending_ssb.pop(time, []):
                self._emit_with_ssb(ctx, pending)
            self._downlink_remap(ctx, packet)
            return
        if time not in self._ssb_payload:
            # Secondary port-0 packet arrived before the primary; hold it.
            self._pending_ssb.setdefault(time, []).append(packet)
            ctx.cache_put(("ssb-wait", time, port), packet)
            return
        self._emit_with_ssb(ctx, packet)

    def _extract_ssb(self, ctx: ActionContext, packet: FronthaulPacket):
        """The SSB PRBs of the primary port as a standalone section."""
        from repro.fronthaul.uplane import UPlaneSection

        section = packet.message.sections[0]
        ssb = self.ssb
        samples = ctx.decompress(section)
        start = ssb.prb_start - section.start_prb
        block = samples[start : start + ssb.num_prb]
        return UPlaneSection.from_samples(
            section_id=section.section_id,
            start_prb=ssb.prb_start,
            samples=block,
            compression=section.compression,
        )

    def _emit_with_ssb(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        ssb_section = self._ssb_payload[packet.time]
        section = packet.message.sections[0]
        updated = ctx.copy_prbs(
            source=ssb_section,
            destination=section,
            source_start_prb=ssb_section.start_prb,
            dest_start_prb=ssb_section.start_prb,
            num_prb=ssb_section.num_prb,
            aligned=True,
        )
        packet.message.sections[0] = updated
        self.ssb_copies += 1
        self._downlink_remap(ctx, packet)

    def flush_ssb_state_before(self, keep_from: SymbolTime) -> None:
        """Bound SSB cache memory in long runs."""
        self._ssb_payload = {
            t: v for t, v in self._ssb_payload.items() if not t < keep_from
        }
        self._pending_ssb = {
            t: v for t, v in self._pending_ssb.items() if not t < keep_from
        }
