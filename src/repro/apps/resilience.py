"""RAN resilience middlebox (Section 8.1, "RAN resilience").

Detects DU failures by monitoring inter-packet gaps on the fronthaul
(action A4 inspection) and re-routes the RU's traffic to a standby DU
within a configurable number of slots (action A1 redirection) — the
failover pattern of Slingshot [38] and Atlas [69] realized as a
RANBooster middlebox, without touching either DU.

The same mechanism doubles as a hitless-upgrade path: draining the
primary DU simply looks like a failure and traffic moves to the standby.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.actions import ActionContext, ExecLocation
from repro.core.middlebox import Middlebox
from repro.fronthaul.cplane import Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import FronthaulPacket

TELEMETRY_TOPIC = "resilience_events"


@dataclass(frozen=True)
class FailoverEvent:
    """Telemetry record of one failover decision."""

    failed_du: MacAddress
    standby_du: MacAddress
    detected_at_ns: float
    silence_ns: float


class ResilienceMiddlebox(Middlebox):
    """Primary/standby DU failover for one RU's fronthaul.

    Downlink packets from the active DU refresh a liveness timestamp;
    when the gap exceeds ``silence_threshold_ns`` (checked against the
    fronthaul clock carried in packet timestamps), the middlebox fails
    over: uplink traffic is redirected to the standby DU, whose downlink
    is then forwarded to the RU.  Failback is manual (management knob),
    as in the systems the paper cites.
    """

    app_name = "resilience"
    #: Liveness tracking and redirection are header-only operations.
    nominal_xdp_location = ExecLocation.KERNEL

    def __init__(
        self,
        primary_du: MacAddress,
        standby_du: MacAddress,
        ru_mac: MacAddress,
        silence_threshold_ns: float = 2_000_000.0,  # 4 slots at 30 kHz SCS
        numerology=None,
        mac: Optional[MacAddress] = None,
        name: str = "",
        obs=None,
        stack_profile=None,
        **kwargs,
    ):
        super().__init__(
            name=name, obs=obs, stack_profile=stack_profile, **kwargs
        )
        from repro.fronthaul.timing import Numerology

        self.primary_du = primary_du
        self.standby_du = standby_du
        self.ru_mac = ru_mac
        self.numerology = numerology or Numerology(mu=1)
        self.mac = mac or MacAddress.from_int(0x02_00_00_00_30_04)
        self.management.declare(
            "silence_threshold_ns", silence_threshold_ns,
            validator=lambda v: v > 0,
        )
        self.management.declare("active_du", "primary",
                                validator=lambda v: v in ("primary", "standby"))
        self.events: List[FailoverEvent] = []
        self._last_primary_ns: Optional[float] = None

    @property
    def active_du(self) -> MacAddress:
        if self.management.get("active_du") == "primary":
            return self.primary_du
        return self.standby_du

    def failback(self) -> None:
        """Operator-initiated return to the primary DU."""
        self.management.set("active_du", "primary")
        self._last_primary_ns = None

    # -- handlers -------------------------------------------------------------

    def on_cplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        self._handle(ctx, packet)

    def on_uplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        self._handle(ctx, packet)

    def _handle(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        now_ns = packet.time.ns(self.numerology)
        source = packet.eth.src
        if packet.direction is Direction.DOWNLINK or packet.is_cplane:
            if source == self.primary_du:
                self._liveness_update(ctx, now_ns)
                if self.active_du == self.primary_du:
                    ctx.forward(packet, dst=self.ru_mac, src=self.mac)
                else:
                    # A late riser after failover: suppress to avoid two
                    # controllers driving one RU.
                    ctx.drop(packet)
                return
            if source == self.standby_du:
                # The warm standby's stream doubles as the detection clock:
                # its timestamps reveal how long the primary has been quiet
                # even when the RU (and thus uplink) has gone silent too.
                self._check_deadline(ctx, now_ns)
                if self.active_du == self.standby_du:
                    ctx.forward(packet, dst=self.ru_mac, src=self.mac)
                else:
                    ctx.drop(packet)  # standby stays warm but dark
                return
            ctx.forward(packet)
            return
        # Uplink from the RU: check liveness, then steer to the active DU.
        self._check_deadline(ctx, now_ns)
        ctx.forward(packet, dst=self.active_du, src=self.mac)

    def _liveness_update(self, ctx: ActionContext, now_ns: float) -> None:
        ctx.inspect  # liveness is an A4 inspection of the timing header
        self._last_primary_ns = now_ns

    def _check_deadline(self, ctx: ActionContext, now_ns: float) -> None:
        if (
            self.management.get("active_du") != "primary"
            or self._last_primary_ns is None
        ):
            return
        silence = now_ns - self._last_primary_ns
        if silence > self.management.get("silence_threshold_ns"):
            self.management.set("active_du", "standby")
            event = FailoverEvent(
                failed_du=self.primary_du,
                standby_du=self.standby_du,
                detected_at_ns=now_ns,
                silence_ns=silence,
            )
            self.events.append(event)
            self.telemetry.publish(
                TELEMETRY_TOPIC, event, timestamp_ns=now_ns, source=self.name
            )
