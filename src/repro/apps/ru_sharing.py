"""The RU sharing middlebox (Section 4.3, Appendix A.1, Algorithms 2-3).

Several DUs — typically belonging to different operators — share one RU.
Downlink, the middlebox multiplexes the DUs' packets into one stream; the
RU believes a single DU controls it.  Uplink, it demultiplexes the RU's
full-band packets back to each DU; every DU believes it owns the RU.

Key mechanisms (all from the paper):

- **numPrb widening**: the first C-plane message per symbol/port is
  rewritten to request the RU's full spectrum, so later DU requests are
  already satisfied; all C-plane messages are cached to remember which
  DUs asked (Algorithm 2).
- **PRB relocation**: each DU's PRBs are copied to their position in the
  RU's grid.  Aligned grids (Figure 6 left, Appendix A.1.1) move raw
  compressed bytes; misaligned grids decompress/shift/recompress.
- **PRACH translation**: C-plane type 3 ``freqOffset`` fields are
  translated into the RU's spectrum (eq. 11) and sections tagged with the
  DU id so uplink PRACH data can be demultiplexed (Algorithm 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.actions import ActionContext, ExecLocation
from repro.core.middlebox import Middlebox
from repro.fronthaul.compression import CompressionConfig, SAMPLES_PER_PRB
from repro.fronthaul.cplane import (
    CPlaneMessage,
    CPlaneSection,
    Direction,
    SectionType,
)
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import FronthaulPacket
from repro.fronthaul.prach import translate_freq_offset
from repro.fronthaul.spectrum import PrbGrid
from repro.fronthaul.timing import SymbolTime
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection


@dataclass(frozen=True)
class SharedDuConfig:
    """One DU sharing the RU: identity plus its slice of the spectrum."""

    du_id: int
    mac: MacAddress
    grid: PrbGrid

    def prb_offset_in(self, ru_grid: PrbGrid) -> float:
        return ru_grid.offset_of(self.grid)

    def is_aligned_with(self, ru_grid: PrbGrid) -> bool:
        return ru_grid.is_aligned_with(self.grid)


class RuSharingMiddlebox(Middlebox):
    """One shared RU multiplexed among several DUs."""

    app_name = "ru_sharing"
    #: Table 1: RU sharing's XDP data path runs in userspace (caching and
    #: PRB relocation are impractical in eBPF).
    nominal_xdp_location = ExecLocation.USERSPACE

    def __init__(
        self,
        ru_mac: MacAddress,
        ru_grid: PrbGrid,
        dus: Sequence[SharedDuConfig],
        compression: Optional[CompressionConfig] = None,
        mac: Optional[MacAddress] = None,
        name: str = "",
        obs=None,
        stack_profile=None,
        **kwargs,
    ):
        super().__init__(
            name=name, obs=obs, stack_profile=stack_profile, **kwargs
        )
        if compression is None:
            # The mux recompresses with the vendor stack's fronthaul
            # convention when one is known.
            compression = (
                stack_profile.compression
                if stack_profile is not None
                else CompressionConfig()
            )
        if not dus:
            raise ValueError("RU sharing needs at least one DU")
        seen = set()
        for du in dus:
            if du.du_id in seen:
                raise ValueError(f"duplicate DU id {du.du_id}")
            seen.add(du.du_id)
            if not ru_grid.contains(du.grid):
                raise ValueError(
                    f"DU {du.du_id}'s spectrum does not fit in the RU grid"
                )
        self.ru_mac = ru_mac
        self.ru_grid = ru_grid
        self.dus = {du.mac.to_int(): du for du in dus}
        self.dus_by_id = {du.du_id: du for du in dus}
        self.compression = compression
        self.mac = mac or MacAddress.from_int(0x02_00_00_00_30_03)
        self.misaligned_copies = 0
        self.aligned_copies = 0
        #: (registry, mux-occupancy gauge children) — resolved once per
        #: registry by :meth:`_observe_mux_occupancy`.
        self._mux_children: tuple = (None, ())
        #: C-plane requests: {(direction, slot_key, port): {du_id: message}}.
        self._cplane: Dict[Tuple, Dict[int, CPlaneMessage]] = {}
        #: Pending PRACH C-plane sections: {(slot_key, port): {du_id: secs}}.
        self._prach_cplane: Dict[Tuple, Dict[int, List[CPlaneSection]]] = {}
        #: Cached DL U-plane packets: {(time, port): {du_id: packet}}.
        self._dl_uplane: Dict[Tuple, Dict[int, FronthaulPacket]] = {}

    # -- helpers -----------------------------------------------------------

    def _du_for(self, packet: FronthaulPacket) -> Optional[SharedDuConfig]:
        return self.dus.get(packet.eth.src.to_int())

    def _requesting_dus(
        self, direction: Direction, slot_key: Tuple, port: int
    ) -> List[int]:
        return sorted(self._cplane.get((direction, slot_key, port), {}))

    def _count_copy(self, aligned: bool) -> None:
        if aligned:
            self.aligned_copies += 1
        else:
            self.misaligned_copies += 1
        if self.obs.enabled:
            self.obs.registry.counter(
                "ru_sharing_prb_copies_total",
                "PRB relocations by grid alignment (Figure 6 fast/slow path)",
                labels=("middlebox", "mode"),
            ).labels(self.name, "aligned" if aligned else "misaligned").inc()

    def _observe_mux_occupancy(self) -> None:
        """Export how much per-symbol mux state is parked in the caches.

        The gauge children are resolved once per registry — this runs on
        every C-plane and DL U-plane packet.
        """
        registry = self.obs.registry
        cached_registry, children = self._mux_children
        if cached_registry is not registry:
            gauge = registry.gauge(
                "ru_sharing_mux_occupancy",
                "cached entries awaiting their mux/demux counterparts",
                labels=("middlebox", "kind"),
            )
            children = (
                gauge.labels(self.name, "cplane"),
                gauge.labels(self.name, "dl_uplane"),
                gauge.labels(self.name, "prach"),
            )
            self._mux_children = (registry, children)
        children[0].set(len(self._cplane))
        children[1].set(len(self._dl_uplane))
        children[2].set(len(self._prach_cplane))

    # -- handlers ------------------------------------------------------------

    def on_cplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        du = self._du_for(packet)
        if du is None:
            ctx.forward(packet)
            return
        message: CPlaneMessage = packet.message
        if message.section_type is SectionType.PRACH:
            self._handle_prach_cplane(ctx, packet, du)
        else:
            self._handle_data_cplane(ctx, packet, du)
        if self.obs.enabled:
            self._observe_mux_occupancy()

    def on_uplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        if packet.direction is Direction.DOWNLINK:
            du = self._du_for(packet)
            if du is None:
                ctx.forward(packet)
                return
            self._handle_dl_uplane(ctx, packet, du)
        else:
            if packet.message.filter_index == 1:
                self._handle_prach_uplane(ctx, packet)
            else:
                self._handle_ul_uplane(ctx, packet)
        if self.obs.enabled:
            self._observe_mux_occupancy()

    # -- Algorithm 2: data C-plane ------------------------------------------------

    def _handle_data_cplane(
        self, ctx: ActionContext, packet: FronthaulPacket, du: SharedDuConfig
    ) -> None:
        message: CPlaneMessage = packet.message
        key = (message.direction, message.time.slot_key(), packet.eaxc.ru_port)
        requests = self._cplane.setdefault(key, {})
        first_for_symbol = not requests
        ctx.cache_put(key, packet, tag=du.du_id)
        requests[du.du_id] = message
        if not first_for_symbol:
            # A later DU's request is already satisfied by the widened one.
            ctx.drop(packet)
            return
        # First request: widen numPrb to the RU's full spectrum and send.
        ctx.set_cplane_num_prb(packet, self.ru_grid.num_prb, start_prb=0)
        ctx.forward(packet, dst=self.ru_mac, src=self.mac)

    # -- Algorithm 2: downlink U-plane ---------------------------------------------

    def _handle_dl_uplane(
        self, ctx: ActionContext, packet: FronthaulPacket, du: SharedDuConfig
    ) -> None:
        time = packet.time
        port = packet.eaxc.ru_port
        key = (time, port)
        pending = self._dl_uplane.setdefault(key, {})
        ctx.cache_put(key, packet, tag=du.du_id)
        pending[du.du_id] = packet
        requesting = self._requesting_dus(
            Direction.DOWNLINK, time.slot_key(), port
        )
        if not requesting or any(du_id not in pending for du_id in requesting):
            return
        # All requesting DUs delivered their U-plane for this symbol: mux.
        merged = self._multiplex_downlink(
            ctx, time, [pending[du_id] for du_id in requesting]
        )
        ctx.forward(merged, dst=self.ru_mac, src=self.mac)
        del self._dl_uplane[key]
        self.cache.discard(key)

    def _multiplex_downlink(
        self,
        ctx: ActionContext,
        time: SymbolTime,
        packets: List[FronthaulPacket],
    ) -> FronthaulPacket:
        """Copy every DU's PRBs into one full-band RU U-plane packet.

        Aligned DUs are batched: their sections' wire bytes are scattered
        into one output buffer in a single :meth:`ActionContext.assemble_prbs`
        pass (unwritten PRBs are idle/zero).  Misaligned DUs then land on
        the slow decompress/shift/recompress path on top of that target.
        """
        aligned_placements: List[Tuple[UPlaneSection, int]] = []
        misaligned: List[Tuple[UPlaneSection, float]] = []
        for source_packet in packets:
            du = self._du_for(source_packet)
            offset = du.prb_offset_in(self.ru_grid)
            for section in source_packet.message.sections:
                if du.is_aligned_with(self.ru_grid):
                    self._count_copy(aligned=True)
                    aligned_placements.append(
                        (section, int(round(offset)) + section.start_prb)
                    )
                else:
                    self._count_copy(aligned=False)
                    misaligned.append((section, offset))
        target = ctx.assemble_prbs(
            num_prb=self.ru_grid.num_prb,
            placements=aligned_placements,
            compression=self.compression,
            section_id=0,
            start_prb=0,
        )
        for section, offset in misaligned:
            target = self._copy_subcarriers(ctx, section, target, offset)
        message = UPlaneMessage(
            direction=Direction.DOWNLINK, time=time, sections=[target]
        )
        template = packets[0]
        return FronthaulPacket(
            eth=template.eth, ecpri=template.ecpri, message=message
        )

    def _copy_subcarriers(
        self,
        ctx: ActionContext,
        source: UPlaneSection,
        target: UPlaneSection,
        prb_offset: float,
    ) -> UPlaneSection:
        """Misaligned relocation: decompress, shift at subcarrier
        granularity, recompress (the Figure 6 right-hand case)."""
        sc_offset = int(round(prb_offset * SAMPLES_PER_PRB))
        src_samples = ctx.decompress(source)  # (n, 24) int16
        dst_samples = ctx.decompress(target).copy()
        src_flat = src_samples.reshape(-1, 2)  # (n*12, 2) per subcarrier
        dst_flat = dst_samples.reshape(-1, 2)
        start = (source.start_prb * SAMPLES_PER_PRB) + sc_offset
        dst_flat[start : start + len(src_flat)] = src_flat
        return ctx.compress(target, dst_flat.reshape(dst_samples.shape))

    # -- Algorithm 2: uplink U-plane ----------------------------------------------

    def _handle_ul_uplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        """Demultiplex a full-band RU uplink packet to each requesting DU."""
        time = packet.time
        port = packet.eaxc.ru_port
        slot_key = time.slot_key()
        requesting = self._requesting_dus(Direction.UPLINK, slot_key, port)
        if not requesting:
            ctx.drop(packet)
            return
        copies = ctx.replicate(packet, len(requesting) - 1)
        all_packets = [packet] + copies
        for du_id, out_packet in zip(requesting, all_packets):
            du = self.dus_by_id[du_id]
            extracted = self._extract_du_from_ru(ctx, out_packet, du)
            ctx.forward(extracted, dst=du.mac, src=self.mac)

    def _extract_du_from_ru(
        self,
        ctx: ActionContext,
        packet: FronthaulPacket,
        du: SharedDuConfig,
    ) -> FronthaulPacket:
        offset = du.prb_offset_in(self.ru_grid)
        sections_out: List[UPlaneSection] = []
        for section in packet.message.sections:
            if du.is_aligned_with(self.ru_grid):
                self._count_copy(aligned=True)
                # Zero-copy carve-out: the DU section shares the RU
                # packet's wire bytes instead of round-tripping through a
                # zero-filled target section.
                sections_out.append(
                    ctx.extract_prbs(
                        source=section,
                        source_start_prb=int(round(offset)),
                        num_prb=du.grid.num_prb,
                        section_id=du.du_id,
                        dest_start_prb=0,
                    )
                )
            else:
                self._count_copy(aligned=False)
                samples = ctx.decompress(section)
                flat = samples.reshape(-1, 2)
                sc_offset = int(round(offset * SAMPLES_PER_PRB))
                du_sc = du.grid.num_prb * SAMPLES_PER_PRB
                block = flat[sc_offset : sc_offset + du_sc]
                du_samples = block.reshape(du.grid.num_prb, 2 * SAMPLES_PER_PRB)
                zero_section = UPlaneSection.from_samples(
                    section_id=du.du_id,
                    start_prb=0,
                    samples=np.ascontiguousarray(du_samples),
                    compression=section.compression,
                )
                sections_out.append(zero_section)
        message = UPlaneMessage(
            direction=Direction.UPLINK,
            time=packet.time,
            sections=sections_out,
            filter_index=packet.message.filter_index,
        )
        return FronthaulPacket(
            eth=packet.eth, ecpri=packet.ecpri, message=message
        )

    # -- Algorithm 3: PRACH ----------------------------------------------------------

    def _handle_prach_cplane(
        self, ctx: ActionContext, packet: FronthaulPacket, du: SharedDuConfig
    ) -> None:
        message: CPlaneMessage = packet.message
        key = (message.time.slot_key(), packet.eaxc.ru_port)
        pending = self._prach_cplane.setdefault(key, {})
        # Translate each section's freqOffset into the RU spectrum and tag
        # it with the DU id (Algorithm 3 lines 6-7).
        translated: List[CPlaneSection] = []
        for section in message.sections:
            new_offset = translate_freq_offset(
                section.freq_offset,
                du.grid.center_frequency_hz,
                self.ru_grid.center_frequency_hz,
                self.ru_grid.scs_hz,
            )
            ctx.set_section_fields(packet)  # cost accounting for the rewrite
            translated.append(
                CPlaneSection(
                    section_id=du.du_id,
                    start_prb=section.start_prb,
                    num_prb=section.num_prb,
                    num_symbols=section.num_symbols,
                    freq_offset=new_offset,
                )
            )
        ctx.cache_put(key, packet, tag=du.du_id)
        pending[du.du_id] = translated
        if len(pending) < len(self.dus_by_id):
            return
        # All DUs' PRACH requests arrived: append sections into one packet.
        sections = [
            section
            for du_id in sorted(pending)
            for section in pending[du_id]
        ]
        combined = CPlaneMessage(
            direction=Direction.UPLINK,
            time=message.time,
            sections=sections,
            section_type=SectionType.PRACH,
            compression=message.compression,
            filter_index=message.filter_index,
            time_offset=message.time_offset,
            frame_structure=message.frame_structure,
            cp_length=message.cp_length,
        )
        out = FronthaulPacket(
            eth=packet.eth, ecpri=packet.ecpri, message=combined
        )
        ctx.forward(out, dst=self.ru_mac, src=self.mac)
        del self._prach_cplane[key]

    def _handle_prach_uplane(
        self, ctx: ActionContext, packet: FronthaulPacket
    ) -> None:
        """Demultiplex PRACH U-plane sections to DUs by section id."""
        by_du: Dict[int, List[UPlaneSection]] = {}
        for section in packet.message.sections:
            if section.section_id in self.dus_by_id:
                by_du.setdefault(section.section_id, []).append(section)
        if not by_du:
            ctx.drop(packet)
            return
        du_ids = sorted(by_du)
        copies = ctx.replicate(packet, len(du_ids) - 1)
        for du_id, out_packet in zip(du_ids, [packet] + copies):
            du = self.dus_by_id[du_id]
            message = UPlaneMessage(
                direction=Direction.UPLINK,
                time=packet.time,
                sections=by_du[du_id],
                filter_index=1,
            )
            out = FronthaulPacket(
                eth=out_packet.eth, ecpri=out_packet.ecpri, message=message
            )
            ctx.forward(out, dst=du.mac, src=self.mac)

    # -- housekeeping ------------------------------------------------------------------

    def flush_slots_before(self, slot_key: Tuple) -> None:
        """Drop cached state older than a slot (bounded memory)."""
        self._cplane = {
            key: value for key, value in self._cplane.items() if key[1] >= slot_key
        }
        self._prach_cplane = {
            key: value
            for key, value in self._prach_cplane.items()
            if key[0] >= slot_key
        }
        self._dl_uplane = {
            key: value
            for key, value in self._dl_uplane.items()
            if key[0].slot_key() >= slot_key
        }
