"""Spectrum sensing / interference detection (Section 8.1, "Sensing").

RANBooster's access to raw uplink IQ samples (action A4) enables sensing
applications without sniffing hardware.  This middlebox watches the
uplink noise floor per PRB: energy that appears on PRBs the C-plane never
scheduled — or persistent energy far above the expected noise floor —
indicates an external interferer (e.g. a jammer or a rogue transmitter),
which is reported through the telemetry interface, in the spirit of the
interference-detection application of [18].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.core.actions import ActionContext, ExecLocation
from repro.core.middlebox import Middlebox
from repro.fronthaul.cplane import Direction
from repro.fronthaul.packet import FronthaulPacket
from repro.fronthaul.timing import Numerology, SymbolTime

TELEMETRY_TOPIC = "interference_alerts"


@dataclass(frozen=True)
class InterferenceAlert:
    """Unscheduled energy detected on the uplink."""

    time: SymbolTime
    ru_port: int
    prbs: Tuple[int, ...]
    max_exponent: int


class SpectrumSensorMiddlebox(Middlebox):
    """Passive uplink interference detector.

    Tracks which PRBs the DUs scheduled (from UL C-plane sections, A4
    inspection) and flags uplink U-plane PRBs whose BFP exponent exceeds
    the noise threshold *outside* every scheduled range.  Forwarding is
    always transparent.
    """

    app_name = "spectrum_sensor"
    #: Exponent scans and header reads run in the kernel (like Table 1's
    #: PRB monitor).
    nominal_xdp_location = ExecLocation.KERNEL

    def __init__(
        self,
        carrier_num_prb: int,
        noise_exponent_threshold: int = 2,
        numerology: Numerology = Numerology(mu=1),
        name: str = "",
        obs=None,
        stack_profile=None,
        **kwargs,
    ):
        super().__init__(
            name=name, obs=obs, stack_profile=stack_profile, **kwargs
        )
        self.carrier_num_prb = carrier_num_prb
        self.numerology = numerology
        self.management.declare(
            "noise_exponent_threshold", noise_exponent_threshold,
            validator=lambda v: 0 <= v <= 15,
        )
        self.alerts: List[InterferenceAlert] = []
        #: Scheduled UL PRB ranges: {(slot_key, port): [(start, end)]}.
        self._scheduled: Dict[Tuple, List[Tuple[int, int]]] = {}

    # -- handlers -------------------------------------------------------------

    def on_cplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        if packet.direction is Direction.UPLINK:
            ctx.inspect(packet)
            key = (packet.time.slot_key(), packet.eaxc.ru_port)
            ranges = self._scheduled.setdefault(key, [])
            for section in packet.message.sections:
                ranges.append(section.prb_range)
        ctx.forward(packet)

    def on_uplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        if (
            packet.direction is Direction.UPLINK
            and packet.message.filter_index == 0
        ):
            self._scan(ctx, packet)
        ctx.forward(packet)

    # -- detection ---------------------------------------------------------------

    def _scan(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        key = (packet.time.slot_key(), packet.eaxc.ru_port)
        scheduled = self._scheduled.get(key, [])
        threshold = self.management.get("noise_exponent_threshold")
        suspicious: Set[int] = set()
        max_exponent = 0
        for section in packet.message.sections:
            exponents = ctx.read_exponents(section)
            for index, exponent in enumerate(exponents):
                prb = section.start_prb + index
                if prb >= self.carrier_num_prb:
                    continue
                if exponent <= threshold:
                    continue
                if any(start <= prb < end for start, end in scheduled):
                    continue
                suspicious.add(prb)
                max_exponent = max(max_exponent, int(exponent))
        if not suspicious:
            return
        alert = InterferenceAlert(
            time=packet.time,
            ru_port=packet.eaxc.ru_port,
            prbs=tuple(sorted(suspicious)),
            max_exponent=max_exponent,
        )
        self.alerts.append(alert)
        self.telemetry.publish(
            TELEMETRY_TOPIC,
            alert,
            timestamp_ns=packet.time.ns(self.numerology),
            source=self.name,
        )

    def flush_slots_before(self, slot_key: Tuple) -> None:
        self._scheduled = {
            key: value
            for key, value in self._scheduled.items()
            if key[0] >= slot_key
        }
