"""Fronthaul security guard (Section 8.1, "Security").

The open fronthaul lacks mandatory integrity protection; spoofed C-plane
messages can reconfigure an RU and replayed U-plane data can corrupt the
uplink [70].  Adding cryptographic protection costs latency, so the paper
proposes middlebox-based monitoring and filtering as a lightweight
alternative: inspect fronthaul headers (A4) and drop anomalous packets
(A1) in real time.

The guard enforces three invariants per eAxC flow:

- **source allow-list**: frames must come from provisioned DU/RU MACs;
- **sequence continuity**: the eCPRI seq-id must advance (replay and
  injection break monotonicity);
- **timing window**: the message timestamp must stay within a bounded
  distance of the flow's most recent timestamp (stale replays and
  far-future injections fall outside).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.actions import ActionContext, ExecLocation
from repro.core.middlebox import Middlebox
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import FronthaulPacket
from repro.fronthaul.timing import MAX_FRAME_ID, Numerology

TELEMETRY_TOPIC = "security_alerts"


@dataclass(frozen=True)
class SecurityAlert:
    """One dropped packet and why."""

    reason: str
    source: MacAddress
    eaxc: int
    seq_id: int


@dataclass
class _FlowState:
    last_seq: Optional[int] = None
    last_slot: Optional[int] = None


class FronthaulGuardMiddlebox(Middlebox):
    """Inline spoofing/replay filter for one fronthaul segment."""

    app_name = "fronthaul_guard"
    #: Pure header checks: runs in the kernel XDP program.
    nominal_xdp_location = ExecLocation.KERNEL

    def __init__(
        self,
        allowed_sources: Iterable[MacAddress],
        max_slot_skew: int = 8,
        numerology: Numerology = Numerology(mu=1),
        name: str = "",
        obs=None,
        stack_profile=None,
        **kwargs,
    ):
        super().__init__(
            name=name, obs=obs, stack_profile=stack_profile, **kwargs
        )
        self.allowed: Set[int] = {mac.to_int() for mac in allowed_sources}
        if not self.allowed:
            raise ValueError("the guard needs at least one allowed source")
        self.max_slot_skew = max_slot_skew
        self.numerology = numerology
        self.alerts: List[SecurityAlert] = []
        self._flows: Dict[Tuple[int, int], _FlowState] = {}

    def allow_source(self, mac: MacAddress) -> None:
        self.allowed.add(mac.to_int())

    # -- handlers -------------------------------------------------------------

    def on_cplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        self._filter(ctx, packet)

    def on_uplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        self._filter(ctx, packet)

    # -- checks ----------------------------------------------------------------

    def _filter(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        ctx.inspect(packet)
        reason = self._violation(packet)
        if reason is None:
            self._commit(packet)
            ctx.forward(packet)
            return
        alert = SecurityAlert(
            reason=reason,
            source=packet.eth.src,
            eaxc=packet.eaxc.to_int(),
            seq_id=packet.ecpri.seq_id,
        )
        self.alerts.append(alert)
        self.telemetry.publish(
            TELEMETRY_TOPIC,
            alert,
            timestamp_ns=packet.time.ns(self.numerology),
            source=self.name,
        )
        ctx.drop(packet)

    def _flow_key(self, packet: FronthaulPacket) -> Tuple[int, int]:
        return (packet.eth.src.to_int(), packet.eaxc.to_int())

    def _violation(self, packet: FronthaulPacket) -> Optional[str]:
        if packet.eth.src.to_int() not in self.allowed:
            return "unknown_source"
        state = self._flows.get(self._flow_key(packet))
        if state is None:
            return None  # first sighting establishes the flow
        if state.last_seq is not None:
            advance = (packet.ecpri.seq_id - state.last_seq) % 256
            if advance == 0:
                return "replayed_sequence"
            if advance > 128:
                return "regressed_sequence"
        if state.last_slot is not None:
            slot = packet.time.absolute_slot(self.numerology)
            epoch = MAX_FRAME_ID * self.numerology.slots_per_frame
            skew = min(
                (slot - state.last_slot) % epoch,
                (state.last_slot - slot) % epoch,
            )
            if skew > self.max_slot_skew:
                return "timing_window"
        return None

    def _commit(self, packet: FronthaulPacket) -> None:
        state = self._flows.setdefault(self._flow_key(packet), _FlowState())
        state.last_seq = packet.ecpri.seq_id
        state.last_slot = packet.time.absolute_slot(self.numerology)
