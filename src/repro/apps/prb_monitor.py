"""Real-time PRB utilization monitoring (Section 4.4, Algorithm 1).

A passive middlebox that estimates per-symbol PRB utilization from the BFP
compression exponents carried in U-plane packets, without decompressing
any IQ samples: a PRB whose exponent exceeds a threshold carries real
signal energy and is counted as utilized; near-zero (idle) PRBs compress
with exponent 0.  Estimates are published on the telemetry interface at
sub-millisecond granularity and every packet is forwarded unmodified.

Thresholds default to the values that worked across the paper's setups:
0 for downlink and 2 for uplink (uplink noise floors produce small
non-zero exponents).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.actions import ActionContext, ExecLocation
from repro.core.middlebox import Middlebox
from repro.fronthaul.cplane import Direction
from repro.fronthaul.packet import FronthaulPacket
from repro.fronthaul.timing import Numerology, SymbolTime

TELEMETRY_TOPIC = "prb_utilization"


@dataclass(frozen=True)
class UtilizationEstimate:
    """One telemetry sample: the utilization bitvector of a symbol."""

    time: SymbolTime
    direction: Direction
    ru_port: int
    utilized: Tuple[bool, ...]

    @property
    def utilization(self) -> float:
        if not self.utilized:
            return 0.0
        return sum(self.utilized) / len(self.utilized)


class PrbMonitorMiddlebox(Middlebox):
    """Algorithm 1 as a passive, forwarding middlebox."""

    app_name = "prb_monitor"
    #: Table 1: the monitor's XDP implementation runs entirely in the
    #: kernel — it only reads exponent bytes and forwards.
    nominal_xdp_location = ExecLocation.KERNEL

    def __init__(
        self,
        carrier_num_prb: int,
        thr_dl: int = 0,
        thr_ul: int = 2,
        numerology: Numerology = Numerology(mu=1),
        monitor_port: int = 0,
        name: str = "",
        obs=None,
        stack_profile=None,
        **kwargs,
    ):
        super().__init__(
            name=name, obs=obs, stack_profile=stack_profile, **kwargs
        )
        self.carrier_num_prb = carrier_num_prb
        self.numerology = numerology
        self.monitor_port = monitor_port
        self.management.declare("thr_dl", thr_dl, lambda v: 0 <= v <= 15)
        self.management.declare("thr_ul", thr_ul, lambda v: 0 <= v <= 15)
        self.estimates: List[UtilizationEstimate] = []

    # -- handlers --------------------------------------------------------------

    def on_cplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        ctx.forward(packet)

    def on_uplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        # Estimate from one representative antenna port per direction —
        # all ports carry the same allocation footprint.
        if packet.eaxc.ru_port == self.monitor_port and (
            packet.message.filter_index == 0
        ):
            self._estimate(ctx, packet)
        ctx.forward(packet)

    # -- Algorithm 1 ---------------------------------------------------------------

    def _estimate(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        direction = packet.direction
        threshold = (
            self.management.get("thr_dl")
            if direction is Direction.DOWNLINK
            else self.management.get("thr_ul")
        )
        utilized = np.zeros(self.carrier_num_prb, dtype=bool)
        for section in packet.message.sections:
            exponents = ctx.read_exponents(section)
            flags = exponents > threshold
            start = section.start_prb
            end = min(start + section.num_prb, self.carrier_num_prb)
            if end > start:
                utilized[start:end] = flags[: end - start]
        estimate = UtilizationEstimate(
            time=packet.time,
            direction=direction,
            ru_port=packet.eaxc.ru_port,
            utilized=tuple(bool(flag) for flag in utilized),
        )
        self.estimates.append(estimate)
        self.telemetry.publish(
            TELEMETRY_TOPIC,
            estimate,
            timestamp_ns=packet.time.ns(self.numerology),
            source=self.name,
        )
        if self.obs.enabled:
            registry = self.obs.registry
            direction_label = (
                "DL" if direction is Direction.DOWNLINK else "UL"
            )
            registry.counter(
                "prb_monitor_publishes_total",
                "utilization estimates published on the telemetry bus",
                labels=("middlebox", "direction"),
            ).labels(self.name, direction_label).inc()
            registry.gauge(
                "prb_utilization",
                "latest estimated PRB utilization (0..1)",
                labels=("middlebox", "direction"),
            ).labels(self.name, direction_label).set(estimate.utilization)

    # -- aggregation (what applications consume) -------------------------------------

    def average_utilization(
        self, direction: Optional[Direction] = None
    ) -> float:
        """Mean PRB utilization over all collected estimates."""
        samples = [
            e.utilization
            for e in self.estimates
            if direction is None or e.direction is direction
        ]
        if not samples:
            return 0.0
        return float(np.mean(samples))

    def utilization_timeseries(
        self, direction: Direction, window_symbols: int = 28
    ) -> List[float]:
        """Windowed utilization averages (the per-second series of
        Figure 10c, at configurable sub-millisecond windows)."""
        samples = [e for e in self.estimates if e.direction is direction]
        series = []
        for start in range(0, len(samples), window_symbols):
            window = samples[start : start + window_symbols]
            if window:
                series.append(float(np.mean([e.utilization for e in window])))
        return series

    def reset(self) -> None:
        self.estimates.clear()
