"""RANBooster applications.

The four reference middleboxes of Section 4:

- :mod:`repro.apps.das` -- Distributed Antenna System: replicate one
  cell's signal across many RUs, merge uplink IQ.
- :mod:`repro.apps.dmimo` -- Distributed MIMO: combine several small RUs
  into one virtual RU by remapping eAxC antenna ports; replicate the SSB.
- :mod:`repro.apps.ru_sharing` -- RU sharing: multiplex several DUs onto
  one RU's spectrum (Algorithms 2 and 3).
- :mod:`repro.apps.prb_monitor` -- real-time PRB utilization monitoring
  from BFP compression exponents (Algorithm 1).

And the Section 8.1 use cases, built on the same template:

- :mod:`repro.apps.resilience` -- DU failure detection and failover.
- :mod:`repro.apps.security` -- spoofing/replay filtering.
- :mod:`repro.apps.sensing` -- uplink interference detection.
"""

from repro.apps.das import DasMiddlebox
from repro.apps.dmimo import DmimoMiddlebox, RuPortMap
from repro.apps.ru_sharing import RuSharingMiddlebox, SharedDuConfig
from repro.apps.prb_monitor import PrbMonitorMiddlebox, UtilizationEstimate
from repro.apps.resilience import FailoverEvent, ResilienceMiddlebox
from repro.apps.security import FronthaulGuardMiddlebox, SecurityAlert
from repro.apps.sensing import InterferenceAlert, SpectrumSensorMiddlebox

__all__ = [
    "DasMiddlebox",
    "DmimoMiddlebox",
    "RuPortMap",
    "RuSharingMiddlebox",
    "SharedDuConfig",
    "PrbMonitorMiddlebox",
    "UtilizationEstimate",
    "ResilienceMiddlebox",
    "FailoverEvent",
    "FronthaulGuardMiddlebox",
    "SecurityAlert",
    "SpectrumSensorMiddlebox",
    "InterferenceAlert",
]
