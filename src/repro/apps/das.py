"""The Distributed Antenna System middlebox (Section 4.1, Figure 5a).

Downlink: every C- and U-plane packet from the DU is replicated (A2) and
forwarded (A1) to all DAS RUs, which therefore transmit the identical
signal — extending the cell's coverage.

Uplink: the per-RU U-plane packets for a given symbol and antenna port are
cached (A3) until every RU has reported, then their IQ payloads are
decompressed, summed element-wise per subcarrier, recompressed (A4), and
the single merged packet is forwarded to the DU while the rest are
dropped (A1).  Because one scheduler allocates non-overlapping PRBs to all
UEs under the DAS, each summed PRB carries at most one UE's data per MIMO
layer and the combination is interference-free.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.actions import ActionContext, ExecLocation
from repro.core.middlebox import Middlebox
from repro.faults.sequence import SeqVerdict, SequenceTracker
from repro.fronthaul.cplane import Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import FronthaulPacket
from repro.fronthaul.uplane import UPlaneMessage, UPlaneSection


class DasMiddlebox(Middlebox):
    """One DAS group: a single DU fanned out to ``ru_macs``.

    The management interface exposes the RU set, so RUs can be added or
    removed on-the-fly (Section 3.2's reconfiguration capability).
    """

    app_name = "das"
    #: Table 1: the XDP implementation of DAS processes packets in
    #: userspace (IQ decompression/summing is impractical in eBPF).
    nominal_xdp_location = ExecLocation.USERSPACE

    def __init__(
        self,
        du_mac: MacAddress,
        ru_macs: Sequence[MacAddress],
        mac: Optional[MacAddress] = None,
        partial_merge: bool = False,
        name: str = "",
        obs=None,
        stack_profile=None,
        **kwargs,
    ):
        super().__init__(
            name=name, obs=obs, stack_profile=stack_profile, **kwargs
        )
        if not ru_macs:
            raise ValueError("a DAS group needs at least one RU")
        self.du_mac = du_mac
        self.mac = mac or MacAddress.from_int(0x02_00_00_00_30_01)
        self.management.declare(
            "ru_macs",
            list(ru_macs),
            validator=lambda value: bool(value),
        )
        #: When enabled, the deadline sweep merges whatever subset of RU
        #: packets arrived in time (a *degraded* merge: reduced combining
        #: gain) instead of abandoning the symbol outright.
        self.management.declare(
            "partial_merge", bool(partial_merge),
            validator=lambda value: isinstance(value, bool),
        )
        #: Per-(RU, eAxC) eCPRI sequence tracking: classifies duplicates
        #: and stragglers with proper 8-bit seq_id wraparound, so the wrap
        #: after packet 255 is not mistaken for a retransmission.
        self.seq_tracker = SequenceTracker(
            name=f"{self.name}-seq", obs=self.obs
        )
        self.merged_uplink_symbols = 0
        #: (registry, (fanin histogram child, merged counter child)) —
        #: the per-merge export site resolves these once per registry.
        self._merge_children: tuple = (None, ())
        #: Symbols whose merge never completed before the deadline flush
        #: (an RU's packet was lost or late — Section 2.2's strict windows).
        self.missed_merge_deadlines = 0
        #: Deadline merges completed with fewer than all RU packets.
        self.degraded_merges = 0
        self.duplicate_uplink_packets = 0
        #: Stragglers for symbols already merged and forwarded: dropped so
        #: the DU never sees the same symbol twice.
        self.late_uplink_packets = 0
        self._merged_keys: Set[Tuple] = set()
        self._merged_order: deque = deque(maxlen=512)
        #: Per-eAxC seq counter for the DU-facing merged stream: the DAS
        #: originates that stream, so it cannot reuse a source RU's seq
        #: (a merge of N packets into one would leave wire-visible gaps).
        self._seq: Dict[int, int] = {}

    def _next_seq(self, eaxc_int: int) -> int:
        seq = self._seq.get(eaxc_int, 0)
        self._seq[eaxc_int] = (seq + 1) % 256
        return seq

    def _merged_ecpri(self, template: FronthaulPacket):
        """The merged packet's eCPRI header: template flow, own seq."""
        eaxc = template.ecpri.eaxc
        return dataclasses.replace(
            template.ecpri, seq_id=self._next_seq(eaxc.to_int())
        )

    @property
    def ru_macs(self) -> List[MacAddress]:
        return list(self.management.get("ru_macs"))

    def add_ru(self, ru_mac: MacAddress) -> None:
        self.management.set("ru_macs", self.ru_macs + [ru_mac])

    # -- handlers ----------------------------------------------------------

    def on_cplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        if packet.eth.src == self.du_mac:
            self._fan_out(ctx, packet)
        else:
            # RUs do not originate C-plane traffic; pass through unknown.
            ctx.forward(packet)

    def on_uplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        if packet.direction is Direction.DOWNLINK:
            self._fan_out(ctx, packet)
            return
        self._merge_uplink(ctx, packet)

    # -- downlink fan-out -----------------------------------------------------

    def _fan_out(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        """A2 + A1: one copy of the packet per DAS RU."""
        ru_macs = self.ru_macs
        copies = ctx.replicate(packet, len(ru_macs) - 1)
        for target, copy in zip(ru_macs, [packet] + copies):
            ctx.forward(copy, dst=target, src=self.mac)

    # -- uplink merge -----------------------------------------------------------

    def _merge_uplink(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        """A3 until all RUs reported, then A4 merge + A1 forward."""
        ru_macs = self.ru_macs
        key = packet.flow_key()
        source = packet.eth.src
        if source not in ru_macs:
            ctx.forward(packet)  # not part of this DAS group
            return
        status = self.seq_tracker.observe(
            (source.to_int(), packet.ecpri.eaxc.to_int()),
            packet.ecpri.seq_id,
            context=key,
        )
        if status.verdict is SeqVerdict.DUPLICATE:
            self.duplicate_uplink_packets += 1
            ctx.drop(packet)
            return
        if key in self._merged_keys:
            # Straggler for a symbol that already merged and shipped.
            self.late_uplink_packets += 1
            ctx.drop(packet)
            return
        already = set(self.cache_store_tags(key))
        if source in already:
            # Duplicate from the same RU (retransmission); drop.
            self.duplicate_uplink_packets += 1
            ctx.drop(packet)
            return
        occupancy = ctx.cache_put(key, packet, tag=source)
        if occupancy < len(ru_macs):
            return
        cached = ctx.cache_pop_all(key)
        if self.obs.enabled:
            # Resolved once per registry: this branch runs on every
            # completed symbol merge.
            registry = self.obs.registry
            cached_registry, children = self._merge_children
            if cached_registry is not registry:
                children = (
                    registry.histogram(
                        "das_merge_fanin",
                        "RU packets combined per uplink merge",
                        labels=("middlebox",),
                        buckets=(1, 2, 3, 4, 6, 8, 12, 16),
                    ).labels(self.name),
                    registry.counter(
                        "das_merged_symbols_total",
                        "completed uplink IQ merges",
                        labels=("middlebox",),
                    ).labels(self.name),
                )
                self._merge_children = (registry, children)
            children[0].observe(len(cached))
            children[1].inc()
        merged_sections = self._merge_sections(ctx, [p for _, p in cached])
        merged = UPlaneMessage(
            direction=Direction.UPLINK,
            time=packet.time,
            sections=merged_sections,
            filter_index=packet.message.filter_index,
        )
        out = FronthaulPacket(
            eth=packet.eth, ecpri=self._merged_ecpri(packet), message=merged
        )
        # The merged packet replaces all cached ones: forward it, the
        # remaining (len-1) cached packets are implicitly dropped.
        ctx.forward(out, dst=self.du_mac, src=self.mac)
        self.merged_uplink_symbols += 1
        self._remember_merged(key)

    def _merge_sections(
        self, ctx: ActionContext, packets: List[FronthaulPacket]
    ) -> List[UPlaneSection]:
        """Merge matching sections across per-RU packets element-wise.

        Each section index is merged in one batched A4 pass: the N per-RU
        payloads are decompressed into a single ``(n_rus, n_prbs, 24)``
        stack, summed once, and recompressed once (see
        :meth:`ActionContext.merge_iq`).
        """
        section_counts = {len(p.message.sections) for p in packets}
        if len(section_counts) != 1:
            raise ValueError("RU uplink packets disagree on section count")
        per_index = zip(*(p.message.sections for p in packets))
        return [ctx.merge_iq(operands) for operands in per_index]

    def cache_store_tags(self, key) -> List:
        return self.cache.tags(key)

    def _remember_merged(self, key) -> None:
        if len(self._merged_order) == self._merged_order.maxlen:
            evicted = self._merged_order.popleft()
            self._merged_keys.discard(evicted)
        self._merged_order.append(key)
        self._merged_keys.add(key)

    # -- deadline handling -------------------------------------------------

    def flush_stale(self, before_slot_key) -> int:
        """Drop cached uplink packets older than a slot boundary.

        Fronthaul messages must arrive within strict receive windows; a
        merge still waiting once its slot has passed will never complete
        (some RU's packet was lost).  Returns the number of symbols whose
        merge was abandoned; the DU simply never receives those symbols,
        exactly as when packets miss the window on a real fronthaul.
        """
        stale = [
            key
            for key in self.cache.keys()
            if key[0].slot_key() < before_slot_key
        ]
        for key in stale:
            self.cache.discard(key)
        self.missed_merge_deadlines += len(stale)
        if self.obs.enabled:
            registry = self.obs.registry
            if stale:
                registry.counter(
                    "das_missed_merge_deadlines_total",
                    "uplink merges abandoned at the slot deadline",
                    labels=("middlebox",),
                ).labels(self.name).inc(len(stale))
            registry.gauge(
                "das_pending_merges",
                "uplink symbols still waiting for RU packets",
                labels=("middlebox",),
            ).labels(self.name).set(len(self.cache.keys()))
        return len(stale)

    def flush_deadline(
        self, before_slot_key
    ) -> Tuple[List[FronthaulPacket], int]:
        """Deadline sweep with graceful degradation.

        Like :meth:`flush_stale`, but when the ``partial_merge`` knob is
        on, each stale symbol is merged from whatever RU subset arrived
        in time and the degraded packet is returned for delivery to the
        DU (reduced combining gain beats a silent hole in the slot).
        Returns ``(degraded packets, abandoned symbol count)``.
        """
        stale = [
            key
            for key in self.cache.keys()
            if key[0].slot_key() < before_slot_key
        ]
        partial = bool(self.management.get("partial_merge"))
        emitted: List[FronthaulPacket] = []
        abandoned = 0
        for key in stale:
            cached = self.cache.pop_all(key)
            packets = [packet for _, packet in cached]
            merged = None
            if partial and packets:
                merged = self._degraded_merge(packets)
            if merged is None:
                abandoned += 1
                continue
            emitted.append(merged)
            self._remember_merged(key)
        self.missed_merge_deadlines += abandoned
        if self.obs.enabled:
            registry = self.obs.registry
            if abandoned:
                registry.counter(
                    "das_missed_merge_deadlines_total",
                    "uplink merges abandoned at the slot deadline",
                    labels=("middlebox",),
                ).labels(self.name).inc(abandoned)
            if emitted:
                registry.counter(
                    "das_degraded_merges_total",
                    "deadline merges completed from a partial RU subset",
                    labels=("middlebox",),
                ).labels(self.name).inc(len(emitted))
            registry.gauge(
                "das_pending_merges",
                "uplink symbols still waiting for RU packets",
                labels=("middlebox",),
            ).labels(self.name).set(len(self.cache.keys()))
        return emitted, abandoned

    def _degraded_merge(
        self, packets: List[FronthaulPacket]
    ) -> Optional[FronthaulPacket]:
        """Merge a partial RU subset at the deadline; ``None`` on failure."""
        ctx = ActionContext(self.cache, self.cost_model)
        try:
            sections = self._merge_sections(ctx, packets)
        except ValueError:
            # Corrupted or inconsistent cached packets: the symbol is lost.
            return None
        template = packets[-1]
        merged = UPlaneMessage(
            direction=Direction.UPLINK,
            time=template.time,
            sections=sections,
            filter_index=template.message.filter_index,
        )
        out = FronthaulPacket(
            eth=template.eth, ecpri=self._merged_ecpri(template), message=merged
        )
        ctx.forward(out, dst=self.du_mac, src=self.mac)
        self.stats.processing_ns_total += ctx.trace.total_ns()
        self.stats.account_tx(ctx.emissions)
        self.degraded_merges += 1
        if self.obs.enabled:
            self.obs.registry.histogram(
                "das_merge_fanin",
                "RU packets combined per uplink merge",
                labels=("middlebox",),
                buckets=(1, 2, 3, 4, 6, 8, 12, 16),
            ).labels(self.name).observe(len(packets))
        return out
