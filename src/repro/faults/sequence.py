"""Per-stream eCPRI sequence tracking with 8-bit wraparound.

The eCPRI ``seq_id`` is one byte on the wire, so consumers comparing raw
integers misclassify the wrap after packet 255 as a retransmission.
:class:`SequenceTracker` keeps per-stream state (keyed however the caller
likes — typically ``(src_mac, eaxc)``) and classifies each observed
sequence number as new, duplicate, or reordered, counting the gap when
packets went missing in between.

An optional per-observation ``context`` (e.g. the packet's flow key)
disambiguates seq reuse: a repeated sequence number only counts as a
duplicate when its context matches the one recorded for that number —
a retransmission repeats *both*; an unsequenced source reusing seq 0
for every symbol does not.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Hashable, Optional

from repro import obs as obs_module
from repro.obs import Observability

_UNSET = object()


class SeqVerdict(enum.Enum):
    NEW = "new"
    DUPLICATE = "duplicate"
    REORDERED = "reordered"


@dataclass(frozen=True)
class SeqStatus:
    """Classification of one observed sequence number."""

    verdict: SeqVerdict
    #: Sequence numbers skipped since the last in-order packet (loss).
    gap: int = 0


class _StreamState:
    __slots__ = ("last", "order", "contexts")

    def __init__(self, window: int):
        self.last: Optional[int] = None
        self.order: Deque[int] = deque(maxlen=window)
        #: seq -> context it was last seen with (window-bounded).
        self.contexts: Dict[int, object] = {}

    def remember(self, seq: int, context: object) -> None:
        if seq not in self.contexts and len(self.order) == self.order.maxlen:
            evicted = self.order.popleft()
            self.contexts.pop(evicted, None)
        if seq not in self.contexts:
            self.order.append(seq)
        self.contexts[seq] = context

    def matches(self, seq: int, context: object) -> bool:
        """Was ``seq`` seen recently with the same context?"""
        if seq not in self.contexts:
            return False
        recorded = self.contexts[seq]
        if context is _UNSET or recorded is _UNSET:
            return True
        return recorded == context


class SequenceTracker:
    """Classify per-stream sequence numbers modulo ``modulus``.

    A forward step of up to ``modulus // 2`` is treated as progress (any
    skipped numbers are a gap); a repeat of a recently seen number with a
    matching context is a duplicate; anything else arriving from behind
    is a reordered straggler.  The half-window rule is what makes the
    256-wrap look like ``delta == 1`` instead of a 255-step retreat.
    """

    def __init__(
        self,
        modulus: int = 256,
        window: int = 64,
        name: str = "seq",
        obs: Optional[Observability] = None,
    ):
        if modulus < 2:
            raise ValueError("modulus must be >= 2")
        if not 1 <= window < modulus:
            raise ValueError("window must be in [1, modulus)")
        self.modulus = modulus
        self.window = window
        self.name = name
        self.obs = obs if obs is not None else obs_module.DEFAULT_OBSERVABILITY
        self._streams: Dict[Hashable, _StreamState] = {}
        self.gaps = 0
        self.lost_in_gaps = 0
        self.duplicates = 0
        self.reordered = 0

    def observe(
        self, key: Hashable, seq: int, context: object = _UNSET
    ) -> SeqStatus:
        seq %= self.modulus
        state = self._streams.get(key)
        if state is None:
            state = self._streams[key] = _StreamState(self.window)
        if state.last is None:
            state.last = seq
            state.remember(seq, context)
            return SeqStatus(SeqVerdict.NEW)
        delta = (seq - state.last) % self.modulus
        if delta == 0:
            if state.matches(seq, context):
                self._count("duplicate")
                return SeqStatus(SeqVerdict.DUPLICATE)
            # Same number, different context: an unsequenced source (or a
            # full 256-packet lap); treat as fresh traffic.
            state.remember(seq, context)
            return SeqStatus(SeqVerdict.NEW)
        if delta <= self.modulus // 2:
            gap = delta - 1
            state.last = seq
            state.remember(seq, context)
            if gap:
                self.gaps += 1
                self.lost_in_gaps += gap
                self._export_gap(gap)
            return SeqStatus(SeqVerdict.NEW, gap=gap)
        # Arriving from behind the stream head: a duplicate if we saw it
        # recently (same context), otherwise a late (reordered) original.
        if state.matches(seq, context):
            self._count("duplicate")
            return SeqStatus(SeqVerdict.DUPLICATE)
        state.remember(seq, context)
        self._count("reordered")
        return SeqStatus(SeqVerdict.REORDERED)

    def streams(self) -> int:
        return len(self._streams)

    # -- accounting --------------------------------------------------------

    def _count(self, kind: str) -> None:
        if kind == "duplicate":
            self.duplicates += 1
        else:
            self.reordered += 1
        if self.obs.enabled:
            self.obs.registry.counter(
                "seq_anomalies_total",
                "sequence anomalies per tracker and kind",
                labels=("tracker", "kind"),
            ).labels(self.name, kind).inc()

    def _export_gap(self, gap: int) -> None:
        if self.obs.enabled:
            registry = self.obs.registry
            registry.counter(
                "seq_gaps_total",
                "sequence gap events per tracker",
                labels=("tracker",),
            ).labels(self.name).inc()
            registry.counter(
                "seq_lost_packets_total",
                "packets inferred lost from sequence gaps",
                labels=("tracker",),
            ).labels(self.name).inc(gap)
