"""Named fault kinds: declarative specs for the fault injector.

Scenario descriptions (and :meth:`FronthaulSwitch.impair`) need to name
impairments in plain data — a JSON file cannot hold a live
:class:`~repro.faults.injector.FaultInjector`.  This registry maps fault
*kind* names to factories producing :class:`FaultConfig` objects, and
:func:`injector_from_spec` turns a full spec (kind + params + seed) into
a ready injector.

A spec is either the bare kind name (all-default parameters)::

    "iid_loss"

or a dict::

    {"kind": "iid_loss", "rate": 0.01, "seed": 7,
     "scope": {"direction": "ul", "src": [33554432]}}

Unknown keys are rejected so typos fail loudly.  Custom kinds register
with :func:`register_fault`::

    @register_fault("my_burst")
    def _my_burst(p: float = 0.2) -> FaultConfig:
        return FaultConfig(burst=GilbertElliottConfig(p_enter_burst=p))
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, Optional, Union

from repro.faults.injector import (
    FaultConfig,
    FaultInjector,
    FaultScope,
    GilbertElliottConfig,
)
from repro.fronthaul.cplane import Direction

#: kind name -> factory(**params) -> FaultConfig
FAULT_REGISTRY: Dict[str, Callable[..., FaultConfig]] = {}

#: Spec keys consumed by :func:`injector_from_spec` itself (everything
#: else is forwarded to the kind's factory).
_INJECTOR_KEYS = frozenset({"kind", "seed", "name", "carrier_num_prb", "scope"})


def register_fault(name: str):
    """Register a named fault kind; returns the decorator target."""

    def decorator(factory: Callable[..., FaultConfig]):
        if name in FAULT_REGISTRY:
            raise ValueError(f"fault kind {name!r} already registered")
        FAULT_REGISTRY[name] = factory
        return factory

    return decorator


def fault_kinds() -> List[str]:
    """All registered kind names, sorted."""
    return sorted(FAULT_REGISTRY)


def _scope_from_spec(spec: Optional[dict]) -> FaultScope:
    if not spec:
        return FaultScope()
    unknown = set(spec) - {"direction", "eaxc", "src"}
    if unknown:
        raise KeyError(f"unknown scope keys: {sorted(unknown)}")
    direction = spec.get("direction")
    if isinstance(direction, str):
        direction = {
            "dl": Direction.DOWNLINK,
            "ul": Direction.UPLINK,
        }[direction.lower()]
    eaxc = spec.get("eaxc")
    src = spec.get("src")
    return FaultScope(
        direction=direction,
        eaxc=tuple(eaxc) if eaxc is not None else None,
        src=tuple(src) if src is not None else None,
    )


def fault_config_from_spec(spec: Union[str, dict]) -> FaultConfig:
    """Resolve a kind name or spec dict into a :class:`FaultConfig`."""
    if isinstance(spec, str):
        spec = {"kind": spec}
    kind = spec.get("kind")
    if kind is None:
        raise KeyError("fault spec needs a 'kind'")
    factory = FAULT_REGISTRY.get(kind)
    if factory is None:
        raise KeyError(
            f"unknown fault kind {kind!r}; registered: {fault_kinds()}"
        )
    params = {k: v for k, v in spec.items() if k not in _INJECTOR_KEYS}
    allowed = set(inspect.signature(factory).parameters)
    unknown = set(params) - allowed
    if unknown:
        raise KeyError(
            f"fault kind {kind!r} takes {sorted(allowed)}, "
            f"got unknown {sorted(unknown)}"
        )
    config = factory(**params)
    scope = _scope_from_spec(spec.get("scope"))
    if scope != FaultScope():
        config = FaultConfig(
            **{**_config_fields(config), "scope": scope}
        )
    return config


def _config_fields(config: FaultConfig) -> dict:
    return {
        "loss_rate": config.loss_rate,
        "burst": config.burst,
        "duplicate_rate": config.duplicate_rate,
        "reorder_rate": config.reorder_rate,
        "corrupt_rate": config.corrupt_rate,
        "corrupt_bits": config.corrupt_bits,
        "truncate_rate": config.truncate_rate,
        "jitter_ns": config.jitter_ns,
    }


def injector_from_spec(spec: Union[str, dict]) -> FaultInjector:
    """Build a seeded :class:`FaultInjector` from a declarative spec."""
    config = fault_config_from_spec(spec)
    if isinstance(spec, str):
        spec = {"kind": spec}
    return FaultInjector(
        config=config,
        seed=int(spec.get("seed", 0)),
        name=str(spec.get("name", spec.get("kind", "wire"))),
        carrier_num_prb=spec.get("carrier_num_prb"),
    )


# -- built-in kinds ----------------------------------------------------------


@register_fault("iid_loss")
def _iid_loss(rate: float = 0.01) -> FaultConfig:
    """Independent per-packet loss at ``rate``."""
    return FaultConfig(loss_rate=rate)


@register_fault("gilbert_elliott")
def _gilbert_elliott(
    p_enter_burst: float = 0.05,
    p_exit_burst: float = 0.25,
    loss_good: float = 0.0,
    loss_burst: float = 1.0,
) -> FaultConfig:
    """Two-state Markov bursty loss."""
    return FaultConfig(
        burst=GilbertElliottConfig(
            p_enter_burst=p_enter_burst,
            p_exit_burst=p_exit_burst,
            loss_good=loss_good,
            loss_burst=loss_burst,
        )
    )


@register_fault("duplicate")
def _duplicate(rate: float = 0.01) -> FaultConfig:
    return FaultConfig(duplicate_rate=rate)


@register_fault("reorder")
def _reorder(rate: float = 0.01) -> FaultConfig:
    return FaultConfig(reorder_rate=rate)


@register_fault("corrupt")
def _corrupt(rate: float = 0.001, bits: int = 2) -> FaultConfig:
    return FaultConfig(corrupt_rate=rate, corrupt_bits=bits)


@register_fault("truncate")
def _truncate(rate: float = 0.001) -> FaultConfig:
    return FaultConfig(truncate_rate=rate)


@register_fault("jitter")
def _jitter(ns: float = 1000.0) -> FaultConfig:
    return FaultConfig(jitter_ns=ns)


@register_fault("chaos")
def _chaos(
    loss_rate: float = 0.0,
    duplicate_rate: float = 0.0,
    reorder_rate: float = 0.0,
    corrupt_rate: float = 0.0,
    corrupt_bits: int = 2,
    truncate_rate: float = 0.0,
    jitter_ns: float = 0.0,
) -> FaultConfig:
    """Free-form combination of every independent impairment."""
    return FaultConfig(
        loss_rate=loss_rate,
        duplicate_rate=duplicate_rate,
        reorder_rate=reorder_rate,
        corrupt_rate=corrupt_rate,
        corrupt_bits=corrupt_bits,
        truncate_rate=truncate_rate,
        jitter_ns=jitter_ns,
    )
