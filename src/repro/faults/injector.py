"""Deterministic, seeded fronthaul fault injection.

A :class:`FaultInjector` impairs a packet stream the way a real fronthaul
does: i.i.d. random loss, Gilbert–Elliott bursty loss, duplication,
reordering, bit-flip corruption, truncation, serialization jitter, and
scheduled per-source silence windows (a DU going dark).  Every decision
comes from one ``random.Random(seed)`` stream, so the same seed over the
same packet sequence produces a byte-identical impairment trace — the
property the chaos golden test pins.

Corrupted and truncated frames are re-parsed at the injection point: if
the mangled bytes no longer parse, the wire itself "eats" the frame (a
CRC-failed Ethernet frame never reaches the host) and the drop is counted
here; if they still parse, the damaged packet is delivered so the
receiver-side hardening (switch/network ``ValueError`` containment) gets
exercised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro import obs as obs_module
from repro.fronthaul.cplane import Direction
from repro.fronthaul.ethernet import MacAddress
from repro.fronthaul.packet import FronthaulPacket, parse_packet
from repro.obs import Observability

#: Offset of the first byte the corruptor may touch: past the MAC
#: addresses, so a damaged frame still switches to the same endpoint.
_CORRUPT_START_BYTE = 12


@dataclass(frozen=True)
class GilbertElliottConfig:
    """Two-state Markov burst-loss model (good/bad channel)."""

    p_enter_burst: float = 0.05
    p_exit_burst: float = 0.25
    loss_good: float = 0.0
    loss_burst: float = 1.0

    def __post_init__(self) -> None:
        for name in ("p_enter_burst", "p_exit_burst", "loss_good", "loss_burst"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")


@dataclass(frozen=True)
class FaultScope:
    """Restricts which packets a fault config applies to.

    ``None`` fields match everything.  Packets outside the scope pass
    through untouched and consume no randomness, so narrowing the scope
    never perturbs the decisions made for in-scope packets.
    """

    direction: Optional[Direction] = None
    eaxc: Optional[Tuple[int, ...]] = None
    src: Optional[Tuple[int, ...]] = None

    def matches(self, packet: FronthaulPacket) -> bool:
        if self.direction is not None and packet.direction is not self.direction:
            return False
        if self.eaxc is not None and packet.ecpri.eaxc.to_int() not in self.eaxc:
            return False
        if self.src is not None and packet.eth.src.to_int() not in self.src:
            return False
        return True


@dataclass(frozen=True)
class SilenceWindow:
    """All frames from ``src`` die between two slot boundaries.

    ``end_slot_key=None`` silences the source forever — the model of a
    crashed DU used by the failover experiments.
    """

    src: int
    start_slot_key: Tuple[int, int, int]
    end_slot_key: Optional[Tuple[int, int, int]] = None

    def matches(self, packet: FronthaulPacket) -> bool:
        if packet.eth.src.to_int() != self.src:
            return False
        slot_key = packet.time.slot_key()
        if slot_key < self.start_slot_key:
            return False
        return self.end_slot_key is None or slot_key < self.end_slot_key


@dataclass(frozen=True)
class FaultConfig:
    """Composable impairments, each an independent per-packet probability."""

    loss_rate: float = 0.0
    burst: Optional[GilbertElliottConfig] = None
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    corrupt_rate: float = 0.0
    corrupt_bits: int = 2
    truncate_rate: float = 0.0
    jitter_ns: float = 0.0
    scope: FaultScope = FaultScope()

    def __post_init__(self) -> None:
        for name in (
            "loss_rate", "duplicate_rate", "reorder_rate",
            "corrupt_rate", "truncate_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.corrupt_bits < 1:
            raise ValueError("corrupt_bits must be >= 1")
        if self.jitter_ns < 0:
            raise ValueError("jitter_ns must be >= 0")


@dataclass
class InjectorStats:
    """Everything the injector did, split by cause."""

    offered: int = 0
    delivered: int = 0
    lost_iid: int = 0
    lost_burst: int = 0
    silenced: int = 0
    corrupted_delivered: int = 0
    corrupt_dropped: int = 0
    truncated_delivered: int = 0
    truncate_dropped: int = 0
    duplicated: int = 0
    reordered: int = 0
    jitter_ns_total: float = 0.0

    @property
    def absorbed(self) -> int:
        """Packets the wire removed from the stream entirely."""
        return (
            self.lost_iid
            + self.lost_burst
            + self.silenced
            + self.corrupt_dropped
            + self.truncate_dropped
        )

    @property
    def injected_events(self) -> int:
        """Total impairment events of any kind."""
        return (
            self.absorbed
            + self.corrupted_delivered
            + self.truncated_delivered
            + self.duplicated
            + self.reordered
        )


class FaultInjector:
    """Applies a :class:`FaultConfig` to packet bursts, deterministically.

    ``apply`` returns the surviving packets for this burst; packets held
    for reordering are released at the *next* ``apply`` call (arriving one
    burst late and out of order).  ``trace`` records every impairment
    event as ``"<ordinal>:<kind>"`` strings; :meth:`trace_bytes` is the
    byte-identical artifact the determinism golden test compares.
    """

    def __init__(
        self,
        config: FaultConfig = FaultConfig(),
        seed: int = 0,
        name: str = "wire",
        carrier_num_prb: Optional[int] = None,
        obs: Optional[Observability] = None,
    ):
        self.config = config
        self.seed = seed
        self.name = name
        self.carrier_num_prb = carrier_num_prb
        self.obs = obs if obs is not None else obs_module.DEFAULT_OBSERVABILITY
        self.stats = InjectorStats()
        self.trace: List[str] = []
        self.silences: List[SilenceWindow] = []
        self._rng = random.Random(seed)
        self._held: List[FronthaulPacket] = []
        self._burst_bad = False
        self._ordinal = 0

    # -- configuration -----------------------------------------------------

    def silence(
        self,
        src: MacAddress,
        start_slot_key: Tuple[int, int, int],
        end_slot_key: Optional[Tuple[int, int, int]] = None,
    ) -> None:
        """Schedule a per-source blackout window (e.g. a DU crash)."""
        self.silences.append(
            SilenceWindow(src.to_int(), start_slot_key, end_slot_key)
        )

    # -- injection ---------------------------------------------------------

    def apply(self, packets: List[FronthaulPacket]) -> List[FronthaulPacket]:
        """Impair one burst; returns survivors plus any released stragglers."""
        released = self._held
        self._held = []
        out: List[FronthaulPacket] = []
        for packet in packets:
            self._process(packet, out)
        if released:
            out.extend(released)
            self.stats.delivered += len(released)
        return out

    def apply_one(self, packet: FronthaulPacket) -> List[FronthaulPacket]:
        return self.apply([packet])

    def flush_held(self) -> List[FronthaulPacket]:
        """Release reorder-held packets without offering new traffic."""
        return self.apply([])

    def trace_bytes(self) -> bytes:
        return "\n".join(self.trace).encode("ascii")

    # -- internals ---------------------------------------------------------

    def _event(self, ordinal: int, kind: str) -> None:
        self.trace.append(f"{ordinal}:{kind}")
        if self.obs.enabled:
            self.obs.registry.counter(
                "fault_injected_total",
                "impairment events per injector and kind",
                labels=("injector", "kind"),
            ).labels(self.name, kind).inc()

    def _process(
        self, packet: FronthaulPacket, out: List[FronthaulPacket]
    ) -> None:
        self._ordinal += 1
        ordinal = self._ordinal
        stats = self.stats
        stats.offered += 1
        for window in self.silences:
            if window.matches(packet):
                stats.silenced += 1
                self._event(ordinal, "silence")
                return
        config = self.config
        if not config.scope.matches(packet):
            out.append(packet)
            stats.delivered += 1
            return
        rng = self._rng
        if config.loss_rate and rng.random() < config.loss_rate:
            stats.lost_iid += 1
            self._event(ordinal, "loss.iid")
            return
        if config.burst is not None:
            ge = config.burst
            flip = rng.random()
            if self._burst_bad:
                if flip < ge.p_exit_burst:
                    self._burst_bad = False
            elif flip < ge.p_enter_burst:
                self._burst_bad = True
            p_loss = ge.loss_burst if self._burst_bad else ge.loss_good
            if p_loss and rng.random() < p_loss:
                stats.lost_burst += 1
                self._event(ordinal, "loss.burst")
                return
        if config.corrupt_rate and rng.random() < config.corrupt_rate:
            damaged = self._corrupt(packet)
            if damaged is None:
                stats.corrupt_dropped += 1
                self._event(ordinal, "corrupt.dropped")
                return
            stats.corrupted_delivered += 1
            self._event(ordinal, "corrupt")
            packet = damaged
        if config.truncate_rate and rng.random() < config.truncate_rate:
            shortened = self._truncate(packet)
            if shortened is None:
                stats.truncate_dropped += 1
                self._event(ordinal, "truncate.dropped")
                return
            stats.truncated_delivered += 1
            self._event(ordinal, "truncate")
            packet = shortened
        duplicate: Optional[FronthaulPacket] = None
        if config.duplicate_rate and rng.random() < config.duplicate_rate:
            stats.duplicated += 1
            self._event(ordinal, "duplicate")
            duplicate = packet.clone()
        if config.reorder_rate and rng.random() < config.reorder_rate:
            stats.reordered += 1
            self._event(ordinal, "reorder")
            self._held.append(packet)
            if duplicate is not None:
                out.append(duplicate)
                stats.delivered += 1
            return
        if config.jitter_ns:
            stats.jitter_ns_total += rng.random() * config.jitter_ns
        out.append(packet)
        stats.delivered += 1
        if duplicate is not None:
            out.append(duplicate)
            stats.delivered += 1

    def _corrupt(self, packet: FronthaulPacket) -> Optional[FronthaulPacket]:
        """Flip ``corrupt_bits`` random bits past the MAC addresses."""
        data = bytearray(packet.pack())
        first_bit = _CORRUPT_START_BYTE * 8
        for _ in range(self.config.corrupt_bits):
            bit = self._rng.randrange(first_bit, len(data) * 8)
            data[bit // 8] ^= 1 << (bit % 8)
        return self._reparse(bytes(data))

    def _truncate(self, packet: FronthaulPacket) -> Optional[FronthaulPacket]:
        """Cut the frame at a random byte (a runt frame)."""
        data = packet.pack()
        cut = self._rng.randrange(1, len(data))
        return self._reparse(data[:cut])

    def _reparse(self, data: bytes) -> Optional[FronthaulPacket]:
        try:
            return parse_packet(data, carrier_num_prb=self.carrier_num_prb)
        except Exception:
            # Unparseable on the wire: the frame dies before any host
            # sees it (the fronthaul equivalent of a failed CRC).
            return None
