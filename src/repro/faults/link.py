"""An impaired point-to-point link: fault injection + link accounting.

Composes a :class:`~repro.net.link.Link` (capacity/latency accounting)
with a :class:`~repro.faults.injector.FaultInjector`: survivors are
accounted on the link, absorbed packets increment ``LinkStats.drops``
split by cause (``loss`` for vanished frames, ``malformed`` for frames
the corruptor rendered unparseable).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.faults.injector import FaultInjector
from repro.fronthaul.packet import FronthaulPacket
from repro.net.link import Link


class ImpairedLink:
    """A link whose frames pass through a fault injector."""

    def __init__(self, injector: FaultInjector, link: Optional[Link] = None):
        self.injector = injector
        self.link = link or Link(name=f"{injector.name}-link")

    def carry(
        self, packets: Sequence[FronthaulPacket]
    ) -> List[FronthaulPacket]:
        """Impair and account one burst; returns the delivered packets."""
        stats = self.injector.stats
        lost_before = (
            stats.lost_iid + stats.lost_burst + stats.silenced
        )
        malformed_before = stats.corrupt_dropped + stats.truncate_dropped
        survivors = self.injector.apply(list(packets))
        for packet in survivors:
            self.link.transfer(packet.wire_size)
        lost = (
            stats.lost_iid + stats.lost_burst + stats.silenced - lost_before
        )
        malformed = (
            stats.corrupt_dropped + stats.truncate_dropped - malformed_before
        )
        if lost:
            self.link.drop(lost, reason="loss")
        if malformed:
            self.link.drop(malformed, reason="malformed")
        return survivors

    @property
    def stats(self):
        return self.link.stats
