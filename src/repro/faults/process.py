"""Process-level chaos: seeded control-plane failure injection.

PR 3's :class:`~repro.faults.injector.FaultInjector` chaos-hardens the
*datapath* — loss, corruption and reordering on the fronthaul wire.
This module does the same for the *control plane* of the sharded worker
pool: it describes, as plain spec data, the ways a pool worker process
itself can fail, so the supervised pool
(:class:`~repro.scale.supervisor.SupervisedWorkerPool`) can be driven
through every failure class deterministically and proven to recover
*exactly* (byte-identical digests against an unfaulted run).

Failure classes (:data:`CHAOS_KINDS`):

- ``kill`` — the worker SIGKILLs itself mid-epoch (half the epoch's
  slots stepped, then ``kill -9``): the crashed-process path.
- ``stall`` — the worker sleeps through the barrier: the hung-process
  path, detected by the coordinator's barrier deadline.
- ``poison`` — the worker answers the barrier with a protocol-violating
  reply (wrong slot count, alien heartbeat): the byzantine-reply path.
- ``corrupt_frame`` — the worker ships an arena payload descriptor with
  mangled watermark/length bounds: the corrupted-shared-memory path,
  caught by descriptor validation as a typed
  :class:`~repro.scale.arena.ArenaFrameError`.

Injections are declarative (:class:`ProcessChaosSpec`, JSON-safe) and
ride :class:`~repro.scale.spec.ScenarioSpec.process_chaos`, so the same
spec reproduces the same failure at the same barrier epoch on the same
coupling group every run — which is what lets the chaos-scale eval
sweep kill points and assert digest equality with the unfaulted run.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: The process-level failure classes an injection may trigger.
CHAOS_KINDS = ("kill", "stall", "poison", "corrupt_frame")


@dataclass(frozen=True)
class ProcessChaosSpec:
    """One declarative control-plane failure injection.

    ``epoch`` is the 0-based barrier epoch at which the failure fires.
    The target worker is named either directly (``worker``, a shard
    index) or — placement-independently, which is what digest sweeps at
    several worker counts want — as the worker hosting coupling group
    ``group``.  Exactly one of the two must be set.

    ``rearm`` keeps the injection armed on a respawned worker, so the
    failure recurs on every recovery attempt: the knob that drives the
    restart budget to exhaustion on purpose.  By default a respawned
    worker is disarmed and recovery converges.
    """

    kind: str
    epoch: int
    group: Optional[str] = None
    worker: Optional[int] = None
    rearm: bool = False
    #: How long a ``stall`` sleeps (seconds).  Longer than the barrier
    #: deadline, or it is a slow worker rather than a hung one.
    stall_s: float = 30.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"chaos kind must be one of {CHAOS_KINDS}, got {self.kind!r}"
            )
        if self.epoch < 0:
            raise ValueError("chaos epoch must be >= 0")
        if (self.group is None) == (self.worker is None):
            raise ValueError(
                "a process chaos spec targets exactly one of group/worker"
            )
        if self.stall_s <= 0:
            raise ValueError("stall_s must be positive")

    def targets(self, worker: int, group_names: Sequence[str]) -> bool:
        """Does this injection fire on the worker serving these groups?"""
        if self.worker is not None:
            return self.worker == worker
        return self.group in group_names

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProcessChaosSpec":
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise KeyError(
                f"process chaos spec has unknown keys: {sorted(unknown)}"
            )
        return cls(**data)


class ProcessChaosAgent:
    """Worker-side trigger: fires each matching injection exactly once.

    Built inside the worker process from the spec's ``process_chaos``
    entries.  ``armed=False`` (a respawned worker) keeps only the
    ``rearm`` injections, so by default a recovery attempt does not
    immediately re-fail.  A ``reset`` command rebuilds the agent fully
    armed — a new run gets the full chaos schedule again.
    """

    def __init__(
        self,
        specs: Sequence[ProcessChaosSpec],
        worker: int,
        group_names: Sequence[str],
        armed: bool = True,
    ):
        self.worker = worker
        self._pending: List[ProcessChaosSpec] = [
            spec
            for spec in specs
            if spec.targets(worker, group_names) and (armed or spec.rearm)
        ]

    def take(self, epoch_index: int) -> Optional[ProcessChaosSpec]:
        """Pop the injection scheduled for this barrier epoch, if any."""
        for position, spec in enumerate(self._pending):
            if spec.epoch == epoch_index:
                return self._pending.pop(position)
        return None

    @property
    def pending(self) -> Tuple[ProcessChaosSpec, ...]:
        return tuple(self._pending)


def corrupt_descriptor(descriptor: Any) -> Tuple:
    """Mangle a payload descriptor's bounds (the ``corrupt_frame`` kind).

    The returned descriptor keeps the two-element framing shape but
    carries a length and watermark far outside any ring, so coordinator-
    side validation (:func:`~repro.scale.arena.validate_descriptor`)
    rejects it as an :class:`~repro.scale.arena.ArenaFrameError` instead
    of unpickling garbage.  Works on a real descriptor, an inline
    fallback tuple, or ``None`` (an epoch that shipped no payload).
    """
    bogus = 1 << 40
    if (
        isinstance(descriptor, tuple)
        and len(descriptor) == 2
        and isinstance(descriptor[0], tuple)
        and len(descriptor[0]) == 3
    ):
        (offset, nbytes, mark), extents = descriptor
        return ((offset, nbytes + bogus, mark + bogus), tuple(extents))
    return ((bogus, bogus, 4 * bogus), ())


def seeded_chaos_sweep(
    seed: int,
    epochs: int,
    groups: Sequence[str],
    kinds: Sequence[str] = CHAOS_KINDS,
) -> List[ProcessChaosSpec]:
    """A deterministic injection per failure class: seeded kill points.

    For each kind the seeded RNG picks a barrier epoch in
    ``[0, epochs)`` and a target coupling group, so a fixed seed sweeps
    the same (kind, epoch, group) points every run — the chaos-scale
    eval's sweep generator.
    """
    if epochs < 1:
        raise ValueError("need at least one epoch to inject into")
    if not groups:
        raise ValueError("need at least one target group")
    rng = random.Random(seed)
    sweep = []
    for kind in kinds:
        sweep.append(
            ProcessChaosSpec(
                kind=kind,
                epoch=rng.randrange(epochs),
                group=rng.choice(list(groups)),
                name=f"sweep-{kind}",
            )
        )
    return sweep


__all__ = [
    "CHAOS_KINDS",
    "ProcessChaosAgent",
    "ProcessChaosSpec",
    "corrupt_descriptor",
    "seeded_chaos_sweep",
]
