"""Deterministic fault injection + datapath hardening primitives.

The injection side lives here (``FaultInjector``, ``ImpairedLink``,
``FaultyMiddlebox``); the hardening it exercises lives where the
behavior belongs: per-stage isolation and the circuit breaker in
:mod:`repro.core.chain`, partial merges in :mod:`repro.apps.das`,
malformed-frame containment in :mod:`repro.sim.network_sim` and the
switch.  ``SequenceTracker`` (seq_id gap/dup/reorder detection with
8-bit wraparound) is shared by both sides.

Process-level chaos (:mod:`repro.faults.process`) extends the same
discipline to the scale-out control plane: declarative, seeded worker
kills/stalls/poisoned replies/frame corruption, recovered exactly by
:class:`repro.scale.supervisor.SupervisedWorkerPool`.
"""

from repro.faults.injector import (
    FaultConfig,
    FaultInjector,
    FaultScope,
    GilbertElliottConfig,
    InjectorStats,
    SilenceWindow,
)
from repro.faults.link import ImpairedLink
from repro.faults.middlebox import (
    FaultInjectorMiddlebox,
    FaultyMiddlebox,
    InjectedFault,
)
from repro.faults.process import (
    CHAOS_KINDS,
    ProcessChaosAgent,
    ProcessChaosSpec,
    corrupt_descriptor,
    seeded_chaos_sweep,
)
from repro.faults.registry import (
    FAULT_REGISTRY,
    fault_config_from_spec,
    fault_kinds,
    injector_from_spec,
    register_fault,
)
from repro.faults.sequence import SeqStatus, SeqVerdict, SequenceTracker

__all__ = [
    "CHAOS_KINDS",
    "FAULT_REGISTRY",
    "FaultConfig",
    "FaultInjector",
    "FaultInjectorMiddlebox",
    "FaultScope",
    "FaultyMiddlebox",
    "GilbertElliottConfig",
    "ImpairedLink",
    "InjectedFault",
    "InjectorStats",
    "ProcessChaosAgent",
    "ProcessChaosSpec",
    "SeqStatus",
    "SeqVerdict",
    "SequenceTracker",
    "SilenceWindow",
    "corrupt_descriptor",
    "fault_config_from_spec",
    "fault_kinds",
    "injector_from_spec",
    "register_fault",
    "seeded_chaos_sweep",
]
