"""Fault-raising and fault-injecting middleboxes.

:class:`FaultyMiddlebox` throws on a configured schedule — the adversary
the chain's per-stage isolation and circuit breaker are hardened against.
:class:`FaultInjectorMiddlebox` wraps a :class:`~repro.faults.injector.
FaultInjector` as a chain stage, modeling an impaired wire segment
*between* two middleboxes.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.actions import ActionContext
from repro.core.middlebox import Middlebox
from repro.faults.injector import FaultInjector
from repro.fronthaul.packet import FronthaulPacket


class InjectedFault(RuntimeError):
    """The exception a :class:`FaultyMiddlebox` raises on schedule."""


class FaultyMiddlebox(Middlebox):
    """Pass-through middlebox that raises on scheduled packets.

    Either ``fail_every`` (raise on every Nth packet) or ``fail_range``
    (raise on packets with ordinal in ``[start, stop)``) can be set; the
    latter produces exactly ``stop - start`` *consecutive* faults, which
    is how the chaos eval opens a circuit breaker a precise number of
    times.
    """

    app_name = "faulty"

    def __init__(
        self,
        fail_every: Optional[int] = None,
        fail_range: Optional[Tuple[int, int]] = None,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if fail_every is not None and fail_every < 1:
            raise ValueError("fail_every must be >= 1")
        if fail_range is not None and fail_range[0] >= fail_range[1]:
            raise ValueError("fail_range must be a non-empty [start, stop)")
        self.fail_every = fail_every
        self.fail_range = fail_range
        self.seen = 0
        self.raised = 0

    def _maybe_raise(self, packet: FronthaulPacket) -> None:
        self.seen += 1
        ordinal = self.seen
        should_fail = False
        if self.fail_every is not None and ordinal % self.fail_every == 0:
            should_fail = True
        if self.fail_range is not None:
            start, stop = self.fail_range
            if start <= ordinal < stop:
                should_fail = True
        if should_fail:
            self.raised += 1
            raise InjectedFault(
                f"{self.name}: scheduled fault on packet {ordinal}"
            )

    def on_cplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        self._maybe_raise(packet)
        ctx.forward(packet)

    def on_uplane(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        self._maybe_raise(packet)
        ctx.forward(packet)


class FaultInjectorMiddlebox(Middlebox):
    """An impaired wire segment as a chain stage.

    Survivors of the injector are forwarded unchanged; absorbed packets
    become ordinary middlebox drops (so the chain's accounting sees
    them).  Duplicates and released reorder stragglers come out as extra
    emissions of the packet that triggered their release.
    """

    app_name = "impaired_wire"

    def __init__(self, injector: FaultInjector, **kwargs):
        kwargs.setdefault("name", f"wire-{injector.name}")
        super().__init__(**kwargs)
        self.injector = injector

    def _relay(self, ctx: ActionContext, packet: FronthaulPacket) -> None:
        for survivor in self.injector.apply_one(packet):
            ctx.forward(survivor)

    on_cplane = _relay
    on_uplane = _relay
