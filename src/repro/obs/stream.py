"""Streaming telemetry transport: per-epoch flushes, live coordinator fold.

PR 6's worker pool already ships *metric deltas* at every barrier epoch;
this module widens that lane into a full telemetry plane and gives both
ends a first-class object:

- :class:`GroupStreamSource` (worker side) wraps one built coupling
  group and produces a plain-data **epoch payload**: the group's metric
  delta, its freshly recorded spans (drained from the flight recorder
  and stamped with ``(group, shard)``), the deadline accounts of the
  epoch's slots, and the conformance-count delta.  Payloads are pure
  picklable data, so they travel the shared-memory arena ring with the
  pipe fallback exactly like every other pool payload.
- :class:`TelemetryStream` (coordinator side) folds payloads as they
  arrive: metric deltas merge into a live registry, spans land in a
  bounded coordinator recorder (cross-shard packet journeys reassemble
  via :meth:`~repro.obs.recorder.SpanKey.wire_key`), deadline accounts
  feed per-group :class:`~repro.obs.deadline.DeadlineAccountant` twins,
  and every epoch emits one :class:`~repro.obs.slo.EpochSample` into the
  :class:`~repro.obs.slo.SloEngine` plus a summary record on the
  :class:`~repro.core.telemetry.TelemetryBus` (topic
  :data:`EPOCH_TOPIC`).

**Live equals collect, bit for bit.**  Mid-run epochs ship deltas —
integer fields fold exactly; float sums may drift by an ulp, which is
fine for a dashboard.  The *final* epoch instead ships each group's
cumulative snapshot (``metrics_kind: "cumulative"``), and the fold
rebuilds the live registry from those snapshots in sorted group order —
the exact computation :meth:`~repro.scale.runner.ScenarioResult.metrics`
performs at collect time — so the final live snapshot is byte-identical
to the end-of-run ``collect()`` merge, and ``collect()`` is genuinely a
consumer of the stream rather than a second source of truth.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional, Sequence, Tuple

from repro.obs.deadline import DeadlineAccountant
from repro.obs.metrics import MetricsRegistry, diff_snapshot
from repro.obs.recorder import FlightRecorder, PacketSpan, SpanKey
from repro.obs.sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch
from repro.obs.slo import EpochSample, SloEngine, SloSpec

#: Bus topic carrying one summary record per folded stream epoch.
EPOCH_TOPIC = "obs.stream.epoch"

#: Counter the source bumps for spans that rolled off a worker ring
#: before the epoch flush could ship them.
DROPPED_SPANS_METRIC = "fronthaul_recorder_dropped_spans_total"


class GroupStreamSource:
    """Worker-side producer of one coupling group's epoch payloads.

    ``shard`` is the worker index the group runs on (the single-process
    runner passes ``0``).  ``stream`` gates the expensive lanes: with it
    False only the metric delta ships — byte-compatible with the PR 6
    behavior.
    """

    def __init__(self, group, shard: int, stream: bool = True):
        self.group = group
        self.shard = shard
        self.stream = stream
        self._last_metrics: Dict[str, Dict[str, Any]] = {}
        self._shipped_accounts = 0
        self._last_conformance: Dict[str, Any] = {}

    def _drain_spans(self) -> Tuple[List[PacketSpan], int]:
        recorder: FlightRecorder = self.group.obs.recorder
        spans, evicted_delta = recorder.drain()
        name = self.group.name
        shard = self.shard
        # Copy-on-ship via direct constructors: dataclasses.replace() pays
        # a fields() walk per call, which dominates epoch flushes on
        # span-heavy runs.
        stamped = []
        for span in spans:
            key = span.key
            stamped.append(
                PacketSpan(
                    key=SpanKey(
                        eaxc=key.eaxc,
                        frame=key.frame,
                        subframe=key.subframe,
                        slot=key.slot,
                        symbol=key.symbol,
                        direction=key.direction,
                        seq=key.seq,
                        group=name,
                        shard=shard,
                    ),
                    middlebox=span.middlebox,
                    traffic_class=span.traffic_class,
                    modeled_ns=span.modeled_ns,
                    wall_ns=span.wall_ns,
                    start_ns=span.start_ns,
                    events=span.events,
                    emitted=span.emitted,
                    dropped=span.dropped,
                    stage=span.stage,
                )
            )
        return stamped, evicted_delta

    def _deadline_delta(self) -> List[Dict[str, Any]]:
        accountant = self.group.accountant
        if accountant is None:
            return []
        fresh = accountant.accounts[self._shipped_accounts:]
        self._shipped_accounts = len(accountant.accounts)
        return [account.to_wire() for account in fresh]

    def _conformance_delta(self) -> Dict[str, Any]:
        validator = self.group.validator
        if validator is None:
            return {}
        report = validator.report
        previous = self._last_conformance
        counts = {
            str(kind): count for kind, count in report.counts.items()
        }
        delta = {
            "frames_checked": (
                report.frames_checked - previous.get("frames_checked", 0)
            ),
            "counts": {
                kind: count - previous.get("counts", {}).get(kind, 0)
                for kind, count in counts.items()
            },
        }
        self._last_conformance = {
            "frames_checked": report.frames_checked,
            "counts": counts,
        }
        delta["counts"] = {k: v for k, v in delta["counts"].items() if v}
        return delta

    def epoch_payload(self, final: bool = False) -> Dict[str, Any]:
        """Flush everything this group accumulated since the last epoch.

        Side-effect order matters: spans drain (and the dropped-span
        counter bumps) *before* the metrics snapshot, so the shipped
        delta already carries the drop accounting for this epoch.
        """
        payload: Dict[str, Any] = {
            "group": self.group.name,
            "shard": self.shard,
        }
        registry: MetricsRegistry = self.group.obs.registry
        if self.stream:
            spans, evicted_delta = self._drain_spans()
            if evicted_delta:
                registry.counter(
                    DROPPED_SPANS_METRIC,
                    "spans evicted from a worker flight-recorder ring "
                    "before the epoch flush shipped them",
                    labels=("group",),
                ).labels(self.group.name).inc(evicted_delta)
            payload["spans"] = spans
            payload["spans_dropped"] = evicted_delta
            payload["deadline"] = self._deadline_delta()
            payload["conformance"] = self._conformance_delta()
        snapshot = registry.snapshot()
        delta = diff_snapshot(snapshot, self._last_metrics)
        if final:
            # The final epoch ships the authoritative cumulative snapshot
            # (live == collect, bit for bit) but still carries the delta
            # so epoch-scoped extractions (breaker opens) never recount
            # what earlier epochs already folded.
            payload["metrics"] = snapshot
            payload["metrics_kind"] = "cumulative"
            payload["metrics_delta"] = delta
        else:
            payload["metrics"] = delta
            payload["metrics_kind"] = "delta"
        self._last_metrics = snapshot
        return payload


def _breaker_opens_delta(metrics_delta: Dict[str, Dict[str, Any]]) -> int:
    """Circuit-breaker open transitions carried by one metric delta."""
    family = metrics_delta.get("chain_breaker_transitions_total")
    if not family:
        return 0
    opens = 0
    for key, value in family["series"].items():
        if key.split(",")[-1] == "open":
            opens += int(value)
    return opens


class TelemetryStream:
    """Coordinator-side fold of every group's epoch payloads.

    One instance lives for one run.  :meth:`fold_epoch` is called at
    every barrier with the payloads of *all* groups (any worker order —
    the fold sorts by group name, so results are placement-independent),
    and incrementally maintains:

    - :attr:`registry` — the live metric fold (exact for integers
      mid-run, byte-exact after the final cumulative epoch);
    - :attr:`recorder` — a bounded ring of streamed spans with
      ``(group, shard)``-stamped keys;
    - :attr:`accountants` — per-group deadline-accountant twins built
      purely from the stream (identical to the worker-side ones, which
      the property suite pins);
    - :attr:`slo` — the burn-rate engine, fed one
      :class:`~repro.obs.slo.EpochSample` per epoch;
    - ``bus`` topic :data:`EPOCH_TOPIC` and the optional ``tail`` sink
      (one JSON line per epoch — ``tail`` is any writable text file).
    """

    def __init__(
        self,
        bus=None,
        slo_specs: Sequence[SloSpec] = (),
        max_spans: int = 4096,
        sketch_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        tail: Optional[IO[str]] = None,
        source: str = "telemetry-stream",
    ):
        self.bus = bus
        self.registry = MetricsRegistry()
        self.recorder = FlightRecorder(capacity=max_spans)
        self.accountants: Dict[str, DeadlineAccountant] = {}
        self.slo = SloEngine(slo_specs, bus=bus, source=source)
        self.sketch_accuracy = sketch_accuracy
        self.tail = tail
        self.source = source
        self.epochs = 0
        self.spans_seen = 0
        self.spans_dropped: Dict[str, int] = {}
        self.frames_checked = 0
        self.conformance_counts: Dict[str, int] = {}
        #: Per-group conformance accumulation (group -> {"frames_checked",
        #: "violations", "counts"}) — the live control plane routes
        #: conformance telemetry to per-cell subscribers from here; the
        #: scenario-wide totals above are unchanged.
        self.group_conformance: Dict[str, Dict[str, Any]] = {}
        self.worker_restarts_total = 0
        self._pending_restarts = 0
        self._final = False

    def note_worker_restart(self, worker: int) -> None:
        """Record one supervised-pool worker respawn.

        Restarts are coordinator events, not worker payloads — folding
        them into the stream registry would be wiped by the final
        cumulative rebuild — so they ride the next
        :class:`~repro.obs.slo.EpochSample` instead, which is what the
        ``worker_restarts`` SLO objective windows over.
        """
        self.worker_restarts_total += 1
        self._pending_restarts += 1

    # -- folding ---------------------------------------------------------

    def _fold_metrics(self, payloads: List[Dict[str, Any]]) -> None:
        if payloads and payloads[0].get("metrics_kind") == "cumulative":
            # Final epoch: rebuild from the authoritative snapshots, in
            # the same sorted-group order collect() merges them — the
            # bit-for-bit live == collect guarantee.
            rebuilt = MetricsRegistry()
            for payload in payloads:
                rebuilt.merge_snapshot(payload["metrics"])
            self.registry = rebuilt
            self._final = True
            return
        for payload in payloads:
            self.registry.merge_snapshot(payload["metrics"])

    def _fold_spans(self, payload: Dict[str, Any]) -> None:
        for span in payload.get("spans", ()):
            self.recorder.record(span)
            self.spans_seen += 1
        dropped = payload.get("spans_dropped", 0)
        if dropped:
            group = payload["group"]
            self.spans_dropped[group] = (
                self.spans_dropped.get(group, 0) + dropped
            )

    def _fold_deadline(
        self, payload: Dict[str, Any], epoch_sketch: QuantileSketch
    ) -> Tuple[int, int]:
        accounts = payload.get("deadline", ())
        if not accounts:
            return 0, 0
        group = payload["group"]
        accountant = self.accountants.get(group)
        if accountant is None:
            accountant = DeadlineAccountant(
                budget_ns=accounts[0]["budget_ns"],
                sketch_accuracy=self.sketch_accuracy,
            )
            self.accountants[group] = accountant
        before = accountant.violations
        folded = accountant.ingest(accounts)
        for account in accounts:
            epoch_sketch.observe(sum(account["stages"].values()))
        return folded, accountant.violations - before

    def _fold_conformance(self, payload: Dict[str, Any]) -> Tuple[int, int]:
        delta = payload.get("conformance") or {}
        frames = delta.get("frames_checked", 0)
        self.frames_checked += frames
        violations = 0
        per_group = self.group_conformance.setdefault(
            payload["group"],
            {"frames_checked": 0, "violations": 0, "counts": {}},
        )
        per_group["frames_checked"] += frames
        for kind, count in delta.get("counts", {}).items():
            self.conformance_counts[kind] = (
                self.conformance_counts.get(kind, 0) + count
            )
            per_group["counts"][kind] = (
                per_group["counts"].get(kind, 0) + count
            )
            per_group["violations"] += count
            violations += count
        return frames, violations

    def fold_epoch(self, payloads: Sequence[Dict[str, Any]]) -> EpochSample:
        """Fold one barrier epoch's payloads (all groups, any order)."""
        ordered = sorted(payloads, key=lambda p: p["group"])
        epoch = self.epochs
        epoch_sketch = QuantileSketch(
            relative_accuracy=self.sketch_accuracy
        )
        checks = misses = frames = violations = opens = 0
        for payload in ordered:
            self._fold_spans(payload)
            folded, violated = self._fold_deadline(payload, epoch_sketch)
            checks += folded
            misses += violated
            frames_delta, violations_delta = self._fold_conformance(payload)
            frames += frames_delta
            violations += violations_delta
            opens += _breaker_opens_delta(
                payload.get("metrics_delta", payload["metrics"])
            )
        self._fold_metrics(ordered)
        sample = EpochSample(
            epoch=epoch,
            deadline_checks=checks,
            deadline_misses=misses,
            slot_sketch=epoch_sketch.sample() if epoch_sketch.count else None,
            frames_checked=frames,
            conformance_violations=violations,
            breaker_opens=opens,
            worker_restarts=self._pending_restarts,
        )
        self._pending_restarts = 0
        alerts = self.slo.observe_epoch(sample)
        self.epochs += 1
        summary = self.epoch_summary(sample, [a.to_dict() for a in alerts])
        if self.bus is not None:
            self.bus.publish(
                EPOCH_TOPIC, summary,
                timestamp_ns=float(epoch), source=self.source,
            )
        if self.tail is not None:
            self.tail.write(json.dumps(summary, sort_keys=True) + "\n")
        return sample

    # -- views -------------------------------------------------------------

    def epoch_summary(
        self, sample: EpochSample, alerts: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """The JSON-safe record published per epoch (bus + JSONL tail)."""
        return {
            "epoch": sample.epoch,
            "deadline_checks": sample.deadline_checks,
            "deadline_misses": sample.deadline_misses,
            "frames_checked": sample.frames_checked,
            "conformance_violations": sample.conformance_violations,
            "breaker_opens": sample.breaker_opens,
            "worker_restarts": sample.worker_restarts,
            "spans_seen": self.spans_seen,
            "spans_dropped": sum(self.spans_dropped.values()),
            "alerts": alerts,
            "firing": self.slo.firing(),
        }

    def live_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """The live registry's current snapshot (final == collect())."""
        return self.registry.snapshot()

    @property
    def finalized(self) -> bool:
        """True once the final cumulative epoch has been folded."""
        return self._final

    def p99_slot_latency_ns(self) -> float:
        """Cross-shard P99 of per-slot chain latency over the whole run."""
        merged = QuantileSketch(relative_accuracy=self.sketch_accuracy)
        for name in sorted(self.accountants):
            merged.merge(self.accountants[name].latency_sketch)
        return merged.quantile(0.99)


__all__ = [
    "DROPPED_SPANS_METRIC",
    "EPOCH_TOPIC",
    "GroupStreamSource",
    "TelemetryStream",
]
