"""Live views over a telemetry stream: obs-top, Prometheus text, JSONL.

Three renderers over one :class:`~repro.obs.stream.TelemetryStream`,
each usable mid-run (the stream folds epochs while workers execute) or
after the final epoch:

- :func:`render_live` — the ``obs-top`` terminal screen: run header,
  SLO objective table with burn rates, per-group deadline percentiles
  against the 30 us budget, conformance counts, recent alert edges, and
  the full metric dashboard;
- :func:`render_stream_prometheus` — the live registry in Prometheus
  text exposition (scrape-equivalent);
- :func:`epoch_line` — one JSON line per folded epoch (the shape the
  stream's ``tail`` sink writes), for ``tail -f``-style consumption.

:func:`render_journeys` reconstructs cross-shard packet journeys from
streamed spans: every span key carries ``(group, shard)`` stamped at
ship time, and journeys join on the wire coordinates alone
(:meth:`~repro.obs.recorder.SpanKey.wire_key`), so one frame traversing
middleboxes on different shards still reads as one row sequence.

:func:`deterministic_exposition` drops the wall-clock families so CI
can pin a golden snapshot of a streamed run — everything else in the
plane is modelled/simulated time and byte-stable for a fixed spec.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Tuple

from repro.obs.exposition import render_dashboard, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.stream import TelemetryStream

#: Metric-family name fragments excluded from golden expositions: these
#: series measure host wall-clock time and legitimately differ run to
#: run (the digest excludes them for the same reason).
NONDETERMINISTIC_FRAGMENTS = ("wall",)

_WIDTH = 72


def _rule(char: str = "-") -> str:
    return char * _WIDTH


def deterministic_exposition(
    registry: MetricsRegistry,
    exclude_fragments: Sequence[str] = NONDETERMINISTIC_FRAGMENTS,
) -> str:
    """Prometheus text of every family whose results are seed-stable."""
    filtered = MetricsRegistry()
    filtered.merge_snapshot(
        {
            name: family
            for name, family in registry.snapshot().items()
            if not any(fragment in name for fragment in exclude_fragments)
        }
    )
    return render_prometheus(filtered)


def epoch_line(summary: Dict[str, Any]) -> str:
    """One epoch summary as the stream's canonical JSONL line."""
    return json.dumps(summary, sort_keys=True)


def _format_slo_row(row: Dict[str, Any]) -> str:
    value = "-" if row["value"] is None else f"{row['value']:.6g}"
    burn = "-" if row["burn_rate"] is None else f"{row['burn_rate']:.2f}x"
    state = "FIRING" if row["firing"] else "ok"
    return (
        f"  {row['slo']:<28} {row['objective']:<27}"
        f" {value:>10} {burn:>8} {state:>6}"
    )


def render_live(
    stream: TelemetryStream, title: str = "obs-top: live telemetry"
) -> str:
    """The operator terminal screen over one (possibly mid-run) stream."""
    lines = [_rule("="), title.center(_WIDTH), _rule("=")]
    lines.append(
        f"epochs folded {stream.epochs}"
        f"{' (finalized)' if stream.finalized else ''}"
        f" | spans {stream.spans_seen}"
        f" (dropped {sum(stream.spans_dropped.values())})"
        f" | frames checked {stream.frames_checked}"
    )
    if stream.slo.specs:
        lines.append("")
        lines.append("slo objectives")
        lines.append(_rule())
        lines.append(
            f"  {'slo':<28} {'objective':<27}"
            f" {'value':>10} {'burn':>8} {'state':>6}"
        )
        for row in stream.slo.status():
            lines.append(_format_slo_row(row))
    if stream.accountants:
        lines.append("")
        lines.append("deadline accounting (per group, ns)")
        lines.append(_rule())
        lines.append(
            f"  {'group':<22} {'slots':>6} {'miss':>6}"
            f" {'p50':>10} {'p99':>10} {'budget':>10}"
        )
        for name in sorted(stream.accountants):
            accountant = stream.accountants[name]
            lines.append(
                f"  {name:<22} {len(accountant.accounts):>6}"
                f" {accountant.violations:>6}"
                f" {accountant.percentile(50):>10.0f}"
                f" {accountant.percentile(99):>10.0f}"
                f" {accountant.budget_ns:>10.0f}"
            )
        lines.append(
            f"  cross-shard p99 slot latency:"
            f" {stream.p99_slot_latency_ns():.0f} ns"
        )
    if stream.conformance_counts:
        lines.append("")
        lines.append("conformance violations")
        lines.append(_rule())
        for kind in sorted(stream.conformance_counts):
            lines.append(
                f"  {kind:<50} {stream.conformance_counts[kind]:>8}"
            )
    if stream.slo.alerts:
        lines.append("")
        lines.append("alert edges")
        lines.append(_rule())
        for alert in stream.slo.alerts:
            lines.append(f"  {alert.render()}")
    lines.append("")
    lines.append(render_dashboard(stream.registry, title="live metrics"))
    return "\n".join(lines)


def render_stream_prometheus(stream: TelemetryStream) -> str:
    """The stream's live registry as Prometheus text exposition."""
    return render_prometheus(stream.registry)


def render_journeys(
    recorder: FlightRecorder, limit: int = 5
) -> str:
    """Cross-shard packet journeys from streamed spans.

    Takes the first ``limit`` distinct wire frames (in recording order)
    and prints each frame's spans in chain-stage order with the
    ``(group, shard)`` each stage executed on — the smoking-gun view for
    "where did this frame spend its budget".
    """
    seen: List[Tuple] = []
    for span in recorder.spans():
        wire = span.key.wire_key()
        if wire not in seen:
            seen.append(wire)
        if len(seen) >= limit:
            break
    lines = ["packet journeys (cross-shard)", _rule()]
    if not seen:
        lines.append("  (no spans streamed)")
        return "\n".join(lines)
    for wire in seen:
        eaxc, frame, subframe, slot, symbol, direction, seq = wire
        lines.append(
            f"  {direction} eaxc={eaxc}"
            f" {frame}.{subframe}.{slot}.{symbol} seq={seq}"
        )
        sample = next(
            s for s in recorder.spans() if s.key.wire_key() == wire
        )
        for span in recorder.packet_journey(sample.key):
            where = (
                f"{span.key.group or '-'}/{span.key.shard}"
                if span.key.shard >= 0
                else "-"
            )
            lines.append(
                f"    stage {span.stage} {span.middlebox:<22} {where:<16}"
                f" {span.modeled_ns:>9.0f} ns"
            )
    return "\n".join(lines)


__all__ = [
    "NONDETERMINISTIC_FRAGMENTS",
    "deterministic_exposition",
    "epoch_line",
    "render_journeys",
    "render_live",
    "render_stream_prometheus",
]
