"""Metrics registry: Counters, Gauges and Histograms with label sets.

The registry is the numeric half of the fronthaul flight recorder: every
instrumented component (middleboxes, the embedded switch, the event
engine, the reference apps) registers its series here, and the exposition
module (:mod:`repro.obs.exposition`) renders an atomic snapshot as
Prometheus text, JSON, or a plain-text dashboard.

Design constraints, in order:

1. **Cheap on the hot path.**  ``labels()`` resolves to a child object in
   one dict lookup; ``inc``/``observe`` are a couple of float ops.  The
   datapath only calls these behind the module-level enable switch
   (:class:`repro.obs.Observability`), so disabled runs pay nothing.
2. **Atomic snapshots.**  ``MetricsRegistry.snapshot()`` holds the
   registry lock while it copies every series, so a reader never sees a
   half-updated histogram (bucket counts that disagree with ``count``).
3. **Deterministic exposition.**  Families and label sets are rendered in
   sorted order so golden tests can pin the exact output bytes.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.sketch import (
    DEFAULT_RELATIVE_ACCURACY,
    Sketch,
    SketchMergeError,
    diff_sample as _diff_sketch_sample,
)

LabelValues = Tuple[str, ...]


class MetricMergeError(ValueError):
    """A snapshot cannot be folded into this registry without mis-merging.

    Raised by :meth:`MetricsRegistry.merge_snapshot` when an incoming
    series is structurally incompatible with the live family — histogram
    bucket bounds that disagree, sketch accuracies that disagree, or a
    family re-registered as a different kind.  The registry is left
    exactly as it was before the offending *sample*; callers should
    treat the whole snapshot as poisoned.
    """

#: Default histogram buckets in nanoseconds: spans the ~50 ns forward
#: action up through multi-symbol deadline misses.
DEFAULT_NS_BUCKETS: Tuple[float, ...] = (
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    50_000.0,
    100_000.0,
    1_000_000.0,
)


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name {name!r}")


class Counter:
    """A monotonically increasing series (one child per label set)."""

    metric_type = "counter"

    def __init__(self, parent: "MetricFamily", label_values: LabelValues):
        self._parent = parent
        self.label_values = label_values
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def sample(self) -> float:
        return self.value


class Gauge:
    """A series that can go up and down (queue depths, occupancies)."""

    metric_type = "gauge"

    def __init__(self, parent: "MetricFamily", label_values: LabelValues):
        self._parent = parent
        self.label_values = label_values
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def sample(self) -> float:
        return self.value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; the
    implicit ``+Inf`` bucket equals ``count``.
    """

    metric_type = "histogram"

    def __init__(
        self,
        parent: "MetricFamily",
        label_values: LabelValues,
        bounds: Sequence[float],
    ):
        self._parent = parent
        self.label_values = label_values
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * len(self.bounds)
        self.count: int = 0
        self.sum: float = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        index = bisect_left(self.bounds, value)
        if index < len(self.bucket_counts):
            self.bucket_counts[index] += 1

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def sample(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                str(bound): cumulative
                for bound, cumulative in self.cumulative_buckets()
            },
        }


def _merge_histogram_sample(child: "Histogram", sample: Dict[str, Any]) -> None:
    """Add one snapshot histogram sample into a live histogram child.

    Bucket-bound compatibility is validated *before* any count moves: a
    sample whose bounds are not exactly the child's — extra bounds,
    missing bounds, even all-zero buckets over different bounds — raises
    :class:`MetricMergeError` instead of silently folding counts into
    the wrong buckets.
    """
    by_bound = {
        float(key): cumulative
        for key, cumulative in sample["buckets"].items()
        if key != "inf"
    }
    sample_bounds = tuple(sorted(by_bound))
    if sample_bounds != child.bounds:
        raise MetricMergeError(
            f"histogram merge: {child._parent.name} sample bounds "
            f"{sample_bounds} do not match registered bounds "
            f"{child.bounds}"
        )
    child.count += sample["count"]
    child.sum += sample["sum"]
    previous = 0
    for position, bound in enumerate(sample_bounds):
        cumulative = by_bound[bound]
        per_bucket = cumulative - previous
        previous = cumulative
        if per_bucket:
            child.bucket_counts[position] += per_bucket


class MetricFamily:
    """One named metric: a help string, label names, and labelled children."""

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        label_names: Tuple[str, ...],
        metric_cls,
        **child_kwargs,
    ):
        _validate_name(name)
        self.registry = registry
        self.name = name
        self.help_text = help_text
        self.label_names = label_names
        self.metric_cls = metric_cls
        self.metric_type = metric_cls.metric_type
        self._child_kwargs = child_kwargs
        self._children: Dict[LabelValues, Any] = {}
        # The unlabelled family doubles as its own single child so callers
        # can write ``registry.counter("x").inc()`` without a labels() hop.
        if not label_names:
            self._default = self._make_child(())
        else:
            self._default = None

    def _make_child(self, values: LabelValues):
        child = self.metric_cls(self, values, **self._child_kwargs)
        self._children[values] = child
        return child

    def labels(self, *values: str, **kv: str):
        """Resolve (creating on first use) the child for one label set."""
        if not kv:
            # Fast path: all-string positional values hit the child dict
            # directly.  Instrumentation sites run this per packet, so the
            # str() normalization below only runs for the first resolution
            # of a label set (or for non-string values, which normalize to
            # the same child through the slow path).
            child = self._children.get(values)
            if child is not None:
                return child
        if kv:
            if values:
                raise ValueError("pass labels positionally or by name, not both")
            try:
                values = tuple(str(kv[name]) for name in self.label_names)
            except KeyError as exc:
                raise ValueError(f"missing label {exc} for {self.name}") from exc
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got {values}"
            )
        child = self._children.get(values)
        if child is None:
            with self.registry._lock:
                child = self._children.get(values) or self._make_child(values)
        return child

    def children(self) -> Dict[LabelValues, Any]:
        return dict(self._children)

    # -- unlabelled convenience passthroughs --------------------------------

    def _require_default(self):
        if self._default is None:
            raise ValueError(
                f"{self.name} has labels {self.label_names}; use .labels()"
            )
        return self._default

    def inc(self, amount: float = 1.0) -> None:
        self._require_default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._require_default().dec(amount)

    def set(self, value: float) -> None:
        self._require_default().set(value)

    def observe(self, value: float) -> None:
        self._require_default().observe(value)

    @property
    def value(self) -> float:
        return self._require_default().value


class MetricsRegistry:
    """Get-or-create metric families plus an atomic snapshot."""

    def __init__(self):
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _get_or_create(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str],
        metric_cls,
        **child_kwargs,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.metric_cls is not metric_cls:
                raise ValueError(
                    f"{name} already registered as {family.metric_type}"
                )
            if family.label_names != tuple(labels):
                raise ValueError(
                    f"{name} already registered with labels {family.label_names}"
                )
            return family
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(
                    self, name, help_text, tuple(labels), metric_cls,
                    **child_kwargs,
                )
                self._families[name] = family
        return family

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._get_or_create(name, help_text, labels, Counter)

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._get_or_create(name, help_text, labels, Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_NS_BUCKETS,
    ) -> MetricFamily:
        return self._get_or_create(
            name, help_text, labels, Histogram, bounds=tuple(buckets)
        )

    def sketch(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
    ) -> MetricFamily:
        """A mergeable quantile sketch family (see :mod:`repro.obs.sketch`).

        Use where a percentile must survive cross-shard merging without
        shipping raw arrays — P99 slot latency, failover-time CDFs.
        """
        return self._get_or_create(
            name, help_text, labels, Sketch,
            relative_accuracy=relative_accuracy,
        )

    def families(self) -> List[MetricFamily]:
        """All families, name-sorted (the exposition order)."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Consistent point-in-time copy of every series.

        ``{name: {"type", "help", "labels", "series": {label_tuple_key:
        sample}}}`` where counter/gauge samples are floats and histogram
        samples are ``{count, sum, buckets}`` dicts.
        """
        with self._lock:
            out: Dict[str, Dict[str, Any]] = {}
            for name in sorted(self._families):
                family = self._families[name]
                series: Dict[str, Any] = {}
                for values in sorted(family._children):
                    series[",".join(values)] = family._children[values].sample()
                out[name] = {
                    "type": family.metric_type,
                    "help": family.help_text,
                    "labels": list(family.label_names),
                    "series": series,
                }
            return out

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot` into this registry (cross-shard merge).

        Counters and histograms are additive: counts, sums and per-bucket
        tallies add up, so merging N worker snapshots yields the same
        series a single process would have produced.  Gauges are also
        summed — every gauge the datapath exports (queue depths, cache
        occupancy, breaker states per distinctly-labelled chain) is either
        naturally additive across disjoint shards or disjointly labelled,
        in which case the sum degenerates to the single contributing
        value.  Histogram bucket bounds are reconstructed from the
        snapshot, so a fresh registry can absorb any worker's series.
        """
        for name, family_snap in snapshot.items():
            labels = tuple(family_snap["labels"])
            kind = family_snap["type"]
            series = family_snap["series"]
            try:
                if kind == "counter":
                    family = self.counter(name, family_snap["help"], labels)
                elif kind == "gauge":
                    family = self.gauge(name, family_snap["help"], labels)
                elif kind == "histogram":
                    bounds = sorted(
                        float(key)
                        for sample in series.values()
                        for key in sample["buckets"]
                        if key != "inf"
                    )
                    family = self.histogram(
                        name, family_snap["help"], labels,
                        buckets=tuple(dict.fromkeys(bounds)),
                    )
                elif kind == "sketch":
                    accuracies = {
                        sample["accuracy"] for sample in series.values()
                    }
                    family = self.sketch(
                        name, family_snap["help"], labels,
                        relative_accuracy=(
                            next(iter(accuracies))
                            if len(accuracies) == 1
                            else DEFAULT_RELATIVE_ACCURACY
                        ),
                    )
                else:
                    raise MetricMergeError(f"unknown metric type {kind!r}")
            except ValueError as exc:
                # A family already registered as another kind / label set.
                raise MetricMergeError(str(exc)) from None
            for key, sample in series.items():
                values = tuple(key.split(",")) if key else ()
                child = family.labels(*values)
                if kind in ("counter", "gauge"):
                    child.inc(sample)
                elif kind == "histogram":
                    _merge_histogram_sample(child, sample)
                else:
                    try:
                        child.sketch.merge_sample(sample)
                    except SketchMergeError as exc:
                        raise MetricMergeError(
                            f"sketch merge: {name}: {exc}"
                        ) from None

    def snapshot_delta(
        self, previous: Dict[str, Dict[str, Any]]
    ) -> Dict[str, Dict[str, Any]]:
        """Snapshot, expressed as a delta against an earlier snapshot.

        The scale-out pool ships these per barrier epoch: workers keep
        their registries hot and send only what changed, and the
        coordinator folds each delta with :meth:`merge_snapshot` — so a
        live registry fed epoch deltas converges to exactly the series a
        final full snapshot would carry.  See :func:`diff_snapshot`.
        """
        return diff_snapshot(self.snapshot(), previous)

    def unregister(self, name: str) -> None:
        with self._lock:
            self._families.pop(name, None)

    def clear(self) -> None:
        with self._lock:
            self._families.clear()

    def __len__(self) -> int:
        return len(self._families)


def _diff_histogram(sample: Dict[str, Any], prev: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "count": sample["count"] - prev["count"],
        "sum": sample["sum"] - prev["sum"],
        "buckets": {
            key: cumulative - prev["buckets"].get(key, 0)
            for key, cumulative in sample["buckets"].items()
        },
    }


def diff_snapshot(
    current: Dict[str, Dict[str, Any]],
    previous: Dict[str, Dict[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """The per-epoch delta between two :meth:`MetricsRegistry.snapshot`\\ s.

    Counters and histograms subtract (their cumulative buckets stay
    cumulative, so per-bucket differences are again valid cumulative
    counts); gauges carry ``current - previous`` so that additively
    folding every delta reproduces the latest gauge value.  Families and
    series absent from ``previous`` pass through whole.  The result is
    snapshot-shaped: feed it straight to
    :meth:`MetricsRegistry.merge_snapshot`.
    """
    delta: Dict[str, Dict[str, Any]] = {}
    for name, family in current.items():
        prev_family = previous.get(name)
        if prev_family is None:
            delta[name] = family
            continue
        series: Dict[str, Any] = {}
        prev_series = prev_family["series"]
        for key, sample in family["series"].items():
            prev_sample = prev_series.get(key)
            if prev_sample is None:
                series[key] = sample
            elif family["type"] == "histogram":
                series[key] = _diff_histogram(sample, prev_sample)
            elif family["type"] == "sketch":
                series[key] = _diff_sketch_sample(sample, prev_sample)
            else:
                series[key] = sample - prev_sample
        delta[name] = {
            "type": family["type"],
            "help": family["help"],
            "labels": family["labels"],
            "series": series,
        }
    return delta
